from setuptools import setup

# Metadata lives in pyproject.toml; this shim enables legacy editable
# installs (`pip install -e . --no-use-pep517`) on environments without
# the `wheel` package.
setup()
