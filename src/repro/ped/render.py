"""ASCII rendering of the PED window (Figure 1).

The layout mirrors the paper's screenshot: a menu bar, the source pane
with loop markers and ordinal line numbers, then the dependence and
variable panes as "footnotes"."""

from __future__ import annotations


MENU = ("file  edit  view  search  dependence  variable  transform")


def _bar(width: int, ch: str = "=") -> str:
    return ch * width


def render_window(session, width: int = 78) -> str:
    unit = session.current_unit_name
    loop = session.current_loop
    title = f" ParaScope Editor -- {unit}"
    if loop is not None:
        title += f"  [current loop {loop.id} line {loop.line}]"
    parts = [
        _bar(width),
        title[:width],
        MENU[:width],
        _bar(width),
        session.source_pane.render(width),
        _bar(width, "-"),
        "DEPENDENCES",
        session.dependence_pane.render(),
        _bar(width, "-"),
        "VARIABLES",
        session.variable_pane.render(),
        _bar(width),
    ]
    return "\n".join(parts)
