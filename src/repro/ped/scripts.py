"""Scripted user sessions replaying the 1991 workshop (Section 2).

Seven groups (five workshop groups plus Fletcher's and Stein's studies)
each work on their program(s) following the Section 3.1 work model:
profile, select the hot loops, inspect dependences and variables, correct
conservative analysis by deletion/classification/assertion, then
transform.  Each action goes through the real :class:`PedSession` API, so
the feature-usage log (Table 2's *used* column) and the transformations
applied (Table 4's *U* entries) are measured, not asserted.

The subjective improve/like/dislike columns of Table 2 are survey data;
:data:`TABLE2_REFERENCE` records them as reported (reading the paper's
prose where the scanned table is ambiguous), and the benchmark prints
them alongside the measured used column.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..corpus import PROGRAMS
from ..dependence.model import Mark  # noqa: F401 (scripts use Mark)
from .filters import DependenceFilter, SourceFilter, VariableFilter
from .session import PedSession

#: Table 2 as reported by the paper (used column targets are what the
#: scripted sessions must reproduce; other columns are survey results).
TABLE2_REFERENCE: dict[str, dict[str, int]] = {
    "dependence deletion": {"used": 6, "improve": 3},
    "variable classification": {"used": 5, "like": 3},
    "access to analysis": {"used": 3, "improve": 3},
    "program navigation": {"used": 7, "improve": 7, "dislike": 2},
    "dependence navigation": {"used": 7, "improve": 2, "like": 2,
                              "dislike": 1},
    "view filtering": {"used": 1, "improve": 1},
    "detect interface error": {"used": 3},
    "help": {"used": 2, "improve": 1, "like": 2},
    "teaching tool": {"used": 2},
}

#: Features counted in the used column (events carrying other labels,
#: e.g. "transformation", feed Table 4 instead).
TABLE2_FEATURES = tuple(TABLE2_REFERENCE)


@dataclass
class GroupReport:
    group: str
    members: str
    sessions: dict[str, PedSession] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def features_used(self) -> set[str]:
        used: set[str] = set()
        for s in self.sessions.values():
            used |= {e.feature for e in s.events}
        # fold marking into deletion only when a rejection happened
        return {f for f in used if f in TABLE2_FEATURES}

    def transformations_applied(self) -> dict[str, set[str]]:
        """program name -> transformation names successfully applied."""
        out: dict[str, set[str]] = {}
        for prog, s in self.sessions.items():
            names = set()
            for e in s.events:
                if e.feature == "transformation" \
                        and e.detail.split(":")[1].strip() \
                        .startswith("applied"):
                    names.add(e.detail.split(":")[0])
            out[prog] = names
        return out


#: corpus program sources, keyed by program name (filled on first use;
#: sources are immutable so the cache never needs invalidation)
_SOURCE_CACHE: dict[str, str] = {}


def program_source(prog_name: str) -> str:
    """The corpus program's source text, cached by program name."""
    if prog_name not in _SOURCE_CACHE:
        _SOURCE_CACHE[prog_name] = PROGRAMS[prog_name].source
    return _SOURCE_CACHE[prog_name]


def _session(prog_name: str) -> PedSession:
    return PedSession(program_source(prog_name))


def _loop_by_line(s: PedSession, unit: str, line_text: str):
    """Find a loop whose header contains the given text."""
    s.select_unit(unit)
    for li in s.loops():
        if line_text.upper().replace(" ", "") in _header_text(s, li):
            return li
    raise LookupError(f"no loop matching {line_text!r} in {unit}")


def _header_text(s: PedSession, li) -> str:
    lp = li.loop
    parts = [f"DO{lp.term_label or ''}", lp.var, "=", str(lp.start), ",",
             str(lp.end)]
    return "".join(parts).upper().replace(" ", "")


def _loop_of_var(s: PedSession, unit: str, var: str, ordinal: int = 0):
    s.select_unit(unit)
    matches = [li for li in s.loops() if li.var == var.upper()]
    return matches[ordinal]


def _loop_assigning(s: PedSession, unit: str, var: str):
    """Innermost loop whose body directly assigns the named scalar."""
    from ..fortran import ast
    s.select_unit(unit)
    var = var.upper()
    best = None
    for li in s.loops():
        for st in li.loop.body:
            if isinstance(st, ast.Assign) \
                    and isinstance(st.target, ast.VarRef) \
                    and st.target.name == var:
                if best is None or li.depth > best.depth:
                    best = li
    if best is None:
        raise LookupError(f"no loop assigns {var} in {unit}")
    return best


def _reject_some_pending(s: PedSession, reason: str) -> int:
    """Dependence deletion: the user rejects pending deps they know are
    spurious (power-steered through the Mark Dependences dialog)."""
    return s.mark_dependences_where(
        DependenceFilter(mark=Mark.PENDING), Mark.REJECTED, reason)


# ---------------------------------------------------------------------------
# Group scripts
# ---------------------------------------------------------------------------

def group1_spec77() -> GroupReport:
    """Poole & Hsieh: interprocedural analysis shows GLOOP's call loops
    parallel; granularity pushes them toward loop embedding; the SMOOTH
    recurrence temporary gets expanded."""
    r = GroupReport("G1", "Poole & Hsieh (spec77)")
    s = _session("spec77")
    r.sessions["spec77"] = s
    s.hot_loops()                                   # program navigation
    s.check_program()                               # interface errors
    lat = _loop_of_var(s, "GLOOP", "LAT", 0)
    s.select_loop(lat)
    deps = s.dependences()                          # dependence navigation
    s.sections_summary()                            # access to analysis
    adv = s.advice("parallelize")
    if adv.ok:
        s.apply("parallelize")
    # Granularity: 12 iterations is too few; embed the loop (the paper's
    # requested interprocedural transformation, implemented here).
    lat2 = _loop_of_var(s, "GLOOP", "LAT", 0)
    s.select_loop(lat2)
    emb = s.apply("loop_embedding")
    r.notes.append(f"embedding: {emb.advice.explain()}")
    # SMOOTH's longitude recurrence: expand the scalar temporary in the
    # flux sweep of PHYS (killed scalar Q).
    q_loop = _loop_assigning(s, "PHYS", "Q")
    s.select_loop(q_loop)
    s.apply("scalar_expansion", var="Q")
    # The smoothing rows are independent once T is private.
    sm = _loop_of_var(s, "SMOOTH", "J", 1)
    s.select_loop(sm)
    s.classify_variable("T", "private",
                        reason="killed at the start of each row")
    _reject_some_pending(s, "user: rows are independent")
    return r


def group2_neoss_nxsns() -> GroupReport:
    """Zosel & Engle: dialect control flow must be restructured before
    loop work; interprocedural KILL parallelizes the relaxation loop."""
    r = GroupReport("G2", "Zosel & Engle (neoss, nxsns)")
    s1 = _session("neoss")
    r.sessions["neoss"] = s1
    s1.help("panes")                                # help
    s1.hot_loops()
    s1.select_unit("REGIME")
    k_loop = _loop_of_var(s1, "REGIME", "K", 0)
    s1.select_loop(k_loop)
    s1.dependences()
    s1._log("teaching tool", "plans to use PED for parallel-programming "
                             "courses at LLNL")
    res = s1.apply("control_flow_simplification", loop=k_loop)
    r.notes.append(f"neoss restructuring: {res.description}")
    s2 = _session("nxsns")
    r.sessions["nxsns"] = s2
    s2.check_program()
    # the permutation-subscripted overlap loop: the user knows MAP is a
    # permutation and deletes the spurious dependences
    it_loop = _loop_of_var(s2, "OVERLAP", "IT", 0)
    s2.select_loop(it_loop)
    _reject_some_pending(s2, "user: MAP is a permutation")
    j_loop = _loop_of_var(s2, "NXSNS", "J", 1)
    s2.select_loop(j_loop)
    s2.dependences()
    s2.classify_variable("ACC", "private",
                         reason="killed inside RELAX on every path")
    adv = s2.advice("parallelize")
    if adv.ok:
        s2.apply("parallelize")
    s2.apply("control_flow_simplification")
    return r


def group3_dpmin() -> GroupReport:
    """Pottle: the DO 300 index arrays block everything; breaking
    conditions lead to the monotone/disjoint assertions."""
    r = GroupReport("G3", "Pottle (dpmin)")
    s = _session("dpmin")
    r.sessions["dpmin"] = s
    s.hot_loops()
    n_loop = _loop_of_var(s, "FORCES", "N", 0)
    ld = s.select_loop(n_loop)
    deps = s.dependences()
    carried = [d for d in deps if d.loop_carried]
    if carried:
        bcs = s.breaking_conditions(carried[0])     # access to analysis
        r.notes.append("breaking conditions: "
                       + "; ".join(str(b) for b in bcs[:2]))
    s.assert_fact("MONOTONE(IT, 3)")
    s.assert_fact("MONOTONE(JT, 3)")
    s.assert_fact("MONOTONE(KT, 3)")
    s.assert_fact("DISJOINT(IT, JT, 3)")
    s.assert_fact("DISJOINT(JT, KT, 3)")
    s.assert_fact("DISJOINT(IT, KT, 3)")
    s.select_loop(_loop_of_var(s, "FORCES", "N", 0))
    adv = s.advice("parallelize")
    if adv.ok:
        s.apply("parallelize")
    r.notes.append(f"DO 300 after assertions: {adv.explain()}")
    s._log("teaching tool", "wants PED to teach dependence concepts")
    s.apply("control_flow_simplification")
    # residual spurious deps on the line search get rejected
    e_loop = _loop_of_var(s, "LSRCH", "I", 0)
    s.select_loop(e_loop)
    _reject_some_pending(s, "user: reduction is associative")
    return r


def group4_slab2d_slalom() -> GroupReport:
    """Heimbach: distribution + privatization on slab2d; expansion and
    unrolling on both codes; the one group that built view filters."""
    r = GroupReport("G4", "Heimbach (slab2d, slalom)")
    s1 = _session("slab2d")
    r.sessions["slab2d"] = s1
    s1.hot_loops()
    s1.set_source_filter(SourceFilter.labelled())   # view filtering
    s1.set_source_filter(None)
    j_loop = _loop_of_var(s1, "STEP", "J", 0)       # DO 30
    s1.select_loop(j_loop)
    s1.dependences()
    inner = _loop_of_var(s1, "STEP", "I", 0)        # DO 31
    dist = s1.apply("loop_distribution", loop=inner)
    r.notes.append(f"slab2d distribution: {dist.advice.explain()}")
    # after distribution the user privatizes the row buffer (they know
    # it is wholly rewritten per row; array kill analysis agrees)
    j_loop = _loop_of_var(s1, "STEP", "J", 0)
    s1.select_loop(j_loop)
    s1.classify_variable("BUF", "private",
                         reason="wholly rewritten each row after "
                                "distribution")
    adv = s1.advice("parallelize")
    if adv.ok:
        s1.apply("parallelize")
    r.notes.append(f"slab2d DO 30: {adv.explain()}")
    tmp_loop = _loop_assigning(s1, "STEP", "TMP")   # DO 50
    s1.select_loop(tmp_loop)
    s1.apply("scalar_expansion", var="TMP")
    _reject_some_pending(s1, "user: boundary values settled")
    s2 = _session("slalom")
    r.sessions["slalom"] = s2
    s2.help()
    s2.hot_loops()
    i_loop = _loop_assigning(s2, "FACTOR", "T")     # DO 31
    s2.select_loop(i_loop)
    s2.dependences()
    s2.classify_variable("T", "private", reason="killed each iteration")
    s2.apply("scalar_expansion", var="T", loop=i_loop, extent=24)
    j_loop = _loop_of_var(s2, "FACTOR", "J", 0)     # DO 32 daxpy
    s2.apply("loop_unrolling", loop=j_loop, factor=4)
    # the residual accumulation: the user knows the sum reassociates and
    # deletes the reduction-induced dependences
    res_loop = _loop_of_var(s2, "RESID", "I", 1)    # DO 52
    s2.select_loop(res_loop)
    _reject_some_pending(s2, "user: sum reduction reassociates")
    return r


def group5_pueblo3d() -> GroupReport:
    """Brickner: the MCN assertion parallelizes the sweeps, which then
    fuse; the update loop gets unrolled."""
    r = GroupReport("G5", "Brickner (pueblo3d)")
    s = _session("pueblo3d")
    r.sessions["pueblo3d"] = s
    s.hot_loops()
    sw = _loop_of_var(s, "SWEEP", "I", 0)           # DO 30
    s.select_loop(sw)
    deps = s.dependences()
    s.symbolic_info()                               # access to analysis
    # before discovering the assertion, the user deletes one dependence
    # by hand and finds it too tedious (Section 3.2)
    pend = [d for d in deps if d.mark is Mark.PENDING]
    if pend:
        s.mark_dependence(pend[0], Mark.REJECTED,
                          "user: neighbor offset exceeds region")
    s.assert_fact("MCN .GT. IENDV(IR) - ISTRT(IR)")
    sw = _loop_of_var(s, "SWEEP", "I", 0)
    s.select_loop(sw)
    adv = s.advice("parallelize")
    r.notes.append(f"DO 30 after assertion: {adv.explain()}")
    fuse = s.apply("loop_fusion", loop=sw)
    r.notes.append(f"fusion 30+40: {fuse.advice.explain()}")
    upd = _loop_of_var(s, "SWEEP", "I", 1)          # now DO 50
    s.apply("loop_unrolling", loop=upd, factor=2)
    # privatize the sweep temporaries, reject leftover pendings
    sw = _loop_of_var(s, "SWEEP", "I", 0)
    s.select_loop(sw)
    s.classify_variable("X", "private", reason="killed each iteration")
    _reject_some_pending(s, "user: neighbor offset exceeds region")
    return r


def group6_fletcher_arc3d() -> GroupReport:
    """Fletcher (NASA Ames): arc3d's filter needs the JM relation; the
    smoother's nest interchanges."""
    r = GroupReport("G6", "Fletcher (arc3d)")
    s = _session("arc3d")
    r.sessions["arc3d"] = s
    s.check_program()
    s.hot_loops()
    f_loop = _loop_of_var(s, "FILTER", "N", 0)      # DO 15
    s.select_loop(f_loop)
    deps = s.dependences()
    # first attempt: deleting WR1 dependences one at a time -- tedious
    # (exactly the Section 3.2 complaint), then the higher-level edit:
    pend = [d for d in deps if d.mark is Mark.PENDING]
    if pend:
        s.mark_dependence(pend[0], Mark.REJECTED,
                          "user: WR1 rewritten every plane")
    s.classify_variable("WR1", "private",
                        reason="killed each N iteration given "
                               "JM = JMAX - 1")
    adv = s.advice("parallelize")
    if adv.ok:
        s.apply("parallelize")
    r.notes.append(f"arc3d DO 15: {adv.explain()}")
    sm = _loop_of_var(s, "SMOOTH", "J", 0)          # DO 90
    s.select_loop(sm)
    ic = s.apply("loop_interchange", loop=sm)
    r.notes.append(f"interchange: {ic.advice.explain()}")
    # reject remaining spurious deps on the filter
    f_loop = _loop_of_var(s, "FILTER", "N", 0)
    s.select_loop(f_loop)
    _reject_some_pending(s, "user: work arrays private per plane")
    return r


def group7_stein() -> GroupReport:
    """Stein: outer-loop parallelization study -- navigation and
    dependence examination across a whole code, no edits."""
    r = GroupReport("G7", "Stein (outer-loop study)")
    s = _session("spec77")
    r.sessions["spec77-study"] = s
    s.navigation_report()
    s.call_graph_text()
    for unit in ("GLOOP", "SMOOTH"):
        s.select_unit(unit)
        for li in s.loops():
            if li.depth == 0:
                s.select_loop(li)
                s.dependences()
    return r


GROUPS = (group1_spec77, group2_neoss_nxsns, group3_dpmin,
          group4_slab2d_slalom, group5_pueblo3d, group6_fletcher_arc3d,
          group7_stein)


def run_workshop() -> list[GroupReport]:
    """Run all seven scripted sessions."""
    return [g() for g in GROUPS]


def table2_used_counts(reports: list[GroupReport]) -> dict[str, int]:
    counts = {f: 0 for f in TABLE2_FEATURES}
    for r in reports:
        for f in r.features_used():
            counts[f] += 1
    return counts


#: Table 4 rows: transformation name in the registry -> paper row label.
TRANSFORM_ROWS = {
    "loop_distribution": "loop distribution",
    "loop_interchange": "loop interchange",
    "loop_fusion": "loop fusion",
    "scalar_expansion": "scalar expansion",
    "loop_unrolling": "loop unrolling",
}


def table4_used(reports: list[GroupReport]) -> dict[str, set[str]]:
    """paper row label -> set of corpus program names that used it."""
    out: dict[str, set[str]] = {label: set()
                                for label in TRANSFORM_ROWS.values()}
    for r in reports:
        for prog, names in r.transformations_applied().items():
            prog = prog.split("-")[0]
            for name in names:
                label = TRANSFORM_ROWS.get(name)
                if label:
                    out[label].add(prog)
    return out
