"""View filtering (Section 3.1): user-controlled predicates that
emphasize or conceal parts of the "book".

Three filter families mirror the three panes.  Each filter is a callable
predicate plus a description; ``matches`` composes the configured
attribute tests conjunctively.  Predefined filters (loop headers,
erroneous lines, ...) are provided as class methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..dependence.model import Dependence, Mark


@dataclass
class SourceFilter:
    """Predicate over source pane lines."""

    contains: str | None = None
    is_loop_header: bool | None = None
    has_label: bool | None = None
    line_range: tuple[int, int] | None = None
    predicate: Callable[[dict], bool] | None = None
    description: str = ""

    def matches(self, line_info: dict) -> bool:
        """``line_info`` keys: text, ordinal, is_loop, label, line."""
        if self.contains is not None \
                and self.contains.upper() not in line_info["text"].upper():
            return False
        if self.is_loop_header is not None \
                and bool(line_info.get("is_loop")) != self.is_loop_header:
            return False
        if self.has_label is not None \
                and (line_info.get("label") is not None) != self.has_label:
            return False
        if self.line_range is not None:
            lo, hi = self.line_range
            if not lo <= line_info["ordinal"] <= hi:
                return False
        if self.predicate is not None and not self.predicate(line_info):
            return False
        return True

    @classmethod
    def loop_structure(cls) -> "SourceFilter":
        """Predefined filter: show the procedure's loop structure."""
        return cls(is_loop_header=True, description="loop headers only")

    @classmethod
    def labelled(cls) -> "SourceFilter":
        return cls(has_label=True, description="labelled statements "
                                               "(control-flow skeleton)")


@dataclass
class DependenceFilter:
    """Predicate over dependence pane rows (type, variable, endpoints,
    level, mark, reason -- the attributes Section 3.1 lists)."""

    dtype: str | None = None
    var: str | None = None
    carried: bool | None = None
    level: int | None = None
    mark: Mark | None = None
    source_contains: str | None = None
    sink_contains: str | None = None
    line_range: tuple[int, int] | None = None
    reason_contains: str | None = None
    predicate: Callable[[Dependence], bool] | None = None
    description: str = ""

    def matches(self, d: Dependence) -> bool:
        if self.dtype is not None and str(d.dtype).lower() != \
                self.dtype.lower():
            return False
        if self.var is not None and d.var != self.var.upper():
            return False
        if self.carried is not None and d.loop_carried != self.carried:
            return False
        if self.level is not None and d.level != self.level:
            return False
        if self.mark is not None and d.mark is not self.mark:
            return False
        if self.source_contains is not None \
                and self.source_contains.upper() not in \
                d.source.text.upper():
            return False
        if self.sink_contains is not None \
                and self.sink_contains.upper() not in d.sink.text.upper():
            return False
        if self.line_range is not None:
            lo, hi = self.line_range
            if not (lo <= d.source.line <= hi or lo <= d.sink.line <= hi):
                return False
        if self.reason_contains is not None \
                and self.reason_contains.lower() not in d.reason.lower():
            return False
        if self.predicate is not None and not self.predicate(d):
            return False
        return True

    @classmethod
    def pending_only(cls) -> "DependenceFilter":
        return cls(mark=Mark.PENDING,
                   description="pending (unproven) dependences")

    @classmethod
    def carried_only(cls) -> "DependenceFilter":
        return cls(carried=True, description="loop-carried dependences")

    @classmethod
    def on_variable(cls, name: str) -> "DependenceFilter":
        return cls(var=name, description=f"dependences on {name.upper()}")


@dataclass
class VariableFilter:
    """Predicate over variable pane rows."""

    name_contains: str | None = None
    kind: str | None = None           # "shared" | "private"
    dim: int | None = None
    common_block: str | None = None
    predicate: Callable[[dict], bool] | None = None
    description: str = ""

    def matches(self, row: dict) -> bool:
        """``row`` keys: name, dim, block, kind, defs, uses, reason."""
        if self.name_contains is not None \
                and self.name_contains.upper() not in row["name"]:
            return False
        if self.kind is not None and row["kind"] != self.kind:
            return False
        if self.dim is not None and row["dim"] != self.dim:
            return False
        if self.common_block is not None \
                and (row.get("block") or "") != self.common_block.upper():
            return False
        if self.predicate is not None and not self.predicate(row):
            return False
        return True

    @classmethod
    def shared_arrays(cls) -> "VariableFilter":
        return cls(kind="shared",
                   predicate=lambda r: r["dim"] > 0,
                   description="shared arrays")
