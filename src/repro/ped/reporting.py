"""Printing and export facilities.

Section 3.2: "One user wanted the ability to print the program,
dependences, and variable information" -- :func:`program_report` renders
a full listing (source + per-loop dependence and variable tables).
"Several users wanted a graphical representation of the call graph" --
:func:`call_graph_dot` exports Graphviz DOT.
"""

from __future__ import annotations


def program_report(session, include_input: bool = False) -> str:
    """A printable report: every unit's source, and for every loop its
    dependence and variable panes."""
    parts: list[str] = []
    bar = "=" * 72
    original_unit = session.current_unit_name
    original_loop = session.current_loop
    for uname in session.units():
        session.select_unit(uname)
        parts.append(bar)
        parts.append(f"UNIT {uname}")
        parts.append(bar)
        parts.append(session.source_pane.render())
        for li in session.loops():
            session.select_loop(li)
            parts.append("")
            parts.append(f"-- loop {li.id} ({li.var}, line {li.line}) "
                         f"{'PARALLEL' if li.loop.parallel else ''}")
            parts.append("DEPENDENCES")
            parts.append(_indent(session.dependence_pane.render()))
            parts.append("VARIABLES")
            parts.append(_indent(session.variable_pane.render()))
    # restore selection
    session.select_unit(original_unit)
    if original_loop is not None:
        for li in session.loops():
            if li.line == original_loop.line:
                session.select_loop(li)
                break
    session._log("program navigation", "printed program report")
    return "\n".join(parts)


def _indent(text: str, pad: str = "  ") -> str:
    return "\n".join(pad + line for line in text.splitlines())


def call_graph_dot(session) -> str:
    """The call graph in Graphviz DOT form (the requested "big picture"
    visual program representation)."""
    cg = session.program.callgraph
    lines = ["digraph callgraph {", "  rankdir=LR;",
             '  node [shape=box, fontname="monospace"];']
    est = None
    try:
        from ..perf import estimate_program
        est = estimate_program(session.program)
    except Exception:
        pass
    for name in session.units():
        label = name
        if est is not None and name in est.units:
            share = est.units[name] / est.total * 100 if est.total else 0
            label = f"{name}\\n{share:.0f}%"
        lines.append(f'  "{name}" [label="{label}"];')
    for name in session.units():
        for callee in sorted(cg.callees(name)):
            lines.append(f'  "{name}" -> "{callee}";')
    lines.append("}")
    session._log("program navigation", "call graph DOT export")
    return "\n".join(lines)


def program_stats(session) -> dict:
    """Size/analysis summary of the session's program as a JSON-able
    dict: units, loops, PARALLEL marks, loop-carried dependence count,
    and how much of the analysis ran degraded.  The fleet embeds this in
    each program record; it is also a cheap one-call overview for
    scripting."""
    from ..fortran import ast
    program = session.program
    n_loops = n_parallel = 0
    for uir in program.units.values():
        for s, _ in ast.walk_stmts(uir.unit.body):
            if isinstance(s, ast.DoLoop):
                n_loops += 1
                if s.parallel:
                    n_parallel += 1
    carried = 0
    original_unit = session.current_unit_name
    for uname in session.units():
        session.select_unit(uname)
        for li in session.loops():
            try:
                deps = session.dependences(li)
            except Exception:
                continue
            carried += sum(1 for d in deps if d.loop_carried and d.active)
    session.select_unit(original_unit)
    health = session.health()
    session._log("access to analysis", "program statistics")
    return {
        "units": len(program.units),
        "loops": n_loops,
        "parallel_loops": n_parallel,
        "carried_dependences": carried,
        "degraded_loops": len(health.degraded_loops),
        "failed_units": len(health.failed_units),
    }


def unknown_symbolics(session, loop=None) -> dict[str, list[str]]:
    """Symbolic terms blocking a loop's dependences, grouped by name.

    Cheng and Pase's suggestion (Section 6): "they want the system to
    query for unknown scalar variable values and use these assertions in
    analysis".  This lists what the system would query for.
    """
    li = session.unit.loops.find(loop) if loop is not None \
        else session.current_loop
    if li is None:
        raise ValueError("select a loop first")
    out: dict[str, list[str]] = {}
    for d in session.dependences(li):
        if not d.loop_carried or not d.active:
            continue
        reason = d.reason
        if "symbolic term" not in reason:
            continue
        names = reason.split(":", 1)[-1]
        for token in names.replace(";", ",").split(","):
            token = token.strip()
            if token and not token.startswith("coupled"):
                out.setdefault(token, []).append(d.describe())
    session._log("access to analysis", f"unknown symbolics of {li.id}")
    return out
