"""The ParaScope Editor session layer: panes, filters, rendering,
scripted user sessions."""

from .filters import DependenceFilter, SourceFilter, VariableFilter
from .panes import DependencePane, LintPane, SourcePane, VariablePane
from .reporting import program_stats
from .session import Event, PedSession

__all__ = [
    "PedSession", "Event", "program_stats",
    "SourceFilter", "DependenceFilter", "VariableFilter",
    "SourcePane", "DependencePane", "VariablePane", "LintPane",
]
