"""The three PED panes as queryable data models (Figure 1).

Each pane exposes ``rows()`` (filtered content), selection state, and a
``render()`` textual form; :mod:`repro.ped.render` composes them into the
full editor window.  Progressive disclosure is driven by the session: the
dependence and variable panes show only the current loop's information.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dependence.model import Dependence, direction_str
from ..fortran import ast
from ..fortran.printer import print_stmt, print_unit
from ..ir.program import UnitIR
from .filters import DependenceFilter, SourceFilter, VariableFilter


@dataclass
class SourceLine:
    ordinal: int
    text: str
    is_loop: bool
    label: int | None
    stmt_uid: int | None
    highlighted: bool = False

    def info(self) -> dict:
        return {"ordinal": self.ordinal, "text": self.text,
                "is_loop": self.is_loop, "label": self.label,
                "line": self.ordinal}


class SourcePane:
    """Pretty-printed unit text with loop markers and ordinal numbers."""

    def __init__(self, uir: UnitIR):
        self.uir = uir
        self.filter: SourceFilter | None = None
        self._lines: list[SourceLine] | None = None
        #: uids of statements to flag with dependence arrows
        self.arrow_uids: set[int] = set()
        #: uids of the current loop's statements (highlighted ordinals)
        self.current_uids: set[int] = set()

    def invalidate(self) -> None:
        self._lines = None

    def lines(self) -> list[SourceLine]:
        if self._lines is None:
            self._lines = self._build()
        return self._lines

    def _build(self) -> list[SourceLine]:
        out: list[SourceLine] = []
        unit = self.uir.unit
        ordinal = [0]

        def emit(text: str, stmt: ast.Stmt | None, is_loop: bool) -> None:
            ordinal[0] += 1
            out.append(SourceLine(
                ordinal=ordinal[0], text=text, is_loop=is_loop,
                label=stmt.label if stmt else None,
                stmt_uid=stmt.uid if stmt else None))

        header = print_unit(unit).splitlines()
        # Rebuild with statement attribution: walk statements and print
        # them one at a time so each text line maps to its statement.
        if unit.kind == "program":
            emit(f"PROGRAM {unit.name}", None, False)
        elif unit.kind == "subroutine":
            params = f"({', '.join(unit.params)})" if unit.params else ""
            emit(f"SUBROUTINE {unit.name}{params}", None, False)
        else:
            rt = unit.result_type or ""
            rt = "DOUBLE PRECISION" if rt == "DOUBLEPRECISION" else rt
            prefix = f"{rt} " if rt else ""
            emit(f"{prefix}FUNCTION {unit.name}"
                 f"({', '.join(unit.params)})", None, False)

        def walk(body: list[ast.Stmt], indent: int) -> None:
            for s in body:
                text_lines = print_stmt(s, indent)
                first = text_lines[0].strip()
                if isinstance(s, (ast.DoLoop, ast.IfBlock)):
                    # header line only; recurse for the body
                    emit(_strip_label_field(text_lines[0]), s,
                         isinstance(s, ast.DoLoop))
                    if isinstance(s, ast.DoLoop):
                        walk(s.body, indent + 1)
                        if s.term_label is None:
                            emit("ENDDO", None, False)
                        elif not _body_has_terminal(s):
                            ordinal[0] += 1
                            out.append(SourceLine(
                                ordinal=ordinal[0], text="CONTINUE",
                                is_loop=False, label=s.term_label,
                                stmt_uid=None))
                    else:
                        walk(s.then_body, indent + 1)
                        for cond, arm in s.elifs:
                            emit(f"ELSE IF ({cond}) THEN", None, False)
                            walk(arm, indent + 1)
                        if s.else_body:
                            emit("ELSE", None, False)
                            walk(s.else_body, indent + 1)
                        emit("ENDIF", None, False)
                else:
                    for tl in text_lines:
                        emit(_strip_label_field(tl), s, False)

        walk(unit.body, 1)
        emit("END", None, False)
        return out

    def visible(self) -> list[SourceLine]:
        lines = self.lines()
        if self.filter is None:
            return lines
        return [ln for ln in lines if self.filter.matches(ln.info())]

    def ordinal_of(self, stmt_uid: int) -> int | None:
        for ln in self.lines():
            if ln.stmt_uid == stmt_uid:
                return ln.ordinal
        return None

    def render(self, width: int = 72) -> str:
        rows = []
        for ln in self.visible():
            marker = "*" if ln.is_loop else " "
            cur = ">" if ln.stmt_uid in self.current_uids else " "
            arrow = "=>" if ln.stmt_uid in self.arrow_uids else "  "
            label = f"{ln.label:<5}" if ln.label is not None else "     "
            rows.append(f"{cur}{marker}{ln.ordinal:>4} {arrow} {label}"
                        f"{ln.text}"[:width + 20])
        return "\n".join(rows)


def _strip_label_field(fixed_line: str) -> str:
    """Drop the fixed-form label columns; the pane prints labels itself."""
    return fixed_line[6:].strip() if len(fixed_line) > 6 else \
        fixed_line.strip()


def _body_has_terminal(s: ast.DoLoop) -> bool:
    from ..fortran.printer import _has_terminal
    return _has_terminal(s.body, s.term_label)


class DependencePane:
    """Tabular dependence list for the current loop."""

    COLUMNS = ("TYPE", "SOURCE", "SINK", "VECTOR", "LEVEL", "MARK",
               "REASON")

    def __init__(self):
        self.dependences: list[Dependence] = []
        self.filter: DependenceFilter | None = None
        self.selection: list[int] = []   # dependence ids
        #: degraded-analysis notes for the current loop (empty = clean)
        self.degraded: list[str] = []

    def set_dependences(self, deps: list[Dependence],
                        degraded: list[str] | None = None) -> None:
        self.dependences = deps
        self.degraded = list(degraded or [])
        self.selection = [i for i in self.selection
                          if any(d.id == i for d in deps)]

    def rows(self) -> list[Dependence]:
        deps = self.dependences
        if self.filter is not None:
            deps = [d for d in deps if self.filter.matches(d)]
        return deps

    def select(self, dep: "Dependence | int") -> None:
        did = dep.id if isinstance(dep, Dependence) else dep
        if did not in self.selection:
            self.selection.append(did)

    def clear_selection(self) -> None:
        self.selection = []

    def selected(self) -> list[Dependence]:
        return [d for d in self.dependences if d.id in self.selection]

    def render(self) -> str:
        rows = self.rows()
        banner = ""
        if self.degraded:
            banner = ("!! DEGRADED ANALYSIS -- dependences assumed "
                      "conservatively\n"
                      + "".join(f"!!   {n}\n" for n in self.degraded))
        if not rows:
            return banner + "(no dependences)" if banner \
                else "(no dependences)"
        data = []
        for d in rows:
            sel = ">" if d.id in self.selection else " "
            lvl = str(d.level) if d.level is not None else "-"
            data.append((sel, str(d.dtype), d.source.text, d.sink.text,
                         direction_str(d.vector), lvl, str(d.mark),
                         d.reason[:40]))
        widths = [1, 6, 20, 20, 10, 5, 8, 40]
        header = " " + "  ".join(
            c.ljust(w) for c, w in zip(self.COLUMNS, widths[1:]))
        lines = ([banner.rstrip("\n")] if banner else []) + [header]
        for row in data:
            lines.append("".join(
                str(c)[:w].ljust(w) + ("  " if i else "")
                for i, (c, w) in enumerate(zip(row, widths))))
        return "\n".join(lines)


class LintPane:
    """Tabular lint findings for the whole program.

    Fed by :meth:`PedSession.lint`; rows are
    :class:`~repro.lint.core.Diagnostic` objects.  Suppressed findings
    (``C$PED LINT DISABLE``) are hidden unless ``show_suppressed`` is
    set; ``severity`` / ``rule`` narrow the view."""

    COLUMNS = ("SEV", "RULE", "WHERE", "LOOP", "MESSAGE")

    def __init__(self):
        self.diagnostics: list = []
        self.show_suppressed = False
        self.severity: str | None = None
        self.rule: str | None = None

    def set_diagnostics(self, diags) -> None:
        self.diagnostics = list(diags)

    def rows(self) -> list:
        rows = self.diagnostics
        if not self.show_suppressed:
            rows = [d for d in rows if not d.suppressed]
        if self.severity is not None:
            rows = [d for d in rows if d.severity == self.severity]
        if self.rule is not None:
            rows = [d for d in rows if d.rule == self.rule.upper()]
        return rows

    def render(self) -> str:
        rows = self.rows()
        if not rows:
            return "(no lint findings)"
        widths = [7, 7, 12, 4, 44]
        lines = [" " + "  ".join(c.ljust(w)
                                 for c, w in zip(self.COLUMNS, widths))]
        for d in rows:
            mark = "s" if d.suppressed else " "
            vals = (d.severity, d.rule, f"{d.unit}:{d.line}",
                    d.loop or "-", d.message)
            lines.append(mark + "  ".join(
                str(v)[:w].ljust(w) for v, w in zip(vals, widths)))
        return "\n".join(lines)


class VariablePane:
    """Variable list for the current loop: name, dim, common block,
    defs/uses outside the loop, shared/private kind, reason."""

    COLUMNS = ("NAME", "DIM", "BLOCK", "DEF<", "USE>", "KIND", "REASON")

    def __init__(self):
        self.rows_: list[dict] = []
        self.filter: VariableFilter | None = None
        self.selection: list[str] = []

    def set_rows(self, rows: list[dict]) -> None:
        self.rows_ = rows

    def rows(self) -> list[dict]:
        rows = self.rows_
        if self.filter is not None:
            rows = [r for r in rows if self.filter.matches(r)]
        return rows

    def select(self, name: str) -> None:
        if name.upper() not in self.selection:
            self.selection.append(name.upper())

    def render(self) -> str:
        rows = self.rows()
        if not rows:
            return "(no variables)"
        widths = [10, 4, 8, 12, 12, 8, 36]
        lines = [" " + "  ".join(c.ljust(w)
                                 for c, w in zip(self.COLUMNS, widths))]
        for r in rows:
            sel = ">" if r["name"] in self.selection else " "
            defs = ",".join(str(x) for x in r["defs"][:3]) or "-"
            uses = ",".join(str(x) for x in r["uses"][:3]) or "-"
            vals = (r["name"], str(r["dim"]) if r["dim"] else "-",
                    r.get("block") or "-", defs, uses, r["kind"],
                    (r.get("reason") or "")[:36])
            lines.append(sel + "  ".join(
                str(v)[:w].ljust(w) for v, w in zip(vals, widths)))
        return "\n".join(lines)
