"""PedSession: the ParaScope Editor as a programmatic session.

The session reproduces the editor's information model (Section 3.1):

* the **book metaphor** -- one window per program with source, dependence
  and variable panes annotating each other;
* **progressive disclosure** -- selecting a loop populates the dependence
  and variable panes with that loop's information;
* **view filtering** -- predicate filters per pane;
* **power steering** -- batch marking/classification dialogs
  (:meth:`mark_dependences_where`, :meth:`classify_variables_where`) and
  transformation application with applicability/safety/profitability
  advice;
* **dependence marking** -- proven/pending from the analyzer,
  accepted/rejected edits persisted across re-analysis;
* **variable classification** -- shared/private edits recorded on the
  loop and honoured by the analyzer;
* **user assertions** (Section 3.3) feeding the dependence tests, with
  breaking-condition suggestions;
* **performance navigation** -- static estimation and interpreter
  profiles ranking loops by payoff.

Every feature logs an event tagged with the Table-2 feature name it
corresponds to, which is how the Table 2 benchmark counts feature usage.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

from ..analysis.arraykills import array_kills
from ..analysis.defuse import compute_defuse
from ..assertions import AssertionSet, derive_breaking_conditions
from ..dependence.ddg import DependenceAnalyzer, LoopDependences, \
    degraded_loop_dependences
from ..dependence.model import Dependence, Mark
from ..dependence.tests import pair_cache_info
from ..fortran import ParseError, ast, parse_program
from ..interp import Interpreter, compile_cache_info, make_interpreter
from ..interp.compile import program_fingerprint
from ..interproc import InterproceduralOracle, SummaryBuilder, check_program
from ..ir.loops import LoopInfo
from ..ir.program import AnalyzedProgram
from ..perf import counters as perf_counters
from ..perf import estimate_program, navigation_report
from ..store import MISS, declare as _declare_ns, get_store
from ..transform import TContext, get as get_transform, names as \
    transform_names
from ..transform.base import Advice, DirtyScope, TransformError, \
    TransformResult
from ..transform.transaction import ProgramSnapshot
from .filters import DependenceFilter, SourceFilter, VariableFilter
from .panes import DependencePane, LintPane, SourcePane, VariablePane

#: interprocedural summary dicts keyed by whole-program fingerprint;
#: summaries are uid-free and picklable, so the disk tier applies
_SUMMARY_NS = "summary"
_declare_ns(_SUMMARY_NS, mem_entries=128, disk=True)

#: full per-loop dependence analyses as pickle bytes.  Keys are
#: uid-free (program fingerprint + loop ordinal + analysis inputs);
#: the artifact records the nest's statement uids at store time so
#: adoption can remap every pickled ``Reference.stmt_uid`` onto the
#: adopting session's live AST positionally -- see
#: :meth:`PedSession._adopt_loopdeps`.
_LOOPDEPS_NS = "loopdeps"
_declare_ns(_LOOPDEPS_NS, mem_entries=512, disk=True)


@dataclass(frozen=True)
class _DepSig:
    var: str
    dtype: str
    source_uid: int
    sink_uid: int
    source_text: str
    sink_text: str
    vector: tuple[str, ...]

    @staticmethod
    def of(d: Dependence) -> "_DepSig":
        return _DepSig(d.var, str(d.dtype), d.source.stmt_uid,
                       d.sink.stmt_uid, d.source.text, d.sink.text,
                       d.vector)


@dataclass(frozen=True)
class _LooseSig:
    """uid-free mark signature.

    ``_DepSig`` pins a mark to statement uids, which a re-parse
    regenerates; this looser (variable, type, endpoint text, vector)
    key lets accepted/rejected marks survive an :meth:`PedSession.edit`.
    """

    var: str
    dtype: str
    source_text: str
    sink_text: str
    vector: tuple[str, ...]

    @staticmethod
    def of(d: Dependence) -> "_LooseSig":
        return _LooseSig(d.var, str(d.dtype), d.source.text, d.sink.text,
                         d.vector)


@dataclass
class Event:
    feature: str
    detail: str


@dataclass
class JournalEntry:
    """One applied transformation on the undo/redo journal."""

    name: str
    description: str
    pre: ProgramSnapshot
    post: ProgramSnapshot
    dirty: DirtyScope | None


@dataclass
class HealthReport:
    """What has gone wrong (and been survived) in this session."""

    #: loops whose cached analysis ran degraded (conservative fallbacks)
    degraded_loops: list[dict]
    #: unit/loop analysis failures recorded by :meth:`analyze_all`
    failed_units: list[dict]
    transform_failures: list[dict]
    guidance_failures: list[dict]
    edit_failures: list[dict]
    undo_depth: int = 0
    redo_depth: int = 0
    #: dependence pair-test memo occupancy + hit/miss counters
    pair_cache: dict = field(default_factory=dict)
    #: execution-engine compile cache occupancy + hit/relink/miss counters
    compile_cache: dict = field(default_factory=dict)
    #: fork-join DOALL runtime activity (loops run, chunks, fallbacks,
    #: persistent pool reuses) from the engine counters
    parallel_runtime: dict = field(default_factory=dict)
    #: static lint summary (diagnostics, suppressed, by_severity,
    #: by_rule) from the session's incremental linter
    lint: dict = field(default_factory=dict)
    #: vector execution tier: engine counters (vec_loops, vec_fallbacks,
    #: vec_elements) plus the per-loop lowering decision -- why each loop
    #: did or did not lower to bulk numpy execution
    exec: dict = field(default_factory=dict)
    #: parallel-worlds explorer activity (worlds proposed, raced,
    #: accepted/rejected by the byte-identity gate, adopted winners)
    worlds: dict = field(default_factory=dict)
    #: tiered cross-session artifact store: per-namespace, per-tier
    #: hit/miss/evict/promote counters (memory + disk)
    artifact_store: dict = field(default_factory=dict)

    def __getitem__(self, key: str):
        """Dict-style access: ``session.health()["lint"]``."""
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None

    @property
    def ok(self) -> bool:
        return not (self.degraded_loops or self.failed_units
                    or self.transform_failures or self.guidance_failures
                    or self.edit_failures)

    def describe(self) -> str:
        if self.ok:
            return (f"session healthy (journal: {self.undo_depth} undo, "
                    f"{self.redo_depth} redo)")
        lines = ["session degraded:"]
        for d in self.degraded_loops:
            lines.append(f"  loop {d['unit']}/{d['loop']}: "
                         + "; ".join(d["notes"]))
        for d in self.failed_units:
            lines.append(f"  unit {d['unit']}/{d['loop']}: {d['reason']}")
        for d in self.transform_failures:
            lines.append(f"  transform {d['transform']}: {d['error']}")
        for d in self.guidance_failures:
            lines.append(f"  guidance {d['transform']}: {d['error']}")
        for d in self.edit_failures:
            lines.append(f"  edit: {d['error']}")
        lines.append(f"  journal: {self.undo_depth} undo, "
                     f"{self.redo_depth} redo")
        return "\n".join(lines)


class PedSession:
    """An interactive editing/parallelization session over one program."""

    def __init__(self, source: "str | AnalyzedProgram",
                 interprocedural: bool = True,
                 include_input_deps: bool = False,
                 journal_limit: int = 32):
        # Accepts either program text or an already-analyzed program;
        # the latter is how fork() hands a materialized snapshot to a
        # child session without a re-parse.
        if isinstance(source, AnalyzedProgram):
            self.program = source
        else:
            self.program = AnalyzedProgram.from_source(source)
        self.interprocedural = interprocedural
        self.include_input_deps = include_input_deps
        self.assertions = AssertionSet()
        self.events: list[Event] = []
        self._marks: dict[_DepSig, tuple[Mark, str]] = {}
        self._loose_marks: dict[_LooseSig, tuple[Mark, str]] = {}
        self._var_reasons: dict[tuple[str, int, str], str] = {}
        self._summaries = None
        self._analyzers: dict[str, DependenceAnalyzer] = {}
        self._deps_cache: dict[tuple[str, int], LoopDependences] = {}
        #: structured failure records surfaced through :meth:`health`
        self.diagnostics: list[dict] = []
        #: (unit, loop id) -> reason for analyses that fell back
        self._degraded: dict[tuple[str, str], str] = {}
        #: bounded undo/redo journal of applied transformations
        self.journal_limit = journal_limit
        self._undo: list[JournalEntry] = []
        self._redo: list[JournalEntry] = []
        names = self.program.unit_names()
        main = self.program.main_unit
        self.current_unit_name = main.unit.name if main else names[0]
        self.current_loop: LoopInfo | None = None
        self.source_pane = SourcePane(self.unit)
        self.dependence_pane = DependencePane()
        self.variable_pane = VariablePane()
        self.lint_pane = LintPane()
        self._linter = None   # lazy SessionLinter

    # -- plumbing ---------------------------------------------------------------

    def _log(self, feature: str, detail: str = "") -> None:
        self.events.append(Event(feature, detail))

    @property
    def unit(self):
        return self.program.units[self.current_unit_name]

    def _oracle(self):
        if not self.interprocedural:
            from ..analysis.defuse import SideEffectOracle
            return SideEffectOracle()
        if self._summaries is None:
            # Interprocedural summaries are uid-free, so structurally
            # identical programs -- every session opened on the same
            # corpus member -- share one summary artifact through the
            # tiered store.
            fp = ("summaries", program_fingerprint(self.program))
            shared = get_store().get(_SUMMARY_NS, fp)
            if shared is not MISS:
                # A build's symtab enrichment (COMMON propagation) is a
                # side effect on *this* program the shared dict cannot
                # carry; replay it before adopting the summaries.
                SummaryBuilder(self.program).propagate_common_symbols()
                self._summaries = dict(shared)
            else:
                self._summaries = SummaryBuilder(self.program).build()
                get_store().put(_SUMMARY_NS, fp, dict(self._summaries))
        return InterproceduralOracle(self._summaries)

    def analyzer(self, unit_name: str | None = None) -> DependenceAnalyzer:
        name = (unit_name or self.current_unit_name).upper()
        if name not in self._analyzers:
            from ..interproc.symbolic import global_relations
            env = dict(global_relations(self.program)) \
                if self.interprocedural else {}
            env.update(self.assertions.relations_env())
            self._analyzers[name] = DependenceAnalyzer(
                self.program.units[name],
                oracle=self._oracle(),
                facts=self.assertions.to_facts(),
                include_input=self.include_input_deps,
                extra_env=env)
        return self._analyzers[name]

    def _invalidate(self, scope: DirtyScope | None = None) -> None:
        """Drop derived analyses after an AST mutation.

        Without a scope (the conservative path: editing, new program
        units) everything derived is discarded.  With a
        :class:`DirtyScope` the eviction is surgical: only the dirty
        unit's artifacts, the cached loop dependences whose loop chain
        intersects the dirty loop set, and -- transitively up the call
        graph -- the summaries and analyzers of units whose
        interprocedural view of the dirty unit may have changed.
        """
        if scope is None:
            perf_counters.bump("invalidations")
            perf_counters.bump("deps_evicted", len(self._deps_cache))
            self.program.invalidate()
            self._summaries = None
            self._analyzers.clear()
            self._deps_cache.clear()
        else:
            self._invalidate_scoped(scope)
        self._rebind_panes()

    def _invalidate_scoped(self, scope: DirtyScope) -> None:
        perf_counters.bump("scoped_invalidations")
        dirty_unit = scope.unit.upper()
        self.program.invalidate(dirty_unit)
        # Units whose interprocedural summaries may observe the change:
        # the dirty unit plus its transitive callers.
        dirty_units = {dirty_unit}
        cg = self.program.callgraph
        frontier = [dirty_unit]
        while frontier:
            name = frontier.pop()
            for caller in cg.callers(name):
                if caller not in dirty_units:
                    dirty_units.add(caller)
                    frontier.append(caller)
        self._refresh_summaries(dirty_units)
        for name in dirty_units:
            if self._analyzers.pop(name, None) is not None:
                perf_counters.bump("analyzers_evicted")
        perf_counters.bump(
            "analyzers_retained", len(self._analyzers))
        evict = []
        for key in self._deps_cache:
            unit_name, loop_uid = key
            if scope.covers(unit_name, loop_uid):
                evict.append(key)
            elif unit_name in dirty_units and unit_name != dirty_unit:
                # a caller's dependences may embed the dirty unit's
                # side-effect summary: conservatively whole-unit
                evict.append(key)
        for key in evict:
            del self._deps_cache[key]
        perf_counters.bump("deps_evicted", len(evict))
        perf_counters.bump("deps_retained", len(self._deps_cache))

    def _refresh_summaries(self, dirty_units: set[str]) -> None:
        """Rebuild interprocedural summaries for the dirty units only,
        reusing every untouched unit's summary object as-is."""
        if self._summaries is None:
            return
        fp = ("summaries", program_fingerprint(self.program))
        shared = get_store().get(_SUMMARY_NS, fp)
        if shared is not MISS:
            # Another session already summarized this exact program
            # state (e.g. the same transform applied by an earlier
            # tenant).  Adopt, replaying the symtab side effect just
            # like the cold path in :meth:`_oracle`.
            SummaryBuilder(self.program).propagate_common_symbols()
            self._summaries = dict(shared)
            return
        retained = {name: s for name, s in self._summaries.items()
                    if name not in dirty_units}
        perf_counters.bump("summaries_retained", len(retained))
        perf_counters.bump(
            "summaries_rebuilt", len(self._summaries) - len(retained))
        self._summaries = SummaryBuilder(
            self.program, reuse=retained).build()
        get_store().put(_SUMMARY_NS, fp, dict(self._summaries))

    def _rebind_panes(self) -> None:
        self.source_pane = SourcePane(self.unit)
        if self.current_loop is not None:
            # Relocate the current loop by line if it survived.
            line = self.current_loop.line
            self.current_loop = None
            for li in self.unit.loops.all_loops():
                if li.line == line:
                    self.current_loop = li
                    break
            if self.current_loop is not None:
                self.select_loop(self.current_loop, _log=False)
            else:
                self.dependence_pane.set_dependences([])
                self.variable_pane.set_rows([])

    # -- navigation ---------------------------------------------------------------

    def units(self) -> list[str]:
        return self.program.unit_names()

    def select_unit(self, name: str) -> None:
        name = name.upper()
        if name not in self.program.units:
            raise KeyError(name)
        self.current_unit_name = name
        self.current_loop = None
        self.source_pane = SourcePane(self.unit)
        self.dependence_pane.set_dependences([])
        self.variable_pane.set_rows([])
        self._log("program navigation", f"select unit {name}")

    def loops(self, unit: str | None = None) -> list[LoopInfo]:
        uir = self.program.units[(unit or self.current_unit_name).upper()]
        return uir.loops.all_loops()

    def select_loop(self, loop: "LoopInfo | str | ast.DoLoop",
                    _log: bool = True) -> LoopDependences:
        li = self.unit.loops.find(loop)
        self.current_loop = li
        ld = self._loop_deps(li)
        deps = self._with_marks(ld.dependences)
        self.dependence_pane.set_dependences(deps, degraded=ld.degraded)
        self.variable_pane.set_rows(self._variable_rows(li, ld))
        self.source_pane.current_uids = {
            s.uid for s in li.statements()} | {li.loop.uid}
        self.source_pane.arrow_uids = set()
        if _log:
            self._log("program navigation",
                      f"select loop {li.id} line {li.line}")
        return ld

    def _loopdeps_key(self, li: LoopInfo) -> tuple | None:
        """Artifact-store key for one loop's analysis (None: unkeyable).

        Uid-free: the program fingerprint pins structure, the loop's
        source-order ordinal pins which loop, and every analysis input
        that is *not* AST structure appears explicitly -- privatization
        state is excluded from structural fingerprints (``interp
        .compile._FP_SKIP``) yet feeds the analysis, and assertions
        change what the dependence tests can prove.  Privatization is
        recorded by statement *position* within the nest, matching the
        positional uid remap :meth:`_loop_deps` performs on adoption.
        """
        try:
            nodes = [li.loop, *li.statements()]
            privates = tuple(
                (i, tuple(sorted(n.private_vars)))
                for i, n in enumerate(nodes)
                if isinstance(n, ast.DoLoop) and n.private_vars)
            return (
                program_fingerprint(self.program),
                self.current_unit_name,
                li.ordinal,
                privates,
                tuple(a.text for a in self.assertions.assertions),
                self.include_input_deps,
                self.interprocedural,
            )
        except Exception:
            return None

    def _adopt_loopdeps(self, blob: bytes,
                        li: LoopInfo) -> LoopDependences:
        """Rebind a pickled analysis onto this session's live AST.

        The artifact records the uid of every nest statement at store
        time, in AST order.  The adopting session's nest has identical
        structure (the store key pins the program fingerprint and loop
        ordinal) but its own uids, so each ``Reference.stmt_uid`` is
        remapped positionally; a reference whose uid falls outside the
        recorded nest raises KeyError and the caller re-analyzes.
        """
        from dataclasses import replace as _replace
        from ..dependence.model import fresh_dep_id
        stored_uids, ld = pickle.loads(blob)
        live_uids = tuple(n.uid for n in [li.loop, *li.statements()])
        if len(stored_uids) != len(live_uids):
            raise ValueError("uid inventory length mismatch")
        if stored_uids != live_uids:
            remap = dict(zip(stored_uids, live_uids))
            for d in ld.dependences:
                d.source = _replace(d.source,
                                    stmt_uid=remap[d.source.stmt_uid])
                d.sink = _replace(d.sink,
                                  stmt_uid=remap[d.sink.stmt_uid])
        for d in ld.dependences:
            d.id = fresh_dep_id()   # pane selection ids stay unique
        ld.loop = li                # panes/transforms need the live nest
        return ld

    def _loop_deps(self, li: LoopInfo) -> LoopDependences:
        key = (self.current_unit_name, li.loop.uid)
        if key in self._deps_cache:
            return self._deps_cache[key]
        skey = self._loopdeps_key(li)
        blob = get_store().get(_LOOPDEPS_NS, skey) if skey else MISS
        if blob is not MISS:
            try:
                ld = self._adopt_loopdeps(blob, li)
                self._deps_cache[key] = ld
                return ld
            except Exception:
                pass
        ld = self.analyzer().analyze_loop(li)
        if skey is not None and not ld.degraded:
            # store before session-local marks mutate the dependence
            # objects in place; degraded results (budget/worker notes)
            # stay private -- they are not reproducible facts
            try:
                uids = tuple(
                    n.uid for n in [li.loop, *li.statements()])
                ld.loop = None   # adopters rebind; don't pickle the nest
                blob = pickle.dumps((uids, ld),
                                    pickle.HIGHEST_PROTOCOL)
                get_store().put(_LOOPDEPS_NS, skey, blob)
            except Exception:
                pass
            finally:
                ld.loop = li
        self._deps_cache[key] = ld
        return ld

    def analyze_all(self, parallel: bool | None = None
                    ) -> dict[tuple[str, int], LoopDependences]:
        """Analyze every loop of every unit, filling the dependence cache.

        Per-loop dependence construction fans across the analysis pool
        (:mod:`repro.perf.pool`); results merge in deterministic
        (unit, source) order so parallel and serial runs are identical.
        Already-cached loops are skipped -- after a scoped invalidation
        only the dirty loops are re-analyzed.

        Failures are isolated, never fatal: a unit whose shared analyses
        cannot be built, or a loop whose pool worker dies, degrades to a
        conservative "dependence assumed" result recorded in
        :meth:`health` -- the rest of the program still analyzes.
        """
        from ..perf import pool
        jobs: list[tuple[tuple[str, int],
                         DependenceAnalyzer, LoopInfo]] = []
        for name in self.program.unit_names():
            uir = self.program.units[name]
            try:
                an = self.analyzer(name)
                # Materialize the analyzer's shared lazies (def-use
                # chains, constant map) before fanning out: workers then
                # only read.
                an.defuse
                an.constmap
                loops = uir.loops.all_loops()
            except Exception as e:
                reason = (f"unit analysis failed: "
                          f"{type(e).__name__}: {e}")
                self._degraded[(name, "*")] = reason
                self._log("access to analysis", f"{name}: {reason}")
                try:
                    loops = uir.loops.all_loops()
                except Exception:
                    loops = []
                for li in loops:
                    key = (name, li.loop.uid)
                    if key not in self._deps_cache:
                        self._deps_cache[key] = \
                            degraded_loop_dependences(li, reason)
                        perf_counters.bump("degraded_loops")
                continue
            for li in loops:
                key = (name, li.loop.uid)
                if key not in self._deps_cache:
                    jobs.append((key, an, li))
        results = pool.run_tasks(
            [lambda an=an, li=li: an.analyze_loop(li)
             for _, an, li in jobs],
            parallel=parallel,
            contexts=[(key[0], li.id) for key, _, li in jobs],
            on_error="return")
        for (key, _, li), ld in zip(jobs, results):
            if isinstance(ld, pool.TaskFailure):
                reason = (f"worker failed: "
                          f"{type(ld.error).__name__}: {ld.error}")
                self._degraded[(key[0], li.id)] = reason
                self._log("access to analysis",
                          f"{key[0]}/{li.id}: {reason}")
                ld = degraded_loop_dependences(li, reason)
                perf_counters.bump("degraded_loops")
            self._deps_cache[key] = ld
        self._log("access to analysis",
                  f"analyze all: {len(jobs)} loops analyzed, "
                  f"{len(self._deps_cache) - len(jobs)} cached")
        return dict(self._deps_cache)

    def hot_loops(self, top: int = 10):
        """Static performance-estimation ranking (navigation assistance)."""
        self._log("program navigation", "performance estimation ranking")
        est = estimate_program(self.program)
        return est.ranked_loops()[:top]

    def navigation_report(self, top: int = 10) -> str:
        self._log("program navigation", "navigation report")
        return navigation_report(self.program, top)

    def measured_navigation_report(self, inputs=None, workers: int = 4,
                                   schedule: str = "static",
                                   top: int = 10) -> str:
        """Navigation ranking with measured parallel speedups: runs the
        program's PARALLEL DO loops on the DOALL worker pool (1 worker
        vs. ``workers``) and reports wall-clock speedup next to the
        static cost-model prediction."""
        from ..perf.estimate import measure_parallel_payoff
        measured = measure_parallel_payoff(
            self.program, inputs=inputs, workers=workers,
            schedule=schedule)
        self._log("program navigation",
                  f"measured parallel payoff ({len(measured)} loops, "
                  f"{workers} workers)")
        return navigation_report(self.program, top, measured=measured)

    def set_parallel_overhead(self, value: float | None) -> None:
        """Calibrate the fork-join overhead the virtual clock charges a
        PARALLEL DO (``None`` restores the environment/default value).
        Affects speedup simulation and guidance for this process."""
        from ..interp import set_parallel_overhead
        set_parallel_overhead(value)
        self._log("program navigation",
                  f"parallel overhead {'reset' if value is None else value}")

    def profile(self, inputs=None, max_steps: int = 5_000_000,
                engine: str | None = None):
        """Dynamic loop-level profile from the interpreter (the
        closure-compiled engine by default; ``engine="tree"`` selects the
        reference tree-walker)."""
        interp = make_interpreter(
            self.program, inputs=inputs, max_steps=max_steps,
            assertion_checker=self.assertions.checker(), engine=engine)
        interp.run()
        self._log("program navigation", "dynamic profile")
        return interp.profile

    def call_graph_text(self) -> str:
        cg = self.program.callgraph
        lines = []
        for name in self.program.unit_names():
            callees = sorted(cg.callees(name))
            lines.append(f"{name} -> {', '.join(callees) if callees else '-'}")
        self._log("program navigation", "call graph view")
        return "\n".join(lines)

    def find_references(self, var: str) -> list[tuple[int, str]]:
        """(line, text) of statements referencing a variable (dependence
        navigation: visiting endpoints without scrolling)."""
        var = var.upper()
        out = []
        for s, _ in ast.walk_stmts(self.unit.unit.body):
            names = set()
            for e in s.exprs():
                names |= ast.variables_in(e)
            if isinstance(s, ast.Assign):
                names |= ast.variables_in(s.target)
            if var in names:
                from ..fortran.printer import print_stmt
                out.append((s.line, print_stmt(s, 0)[0].strip()))
        self._log("dependence navigation", f"find references to {var}")
        return out

    # -- analysis access --------------------------------------------------------

    def dependences(self, loop=None,
                    filter: DependenceFilter | None = None
                    ) -> list[Dependence]:
        li = self.unit.loops.find(loop) if loop is not None \
            else self.current_loop
        if li is None:
            raise ValueError("select a loop first")
        deps = self._with_marks(self._loop_deps(li).dependences)
        if filter is not None:
            deps = [d for d in deps if filter.matches(d)]
        self._log("dependence navigation", f"list dependences of {li.id}")
        return deps

    def select_dependence(self, dep: Dependence) -> None:
        self.dependence_pane.select(dep)
        self.source_pane.arrow_uids |= {dep.source.stmt_uid,
                                        dep.sink.stmt_uid}
        self._log("dependence navigation",
                  f"select dependence {dep.describe()}")

    def sections_summary(self, loop=None) -> str:
        """Array sections read/written by the current loop (the display
        three workshop users asked for)."""
        li = self.unit.loops.find(loop) if loop is not None \
            else self.current_loop
        if li is None:
            raise ValueError("select a loop first")
        self._log("access to analysis", f"array sections of {li.id}")
        # Every symbol is made a formal of the shell unit so the summary
        # machinery reports sections for all of them (its usual job is to
        # report only caller-visible effects).
        all_names = tuple(sorted(self.unit.symtab.symbols))
        shell = ast.ProgramUnit(kind="subroutine", name="SECTIONS",
                                params=all_names, body=[li.loop])
        prog = ast.Program(units=[shell])
        # reuse the summary machinery on a synthetic unit
        from ..interproc.summary import SummaryBuilder as SB
        wrapped = AnalyzedProgram.__new__(AnalyzedProgram)
        wrapped.ast = prog
        from ..ir.program import UnitIR
        wrapped.units = {"SECTIONS": UnitIR(unit=shell,
                                            symtab=self.unit.symtab)}
        wrapped._callgraph = None
        summ = SB(wrapped).build()["SECTIONS"]
        lines = []
        for kind, secs in (("reads", summ.ref_sections),
                           ("writes", summ.mod_sections)):
            for name in sorted(secs):
                lines.append(f"{kind:<7} {secs[name].describe()}")
        return "\n".join(lines) or "(no array accesses)"

    def symbolic_info(self, loop=None) -> dict:
        """Constants, symbolic relations, privatizable variables and
        reduction candidates at a loop (access-to-analysis view)."""
        li = self.unit.loops.find(loop) if loop is not None \
            else self.current_loop
        if li is None:
            raise ValueError("select a loop first")
        an = self.analyzer()
        env = an._env_at(li)
        ld = self._loop_deps(li)
        self._log("access to analysis", f"symbolic info of {li.id}")
        return {
            "environment": {k: str(v) for k, v in env.items()},
            "privatizable": sorted(ld.privatizable),
            "reductions": sorted(ld.reductions),
        }

    def array_kill_candidates(self, loop=None):
        li = self.unit.loops.find(loop) if loop is not None \
            else self.current_loop
        an = self.analyzer()
        env = an._env_at(li)
        facts = an._facts_with_ranges(env)
        cb = an.oracle.call_sections_for(self.unit.symtab) \
            if hasattr(an.oracle, "call_sections_for") else None
        self._log("access to analysis", f"array kill analysis of {li.id}")
        return array_kills(li.loop, self.unit.symtab, an.oracle, env,
                           call_sections=cb, facts=facts)

    # -- marks and classification ---------------------------------------------------

    def _with_marks(self, deps: list[Dependence]) -> list[Dependence]:
        for d in deps:
            sig = _DepSig.of(d)
            if sig in self._marks:
                d.mark, d.reason = self._marks[sig]
                continue
            # uid-free fallback: a re-parse regenerates statement uids,
            # but the loose (var, type, text, vector) signature survives
            loose = self._loose_marks.get(_LooseSig.of(d))
            if loose is not None:
                mark, reason = loose
                if mark is Mark.REJECTED and d.mark is Mark.PROVEN:
                    continue  # the analyzer now proves it: keep proven
                d.mark, d.reason = mark, reason
                self._marks[sig] = (mark, reason)
        return deps

    def mark_dependence(self, dep: Dependence, mark: "Mark | str",
                        reason: str = "") -> None:
        if isinstance(mark, str):
            mark = Mark(mark.lower())
        if dep.mark is Mark.PROVEN and mark is Mark.REJECTED:
            # The paper's discipline: only pending deps are user-editable.
            raise ValueError("cannot reject a proven dependence")
        dep.mark = mark
        dep.reason = reason or dep.reason
        self._marks[_DepSig.of(dep)] = (mark, dep.reason)
        self._loose_marks[_LooseSig.of(dep)] = (mark, dep.reason)
        feature = ("dependence deletion" if mark is Mark.REJECTED
                   else "dependence marking")
        self._log(feature, f"{mark} {dep.var} {dep.describe()}")

    def mark_dependences_where(self, filter: DependenceFilter,
                               mark: "Mark | str", reason: str = "") -> int:
        """The Mark Dependences dialog: classify a whole predicate-matched
        set in one step (power steering)."""
        if self.current_loop is None:
            raise ValueError("select a loop first")
        if isinstance(mark, str):
            mark = Mark(mark.lower())
        n = 0
        for d in self.dependence_pane.dependences:
            if d.mark is Mark.PROVEN:
                continue
            if filter.matches(d):
                self.mark_dependence(d, mark, reason)
                n += 1
        return n

    def classify_variable(self, name: str, kind: str, loop=None,
                          reason: str = "") -> None:
        """Edit a variable's shared/private classification.

        An edit that actually changes the classification is journaled
        like a transformation: :meth:`undo` restores the previous
        PRIVATE set (worlds adoption relies on this to be fully
        revertible)."""
        li = self.unit.loops.find(loop) if loop is not None \
            else self.current_loop
        if li is None:
            raise ValueError("select a loop first")
        name = name.upper()
        if kind not in ("private", "shared"):
            raise ValueError("kind must be 'private' or 'shared'")
        changes = (name not in li.loop.private_vars) \
            if kind == "private" else (name in li.loop.private_vars)
        pre = ProgramSnapshot.capture(self.program, [self.unit]) \
            if changes else None
        if kind == "private":
            li.loop.private_vars.add(name)
        else:
            li.loop.private_vars.discard(name)
        self._var_reasons[(self.current_unit_name, li.loop.uid,
                           name)] = reason
        self._log("variable classification", f"{name} -> {kind}")
        self._deps_cache.pop((self.current_unit_name, li.loop.uid), None)
        if changes:
            post = ProgramSnapshot.capture(self.program, [self.unit])
            self._undo.append(JournalEntry(
                name="classify_variable",
                description=f"{name} -> {kind} on {li.id}",
                pre=pre, post=post, dirty=None))
            del self._undo[:-self.journal_limit]
            self._redo.clear()
        if self.current_loop is li:
            self.select_loop(li, _log=False)

    def classify_variables_where(self, filter: VariableFilter, kind: str,
                                 reason: str = "") -> int:
        """The Classify Variables dialog (power steering)."""
        n = 0
        for row in list(self.variable_pane.rows()):
            if filter.matches(row):
                self.classify_variable(row["name"], kind, reason=reason)
                n += 1
        return n

    def _variable_rows(self, li: LoopInfo, ld: LoopDependences
                       ) -> list[dict]:
        st = self.unit.symtab
        du = compute_defuse(self.unit.cfg, st, self.analyzer().oracle)
        loop_uids = {s.uid for s in li.statements()} | {li.loop.uid}
        names: set[str] = set()
        from ..analysis.defuse import accesses
        # the loop header's bound/step variables belong in the pane too
        for s in [li.loop] + li.statements():
            for a in accesses(s, st, self.analyzer().oracle):
                names.add(a.name)
        rows = []
        for name in sorted(names):
            sym = st.get(name)
            if sym is None or name == li.loop.var:
                continue
            defs_outside = sorted({
                self.unit.cfg.stmts[u].line
                for u in self.unit.cfg.stmts
                if u not in loop_uids and name in du.defs.get(u, ())})
            uses_outside = sorted({
                self.unit.cfg.stmts[u].line
                for u in self.unit.cfg.stmts
                if u not in loop_uids and name in du.uses.get(u, ())})
            if name in li.loop.private_vars:
                kind = "private"
            elif name in ld.privatizable:
                kind = "private"
            else:
                kind = "shared"
            rows.append({
                "name": name, "dim": len(sym.dims),
                "block": sym.common_block,
                "defs": defs_outside, "uses": uses_outside,
                "kind": kind,
                "reason": self._var_reasons.get(
                    (self.current_unit_name, li.loop.uid, name), ""),
            })
        return rows

    # -- view filtering -----------------------------------------------------------

    def set_source_filter(self, f: SourceFilter | None) -> None:
        self.source_pane.filter = f
        self._log("view filtering",
                  f"source: {f.description if f else 'cleared'}")

    def set_dependence_filter(self, f: DependenceFilter | None) -> None:
        self.dependence_pane.filter = f
        self._log("view filtering",
                  f"dependence: {f.description if f else 'cleared'}")

    def set_variable_filter(self, f: VariableFilter | None) -> None:
        self.variable_pane.filter = f
        self._log("view filtering",
                  f"variable: {f.description if f else 'cleared'}")

    # -- assertions ----------------------------------------------------------------

    def assert_fact(self, text: str):
        """Add a user assertion; dependence analysis is re-run under it."""
        a = self.assertions.add(text)
        self._analyzers.clear()
        self._deps_cache.clear()
        self._log("user assertion", text)
        if self.current_loop is not None:
            self.select_loop(self.current_loop, _log=False)
        return a

    def breaking_conditions(self, dep: Dependence, loop=None):
        """Suggest assertions that would eliminate a dependence."""
        li = self.unit.loops.find(loop) if loop is not None \
            else self.current_loop
        if li is None:
            raise ValueError("select a loop first")
        self._log("access to analysis",
                  f"breaking conditions for {dep.describe()}")
        return derive_breaking_conditions(self.analyzer(), li, dep)

    # -- transformations -------------------------------------------------------------

    def transformations(self) -> list[str]:
        return transform_names()

    def advice(self, name: str, loop=None, **params):
        t = get_transform(name)
        li = None
        if loop is not None:
            li = self.unit.loops.find(loop)
        elif t.needs_loop:
            li = self.current_loop
        params.setdefault("program", self.program)
        ctx = TContext(uir=self.unit, analyzer=self.analyzer(), loop=li,
                       params=params,
                       _deps=self._loop_deps(li) if li else None)
        return t.check(ctx)

    def apply(self, name: str, loop=None, **params):
        """Apply a transformation under power steering.

        A transformation that crashes mid-rewrite is rolled back by the
        transaction layer (:mod:`repro.transform.transaction`): the
        source re-renders byte-identically, every cached analysis stays
        valid, and the failure is recorded in :attr:`diagnostics` /
        :meth:`health` instead of raising.  Successful applies are
        journaled for :meth:`undo`/:meth:`redo`.
        """
        t = get_transform(name)
        li = None
        if loop is not None:
            li = self.unit.loops.find(loop)
        elif t.needs_loop:
            li = self.current_loop
        params.setdefault("program", self.program)
        ctx = TContext(uir=self.unit, analyzer=self.analyzer(), loop=li,
                       params=params,
                       _deps=self._loop_deps(li) if li else None)
        wide = t.category == "Interprocedural"
        pre = ProgramSnapshot.capture_program(self.program) if wide \
            else ProgramSnapshot.capture(self.program, [self.unit])
        try:
            result = t.apply(ctx)
        except TransformError as e:
            self.diagnostics.append({
                "kind": "transform", "transform": name, "error": str(e),
                "rolled_back": getattr(e, "rolled_back", False)})
            self._log("transformation", f"{name}: failed ({e})")
            # the transaction restored a uid-identical AST, so cached
            # analyses are still valid: re-render the panes, keep caches
            self._rebind_panes()
            return TransformResult(advice=Advice.no(str(e)),
                                   applied=False, error=str(e))
        self._log("transformation",
                  f"{name}: {'applied' if result.applied else 'refused'} "
                  f"({result.advice.explain()})")
        if result.applied:
            if result.new_units:
                for nu in result.new_units:
                    self.program.ast.units.append(nu)
                self.program.__init__(self.program.ast)  # re-resolve
                self._invalidate()
            else:
                self._invalidate(result.dirty)
            post = ProgramSnapshot.capture_program(self.program) \
                if (wide or result.new_units) \
                else ProgramSnapshot.capture(self.program, [self.unit])
            self._undo.append(JournalEntry(
                name=name, description=result.description or name,
                pre=pre, post=post, dirty=result.dirty))
            del self._undo[:-self.journal_limit]
            self._redo.clear()
        return result

    # -- undo/redo journal ------------------------------------------------------

    def undo(self) -> bool:
        """Revert the most recent applied transformation.

        Restores the pre-apply snapshot (uids intact) and re-invalidates
        exactly the transformation's dirty scope.  Returns False when
        the journal is empty.
        """
        if not self._undo:
            return False
        entry = self._undo.pop()
        changed = entry.pre.restore(self.program)
        self._redo.append(entry)
        if changed or entry.dirty is None:
            self._invalidate()
        else:
            self._invalidate(entry.dirty)
            self._prune_stale_deps()
        self._log("transformation", f"undo {entry.name}")
        return True

    def redo(self) -> bool:
        """Re-apply the most recently undone transformation."""
        if not self._redo:
            return False
        entry = self._redo.pop()
        changed = entry.post.restore(self.program)
        self._undo.append(entry)
        if changed or entry.dirty is None:
            self._invalidate()
        else:
            self._invalidate(entry.dirty)
            self._prune_stale_deps()
        self._log("transformation", f"redo {entry.name}")
        return True

    def _prune_stale_deps(self) -> None:
        """Drop cached dependences for loops that no longer exist.

        A transformation may create loops (strip mining, distribution)
        whose fresh uids are outside the pre-capture dirty scope; after
        a snapshot restore those cache entries refer to loops absent
        from the restored tree and must go.
        """
        live: dict[str, frozenset[int]] = {}
        stale = []
        for unit_name, loop_uid in self._deps_cache:
            if unit_name not in live:
                uir = self.program.units.get(unit_name)
                live[unit_name] = frozenset(
                    li.uid for li in uir.loops.all_loops()) \
                    if uir is not None else frozenset()
            if loop_uid not in live[unit_name]:
                stale.append((unit_name, loop_uid))
        for key in stale:
            del self._deps_cache[key]

    # -- forking (the parallel-worlds primitive) --------------------------------

    def fork(self) -> "PedSession":
        """Clone this session into an independent child.

        The public fork API over the undo journal's snapshot machinery:
        a :class:`ProgramSnapshot` of every unit is captured and
        :meth:`ProgramSnapshot.materialize`\\ d into a brand-new
        :class:`AnalyzedProgram` -- fresh AST objects and symbol tables,
        but with every statement uid (and therefore every structural
        fingerprint) preserved, so the child's first execution relinks
        cached compiled units instead of recompiling them.

        The child inherits analysis-relevant state -- assertions,
        dependence marks, variable-classification reasons, the
        interprocedural/input-deps switches -- but starts with an empty
        undo journal, event log and diagnostics: it is a new world, not
        a view.  Mutating the child can never affect the parent (and
        vice versa); ``tests/test_worlds.py`` pins this byte-identity.
        """
        snap = ProgramSnapshot.capture_program(self.program)
        child = PedSession(snap.materialize(),
                           interprocedural=self.interprocedural,
                           include_input_deps=self.include_input_deps,
                           journal_limit=self.journal_limit)
        child.assertions = AssertionSet(self.assertions.assertions)
        child._marks = dict(self._marks)
        child._loose_marks = dict(self._loose_marks)
        child._var_reasons = dict(self._var_reasons)
        perf_counters.bump("worlds_forked")
        self._log("transformation", "fork session")
        return child

    def history(self) -> list[dict]:
        """The journal: applied entries oldest-first, then undone ones."""
        done = [{"name": e.name, "description": e.description,
                 "state": "applied"} for e in self._undo]
        undone = [{"name": e.name, "description": e.description,
                   "state": "undone"} for e in reversed(self._redo)]
        return done + undone

    # -- session health ---------------------------------------------------------

    def _lint_linter(self):
        if self._linter is None:
            from ..lint.driver import SessionLinter
            self._linter = SessionLinter(self)
        return self._linter

    def lint(self):
        """Run the static lint over the whole program (incrementally:
        only units whose lint key changed since the last call are
        re-analyzed), refresh the lint pane, and return the
        deterministic diagnostic list."""
        diags = self._lint_linter().refresh()
        self.lint_pane.set_diagnostics(diags)
        self._log("lint",
                  f"{len([d for d in diags if not d.suppressed])} "
                  f"finding(s)")
        return diags

    def _loop_display_id(self, unit_name: str, uid: int):
        """Stable display id ("L1") for a loop uid, or the uid itself
        when the loop tree no longer knows it."""
        try:
            li = self.program.units[unit_name].loops.by_uid.get(uid)
            return li.id if li is not None else uid
        except Exception:
            return uid

    def health(self) -> HealthReport:
        """Everything that has degraded or failed (and been survived)."""
        degraded = []
        for (unit, _uid), ld in sorted(self._deps_cache.items()):
            if ld.degraded:
                degraded.append({"unit": unit, "loop": ld.loop.id,
                                 "notes": list(ld.degraded)})
        failed_units = [{"unit": u, "loop": lid, "reason": r}
                        for (u, lid), r in sorted(self._degraded.items())]

        def of(kind: str) -> list[dict]:
            return [d for d in self.diagnostics if d.get("kind") == kind]

        cnt = perf_counters.snapshot()
        try:
            lint_summary = self._lint_linter().summary()
        except Exception as e:   # lint must never take down health()
            lint_summary = {"error": f"{type(e).__name__}: {e}"}
        exec_info = {k: cnt[k] for k in ("vec_loops", "vec_fallbacks",
                                         "vec_elements")}
        try:
            from ..interp.vectorize import lowering_decisions
            exec_info["lowering"] = [
                {"unit": uname, "loop": self._loop_display_id(uname, uid),
                 **dec.as_dict()}
                for (uname, uid), dec in
                sorted(lowering_decisions(self.program).items(),
                       key=lambda kv: (kv[0][0], kv[1].line))]
        except Exception as e:   # lowering report must never break health
            exec_info["lowering"] = [
                {"error": f"{type(e).__name__}: {e}"}]
        report = HealthReport(
            degraded_loops=degraded, failed_units=failed_units,
            transform_failures=of("transform"),
            guidance_failures=of("guidance"),
            edit_failures=of("edit"),
            undo_depth=len(self._undo), redo_depth=len(self._redo),
            pair_cache=pair_cache_info(),
            compile_cache=compile_cache_info(),
            parallel_runtime={
                k: cnt[k] for k in ("par_loops", "par_chunks",
                                    "par_fallbacks", "pool_reuses")},
            lint=lint_summary, exec=exec_info,
            worlds={k: cnt[k] for k in (
                "worlds_proposed", "worlds_forked", "worlds_raced",
                "worlds_accepted", "worlds_rejected", "worlds_adopted")},
            artifact_store=get_store().stats())
        self._log("access to analysis",
                  f"health: {'ok' if report.ok else 'degraded'}")
        return report

    def safe_transformations(self, loop=None) -> list[tuple[str, object]]:
        """Transformation guidance (Section 5.3): evaluate every registry
        entry for the loop and return the safe ones."""
        li = self.unit.loops.find(loop) if loop is not None \
            else self.current_loop
        if li is None:
            raise ValueError("select a loop first")
        out = []
        for name in transform_names():
            t = get_transform(name)
            if not t.needs_loop:
                continue
            ctx = TContext(uir=self.unit, analyzer=self.analyzer(),
                           loop=li, params={"program": self.program},
                           _deps=self._loop_deps(li))
            try:
                advice = t.check(ctx)
            except Exception as e:
                # A crashing checker must not silently vanish from the
                # guidance list: record who failed and why.
                msg = f"{type(e).__name__}: {e}"
                self.diagnostics.append({
                    "kind": "guidance", "transform": name,
                    "loop": li.id, "error": msg})
                self._log("transformation guidance",
                          f"{name}: check failed on {li.id} ({msg})")
                continue
            if advice.applicable and advice.safe:
                out.append((name, advice))
        self._log("transformation guidance",
                  f"{li.id}: {[n for n, _ in out]}")
        return out

    # -- editing --------------------------------------------------------------------

    def edit(self, new_source: str) -> list[str]:
        """Replace the program text; returns syntax/semantic problems
        (empty = clean edit).  Analyses are re-derived (the incremental
        re-analysis of the real PED is modelled as scoped invalidation).

        A malformed edit never raises and never disturbs the previous
        program: diagnostics are returned (and recorded for
        :meth:`health`) and the session keeps working on the old text.
        A clean edit carries accepted/rejected dependence marks (via
        their uid-free signatures) and variable classifications (keyed
        by unit and loop id) across the re-parse.
        """
        try:
            prog = parse_program(new_source)
            new_program = AnalyzedProgram(prog)
            if not new_program.unit_names():
                raise ParseError("program has no units")
        except ParseError as e:
            self._log("editing", f"rejected: {e}")
            self.diagnostics.append({"kind": "edit", "error": str(e)})
            return [str(e)]
        except Exception as e:
            msg = f"{type(e).__name__}: {e}"
            self._log("editing", f"rejected: {msg}")
            self.diagnostics.append({"kind": "edit", "error": msg})
            return [msg]
        classifications = self._classification_state()
        self.program = new_program
        self._summaries = None
        self._analyzers.clear()
        self._deps_cache.clear()
        # journal snapshots reference the replaced program's objects:
        # undoing across an edit would silently resurrect dead state
        self._undo.clear()
        self._redo.clear()
        names = self.program.unit_names()
        if self.current_unit_name not in names:
            self.current_unit_name = names[0]
        self.current_loop = None
        self._restore_classifications(classifications)
        self.source_pane = SourcePane(self.unit)
        self.dependence_pane.set_dependences([])
        self.variable_pane.set_rows([])
        self._log("editing", "program replaced")
        return []

    def _classification_state(self) -> tuple[dict, dict]:
        """Collect private-variable sets and reasons keyed positionally
        (unit name, loop id) so they survive the uid churn of a
        re-parse."""
        private: dict[tuple[str, str], set[str]] = {}
        reasons: dict[tuple[str, str, str], str] = {}
        uid_to_id: dict[tuple[str, int], str] = {}
        for name in self.program.unit_names():
            try:
                loops = self.program.units[name].loops.all_loops()
            except Exception:
                continue
            for li in loops:
                uid_to_id[(name, li.loop.uid)] = li.id
                if li.loop.private_vars:
                    private[(name, li.id)] = set(li.loop.private_vars)
        for (unit, loop_uid, var), r in self._var_reasons.items():
            lid = uid_to_id.get((unit, loop_uid))
            if lid is not None:
                reasons[(unit, lid, var)] = r
        return private, reasons

    def _restore_classifications(self, state: tuple[dict, dict]) -> None:
        private, reasons = state
        self._var_reasons = {}
        if not (private or reasons):
            return
        for name in self.program.unit_names():
            try:
                loops = self.program.units[name].loops.all_loops()
            except Exception:
                continue
            for li in loops:
                pv = private.get((name, li.id))
                if pv:
                    li.loop.private_vars |= pv
                for (u, lid, var), r in reasons.items():
                    if u == name and lid == li.id:
                        self._var_reasons[(name, li.loop.uid, var)] = r

    def source(self) -> str:
        return self.program.source()

    # -- composition checks ------------------------------------------------------------

    def check_program(self):
        diags = check_program(self.program)
        if diags:
            self._log("detect interface error",
                      f"{len(diags)} diagnostic(s)")
        else:
            self._log("detect interface error", "clean")
        return diags

    # -- help ----------------------------------------------------------------------------

    HELP = {
        "panes": "The window shows the source pane (top), dependence pane "
                 "and variable pane (footnotes). Select a loop to "
                 "populate the footnotes. session.lint() fills the lint "
                 "pane with the static race detector's findings.",
        "marking": "Dependences are proven/pending; you may accept or "
                   "reject pending ones. Rejected deps are disregarded "
                   "by transformation safety checks but kept for review.",
        "assertions": "ASSERT <relational>, RANGE(v,lo,hi), "
                      "PERMUTATION(a), MONOTONE(a,gap), "
                      "DISJOINT(a,b,gap). Assertions refine dependence "
                      "testing and are checked at run time.",
        "transformations": "apply(name, loop, ...) runs under power "
                           "steering: applicability, safety and "
                           "profitability are checked first.",
    }

    def help(self, topic: str | None = None) -> str:
        self._log("help", topic or "index")
        if topic is None:
            return "topics: " + ", ".join(sorted(self.HELP))
        return self.HELP.get(topic.lower(), f"no help for {topic!r}")

    # -- rendering -----------------------------------------------------------------------

    def render(self, width: int = 78) -> str:
        from .render import render_window
        return render_window(self, width)

    # -- requested extensions (Sections 3.2, 5.3, 6) ----------------------------------------

    def auto_parallelize(self, unit: str | None = None, **kw):
        """Semi-automatic parallelization with an impediment report."""
        from .autopar import auto_parallelize
        report = auto_parallelize(self, unit=unit, **kw)
        self._log("transformation guidance",
                  f"auto-parallelize: {len(report.parallelized)} loops, "
                  f"{len(report.impediments)} impediments")
        return report

    def verify_parallel(self, inputs=None, workers: int = 4,
                        schedule: str = "static", rtol: float = 1e-9,
                        atol: float = 1e-8,
                        max_steps: int = 5_000_000):
        """Check the current parallelization: run the program serially
        and under the adversarial interleaving emulator and return the
        :class:`~repro.interp.verify.RunDiff` of observable state (empty
        means the runs agree).  The fleet's verify stage is this check,
        batched."""
        from ..interp.relative import run_to_sync
        from ..interp.verify import compare_runs
        si = run_to_sync(self.program, inputs=inputs, adversarial=False,
                         max_steps=max_steps)
        ai = run_to_sync(self.program, inputs=inputs, adversarial=True,
                         workers=workers, schedule=schedule,
                         max_steps=max_steps)
        diff = compare_runs(si, ai, rtol=rtol, atol=atol)
        self._log("transformation guidance",
                  f"verify parallel: {len(diff)} difference(s) at "
                  f"{workers} workers")
        return diff

    def explore(self, inputs=None, max_worlds: int = 8,
                workers: int = 4, schedule: str = "static",
                engines=None, adopt: bool = True,
                race_workers: int | None = None):
        """Speculative parallel-worlds exploration (repro.worlds).

        Proposes up to ``max_worlds`` candidate transform sequences from
        the session's dependence/autopar/guidance data, forks each into
        an independent world (:meth:`fork`), races them concurrently on
        the shared worker pool across the requested execution
        ``engines``, gates acceptance on byte-identical observables
        versus this session's serial oracle run, and ranks the
        survivors.  With ``adopt=True`` the winning sequence is replayed
        onto this session through the normal power-steering path, so
        every adopted transformation lands on the undo journal.

        Returns a :class:`repro.worlds.WorldsReport`.
        """
        from ..worlds import explore_session
        report = explore_session(
            self, inputs=inputs, max_worlds=max_worlds, workers=workers,
            schedule=schedule, engines=engines, adopt=adopt,
            race_workers=race_workers)
        self._log("transformation guidance",
                  f"explore: {len(report.results)} worlds raced, "
                  f"winner {report.winner or '(none)'}"
                  f"{' adopted' if report.adopted else ''}")
        return report

    def program_report(self) -> str:
        """Printable program + dependences + variables listing."""
        from .reporting import program_report
        return program_report(self)

    def call_graph_dot(self) -> str:
        """Graphviz DOT export of the call graph with time shares."""
        from .reporting import call_graph_dot
        return call_graph_dot(self)

    def unknown_symbolics(self, loop=None) -> dict[str, list[str]]:
        """Symbolic terms the system would query the user about."""
        from .reporting import unknown_symbolics
        return unknown_symbolics(self, loop)

    # -- event summary (Table 2 support) ----------------------------------------------------

    def features_used(self) -> set[str]:
        return {e.feature for e in self.events}
