"""Semi-automatic parallelization (Section 5.3, "Transformation
Guidance").

"Ideally, a user would select the architecture and request
parallelization at the loop, subroutine or program level.  The system
would then automatically perform parallelization or describe the
impediments to a desired parallelization.  Impediments would be
presented in a systematic fashion based on the relative importance of a
loop or subroutine."

:func:`auto_parallelize` implements that work model: walk loops
outermost-first in order of estimated importance, parallelize where the
dependence graph allows (privatizing what kill analysis proves), and
for every loop that stays sequential produce a ranked impediment report
the user can act on — which dependences block it, which variables could
be classified, which assertions would break the remaining dependences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..assertions import derive_breaking_conditions
from ..dependence.model import DepType
from ..perf import estimate_program


@dataclass
class Impediment:
    """Why one loop could not be parallelized, with suggested actions."""

    unit: str
    loop_id: str
    line: int
    importance: float           # estimated share of program time
    blocking: list[str]         # dependence descriptions
    suggestions: list[str] = field(default_factory=list)

    def describe(self) -> str:
        out = [f"{self.unit}:{self.loop_id} (line {self.line}, "
               f"~{self.importance * 100:.0f}% of est. time) blocked by:"]
        for b in self.blocking[:4]:
            out.append(f"    {b}")
        if len(self.blocking) > 4:
            out.append(f"    ... and {len(self.blocking) - 4} more")
        for s in self.suggestions:
            out.append(f"  -> {s}")
        return "\n".join(out)

    def to_json(self) -> dict:
        return {"unit": self.unit, "loop": self.loop_id,
                "line": self.line,
                "importance": round(self.importance, 6),
                "blocking": list(self.blocking),
                "suggestions": list(self.suggestions)}


@dataclass
class AutoParallelReport:
    parallelized: list[str] = field(default_factory=list)   # unit:loop ids
    impediments: list[Impediment] = field(default_factory=list)

    def describe(self) -> str:
        lines = [f"parallelized {len(self.parallelized)} loop(s): "
                 f"{', '.join(self.parallelized) or 'none'}"]
        if self.impediments:
            lines.append("impediments (most important first):")
            for imp in self.impediments:
                lines.append(imp.describe())
        return "\n".join(lines)

    def to_json(self) -> dict:
        """Machine-readable form (the fleet embeds this per program)."""
        return {"parallelized": list(self.parallelized),
                "impediments": [i.to_json() for i in self.impediments]}


def auto_parallelize(session, unit: str | None = None,
                     suggest_assertions: bool = True,
                     max_suggestions: int = 2) -> AutoParallelReport:
    """Parallelize every loop the analysis allows; report the rest.

    Outermost loops are attempted first (outer parallelism is what
    "achieving measurable performance improvements" needs, Section 4.2);
    loops nested inside a successfully parallelized loop are skipped.
    """
    report = AutoParallelReport()
    units = [unit.upper()] if unit else session.units()

    est = estimate_program(session.program)
    importance = {(e.unit, e.loop.id): session_fraction(est, e)
                  for e in est.loops}

    for uname in units:
        session.select_unit(uname)
        done_uids: set[int] = set()
        # outermost-first, then by estimated importance
        loops = sorted(session.loops(),
                       key=lambda li: (li.depth,
                                       -importance.get((uname, li.id), 0)))
        for li in loops:
            if any(p.uid in done_uids for p in li.nest()[:-1]):
                continue  # inside an already-parallel loop
            if li.loop.parallel:
                done_uids.add(li.uid)
                continue
            session.select_loop(li)
            advice = session.advice("parallelize")
            if advice.ok:
                res = session.apply("parallelize")
                if res.applied:
                    # re-locate after invalidation
                    session.select_unit(uname)
                    relocated = [x for x in session.loops()
                                 if x.line == li.line]
                    if relocated:
                        done_uids.add(relocated[0].uid)
                    report.parallelized.append(f"{uname}:{li.id}")
                    continue
            blocking = [d for d in session.dependences()
                        if d.loop_carried and d.level == 1 and d.active
                        and d.dtype is not DepType.INPUT]
            imp = Impediment(
                unit=uname, loop_id=li.id, line=li.line,
                importance=importance.get((uname, li.id), 0.0),
                blocking=[d.describe() for d in blocking])
            _suggest(session, li, blocking, imp, suggest_assertions,
                     max_suggestions)
            report.impediments.append(imp)
    report.impediments.sort(key=lambda i: -i.importance)
    return report


def session_fraction(est, loop_estimate) -> float:
    return est.loop_fraction(loop_estimate)


def _suggest(session, li, blocking, imp: Impediment,
             suggest_assertions: bool, max_suggestions: int) -> None:
    ld = session._loop_deps(li)
    blocking_vars = {d.var for d in blocking}
    for var in sorted(blocking_vars & ld.reductions):
        imp.suggestions.append(
            f"{var} matches a sum-reduction pattern: apply "
            f"reduction_recognition")
    array_cands = []
    try:
        array_cands = [r for r in session.array_kill_candidates(li)
                       if r.privatizable and r.array in blocking_vars]
    except Exception:
        pass
    for r in array_cands:
        imp.suggestions.append(
            f"array kill analysis proves {r.array} may be private: "
            f"classify_variable({r.array!r}, 'private')")
    if suggest_assertions and blocking:
        seen: set[str] = set()
        for d in blocking:
            if len(seen) >= max_suggestions:
                break
            try:
                bcs = derive_breaking_conditions(session.analyzer(), li, d)
            except Exception:
                continue
            for bc in bcs:
                if bc.eliminates and bc.assertion_text not in seen:
                    seen.add(bc.assertion_text)
                    imp.suggestions.append(
                        f"assertion would eliminate dependences: "
                        f"ASSERT {bc.assertion_text}")
                    break
