"""Breaking-condition derivation (Section 4.3).

"To assist the user in deriving assertions that eliminate spurious
dependences, the system may be able to derive *breaking conditions* that
eliminate a particular dependence or class of dependences."

Given a pending dependence, :func:`derive_breaking_conditions` inspects
its dependence equations and proposes candidate assertions; each
candidate is *validated* by re-running the dependence test under a trial
fact base and keeping only those that actually kill the dependence.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.linear import LinearExpr, linearize, to_expr
from ..dependence.ddg import DependenceAnalyzer, RefSite
from ..dependence.facts import FactBase
from ..dependence.model import Dependence
from ..dependence.tests import SINK, _subscript_equation, test_pair
from ..fortran import ast
from ..ir.loops import LoopInfo
from .lang import AssertionSet, parse_assertion


@dataclass(frozen=True)
class BreakingCondition:
    """A candidate assertion with its validation status."""

    assertion_text: str
    eliminates: bool          # re-test confirmed the dependence dies
    rationale: str

    def __str__(self) -> str:
        tag = "eliminates" if self.eliminates else "insufficient"
        return f"ASSERT {self.assertion_text}   [{tag}] {self.rationale}"


def _find_sites(analyzer: DependenceAnalyzer, li: LoopInfo,
                dep: Dependence) -> tuple[RefSite, RefSite] | None:
    refs = analyzer._collect_refs(li)
    copies = analyzer._iteration_copies(li)
    aux_subst, _ = analyzer._aux_subst(li)
    from dataclasses import replace
    for i, r in enumerate(refs):
        if r.test_subs is not None:
            subs = r.test_subs
            if copies:
                subs = tuple(analyzer._apply_copies(x, copies, r.order)
                             for x in subs)
            if aux_subst:
                subs = tuple(ast.substitute(x, aux_subst) for x in subs)
            if subs != r.test_subs:
                refs[i] = replace(r, test_subs=subs)
    src = snk = None
    for r in refs:
        if r.stmt.uid == dep.source.stmt_uid and r.var == dep.var \
                and r.is_write == dep.source.is_write \
                and str(r.expr) == str(dep.source.expr or r.expr):
            src = r
        if r.stmt.uid == dep.sink.stmt_uid and r.var == dep.sink.var \
                and r.is_write == dep.sink.is_write \
                and str(r.expr) == str(dep.sink.expr or r.expr):
            snk = r
    if src is None or snk is None:
        return None
    return src, snk


def derive_breaking_conditions(analyzer: DependenceAnalyzer,
                               loop: "LoopInfo | str",
                               dep: Dependence,
                               max_candidates: int = 6
                               ) -> list[BreakingCondition]:
    """Propose and validate assertions that would eliminate ``dep``."""
    li = analyzer.uir.loops.find(loop)
    pair = _find_sites(analyzer, li, dep)
    if pair is None:
        return []
    src, snk = pair
    if src.test_subs is None or snk.test_subs is None:
        return []
    env = analyzer._env_at(li)
    chain: list[int] = []
    for x, y in zip(src.chain, snk.chain):
        if x == y:
            chain.append(x)
        else:
            break
    loops = analyzer._loop_ctxs(li, tuple(chain), env)
    loop_vars = {lp.var for lp in loops}

    # Assertions must be over loop-invariant quantities: exclude every
    # induction variable in the unit (inner-loop indices show up as
    # symbolic terms in outer-level equations but are iteration-variant).
    variant = {l.var for l in analyzer.uir.loops.all_loops()}
    candidates: list[tuple[str, str]] = []
    for s_sub, k_sub in zip(src.test_subs, snk.test_subs):
        h = _subscript_equation(s_sub, k_sub, loop_vars, env)
        candidates.extend(_candidates_for_equation(
            h, loops, loop_vars, variant - loop_vars))
        if len(candidates) >= max_candidates:
            break

    out: list[BreakingCondition] = []
    seen: set[str] = set()
    base_facts = analyzer.facts
    for text, rationale in candidates[:max_candidates]:
        if text in seen:
            continue
        seen.add(text)
        try:
            aset = AssertionSet([parse_assertion(text)])
        except Exception:
            continue
        trial = base_facts.merged_with(aset.to_facts())
        result = test_pair(src.test_subs, snk.test_subs, loops, env, trial)
        # The dependence dies when no vector matching its direction
        # survives.
        alive = _matches_direction(result.vectors, dep)
        out.append(BreakingCondition(
            assertion_text=text, eliminates=not alive, rationale=rationale))
    out.sort(key=lambda b: not b.eliminates)
    return out


def _matches_direction(vectors, dep: Dependence) -> bool:
    from ..dependence.model import ANY, EQ
    if not vectors:
        return False
    want = dep.vector
    for v in vectors:
        rev = tuple({"<": ">", ">": "<"}.get(d, d) for d in v)
        for cand in (v, rev):
            if len(cand) == len(want) and all(
                    w == ANY or c == ANY or w == c
                    for w, c in zip(want, cand)):
                return True
    return False


def _candidates_for_equation(h: LinearExpr, loops, loop_vars,
                             variant: set[str] = frozenset()
                             ) -> list[tuple[str, str]]:
    """Heuristic assertion proposals from one dependence equation.

    ``variant`` names iteration-variant symbols outside the common nest
    (inner-loop indices): an equation mentioning one cannot be broken by
    a static assertion, so no symbolic-offset candidates are proposed
    for it (index-array candidates are still meaningful).
    """
    out: list[tuple[str, str]] = []

    # Split h into loop part and symbolic part.
    sym = LinearExpr.constant(h.const)
    has_variant = False
    for v, c in h.terms:
        base = v[:-len(SINK)] if v.endswith(SINK) else v
        if base in variant:
            has_variant = True
        elif base not in loop_vars:
            sym = sym + LinearExpr.var(v, c)
    index_arrays = {e.name for _, e in h.residue
                    if isinstance(e, ast.ArrayRef)
                    and len(e.subscripts) == 1}

    if not has_variant and (not sym.is_constant or sym.const != 0):
        try:
            s_expr = str(to_expr(sym))
        except AssertionError:  # pragma: no cover
            s_expr = None
        if s_expr is not None:
            # the loop iteration span, when expressible
            span = None
            for lp in loops:
                if lp.span is not None:
                    try:
                        span = str(to_expr(lp.span))
                    except AssertionError:
                        span = None
                    break
            if span is not None:
                out.append((
                    f"{s_expr} .GT. {span}",
                    "symbolic offset larger than the iteration range "
                    "leaves no overlapping instances"))
                out.append((
                    f"{s_expr} .LT. -({span})",
                    "symbolic offset below the negative iteration range"))
            out.append((
                f"{s_expr} .NE. 0",
                "non-zero symbolic difference kills the loop-independent "
                "dependence"))
    for arr in sorted(index_arrays):
        out.append((
            f"PERMUTATION({arr})",
            f"distinct iterations index distinct {arr} values"))
        out.append((
            f"MONOTONE({arr}, 3)",
            f"{arr} strictly increasing with gap covers offset "
            "differences"))
    arrs = sorted(index_arrays)
    if len(arrs) == 2:
        out.append((
            f"DISJOINT({arrs[0]}, {arrs[1]}, 3)",
            "value ranges of the two index arrays never collide"))
    return out
