"""The user-assertion language of Section 3.3.

Design follows the paper's three requirements: (1) assertions express
properties natural to a user, in familiar Fortran syntax; (2) they feed
the dependence analyzer (through the
:class:`~repro.dependence.facts.FactBase`); (3) they are verifiable at
run time (the interpreter evaluates them against concrete storage).

Grammar (case-insensitive)::

    assertion := relational | RANGE(v, lo, hi) | PERMUTATION(a)
               | MONOTONE(a [, gap]) | DISJOINT(a, b [, gap])
    relational := expr relop expr        e.g.  MCN .GT. IENDV(IR)-ISTRT(IR)

Relational assertions with ``.EQ.`` between a variable and an expression
double as *symbolic relations* (arc3d's ``JM .EQ. JMAX - 1``) and are
offered to the linearizer's substitution environment as well.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.linear import LinearExpr, linearize
from ..dependence.facts import FactBase
from ..fortran import ast
from ..fortran.parser import ParseError, parse_expr_text


class AssertionError_(Exception):
    """Raised for malformed assertion text."""


@dataclass(frozen=True)
class Assertion:
    text: str

    def kind(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class Relational(Assertion):
    left: ast.Expr
    op: str            # .GT. .GE. .LT. .LE. .EQ. .NE.
    right: ast.Expr

    def kind(self) -> str:
        return "relational"

    def normalized(self) -> tuple[LinearExpr, str]:
        """As ``expr REL 0`` with REL in {'>', '>=', '=', '!='}."""
        d = linearize(self.left) - linearize(self.right)
        if self.op == ".GT.":
            return d, ">"
        if self.op == ".GE.":
            return d, ">="
        if self.op == ".LT.":
            return -d, ">"
        if self.op == ".LE.":
            return -d, ">="
        if self.op == ".EQ.":
            return d, "="
        return d, "!="


@dataclass(frozen=True)
class Range(Assertion):
    var: str
    lo: int
    hi: int

    def kind(self) -> str:
        return "range"


@dataclass(frozen=True)
class Permutation(Assertion):
    array: str

    def kind(self) -> str:
        return "permutation"


@dataclass(frozen=True)
class Monotone(Assertion):
    array: str
    gap: int = 1

    def kind(self) -> str:
        return "monotone"


@dataclass(frozen=True)
class Disjoint(Assertion):
    a: str
    b: str
    gap: int = 1

    def kind(self) -> str:
        return "disjoint"


_RELOPS = (".GT.", ".GE.", ".LT.", ".LE.", ".EQ.", ".NE.")


def parse_assertion(text: str) -> Assertion:
    """Parse one assertion from its textual form."""
    raw = text.strip()
    up = raw.upper()
    for head, cls in (("RANGE", Range), ("PERMUTATION", Permutation),
                      ("MONOTONE", Monotone), ("DISJOINT", Disjoint)):
        if up.startswith(head):
            rest = raw[len(head):].strip()
            if not (rest.startswith("(") and rest.endswith(")")):
                raise AssertionError_(f"{head} needs parenthesized args: "
                                      f"{text!r}")
            args = [a.strip().upper() for a in rest[1:-1].split(",")]
            try:
                if cls is Range:
                    if len(args) != 3:
                        raise AssertionError_("RANGE(v, lo, hi)")
                    return Range(raw, args[0], int(args[1]), int(args[2]))
                if cls is Permutation:
                    if len(args) != 1:
                        raise AssertionError_("PERMUTATION(a)")
                    return Permutation(raw, args[0])
                if cls is Monotone:
                    if len(args) not in (1, 2):
                        raise AssertionError_("MONOTONE(a[, gap])")
                    gap = int(args[1]) if len(args) == 2 else 1
                    return Monotone(raw, args[0], gap)
                if len(args) not in (2, 3):
                    raise AssertionError_("DISJOINT(a, b[, gap])")
                gap = int(args[2]) if len(args) == 3 else 1
                return Disjoint(raw, args[0], args[1], gap)
            except ValueError as e:
                raise AssertionError_(f"bad numeric argument in {text!r}") \
                    from e
    # relational: find the top-level relop
    try:
        expr = parse_expr_text(raw)
    except ParseError as e:
        raise AssertionError_(f"cannot parse assertion {text!r}: {e}") from e
    if isinstance(expr, ast.BinOp) and expr.op in _RELOPS:
        return Relational(raw, expr.left, expr.op, expr.right)
    raise AssertionError_(
        f"assertion must be relational or RANGE/PERMUTATION/MONOTONE/"
        f"DISJOINT: {text!r}")


@dataclass
class AssertionSet:
    """An ordered collection of assertions with derived artifacts."""

    assertions: list[Assertion]

    def __init__(self, assertions=()):
        self.assertions = list(assertions)

    def add(self, assertion: "Assertion | str") -> Assertion:
        if isinstance(assertion, str):
            assertion = parse_assertion(assertion)
        self.assertions.append(assertion)
        return assertion

    def to_facts(self) -> FactBase:
        fb = FactBase()
        for a in self.assertions:
            if isinstance(a, Relational):
                le, rel = a.normalized()
                if rel == "!=":
                    continue  # no direct FactBase form; skip (sound)
                fb.assert_linear(le, rel)
            elif isinstance(a, Range):
                fb.assert_range(a.var, a.lo, a.hi)
            elif isinstance(a, Permutation):
                fb.assert_permutation(a.array)
            elif isinstance(a, Monotone):
                fb.assert_monotone(a.array, a.gap)
            elif isinstance(a, Disjoint):
                fb.assert_disjoint(a.a, a.b, a.gap)
        return fb

    def relations_env(self) -> dict[str, LinearExpr]:
        """Equality assertions usable as linearizer substitutions:
        ``JM .EQ. JMAX - 1`` yields ``JM -> JMAX - 1``."""
        env: dict[str, LinearExpr] = {}
        for a in self.assertions:
            if isinstance(a, Relational) and a.op == ".EQ." \
                    and isinstance(a.left, ast.VarRef):
                le = linearize(a.right)
                if le.is_affine and a.left.name not in le.variables():
                    env[a.left.name] = le
        return env

    # -- runtime verification ------------------------------------------------

    def verify_against(self, frame, interp) -> list[str]:
        """Evaluate every assertion against live interpreter storage.

        Returns violation messages (empty = all hold).  Used both by the
        interpreter's ASSERT statement hook and by tests.
        """
        failures: list[str] = []
        for a in self.assertions:
            ok, why = _verify_one(a, frame, interp)
            if not ok:
                failures.append(f"{a.text}: {why}")
        return failures

    def checker(self):
        """An ``assertion_checker`` callable for the Interpreter."""
        def check(text: str, frame, interp) -> bool:
            try:
                a = parse_assertion(text)
            except AssertionError_:
                return False
            ok, _ = _verify_one(a, frame, interp)
            return ok
        return check


def _array_values(name: str, frame, interp) -> np.ndarray | None:
    st = frame.arrays.get(name.upper())
    if st is None:
        return None
    return st.data.reshape(-1, order="F")


def _verify_one(a: Assertion, frame, interp) -> tuple[bool, str]:
    if isinstance(a, Relational):
        cond = ast.BinOp(a.op, a.left, a.right)
        try:
            v = interp._eval_in(cond, frame)
        except Exception as e:  # storage missing etc.
            return False, f"not evaluable: {e}"
        return bool(v), "condition is false"
    if isinstance(a, Range):
        v = frame.scalars.get(a.var)
        if v is None:
            return False, f"{a.var} has no value"
        return (a.lo <= v <= a.hi), f"{a.var} = {v} outside [{a.lo},{a.hi}]"
    vals = _array_values(getattr(a, "array", getattr(a, "a", "")), frame,
                         interp)
    if isinstance(a, Permutation):
        if vals is None:
            return False, f"{a.array} has no storage"
        used = vals[vals != 0] if np.all(vals >= 0) else vals
        return (len(np.unique(vals)) == len(vals)), "values repeat"
    if isinstance(a, Monotone):
        if vals is None:
            return False, f"{a.array} has no storage"
        d = np.diff(vals.astype(np.float64))
        return bool(np.all(d >= a.gap)), \
            f"adjacent difference below gap {a.gap}"
    if isinstance(a, Disjoint):
        va = _array_values(a.a, frame, interp)
        vb = _array_values(a.b, frame, interp)
        if va is None or vb is None:
            return False, "array has no storage"
        return bool(va.max() + a.gap <= vb.min()
                    or vb.max() + a.gap <= va.min()), \
            "value ranges overlap (within gap)"
    return False, "unknown assertion kind"
