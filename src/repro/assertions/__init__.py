"""User assertions: language, fact conversion, runtime verification,
breaking-condition derivation."""

from .breaking import BreakingCondition, derive_breaking_conditions
from .lang import Assertion, AssertionError_, AssertionSet, Disjoint, \
    Monotone, Permutation, Range, Relational, parse_assertion

__all__ = [
    "Assertion", "AssertionError_", "AssertionSet", "parse_assertion",
    "Relational", "Range", "Permutation", "Monotone", "Disjoint",
    "BreakingCondition", "derive_breaking_conditions",
]
