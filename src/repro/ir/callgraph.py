"""Call graph construction.

Nodes are program units; edges record every call site (``CALL`` statements
and user-function references inside expressions) with the actual argument
lists, which interprocedural analysis (MOD/REF, KILL, constants, sections)
and the Composition-Editor checks consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..fortran import ast


@dataclass
class CallSite:
    caller: str
    callee: str
    stmt: ast.Stmt                 # statement containing the call
    args: tuple[ast.Expr, ...]
    line: int
    #: innermost enclosing loop uid in the caller, if any
    loop_uid: int | None = None


@dataclass
class CallGraph:
    units: dict[str, ast.ProgramUnit] = field(default_factory=dict)
    sites: list[CallSite] = field(default_factory=list)
    graph: nx.DiGraph = field(default_factory=nx.DiGraph)

    def callees(self, name: str) -> set[str]:
        return set(self.graph.successors(name.upper())) \
            if name.upper() in self.graph else set()

    def callers(self, name: str) -> set[str]:
        return set(self.graph.predecessors(name.upper())) \
            if name.upper() in self.graph else set()

    def sites_in(self, caller: str) -> list[CallSite]:
        return [cs for cs in self.sites if cs.caller == caller.upper()]

    def sites_of(self, callee: str) -> list[CallSite]:
        return [cs for cs in self.sites if cs.callee == callee.upper()]

    def reverse_topo_order(self) -> list[str]:
        """Callees before callers; cycles (recursion) broken arbitrarily."""
        g = self.graph
        try:
            return list(reversed(list(nx.topological_sort(g))))
        except nx.NetworkXUnfeasible:
            order: list[str] = []
            for scc in nx.strongly_connected_components(g):
                order.extend(sorted(scc))
            return order


def _calls_in_expr(e: ast.Expr, known: frozenset[str]):
    for node in ast.walk_expr(e):
        if isinstance(node, ast.FuncRef) and not node.intrinsic \
                and node.name in known:
            yield node
        elif isinstance(node, ast.NameRef) and node.name in known:
            # unresolved reference matching a program unit: a call
            yield node


def build_call_graph(prog: ast.Program) -> CallGraph:
    cg = CallGraph()
    known = frozenset(u.name for u in prog.units)
    for u in prog.units:
        cg.units[u.name] = u
        cg.graph.add_node(u.name)
    for u in prog.units:
        loop_stack: list[int] = []

        def visit(body: list[ast.Stmt]) -> None:
            for s in body:
                if isinstance(s, ast.CallStmt) and s.name in known:
                    _add(u, s, s.name, s.args)
                for e in s.exprs():
                    for fr in _calls_in_expr(e, known):
                        _add(u, s, fr.name, fr.args)
                if isinstance(s, ast.Assign):
                    for fr in _calls_in_expr(s.target, known):
                        _add(u, s, fr.name, fr.args)
                if isinstance(s, ast.DoLoop):
                    loop_stack.append(s.uid)
                    visit(s.body)
                    loop_stack.pop()
                else:
                    for blk in s.blocks():
                        visit(blk)

        def _add(unit: ast.ProgramUnit, stmt: ast.Stmt, callee: str,
                 args: tuple[ast.Expr, ...]) -> None:
            cg.sites.append(CallSite(
                caller=unit.name, callee=callee, stmt=stmt, args=tuple(args),
                line=stmt.line,
                loop_uid=loop_stack[-1] if loop_stack else None))
            cg.graph.add_edge(unit.name, callee)

        visit(u.body)
    return cg
