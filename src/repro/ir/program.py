"""AnalyzedProgram: parsed + resolved program with per-unit IR artifacts.

This is the object every higher layer (analysis, dependence, transforms,
the PED session) works from.  Artifacts are built lazily; invalidation is
*scoped*: each :class:`UnitIR` carries a generation counter that advances
when that unit's AST is mutated, so the session layer can evict exactly
the derived results whose unit (or loop nest) changed instead of
re-deriving the whole program.

Construction fans the per-unit symbol-table + name-resolution work across
the analysis pool (:mod:`repro.perf.pool`) when the program is large
enough to benefit; results merge in source order, so parallel and serial
construction are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fortran import ast, parse_program, print_program
from .callgraph import CallGraph, build_call_graph
from .cfg import CFG, build_cfg
from .loops import LoopTree, build_loop_tree
from .symtab import SymbolTable, build_symbol_table, resolve_unit

#: fan out unit resolution only when there is enough work to amortize it
_PARALLEL_UNIT_THRESHOLD = 3


@dataclass
class UnitIR:
    unit: ast.ProgramUnit
    symtab: SymbolTable
    #: bumped on every invalidation; derived caches key on (unit, gen)
    generation: int = 0
    _cfg: CFG | None = field(default=None, repr=False)
    _loops: LoopTree | None = field(default=None, repr=False)
    #: (generation, interp.compile.LinkedUnit) -- closure-compiled code;
    #: survives invalidation via the structural-fingerprint LRU (a stale
    #: generation triggers a cheap relink, not a recompile)
    _compiled: tuple | None = field(default=None, repr=False)
    #: same pair for the vector-lowered variant of the unit (the vector
    #: engine keeps its own slot so both tiers can coexist per UnitIR)
    _vcompiled: tuple | None = field(default=None, repr=False)
    #: ((generation, symbol count), digest) memo for
    #: interp.compile.unit_fingerprint -- see its docstring for why
    #: that pair is a sound validity key
    _fp_memo: tuple | None = field(default=None, repr=False)

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = build_cfg(self.unit)
        return self._cfg

    @property
    def loops(self) -> LoopTree:
        if self._loops is None:
            self._loops = build_loop_tree(self.unit)
        return self._loops

    def invalidate(self) -> None:
        self._cfg = None
        self._loops = None
        self.generation += 1


def _resolve_one(u: ast.ProgramUnit,
                 proc_names: frozenset[str]) -> UnitIR:
    """Build one unit's symbol table and resolve its names."""
    st = build_symbol_table(u)
    resolve_unit(u, st, proc_names)
    return UnitIR(unit=u, symtab=st)


class AnalyzedProgram:
    """A whole-program container with name resolution applied."""

    def __init__(self, prog: ast.Program, parallel: bool | None = None):
        self.ast = prog
        proc_names = frozenset(u.name for u in prog.units)
        self.units: dict[str, UnitIR] = {}
        units = list(prog.units)
        if parallel is None:
            parallel = len(units) >= _PARALLEL_UNIT_THRESHOLD
        if parallel and len(units) > 1:
            from ..perf import pool
            built = pool.run_tasks(
                [lambda u=u: _resolve_one(u, proc_names) for u in units],
                parallel=True)
        else:
            built = [_resolve_one(u, proc_names) for u in units]
        # deterministic merge: source order, independent of completion order
        for u, uir in zip(units, built):
            self.units[u.name] = uir
        self._callgraph: CallGraph | None = None

    @classmethod
    def from_source(cls, text: str,
                    parallel: bool | None = None) -> "AnalyzedProgram":
        return cls(parse_program(text), parallel=parallel)

    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self._callgraph = build_call_graph(self.ast)
        return self._callgraph

    def unit(self, name: str) -> UnitIR:
        return self.units[name.upper()]

    def unit_names(self) -> list[str]:
        return list(self.units.keys())

    def generation(self, unit_name: str) -> int:
        """Current invalidation generation of one unit."""
        return self.units[unit_name.upper()].generation

    def generations(self) -> dict[str, int]:
        """Per-unit generation counters (a cheap whole-program version)."""
        return {name: u.generation for name, u in self.units.items()}

    @property
    def main_unit(self) -> UnitIR | None:
        for u in self.units.values():
            if u.unit.kind == "program":
                return u
        return None

    def source(self) -> str:
        """Pretty-printed current state of the program."""
        return print_program(self.ast)

    def invalidate(self, unit_name: str | None = None) -> None:
        """Drop derived artifacts after the AST was mutated.

        With a unit name, only that unit's artifacts (CFG, loop tree)
        are dropped and its generation advances; other units keep their
        derived state.  The call graph is always reset -- call sites may
        have moved and its reconstruction is cheap.
        """
        if unit_name is None:
            for u in self.units.values():
                u.invalidate()
        else:
            self.units[unit_name.upper()].invalidate()
        self._callgraph = None

    def reresolve(self, unit_name: str) -> None:
        """Re-run symbol construction + name resolution for one unit."""
        proc_names = frozenset(self.units.keys())
        uir = self.units[unit_name.upper()]
        uir.symtab = build_symbol_table(uir.unit)
        resolve_unit(uir.unit, uir.symtab, proc_names)
        uir.invalidate()
        self._callgraph = None
