"""AnalyzedProgram: parsed + resolved program with per-unit IR artifacts.

This is the object every higher layer (analysis, dependence, transforms,
the PED session) works from.  Artifacts are built lazily and invalidated
wholesale after an edit or transformation -- PED's "incremental" update is
re-derivation scoped by the session layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fortran import ast, parse_program, print_program
from .callgraph import CallGraph, build_call_graph
from .cfg import CFG, build_cfg
from .loops import LoopTree, build_loop_tree
from .symtab import SymbolTable, build_symbol_table, resolve_unit


@dataclass
class UnitIR:
    unit: ast.ProgramUnit
    symtab: SymbolTable
    _cfg: CFG | None = field(default=None, repr=False)
    _loops: LoopTree | None = field(default=None, repr=False)

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = build_cfg(self.unit)
        return self._cfg

    @property
    def loops(self) -> LoopTree:
        if self._loops is None:
            self._loops = build_loop_tree(self.unit)
        return self._loops

    def invalidate(self) -> None:
        self._cfg = None
        self._loops = None


class AnalyzedProgram:
    """A whole-program container with name resolution applied."""

    def __init__(self, prog: ast.Program):
        self.ast = prog
        proc_names = frozenset(u.name for u in prog.units)
        self.units: dict[str, UnitIR] = {}
        for u in prog.units:
            st = build_symbol_table(u)
            resolve_unit(u, st, proc_names)
            self.units[u.name] = UnitIR(unit=u, symtab=st)
        self._callgraph: CallGraph | None = None

    @classmethod
    def from_source(cls, text: str) -> "AnalyzedProgram":
        return cls(parse_program(text))

    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self._callgraph = build_call_graph(self.ast)
        return self._callgraph

    def unit(self, name: str) -> UnitIR:
        return self.units[name.upper()]

    def unit_names(self) -> list[str]:
        return list(self.units.keys())

    @property
    def main_unit(self) -> UnitIR | None:
        for u in self.units.values():
            if u.unit.kind == "program":
                return u
        return None

    def source(self) -> str:
        """Pretty-printed current state of the program."""
        return print_program(self.ast)

    def invalidate(self, unit_name: str | None = None) -> None:
        """Drop derived artifacts after the AST was mutated."""
        if unit_name is None:
            for u in self.units.values():
                u.invalidate()
        else:
            self.units[unit_name.upper()].invalidate()
        self._callgraph = None

    def reresolve(self, unit_name: str) -> None:
        """Re-run symbol construction + name resolution for one unit."""
        proc_names = frozenset(self.units.keys())
        uir = self.units[unit_name.upper()]
        uir.symtab = build_symbol_table(uir.unit)
        resolve_unit(uir.unit, uir.symtab, proc_names)
        uir.invalidate()
        self._callgraph = None
