"""Statement-level control-flow graph.

Every executable statement is a node (keyed by its AST ``uid``); two
sentinel nodes ``ENTRY`` and ``EXIT`` bracket the unit.  Structured
constructs contribute their natural edges; GOTOs, arithmetic IFs and
computed GOTOs contribute label edges.  The CFG underlies reaching
definitions, liveness, KILL analysis and control-dependence computation.

A statement-level graph (rather than basic blocks) keeps the analyses
simple; for the program sizes PED handles interactively this is never the
bottleneck, and :func:`basic_blocks` groups nodes into maximal blocks for
clients that want them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fortran import ast

ENTRY = -1
EXIT = -2

_EXECUTABLE_EXCLUDES = (
    ast.TypeDecl, ast.DimensionStmt, ast.CommonStmt, ast.ParameterStmt,
    ast.DataStmt, ast.SaveStmt, ast.ExternalStmt, ast.IntrinsicStmt,
    ast.ImplicitStmt, ast.FormatStmt, ast.EquivalenceStmt,
)


def is_executable(s: ast.Stmt) -> bool:
    if isinstance(s, ast.OpaqueStmt):
        return not s.decl
    return not isinstance(s, _EXECUTABLE_EXCLUDES)


class CFGError(Exception):
    pass


@dataclass
class CFG:
    """Control-flow graph over statement uids."""

    unit_name: str
    #: uid -> statement (excluding sentinels)
    stmts: dict[int, ast.Stmt] = field(default_factory=dict)
    succs: dict[int, set[int]] = field(default_factory=dict)
    preds: dict[int, set[int]] = field(default_factory=dict)

    def add_node(self, uid: int) -> None:
        self.succs.setdefault(uid, set())
        self.preds.setdefault(uid, set())

    def add_edge(self, a: int, b: int) -> None:
        self.add_node(a)
        self.add_node(b)
        self.succs[a].add(b)
        self.preds[b].add(a)

    @property
    def nodes(self) -> list[int]:
        return list(self.succs.keys())

    def reachable(self) -> set[int]:
        seen = {ENTRY}
        work = [ENTRY]
        while work:
            n = work.pop()
            for m in self.succs.get(n, ()):
                if m not in seen:
                    seen.add(m)
                    work.append(m)
        return seen

    def rpo(self) -> list[int]:
        """Reverse post-order from ENTRY (good iteration order forward)."""
        seen: set[int] = set()
        order: list[int] = []

        def dfs(n: int) -> None:
            stack = [(n, iter(sorted(self.succs.get(n, ()))))]
            seen.add(n)
            while stack:
                node, it = stack[-1]
                advanced = False
                for m in it:
                    if m not in seen:
                        seen.add(m)
                        stack.append((m, iter(sorted(self.succs.get(m, ())))))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        dfs(ENTRY)
        return list(reversed(order))


def build_cfg(unit: ast.ProgramUnit) -> CFG:
    """Construct the CFG for one program unit."""
    cfg = CFG(unit_name=unit.name)
    cfg.add_node(ENTRY)
    cfg.add_node(EXIT)

    # Label resolution: label -> uid of the labelled executable statement.
    labels: dict[int, int] = {}
    for s, _ in ast.walk_stmts(unit.body):
        if s.label is not None and is_executable(s):
            labels[s.label] = s.uid
        if is_executable(s):
            cfg.stmts[s.uid] = s
            cfg.add_node(s.uid)

    def target(label: int, line: int) -> int:
        if label not in labels:
            raise CFGError(f"{unit.name}: line {line}: unknown label {label}")
        return labels[label]

    def wire(body: list[ast.Stmt], entry_from: list[int],
             after: "list[int] | int") -> list[int]:
        """Wire a statement list.

        ``entry_from`` are nodes that flow into the head of ``body``.
        ``after`` is where control goes when the list falls through: either
        a node id or a list collecting dangling exits (resolved by caller).
        Returns the list of dangling exits when ``after`` is a list.
        """
        exits = entry_from
        for s in body:
            if not is_executable(s):
                continue
            for p in exits:
                cfg.add_edge(p, s.uid)
            exits = _wire_stmt(s)
        if isinstance(after, list):
            after.extend(exits)
            return after
        for p in exits:
            cfg.add_edge(p, after)
        return []

    def _wire_stmt(s: ast.Stmt) -> list[int]:
        """Wire the inside of a statement; return its fall-through exits."""
        if isinstance(s, ast.DoLoop):
            # header -> body head; body tail -> header; header -> after.
            tail: list[int] = []
            wire(s.body, [s.uid], tail)
            for t in tail:
                cfg.add_edge(t, s.uid)
            return [s.uid]
        if isinstance(s, ast.IfBlock):
            exits: list[int] = []
            wire(s.then_body, [s.uid], exits)
            for _, arm in s.elifs:
                wire(arm, [s.uid], exits)
            if s.else_body:
                wire(s.else_body, [s.uid], exits)
            else:
                exits.append(s.uid)
            return exits
        if isinstance(s, ast.LogicalIf):
            inner_exits = []
            inner = s.stmt
            cfg.stmts[inner.uid] = inner
            cfg.add_edge(s.uid, inner.uid)
            inner_exits = _wire_stmt(inner)
            return [s.uid] + inner_exits
        if isinstance(s, ast.Goto):
            cfg.add_edge(s.uid, target(s.target, s.line))
            return []
        if isinstance(s, ast.ComputedGoto):
            for lab in s.targets:
                cfg.add_edge(s.uid, target(lab, s.line))
            return [s.uid]  # falls through when expr out of range
        if isinstance(s, ast.ArithIf):
            for lab in (s.neg_label, s.zero_label, s.pos_label):
                cfg.add_edge(s.uid, target(lab, s.line))
            return []
        if isinstance(s, (ast.Return, ast.Stop)):
            cfg.add_edge(s.uid, EXIT)
            return []
        if isinstance(s, ast.CallStmt) and s.alt_labels:
            # Alternate returns: the callee may branch to any *label.
            for lab in s.alt_labels:
                cfg.add_edge(s.uid, target(lab, s.line))
            return [s.uid]
        return [s.uid]

    wire(unit.body, [ENTRY], EXIT)
    # A unit that reaches its END also exits.
    return cfg


@dataclass
class BasicBlock:
    id: int
    stmts: list[int]


def basic_blocks(cfg: CFG) -> list[BasicBlock]:
    """Group CFG nodes into maximal single-entry single-exit chains."""
    leaders: set[int] = {ENTRY, EXIT}
    for n in cfg.nodes:
        if len(cfg.preds.get(n, ())) != 1:
            leaders.add(n)
        else:
            (p,) = cfg.preds[n]
            if len(cfg.succs.get(p, ())) != 1:
                leaders.add(n)
    blocks: list[BasicBlock] = []
    seen: set[int] = set()
    for n in sorted(leaders & set(cfg.nodes), key=lambda x: (x < 0, x)):
        if n in seen:
            continue
        chain = [n]
        seen.add(n)
        cur = n
        while True:
            succ = cfg.succs.get(cur, set())
            if len(succ) != 1:
                break
            (m,) = succ
            if m in leaders or m in seen:
                break
            chain.append(m)
            seen.add(m)
            cur = m
        blocks.append(BasicBlock(len(blocks), chain))
    return blocks


# --------------------------------------------------------------------------
# Dominators / postdominators (used by control dependence)
# --------------------------------------------------------------------------

def dominators(cfg: CFG, entry: int = ENTRY,
               backward: bool = False) -> dict[int, set[int]]:
    """Classic iterative dominator (or postdominator) sets.

    With ``backward=True`` computes postdominators over reversed edges
    with ``entry`` = EXIT.
    """
    edges_in = cfg.succs if backward else cfg.preds
    nodes = [n for n in cfg.nodes]
    universe = set(nodes)
    dom: dict[int, set[int]] = {n: set(universe) for n in nodes}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for n in nodes:
            if n == entry:
                continue
            preds = [p for p in edges_in.get(n, ()) if p in dom]
            if not preds:
                new = {n}
            else:
                new = set(universe)
                for p in preds:
                    new &= dom[p]
                new.add(n)
            if new != dom[n]:
                dom[n] = new
                changed = True
    return dom


def immediate_dominators(cfg: CFG, entry: int = ENTRY,
                         backward: bool = False) -> dict[int, int | None]:
    dom = dominators(cfg, entry, backward)
    idom: dict[int, int | None] = {}
    for n, ds in dom.items():
        if n == entry:
            idom[n] = None
            continue
        strict = ds - {n}
        # The immediate dominator is the strict dominator that every
        # other strict dominator dominates (the deepest one).
        best = None
        for c in strict:
            if all(o == c or o in dom[c] for o in strict):
                best = c
                break
        idom[n] = best
    return idom
