"""Loop tree: the hierarchy of DO loops in a program unit.

PED's progressive disclosure is keyed to the *current loop*; the loop tree
gives every loop a stable ordinal id (``L1``, ``L2``, ... in source order),
its nesting depth, parent/children links, and the statements it contains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fortran import ast


@dataclass
class LoopInfo:
    """One DO loop plus its position in the loop tree."""

    loop: ast.DoLoop
    unit_name: str
    ordinal: int                       # 1-based, source order
    depth: int                         # 0 = outermost
    parent: "LoopInfo | None" = None
    children: list["LoopInfo"] = field(default_factory=list)

    @property
    def id(self) -> str:
        return f"L{self.ordinal}"

    @property
    def uid(self) -> int:
        return self.loop.uid

    @property
    def var(self) -> str:
        return self.loop.var

    @property
    def line(self) -> int:
        return self.loop.line

    def nest_vars(self) -> list[str]:
        """Induction variables from the outermost enclosing loop inward."""
        chain: list[LoopInfo] = []
        cur: LoopInfo | None = self
        while cur is not None:
            chain.append(cur)
            cur = cur.parent
        return [li.var for li in reversed(chain)]

    def nest(self) -> list["LoopInfo"]:
        """Enclosing loops outermost-first, ending with this loop."""
        chain: list[LoopInfo] = []
        cur: LoopInfo | None = self
        while cur is not None:
            chain.append(cur)
            cur = cur.parent
        return list(reversed(chain))

    def statements(self) -> list[ast.Stmt]:
        return ast.statements_of(self.loop)

    def inner_loops(self) -> list["LoopInfo"]:
        out: list[LoopInfo] = []
        work = list(self.children)
        while work:
            li = work.pop(0)
            out.append(li)
            work.extend(li.children)
        return out

    def is_perfect_nest_with(self) -> "LoopInfo | None":
        """The single inner loop if this nest level is perfectly nested."""
        body = [s for s in self.loop.body if not isinstance(s, ast.Continue)]
        if len(body) == 1 and isinstance(body[0], ast.DoLoop):
            for c in self.children:
                if c.loop is body[0]:
                    return c
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"LoopInfo({self.id} {self.var} line {self.line} "
                f"depth {self.depth})")


@dataclass
class LoopTree:
    unit_name: str
    roots: list[LoopInfo] = field(default_factory=list)
    by_uid: dict[int, LoopInfo] = field(default_factory=dict)
    by_id: dict[str, LoopInfo] = field(default_factory=dict)

    def all_loops(self) -> list[LoopInfo]:
        return sorted(self.by_uid.values(), key=lambda li: li.ordinal)

    def find(self, key: "str | int | ast.DoLoop | LoopInfo") -> LoopInfo:
        if isinstance(key, LoopInfo):
            return key
        if isinstance(key, ast.DoLoop):
            return self.by_uid[key.uid]
        if isinstance(key, int):
            return self.by_uid[key]
        return self.by_id[key.upper()]

    def enclosing(self, stmt_uid: int) -> LoopInfo | None:
        """Innermost loop containing the statement with the given uid."""
        best: LoopInfo | None = None
        for li in self.all_loops():
            if any(s.uid == stmt_uid for s in li.statements()):
                if best is None or li.depth > best.depth:
                    best = li
        return best


def build_loop_tree(unit: ast.ProgramUnit) -> LoopTree:
    tree = LoopTree(unit_name=unit.name)
    counter = [0]

    def rec(body: list[ast.Stmt], parent: LoopInfo | None, depth: int) -> None:
        for s in body:
            if isinstance(s, ast.DoLoop):
                counter[0] += 1
                li = LoopInfo(loop=s, unit_name=unit.name,
                              ordinal=counter[0], depth=depth, parent=parent)
                if parent is None:
                    tree.roots.append(li)
                else:
                    parent.children.append(li)
                tree.by_uid[s.uid] = li
                tree.by_id[li.id] = li
                rec(s.body, li, depth + 1)
            else:
                for blk in s.blocks():
                    rec(blk, parent, depth)

    rec(unit.body, None, 0)
    return tree
