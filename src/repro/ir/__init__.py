"""Program representation: symbol tables, CFG, loop tree, call graph."""

from .callgraph import CallGraph, CallSite, build_call_graph
from .cfg import CFG, ENTRY, EXIT, basic_blocks, build_cfg, dominators, \
    immediate_dominators, is_executable
from .loops import LoopInfo, LoopTree, build_loop_tree
from .program import AnalyzedProgram, UnitIR
from .symtab import SemanticError, Symbol, SymbolTable, build_symbol_table, \
    resolve_unit

__all__ = [
    "AnalyzedProgram", "UnitIR",
    "CallGraph", "CallSite", "build_call_graph",
    "CFG", "ENTRY", "EXIT", "build_cfg", "basic_blocks", "dominators",
    "immediate_dominators", "is_executable",
    "LoopInfo", "LoopTree", "build_loop_tree",
    "Symbol", "SymbolTable", "SemanticError", "build_symbol_table",
    "resolve_unit",
]
