"""Symbol tables and name resolution.

Fortran 77 name binding is simple but idiosyncratic: undeclared names get
implicit types from their first letter (I-N integer, everything else real,
unless an ``IMPLICIT`` statement overrides), arrays must be declared, and a
``NAME(args)`` reference is an array element exactly when ``NAME`` is
declared with dimensions -- otherwise it is a function call.

:func:`build_symbol_table` digests a unit's declarations;
:func:`resolve_unit` then rewrites every ambiguous :class:`~repro.fortran.
ast.NameRef` in the unit body into an ``ArrayRef`` or ``FuncRef``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fortran import ast


class SemanticError(Exception):
    pass


@dataclass
class Symbol:
    name: str
    type_name: str                       # INTEGER REAL DOUBLEPRECISION ...
    dims: tuple[ast.DimSpec, ...] = ()   # () for scalars
    #: "local" | "argument" | "common" | "parameter" | "function"
    storage: str = "local"
    common_block: str | None = None
    param_value: ast.Expr | None = None  # for PARAMETER constants
    declared: bool = False               # explicitly typed?
    saved: bool = False
    external: bool = False

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def rank(self) -> int:
        return len(self.dims)


@dataclass
class SymbolTable:
    unit_name: str
    symbols: dict[str, Symbol] = field(default_factory=dict)
    implicit_none: bool = False
    #: letter -> type name, per IMPLICIT rules (default F77 rules applied).
    implicit_map: dict[str, str] = field(default_factory=dict)
    #: common block name -> ordered member names
    common_blocks: dict[str, list[str]] = field(default_factory=dict)

    def implicit_type(self, name: str) -> str:
        c = name[0].upper()
        if c in self.implicit_map:
            return self.implicit_map[c]
        return "INTEGER" if "I" <= c <= "N" else "REAL"

    def get(self, name: str) -> Symbol | None:
        return self.symbols.get(name.upper())

    def lookup(self, name: str) -> Symbol:
        """Get a symbol, creating an implicitly-typed scalar if unknown."""
        key = name.upper()
        sym = self.symbols.get(key)
        if sym is None:
            if self.implicit_none:
                raise SemanticError(
                    f"{self.unit_name}: {key} used without declaration "
                    "under IMPLICIT NONE")
            sym = Symbol(key, self.implicit_type(key))
            self.symbols[key] = sym
        return sym

    def is_array(self, name: str) -> bool:
        sym = self.get(name)
        return sym is not None and sym.is_array

    def arrays(self) -> list[Symbol]:
        return [s for s in self.symbols.values() if s.is_array]

    def scalars(self) -> list[Symbol]:
        return [s for s in self.symbols.values()
                if not s.is_array and s.storage != "function"]


_DEFAULT_LETTERS = {c: ("INTEGER" if "I" <= c <= "N" else "REAL")
                    for c in "ABCDEFGHIJKLMNOPQRSTUVWXYZ"}


def build_symbol_table(unit: ast.ProgramUnit) -> SymbolTable:
    """Collect declarations from a program unit into a symbol table."""
    st = SymbolTable(unit_name=unit.name)

    def ensure(name: str) -> Symbol:
        key = name.upper()
        if key not in st.symbols:
            st.symbols[key] = Symbol(key, st.implicit_type(key))
        return st.symbols[key]

    # IMPLICIT statements first: they govern later implicit typing.
    for s, _ in ast.walk_stmts(unit.body):
        if isinstance(s, ast.ImplicitStmt):
            if s.rules is None:
                st.implicit_none = True
            else:
                for tname, ranges in s.rules:
                    for a, b in ranges:
                        for o in range(ord(a[0]), ord(b[0]) + 1):
                            st.implicit_map[chr(o)] = tname

    for s, _ in ast.walk_stmts(unit.body):
        if isinstance(s, ast.TypeDecl):
            for ent in s.entities:
                sym = ensure(ent.name)
                sym.type_name = s.type_name
                sym.declared = True
                if ent.dims:
                    sym.dims = ent.dims
        elif isinstance(s, ast.DimensionStmt):
            for ent in s.entities:
                sym = ensure(ent.name)
                sym.dims = ent.dims
        elif isinstance(s, ast.CommonStmt):
            for block, ents in s.blocks_:
                members = st.common_blocks.setdefault(block, [])
                for ent in ents:
                    sym = ensure(ent.name)
                    sym.storage = "common"
                    sym.common_block = block
                    if ent.dims:
                        sym.dims = ent.dims
                    members.append(ent.name.upper())
        elif isinstance(s, ast.ParameterStmt):
            for name, value in s.defs:
                sym = ensure(name)
                sym.storage = "parameter"
                sym.param_value = value
        elif isinstance(s, ast.SaveStmt):
            for name in s.names:
                ensure(name).saved = True
        elif isinstance(s, ast.ExternalStmt):
            for name in s.names:
                ensure(name).external = True

    for p in unit.params:
        sym = ensure(p)
        if sym.storage == "local":
            sym.storage = "argument"

    if unit.kind == "function":
        sym = ensure(unit.name)
        sym.storage = "function"
        if unit.result_type:
            sym.type_name = unit.result_type

    return st


def resolve_unit(unit: ast.ProgramUnit, st: SymbolTable,
                 procedure_names: frozenset[str] = frozenset()) -> None:
    """Rewrite ``NameRef`` nodes into ``ArrayRef``/``FuncRef`` in place.

    ``procedure_names`` are the other units in the file; a ``NameRef``
    whose name is not a declared array becomes a function reference.
    """

    def fix(e: ast.Expr) -> ast.Expr:
        if isinstance(e, ast.NameRef):
            if st.is_array(e.name):
                return ast.ArrayRef(e.name, e.args)
            # Known intrinsics were classified at parse time, so whatever
            # remains is a user-defined (external) function.
            return ast.FuncRef(e.name, e.args, intrinsic=False)
        return e

    def fix_expr(e: ast.Expr) -> ast.Expr:
        return ast.map_expr(e, fix)

    for s, _ in ast.walk_stmts(unit.body):
        _resolve_stmt(s, fix_expr)

    # Materialize implicit symbols for every referenced name so later
    # analyses (kills, dependence) see them; function references are the
    # exception -- they are not data symbols.
    def note(e: ast.Expr) -> None:
        for node in ast.walk_expr(e):
            if isinstance(node, (ast.VarRef, ast.ArrayRef)):
                st.lookup(node.name)

    for s, _ in ast.walk_stmts(unit.body):
        for e in s.exprs():
            note(e)
        if isinstance(s, ast.Assign):
            note(s.target)
        elif isinstance(s, ast.DoLoop):
            st.lookup(s.var)
        elif isinstance(s, (ast.ReadStmt,)):
            for it in s.items:
                note(it)
        elif isinstance(s, ast.OpaqueStmt):
            for n in s.mods:
                st.lookup(n)


def _resolve_stmt(s: ast.Stmt, fix) -> None:
    if isinstance(s, ast.Assign):
        s.value = fix(s.value)
        tgt = fix(s.target)
        # An assignment target must be a variable or array element; a
        # FuncRef target means the symbol table lacked the array (e.g. a
        # function-name result variable) -- keep it as ArrayRef-like only
        # when it was an array.
        if isinstance(tgt, ast.FuncRef):
            tgt = ast.ArrayRef(tgt.name, tgt.args)
        s.target = tgt
    elif isinstance(s, ast.DoLoop):
        s.start = fix(s.start)
        s.end = fix(s.end)
        if s.step is not None:
            s.step = fix(s.step)
    elif isinstance(s, ast.IfBlock):
        s.cond = fix(s.cond)
        s.elifs = [(fix(c), b) for c, b in s.elifs]
    elif isinstance(s, ast.LogicalIf):
        s.cond = fix(s.cond)
    elif isinstance(s, ast.ArithIf):
        s.expr = fix(s.expr)
    elif isinstance(s, ast.ComputedGoto):
        s.expr = fix(s.expr)
    elif isinstance(s, ast.CallStmt):
        s.args = tuple(fix(a) for a in s.args)
    elif isinstance(s, (ast.ReadStmt, ast.WriteStmt)):
        s.items = tuple(fix(i) for i in s.items)
        if isinstance(s, ast.ReadStmt):
            fixed = []
            for it in s.items:
                if isinstance(it, ast.FuncRef):
                    it = ast.ArrayRef(it.name, it.args)
                fixed.append(it)
            s.items = tuple(fixed)
    elif isinstance(s, ast.DataStmt):
        s.groups = tuple(
            (tuple(fix(t) for t in targets), values)
            for targets, values in s.groups)


# --------------------------------------------------------------------------
# Function-result assignment detection (for FUNCTION units, the unit name
# acts as a scalar result variable).
# --------------------------------------------------------------------------

def result_variable(unit: ast.ProgramUnit) -> str | None:
    return unit.name if unit.kind == "function" else None
