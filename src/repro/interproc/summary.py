"""Interprocedural side-effect analysis: MOD / REF / KILL + regular sections.

Summaries are computed bottom-up over the call graph (callees first, as in
Banning's and Callahan's formulations):

* **REF(p)** -- variables possibly read by an invocation of ``p``
  (flow-insensitive);
* **MOD(p)** -- variables possibly written (flow-insensitive);
* **KILL(p)** -- variables certainly written on *every* control-flow path
  (flow-sensitive must-analysis over the CFG);
* **bounded regular sections** (Havlak-Kennedy) -- per array, a
  per-dimension ``[lo:hi]`` bound on the accessed region, kept symbolic in
  the callee's formals so call sites can translate them into caller terms.

All sets are expressed over a procedure's *visible* names: formal
parameters and COMMON variables.  Locals are dropped at the summary
boundary (their effects are invisible to callers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.defuse import SideEffectOracle, accesses
from ..analysis.linear import LinearExpr, linearize
from ..fortran import ast
from ..ir.callgraph import CallGraph
from ..ir.cfg import ENTRY, EXIT, build_cfg
from ..ir.program import AnalyzedProgram
from ..ir.symtab import SymbolTable


@dataclass(frozen=True)
class SectionDim:
    """One dimension of a bounded regular section.

    ``lo``/``hi`` are linear forms over the procedure's visible scalars
    (and, after call-site translation, the caller's); ``None`` means
    unknown, i.e. the whole extent must be assumed.
    """

    lo: LinearExpr | None
    hi: LinearExpr | None

    @property
    def known(self) -> bool:
        return self.lo is not None and self.hi is not None

    @property
    def single(self) -> bool:
        return self.known and self.lo == self.hi

    @staticmethod
    def unknown() -> "SectionDim":
        return SectionDim(None, None)

    @staticmethod
    def exact(e: LinearExpr) -> "SectionDim":
        return SectionDim(e, e)

    def union(self, other: "SectionDim") -> "SectionDim":
        if not self.known or not other.known:
            return SectionDim.unknown()
        lo = _sym_min(self.lo, other.lo)
        hi = _sym_max(self.hi, other.hi)
        if lo is None or hi is None:
            return SectionDim.unknown()
        return SectionDim(lo, hi)


def _sym_min(a: LinearExpr, b: LinearExpr) -> LinearExpr | None:
    d = a - b
    if d.is_constant:
        return a if d.const <= 0 else b
    return None


def _sym_max(a: LinearExpr, b: LinearExpr) -> LinearExpr | None:
    d = a - b
    if d.is_constant:
        return a if d.const >= 0 else b
    return None


@dataclass(frozen=True)
class ArraySection:
    array: str
    dims: tuple[SectionDim, ...]

    def union(self, other: "ArraySection") -> "ArraySection":
        if len(self.dims) != len(other.dims):
            n = max(len(self.dims), len(other.dims))
            return ArraySection(self.array,
                                tuple(SectionDim.unknown() for _ in range(n)))
        return ArraySection(
            self.array,
            tuple(a.union(b) for a, b in zip(self.dims, other.dims)))

    def describe(self) -> str:
        parts = []
        for d in self.dims:
            if not d.known:
                parts.append("*")
            elif d.single:
                parts.append(_le_str(d.lo))
            else:
                parts.append(f"{_le_str(d.lo)}:{_le_str(d.hi)}")
        return f"{self.array}({', '.join(parts)})"


def _le_str(le: LinearExpr) -> str:
    from ..analysis.linear import to_expr
    try:
        return str(to_expr(le))
    except AssertionError:  # pragma: no cover
        return "?"


@dataclass
class ProcSummary:
    name: str
    #: names over formals + COMMON
    ref: set[str] = field(default_factory=set)
    mod: set[str] = field(default_factory=set)
    kill: set[str] = field(default_factory=set)
    #: subset of ref whose *incoming* value may be used (use not preceded
    #: by a kill on some path) -- what callers must treat as a read
    exposed_ref: set[str] = field(default_factory=set)
    #: visible arrays wholly written before any read on every invocation
    #: (interprocedural *array* kill -- the arc3d requirement)
    killed_arrays: set[str] = field(default_factory=set)
    ref_sections: dict[str, ArraySection] = field(default_factory=dict)
    mod_sections: dict[str, ArraySection] = field(default_factory=dict)
    formals: tuple[str, ...] = ()


def _loop_bound_env(loops: list[ast.DoLoop]) -> dict[str, tuple[LinearExpr | None, LinearExpr | None]]:
    env: dict[str, tuple[LinearExpr | None, LinearExpr | None]] = {}
    for lp in loops:
        lo = linearize(lp.start)
        hi = linearize(lp.end)
        env[lp.var] = (lo if lo.is_affine else None,
                       hi if hi.is_affine else None)
    return env


def _subscript_section(e: ast.Expr,
                       loop_bounds: dict[str, tuple[LinearExpr | None,
                                                    LinearExpr | None]],
                       env: dict[str, LinearExpr] | None = None,
                       visible: set[str] | None = None) -> SectionDim:
    """Bound one subscript expression over the enclosing loops' ranges.

    Symbolic terms must be *visible* to callers (formals/COMMON): a
    section expressed in a callee-local temporary is meaningless at the
    call site, so such dimensions degrade to unknown.
    """
    le = linearize(e, env)
    if not le.is_affine:
        return SectionDim.unknown()
    lo = LinearExpr.constant(le.const)
    hi = LinearExpr.constant(le.const)
    for v, c in le.terms:
        if v in loop_bounds:
            blo, bhi = loop_bounds[v]
            if blo is None or bhi is None:
                return SectionDim.unknown()
            if visible is not None and (
                    blo.variables() - visible or bhi.variables() - visible):
                return SectionDim.unknown()
            tlo, thi = blo.scale(c), bhi.scale(c)
            if c < 0:
                tlo, thi = thi, tlo
            lo = lo + tlo
            hi = hi + thi
        elif visible is None or v in visible:
            lo = lo + LinearExpr.var(v, c)
            hi = hi + LinearExpr.var(v, c)
        else:
            return SectionDim.unknown()
    return SectionDim(lo, hi)


class SummaryBuilder:
    """Computes :class:`ProcSummary` for every unit, bottom-up.

    ``reuse`` supplies still-valid summaries from a previous build (the
    scoped-invalidation path: a transformation dirtied one unit, so only
    that unit and its transitive callers need re-summarizing; everything
    else is carried over untouched).
    """

    def __init__(self, program: AnalyzedProgram,
                 reuse: dict[str, ProcSummary] | None = None):
        self.program = program
        self.callgraph: CallGraph = program.callgraph
        self.reuse = dict(reuse or {})
        self.summaries: dict[str, ProcSummary] = {}

    def _summary_for(self, name: str) -> ProcSummary:
        kept = self.reuse.get(name)
        if kept is not None:
            return kept
        return self._summarize(name)

    def build(self) -> dict[str, ProcSummary]:
        self.propagate_common_symbols()
        for name in self.callgraph.reverse_topo_order():
            if name in self.program.units:
                self.summaries[name] = self._summary_for(name)
        # Units unreachable in topo order (defensive)
        for name in self.program.units:
            if name not in self.summaries:
                self.summaries[name] = self._summary_for(name)
        return self.summaries

    def propagate_common_symbols(self) -> None:
        """Make every COMMON symbol visible in every unit that can reach
        it through a call.

        A caller that does not declare /BLK/ still shares its storage
        with callees that do; dependence and kill analysis in the caller
        must know those names (and whether they are arrays).  Symbols are
        copied (type, dims, block) into the symtabs of all transitive
        callers, to a fixpoint over the call graph.  Idempotent, and
        called explicitly by sessions that adopt a *shared* summary dict
        from the artifact store: the symtab enrichment is a program-side
        effect a cache hit must not skip.
        """
        from ..ir.symtab import Symbol
        changed = True
        rounds = 0
        while changed and rounds < 20:
            changed = False
            rounds += 1
            for cs in self.callgraph.sites:
                if cs.caller not in self.program.units \
                        or cs.callee not in self.program.units:
                    continue
                caller_st = self.program.units[cs.caller].symtab
                callee_st = self.program.units[cs.callee].symtab
                for sym in list(callee_st.symbols.values()):
                    if sym.storage != "common":
                        continue
                    if caller_st.get(sym.name) is None:
                        caller_st.symbols[sym.name] = Symbol(
                            sym.name, sym.type_name, dims=sym.dims,
                            storage="common",
                            common_block=sym.common_block,
                            declared=False)
                        changed = True

    # -- per-procedure ------------------------------------------------------

    def _visible(self, st: SymbolTable, unit: ast.ProgramUnit) -> set[str]:
        vis = {p.upper() for p in unit.params}
        vis |= {s.name for s in st.symbols.values() if s.storage == "common"}
        return vis

    def _summarize(self, name: str) -> ProcSummary:
        uir = self.program.units[name]
        unit, st = uir.unit, uir.symtab
        visible = self._visible(st, unit)
        summ = ProcSummary(name=name, formals=tuple(p.upper()
                                                    for p in unit.params))

        loop_stack: list[ast.DoLoop] = []
        param_env = _parameter_env(st)
        loop_var_names = set()
        for ss, _ in ast.walk_stmts(unit.body):
            if isinstance(ss, ast.DoLoop):
                loop_var_names.add(ss.var)
        section_visible = visible | loop_var_names | set(param_env)

        def record_ref(var: str, subs: tuple[ast.Expr, ...] | None,
                       write: bool) -> None:
            var = var.upper()
            if var not in visible:
                return
            target = summ.mod if write else summ.ref
            target.add(var)
            sym = st.get(var)
            if sym is None or not sym.is_array:
                return
            secs = summ.mod_sections if write else summ.ref_sections
            bounds = _loop_bound_env(loop_stack)
            if subs is None:
                sec = ArraySection(var, tuple(SectionDim.unknown()
                                              for _ in sym.dims))
            else:
                sec = ArraySection(var, tuple(
                    _subscript_section(sub, bounds, param_env,
                                       section_visible)
                    for sub in subs))
            prev = secs.get(var)
            secs[var] = sec if prev is None else prev.union(sec)

        def visit(body: list[ast.Stmt]) -> None:
            for s in body:
                if isinstance(s, ast.CallStmt) \
                        and s.name in self.summaries:
                    self._apply_callee(s.name, s.args, st, record_ref)
                else:
                    for a in accesses(s, st, _NullOracle()):
                        if isinstance(a.ref, ast.ArrayRef):
                            subs = a.ref.subscripts
                        elif isinstance(a.ref, ast.VarRef):
                            subs = ()
                        else:
                            subs = None
                        record_ref(a.name, subs, a.is_def)
                    # user function calls inside expressions
                    for e in s.exprs():
                        for node in ast.walk_expr(e):
                            if isinstance(node, ast.FuncRef) \
                                    and not node.intrinsic \
                                    and node.name in self.summaries:
                                self._apply_callee(node.name, node.args, st,
                                                   record_ref)
                if isinstance(s, ast.DoLoop):
                    loop_stack.append(s)
                    visit(s.body)
                    loop_stack.pop()
                else:
                    for blk in s.blocks():
                        visit(blk)

        visit(unit.body)
        summ.kill = self._compute_kill(uir, visible)
        summ.exposed_ref = self._compute_exposed(uir, visible) & summ.ref
        summ.killed_arrays = self._compute_killed_arrays(uir, visible)
        summ.exposed_ref -= summ.killed_arrays
        return summ

    def _compute_killed_arrays(self, uir, visible: set[str]) -> set[str]:
        """Arrays wholly written before any read (procedure-level array
        kill, via the section coverage scan)."""
        from ..analysis.arraykills import BodyArrayScan
        param_env = _parameter_env(uir.symtab)

        def call_sections(stmt):
            return call_section_triples(self.summaries, uir.symtab,
                                        stmt.name, stmt.args)

        try:
            scan = BodyArrayScan(uir.symtab, _NullOracle(), param_env,
                                 call_sections)
            scan.scan(uir.unit.body)
        except Exception:
            return set()
        return scan.covered_arrays() & visible

    def _compute_exposed(self, uir, visible: set[str]) -> set[str]:
        """Upward-exposed uses: variables live on entry to the unit."""
        from ..analysis.defuse import compute_liveness
        from .oracle import InterproceduralOracle
        try:
            oracle = InterproceduralOracle(self.summaries)
            live_in, _ = compute_liveness(build_cfg(uir.unit), uir.symtab,
                                          oracle, live_at_exit=set())
        except Exception:
            return set(visible)
        return live_in.get(ENTRY, set()) & visible

    def _apply_callee(self, callee: str, args: tuple[ast.Expr, ...],
                      caller_st: SymbolTable, record_ref) -> None:
        """Translate a callee's summary through a call site."""
        csum = self.summaries.get(callee)
        if csum is None:
            return
        binding = _bind_formals(csum.formals, args)
        for kind, names, secs in (("ref", csum.ref, csum.ref_sections),
                                  ("mod", csum.mod, csum.mod_sections)):
            for v in names:
                actual = binding.get(v)
                if actual is not None:
                    base = _base_name(actual)
                    if base is None:
                        continue
                    sec = secs.get(v)
                    subs = _translate_section_subs(sec, binding)
                    record_ref(base, subs, kind == "mod")
                else:
                    # COMMON variable: same name in caller
                    sec = secs.get(v)
                    subs = _translate_section_subs(sec, binding)
                    record_ref(v, subs, kind == "mod")
        # subscripts of actual args are read by evaluating the call
        for a in args:
            for node in ast.walk_expr(a):
                if isinstance(node, ast.ArrayRef):
                    for sub in node.subscripts:
                        for r in ast.walk_expr(sub):
                            if isinstance(r, ast.VarRef):
                                record_ref(r.name, (), False)
                            elif isinstance(r, ast.ArrayRef):
                                record_ref(r.name, None, False)

    def _compute_kill(self, uir, visible: set[str]) -> set[str]:
        """Flow-sensitive KILL: must-defined on every path entry->exit."""
        unit, st = uir.unit, uir.symtab
        try:
            cfg = build_cfg(unit)
        except Exception:
            return set()
        must: dict[int, set[str]] = {}
        for uid, s in cfg.stmts.items():
            m: set[str] = set()
            if isinstance(s, ast.CallStmt) and s.name in self.summaries:
                csum = self.summaries[s.name]
                binding = _bind_formals(csum.formals, s.args)
                for v in csum.kill:
                    actual = binding.get(v)
                    if actual is None:
                        m.add(v)          # COMMON name passes through
                    else:
                        base = _base_name(actual)
                        sym = st.get(base) if base else None
                        if base and sym is not None and not sym.is_array:
                            m.add(base)
            else:
                for a in accesses(s, st, _NullOracle()):
                    if a.is_def and a.must:
                        m.add(a.name)
            must[uid] = m

        # Forward must-analysis: KILLed-so-far = intersection over preds.
        universe = {s.name for s in st.symbols.values()}
        kin: dict[int, set[str]] = {n: set(universe) for n in cfg.nodes}
        kout: dict[int, set[str]] = {n: set(universe) for n in cfg.nodes}
        kin[ENTRY] = set()
        kout[ENTRY] = set()
        changed = True
        while changed:
            changed = False
            for n in cfg.rpo():
                if n == ENTRY:
                    continue
                preds = list(cfg.preds.get(n, ()))
                new_in = set(universe)
                for p in preds:
                    new_in &= kout[p]
                if not preds:
                    new_in = set()
                new_out = new_in | must.get(n, set())
                if new_in != kin[n] or new_out != kout[n]:
                    kin[n] = new_in
                    kout[n] = new_out
                    changed = True
        return (kin[EXIT] & visible)


class _NullOracle(SideEffectOracle):
    """No call effects: calls handled explicitly by the summary builder."""

    def call_effects(self, caller_symtab, callee, args):
        return set(), set(), set()


def _bind_formals(formals: tuple[str, ...],
                  args: tuple[ast.Expr, ...]) -> dict[str, ast.Expr]:
    return {f: a for f, a in zip(formals, args)}


def _base_name(actual: ast.Expr) -> str | None:
    if isinstance(actual, ast.VarRef):
        return actual.name
    if isinstance(actual, ast.ArrayRef):
        return actual.name  # array passed with offset: base still accessed
    return None             # expression actual: no variable modified


def _translate_section_subs(sec: ArraySection | None,
                            binding: dict[str, ast.Expr]
                            ) -> tuple[ast.Expr, ...] | None:
    """Render a callee section as caller-side subscript expressions.

    Single-element dimensions become real subscript expressions that the
    elementwise dependence tests can reason about (this is how a call
    writing ``FLD(:, LAT)`` gets a testable ``LAT`` subscript).  Ranged or
    untranslatable dimensions become a per-(array, dim) placeholder
    symbol: structurally identical at source and sink, it cancels in the
    dependence equation and so imposes *no* independence constraint for
    that dimension -- the conservative direction.  The ``%`` in the
    placeholder name cannot appear in user identifiers, so capture is
    impossible.
    """
    if sec is None:
        return None
    from ..analysis.linear import to_expr
    env = {f: linearize(a) for f, a in binding.items()}
    subs: list[ast.Expr] = []
    for k, d in enumerate(sec.dims, 1):
        le = _substitute_linear(d.lo, env) if d.single else None
        if le is not None:
            subs.append(to_expr(le))
        else:
            subs.append(ast.VarRef(f"{sec.array}%{k}"))
    return tuple(subs)


def _substitute_linear(le: LinearExpr,
                       env: dict[str, LinearExpr]) -> LinearExpr | None:
    out = LinearExpr.constant(le.const)
    for v, c in le.terms:
        if v in env:
            sub = env[v]
            if not sub.is_affine:
                return None
            out = out + sub.scale(c)
        else:
            out = out + LinearExpr.var(v, c)
    if le.residue:
        return None
    return out


def _parameter_env(st: SymbolTable) -> dict[str, LinearExpr]:
    """PARAMETER constants as a linearizer environment."""
    env: dict[str, LinearExpr] = {}
    for sym in st.symbols.values():
        if sym.storage == "parameter" and sym.param_value is not None:
            le = linearize(sym.param_value)
            if le.is_constant:
                env[sym.name] = le
    return env


def call_section_triples(summaries: dict[str, ProcSummary],
                         caller_st: SymbolTable, callee: str,
                         args: tuple[ast.Expr, ...]):
    """Call side effects as ``(array, region, is_write)`` triples for the
    array-kill scan (regions are per-dimension Bound tuples in caller
    terms).

    Write regions are supplied only for the callee's *killed* arrays --
    those are must-writes, safe to use as coverage; other writes appear
    with an unknown region.  Reads of killed arrays are omitted: they
    consume the callee's own writes, not the caller's incoming values.
    Returns ``None`` for procedures without summaries.
    """
    from ..analysis.arraykills import Bound
    summ = summaries.get(callee.upper())
    if summ is None:
        return None
    binding = _bind_formals(summ.formals, args)
    env = {f: linearize(a) for f, a in binding.items()}

    def base_of(v: str) -> str | None:
        if v in binding:
            return _base_name(binding[v])
        return v

    def region_of(sec: ArraySection | None):
        if sec is None:
            return None
        dims = []
        for d in sec.dims:
            if not d.known:
                dims.append(Bound(None, None))
                continue
            lo = _substitute_linear(d.lo, env)
            hi = _substitute_linear(d.hi, env)
            dims.append(Bound(lo, hi))
        return tuple(dims)

    out = []
    for v in sorted(summ.mod):
        base = base_of(v)
        if base is None:
            continue
        sym = caller_st.get(base)
        if sym is None or not sym.is_array:
            continue
        region = region_of(summ.mod_sections.get(v)) \
            if v in summ.killed_arrays else None
        out.append((base.upper(), region, True))
    for v in sorted(summ.ref):
        if v in summ.killed_arrays:
            continue
        base = base_of(v)
        if base is None:
            continue
        sym = caller_st.get(base)
        if sym is None or not sym.is_array:
            continue
        out.append((base.upper(), region_of(summ.ref_sections.get(v)),
                    False))
    return out
