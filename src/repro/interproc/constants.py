"""Interprocedural constant propagation.

Constants are inherited from a procedure's callers: when *every* call site
passes the same compile-time constant for a formal parameter, that formal
is constant inside the callee (the "interprocedural constants are
inherited from a procedure's callers and directly incorporated into the
intraprocedural constants" of Section 4.1).  Propagation runs top-down
over the call graph until a fixpoint, evaluating each caller with its own
inherited constants.
"""

from __future__ import annotations

from ..analysis.constants import BOTTOM, TOP, Value, eval_const, \
    propagate_constants
from ..analysis.defuse import SideEffectOracle
from ..fortran import ast
from ..ir.program import AnalyzedProgram


def interprocedural_constants(program: AnalyzedProgram,
                              oracle: SideEffectOracle | None = None,
                              max_rounds: int = 10
                              ) -> dict[str, dict[str, Value]]:
    """Per-unit inherited constant environments (formals only).

    Returns ``unit name -> {formal name -> constant}`` containing only
    concrete constants (TOP/BOTTOM entries are dropped).
    """
    cg = program.callgraph
    inherited: dict[str, dict[str, Value]] = {n: {} for n in program.units}

    for _ in range(max_rounds):
        changed = False
        # Evaluate every caller with current inherited constants.
        lattice: dict[str, dict[str, Value]] = {n: {} for n in program.units}
        for name, uir in program.units.items():
            cmap = propagate_constants(uir.cfg, uir.symtab, oracle,
                                       inherited=inherited.get(name))
            for cs in cg.sites_in(name):
                if cs.callee not in program.units:
                    continue
                callee_unit = program.units[cs.callee].unit
                env = cmap.const_env(cs.stmt.uid)
                for formal, actual in zip(callee_unit.params, cs.args):
                    v = eval_const(actual, env)
                    cur = lattice[cs.callee].get(formal.upper(), TOP)
                    new = _meet(cur, v)
                    lattice[cs.callee][formal.upper()] = new
        for callee, envs in lattice.items():
            concrete = {k: v for k, v in envs.items()
                        if v is not TOP and v is not BOTTOM}
            if concrete != inherited[callee]:
                inherited[callee] = concrete
                changed = True
        if not changed:
            break
    return inherited


def _meet(a: Value, b: Value) -> Value:
    if a is TOP:
        return b
    if b is TOP:
        return a
    if a is BOTTOM or b is BOTTOM:
        return BOTTOM
    if a == b:
        return a
    return BOTTOM
