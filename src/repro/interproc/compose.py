"""Composition-Editor checks (Section 3.2, "Other").

The ParaScope Composition Editor compares procedure definitions against
their call sites.  Workshop users found several real bugs this way, and
asked for two more checks, all implemented here:

* call/definition agreement: argument count and (simple) type matching;
* COMMON block shape consistency across the units that declare it;
* static array bounds checking for constant subscripts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.constants import eval_const
from ..fortran import ast
from ..ir.program import AnalyzedProgram
from ..ir.symtab import SymbolTable


@dataclass(frozen=True)
class Diagnostic:
    kind: str      # "arg-count" | "arg-type" | "common-shape" | "bounds"
    unit: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.unit}:{self.line}: {self.message}"


_NUMERIC = {"INTEGER", "REAL", "DOUBLEPRECISION"}


def _expr_type(e: ast.Expr, st: SymbolTable) -> str | None:
    if isinstance(e, ast.IntConst):
        return "INTEGER"
    if isinstance(e, ast.RealConst):
        return "DOUBLEPRECISION" if "D" in e.text.upper() else "REAL"
    if isinstance(e, ast.LogicalConst):
        return "LOGICAL"
    if isinstance(e, ast.StringConst):
        return "CHARACTER"
    if isinstance(e, (ast.VarRef, ast.ArrayRef)):
        sym = st.get(e.name)
        return sym.type_name if sym else None
    if isinstance(e, ast.UnOp):
        return _expr_type(e.operand, st)
    if isinstance(e, ast.BinOp):
        if e.op.startswith("."):
            return "LOGICAL"
        lt = _expr_type(e.left, st)
        rt = _expr_type(e.right, st)
        order = ["INTEGER", "REAL", "DOUBLEPRECISION"]
        if lt in order and rt in order:
            return order[max(order.index(lt), order.index(rt))]
        return lt or rt
    if isinstance(e, ast.FuncRef):
        return None  # would need result types; skip
    return None


def check_call_interfaces(program: AnalyzedProgram) -> list[Diagnostic]:
    """Verify every call site against its callee's definition."""
    out: list[Diagnostic] = []
    for cs in program.callgraph.sites:
        if cs.callee not in program.units:
            continue
        callee = program.units[cs.callee].unit
        callee_st = program.units[cs.callee].symtab
        caller_st = program.units[cs.caller].symtab
        if len(cs.args) != len(callee.params):
            out.append(Diagnostic(
                "arg-count", cs.caller, cs.line,
                f"call to {cs.callee} passes {len(cs.args)} argument(s); "
                f"definition has {len(callee.params)}"))
            continue
        for i, (actual, formal) in enumerate(zip(cs.args, callee.params), 1):
            at = _expr_type(actual, caller_st)
            fsym = callee_st.get(formal)
            ft = fsym.type_name if fsym else None
            if at is None or ft is None:
                continue
            if at != ft and not (at in _NUMERIC and ft in _NUMERIC
                                 and at == ft):
                if at != ft:
                    out.append(Diagnostic(
                        "arg-type", cs.caller, cs.line,
                        f"call to {cs.callee}: argument {i} is {at} "
                        f"but formal {formal} is {ft}"))
    return out


def _common_shape(st: SymbolTable, block: str) -> list[tuple[str, int]]:
    """(member name, element count or -1 if symbolic) for a COMMON block."""
    shape: list[tuple[str, int]] = []
    for member in st.common_blocks.get(block, []):
        sym = st.get(member)
        count = 1
        if sym is not None and sym.is_array:
            count = 1
            for d in sym.dims:
                lo = eval_const(d.lower, {})
                hi = eval_const(d.upper, {}) if d.upper is not None else None
                if isinstance(lo, int) and isinstance(hi, int):
                    count *= (hi - lo + 1)
                else:
                    count = -1
                    break
        shape.append((member, count))
    return shape


def check_common_blocks(program: AnalyzedProgram) -> list[Diagnostic]:
    """COMMON blocks must have the same total shape in every unit."""
    out: list[Diagnostic] = []
    declared: dict[str, tuple[str, list[tuple[str, int]]]] = {}
    for name, uir in program.units.items():
        for block in uir.symtab.common_blocks:
            shape = _common_shape(uir.symtab, block)
            if block not in declared:
                declared[block] = (name, shape)
                continue
            first_unit, first_shape = declared[block]
            total = sum(c for _, c in shape if c > 0)
            first_total = sum(c for _, c in first_shape if c > 0)
            symbolic = any(c < 0 for _, c in shape + first_shape)
            if not symbolic and total != first_total:
                out.append(Diagnostic(
                    "common-shape", name, uir.unit.line,
                    f"COMMON /{block or 'blank'}/ has {total} element(s) "
                    f"here but {first_total} in {first_unit}"))
    return out


def check_array_bounds(program: AnalyzedProgram) -> list[Diagnostic]:
    """Flag constant subscripts outside declared bounds."""
    out: list[Diagnostic] = []
    for name, uir in program.units.items():
        st = uir.symtab
        for s, _ in ast.walk_stmts(uir.unit.body):
            exprs = list(s.exprs())
            if isinstance(s, ast.Assign):
                exprs.append(s.target)
            for e in exprs:
                for node in ast.walk_expr(e):
                    if not isinstance(node, ast.ArrayRef):
                        continue
                    sym = st.get(node.name)
                    if sym is None or not sym.is_array:
                        continue
                    for k, (sub, dim) in enumerate(
                            zip(node.subscripts, sym.dims), 1):
                        v = eval_const(sub, {
                            nm: sy.param_value and eval_const(
                                sy.param_value, {})
                            for nm, sy in st.symbols.items()
                            if sy.storage == "parameter"})
                        if not isinstance(v, int):
                            continue
                        lo = eval_const(dim.lower, {})
                        hi = (eval_const(dim.upper, {})
                              if dim.upper is not None else None)
                        if isinstance(lo, int) and v < lo:
                            out.append(Diagnostic(
                                "bounds", name, s.line,
                                f"{node.name}: subscript {k} = {v} below "
                                f"lower bound {lo}"))
                        elif isinstance(hi, int) and v > hi:
                            out.append(Diagnostic(
                                "bounds", name, s.line,
                                f"{node.name}: subscript {k} = {v} above "
                                f"upper bound {hi}"))
    return out


def check_program(program: AnalyzedProgram) -> list[Diagnostic]:
    """All Composition-Editor checks."""
    return (check_call_interfaces(program) + check_common_blocks(program)
            + check_array_bounds(program))
