"""Interprocedural symbolic relation propagation.

Section 4.3's arc3d example: ``JM = JMAX - 1`` is assigned once, in the
initialization routine, "and this relation holds for the rest of the
program".  PED lacked this propagation (the paper calls for it); we
implement the extension: a COMMON scalar assigned by exactly one
statement in the whole program, whose right-hand side is affine over
constants and other such scalars, yields a globally-valid relation.

Variables are disqualified when they are a READ target, a DO index, or
passed as an actual argument anywhere (a callee could modify them
through the binding); COMMON writes inside callees are caught because
every unit's assignments are counted.
"""

from __future__ import annotations

from ..analysis.linear import LinearExpr, linearize
from ..analysis.symbolic import linearize_from_linear
from ..fortran import ast
from ..ir.program import AnalyzedProgram


def global_relations(program: AnalyzedProgram,
                     max_depth: int = 4) -> dict[str, LinearExpr]:
    """``var -> affine value`` valid everywhere after initialization."""
    assign_count: dict[str, int] = {}
    rhs: dict[str, ast.Expr] = {}
    disq: set[str] = set()
    common_scalars: set[str] = set()

    for uir in program.units.values():
        st = uir.symtab
        for sym in st.symbols.values():
            if sym.storage == "common" and not sym.is_array:
                common_scalars.add(sym.name)
        for s, _ in ast.walk_stmts(uir.unit.body):
            if isinstance(s, ast.Assign) and isinstance(s.target,
                                                        ast.VarRef):
                v = s.target.name
                assign_count[v] = assign_count.get(v, 0) + 1
                rhs[v] = s.value
            elif isinstance(s, ast.Assign):
                pass
            elif isinstance(s, ast.DoLoop):
                disq.add(s.var)
            elif isinstance(s, ast.ReadStmt):
                for it in s.items:
                    if isinstance(it, ast.VarRef):
                        disq.add(it.name)
            elif isinstance(s, ast.CallStmt):
                for a in s.args:
                    if isinstance(a, ast.VarRef):
                        disq.add(a.name)

    raw: dict[str, LinearExpr] = {}
    for v in common_scalars:
        if v in disq or assign_count.get(v, 0) != 1:
            continue
        le = linearize(rhs[v])
        if le.is_affine and v not in le.variables():
            raw[v] = le

    # Close over mutual references (JM = JMAX - 1, JMAX = 30 -> JM = 29);
    # a relation may only reference other qualified globals or nothing.
    out: dict[str, LinearExpr] = {}
    for v, le in raw.items():
        cur = le
        for _ in range(max_depth):
            subst = {w: raw[w] for w in cur.variables() if w in raw}
            if not subst:
                break
            nxt = linearize_from_linear(cur, subst)
            if nxt is None or nxt == cur:
                break
            cur = nxt
        if cur.variables() <= set(raw):
            # fully resolved (possibly to a constant)
            if all(w not in cur.variables() for w in (v,)):
                out[v] = cur
    return {v: le for v, le in out.items() if v not in le.variables()}
