"""Interprocedural side-effect oracle.

Adapts :class:`~repro.interproc.summary.ProcSummary` data to the
:class:`~repro.analysis.defuse.SideEffectOracle` interface used by every
intraprocedural analysis, so that MOD/REF tightens def/use sets at call
sites, KILL enables interprocedural scalar privatization (the nxsns case),
and regular sections let dependence testing treat a call like an ordinary
subscripted reference (the spec77 case).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.defuse import SideEffectOracle
from ..fortran import ast
from ..ir.symtab import SymbolTable
from .summary import ProcSummary, _base_name, _bind_formals, \
    _translate_section_subs


@dataclass(frozen=True)
class CallArrayAccess:
    """Array touched by a call, in caller terms."""

    array: str
    #: caller-side subscripts for single-element sections; None = whole array
    subscripts: tuple[ast.Expr, ...] | None
    is_write: bool


class InterproceduralOracle(SideEffectOracle):
    """Side effects refined by procedure summaries.

    Falls back to worst-case behaviour for calls to unknown procedures
    (externals without source).
    """

    def __init__(self, summaries: dict[str, ProcSummary]):
        self.summaries = summaries

    def call_effects(self, caller_symtab: SymbolTable, callee: str,
                     args: tuple[ast.Expr, ...]):
        callee = callee.upper()
        summ = self.summaries.get(callee)
        if summ is None:
            return super().call_effects(caller_symtab, callee, args)
        binding = _bind_formals(summ.formals, args)

        def translate(names: set[str]) -> set[str]:
            out: set[str] = set()
            for v in names:
                if v in binding:
                    base = _base_name(binding[v])
                    if base:
                        out.add(base.upper())
                else:
                    out.add(v)  # COMMON: same name
            return out

        # Use *exposed* refs: a value the callee reads only after killing
        # it does not consume the caller's incoming value, so it induces
        # no flow from prior caller writes (the nxsns KILL refinement).
        refs = translate(summ.exposed_ref)
        mods = translate(summ.mod)
        kills: set[str] = set()
        for v in summ.kill:
            if v in binding:
                actual = binding[v]
                # Only a plain scalar actual is wholly killed.
                if isinstance(actual, ast.VarRef):
                    sym = caller_symtab.get(actual.name)
                    if sym is not None and not sym.is_array:
                        kills.add(actual.name)
            else:
                sym = caller_symtab.get(v)
                if sym is not None and not sym.is_array:
                    kills.add(v)
        # Argument subscript evaluation reads:
        for a in args:
            for node in ast.walk_expr(a):
                if isinstance(node, (ast.VarRef, ast.ArrayRef)):
                    refs.add(node.name)
        return refs, mods, kills

    # -- dependence-testing support ------------------------------------------

    def call_array_accesses(self, caller_symtab: SymbolTable, callee: str,
                            args: tuple[ast.Expr, ...]
                            ) -> list[CallArrayAccess] | None:
        """Array accesses of a call, with section-derived subscripts.

        Returns ``None`` when the callee is unknown (callers must assume
        arbitrary effects on every visible array).
        """
        callee = callee.upper()
        summ = self.summaries.get(callee)
        if summ is None:
            return None
        binding = _bind_formals(summ.formals, args)
        out: list[CallArrayAccess] = []
        # Reads of arrays the callee kills first consume the callee's own
        # writes, not caller data: no flow dependence into the call.
        exposed_reads = summ.ref - summ.killed_arrays
        for is_write, names, secs in ((False, exposed_reads,
                                       summ.ref_sections),
                                      (True, summ.mod, summ.mod_sections)):
            for v in names:
                if v in binding:
                    base = _base_name(binding[v])
                else:
                    base = v
                if base is None:
                    continue
                sym = caller_symtab.get(base)
                if sym is None or not sym.is_array:
                    continue
                subs = _translate_section_subs(secs.get(v), binding)
                out.append(CallArrayAccess(base.upper(), subs, is_write))
        return out

    def call_sections_for(self, caller_symtab: SymbolTable):
        """A ``call_sections`` callback for the array-kill scan."""
        from .summary import call_section_triples

        def cb(stmt):
            return call_section_triples(self.summaries, caller_symtab,
                                        stmt.name, stmt.args)

        return cb
