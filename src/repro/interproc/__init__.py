"""Interprocedural analysis: MOD/REF/KILL summaries, regular sections,
inherited constants, and the Composition-Editor consistency checks."""

from .compose import Diagnostic, check_array_bounds, check_call_interfaces, \
    check_common_blocks, check_program
from .constants import interprocedural_constants
from .oracle import CallArrayAccess, InterproceduralOracle
from .summary import ArraySection, ProcSummary, SectionDim, SummaryBuilder

__all__ = [
    "ArraySection", "ProcSummary", "SectionDim", "SummaryBuilder",
    "CallArrayAccess", "InterproceduralOracle",
    "interprocedural_constants",
    "Diagnostic", "check_array_bounds", "check_call_interfaces",
    "check_common_blocks", "check_program",
]
