"""Performance estimation, profile-guided navigation, and the
incremental-engine observability layer (counters + analysis pool +
per-loop analysis budgets)."""

from . import budget, counters, pool
from .estimate import DEFAULT_TRIP, Estimator, LoopEstimate, \
    ProgramEstimate, estimate_program, navigation_report

__all__ = [
    "DEFAULT_TRIP", "Estimator", "LoopEstimate", "ProgramEstimate",
    "estimate_program", "navigation_report",
    "budget", "counters", "pool",
]
