"""Performance estimation and profile-guided navigation."""

from .estimate import DEFAULT_TRIP, Estimator, LoopEstimate, \
    ProgramEstimate, estimate_program, navigation_report

__all__ = [
    "DEFAULT_TRIP", "Estimator", "LoopEstimate", "ProgramEstimate",
    "estimate_program", "navigation_report",
]
