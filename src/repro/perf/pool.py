"""Analysis pool: fan independent analysis tasks across workers.

``AnalyzedProgram.from_source`` (per-unit resolution) and
``PedSession.analyze_all`` (per-loop DDG construction) submit batches of
independent zero-argument callables here.  The pool

* auto-selects its mode: ``thread`` on multi-core hosts, ``serial`` on a
  single core, with the ``REPRO_PARALLEL`` environment variable
  (``thread`` / ``process`` / ``serial``) as an override;
* falls back from ``process`` to ``thread`` for closure tasks (session
  and analyzer objects are not picklable -- only module-level functions
  can cross a process boundary);
* returns results in submission order regardless of completion order, so
  callers merge deterministically and parallel output is byte-identical
  to serial output.

Utilization is recorded in :mod:`repro.perf.counters`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence

from . import counters

#: environment override: thread | process | serial (anything else = auto)
ENV_VAR = "REPRO_PARALLEL"

_MODES = ("thread", "process", "serial")


def cpu_count() -> int:
    return os.cpu_count() or 1


def pool_mode(requested: str | None = None) -> str:
    """Resolve the pool mode: explicit request > env override > auto."""
    for mode in (requested, os.environ.get(ENV_VAR, "").lower() or None):
        if mode in _MODES:
            return mode
        if mode in ("off", "none"):
            return "serial"
    return "thread" if cpu_count() > 1 else "serial"


def worker_count(n_tasks: int, max_workers: int | None = None) -> int:
    return max(1, min(n_tasks, max_workers or cpu_count()))


def run_tasks(tasks: Sequence[Callable[[], object]],
              parallel: bool | None = None,
              mode: str | None = None,
              max_workers: int | None = None,
              picklable: bool = False) -> list:
    """Run independent zero-arg callables; results in submission order.

    ``parallel=None`` auto-selects (pool when the resolved mode is not
    serial and there is more than one task); ``parallel=False`` forces
    the serial path; ``parallel=True`` forces a pool even on one core
    (useful for determinism regression tests).
    """
    tasks = list(tasks)
    resolved = pool_mode(mode)
    if resolved == "process" and not picklable:
        resolved = "thread"   # closures cannot cross a process boundary
    if parallel is None:
        parallel = resolved != "serial" and len(tasks) > 1
    if parallel and resolved == "serial":
        resolved = "thread"   # explicit request overrides the auto pick

    counters.bump("pool_batches")
    counters.bump("pool_tasks", len(tasks))

    if not parallel or len(tasks) <= 1:
        with counters._LOCK:
            counters.COUNTERS.pool_mode = "serial"
        return [t() for t in tasks]

    workers = worker_count(len(tasks), max_workers)
    counters.bump("pool_parallel_tasks", len(tasks))
    with counters._LOCK:
        counters.COUNTERS.pool_mode = resolved
        counters.COUNTERS.pool_workers = max(
            counters.COUNTERS.pool_workers, workers)
    executor_cls = ProcessPoolExecutor if resolved == "process" \
        else ThreadPoolExecutor
    with executor_cls(max_workers=workers) as ex:
        futures = [ex.submit(t) for t in tasks]
        # submission order, not completion order: deterministic merge
        return [f.result() for f in futures]
