"""Analysis pool: fan independent analysis tasks across workers.

``AnalyzedProgram.from_source`` (per-unit resolution) and
``PedSession.analyze_all`` (per-loop DDG construction) submit batches of
independent zero-argument callables here.  The pool

* auto-selects its mode: ``thread`` on multi-core hosts, ``serial`` on a
  single core, with the ``REPRO_PARALLEL`` environment variable
  (``thread`` / ``process`` / ``serial``) as an override;
* falls back from ``process`` to ``thread`` for closure tasks (session
  and analyzer objects are not picklable -- only module-level functions
  can cross a process boundary);
* returns results in submission order regardless of completion order, so
  callers merge deterministically and parallel output is byte-identical
  to serial output;
* isolates failures when asked: with ``on_error="return"`` a crashing
  task yields a :class:`TaskFailure` in its result slot (carrying the
  caller-supplied context) instead of sinking the whole batch, and with
  the default ``on_error="raise"`` the surviving exception is annotated
  with the failing task's context before propagating.

Utilization is recorded in :mod:`repro.perf.counters`.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, \
    TimeoutError as FuturesTimeout
from dataclasses import dataclass
from typing import Callable, Sequence

from . import counters


@dataclass
class TaskFailure:
    """One task's failure, returned in its result slot (on_error="return").

    ``context`` is whatever the caller passed in ``contexts`` for this
    task -- e.g. ``(unit_name, loop_id)`` -- so the caller can degrade
    precisely the piece of work that died.  ``elapsed`` is the seconds
    the task ran (or was waited on) before failing and ``timed_out``
    distinguishes a hang cut off by the caller's ``timeout`` from a
    crash; ``attempts`` is 1 from :func:`run_tasks` itself and is
    rewritten by retrying schedulers (:mod:`repro.fleet`) to the total
    attempt count for this piece of work.
    """

    context: object
    error: BaseException
    elapsed: float = 0.0
    attempts: int = 1
    timed_out: bool = False

    def __repr__(self) -> str:  # keep logs short
        extra = ", timed out" if self.timed_out else ""
        return (f"TaskFailure(context={self.context!r}, "
                f"error={type(self.error).__name__}: {self.error}"
                f" [{self.elapsed:.3f}s, attempt {self.attempts}{extra}])")

#: environment override: thread | process | serial (anything else = auto)
ENV_VAR = "REPRO_PARALLEL"

_MODES = ("thread", "process", "serial")


def cpu_count() -> int:
    return os.cpu_count() or 1


def pool_mode(requested: str | None = None) -> str:
    """Resolve the pool mode: explicit request > env override > auto."""
    for mode in (requested, os.environ.get(ENV_VAR, "").lower() or None):
        if mode in _MODES:
            return mode
        if mode in ("off", "none"):
            return "serial"
    return "thread" if cpu_count() > 1 else "serial"


def worker_count(n_tasks: int, max_workers: int | None = None) -> int:
    return max(1, min(n_tasks, max_workers or cpu_count()))


# --------------------------------------------------------------------------
# Persistent shared executors (created once per process, reused; the
# DOALL runtime forks every PARALLEL DO through these, so pool startup
# cost is paid once per session, not once per loop)
# --------------------------------------------------------------------------

_SHARED: dict[str, tuple] = {}      # kind -> (executor, max_workers)
#: executors replaced by a grow; callers that obtained them before the
#: grow may still be submitting, so they drain here and are reaped at
#: shutdown instead of being shut down mid-flight
_RETIRED: list = []
_SHARED_LOCK = threading.Lock()


def shared_executor(kind: str, workers: int):
    """Process-wide executor of the given kind with at least ``workers``
    workers.  Grows (replacing the old executor) when a caller asks for
    more; otherwise the existing pool is reused.

    ``"thread"`` is the DOALL runtime's chunk pool; ``"worlds"`` is a
    second, independent thread pool for the parallel-worlds race.  They
    must stay separate: a world task blocks on DOALL chunk futures, and
    blocking on futures of the pool you occupy a worker of is the
    classic thread-pool recursion deadlock.
    """
    if kind not in ("thread", "process", "worlds"):
        raise ValueError(f"unknown executor kind {kind!r}")
    with _SHARED_LOCK:
        cur = _SHARED.get(kind)
        if cur is not None and cur[1] >= workers:
            counters.bump("pool_reuses")
            return cur[0]
        if cur is not None:
            # Never shut a replaced executor down here: a concurrent
            # caller that resolved it before this grow may be mid-submit,
            # and submitting to a shut-down executor raises.  Retire it;
            # in-flight work drains and the reap happens at shutdown.
            _RETIRED.append(cur[0])
        if kind == "process":
            import multiprocessing
            ex = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("spawn"))
        else:
            ex = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="repro-worlds" if kind == "worlds"
                else "repro-doall")
        _SHARED[kind] = (ex, workers)
        with counters._LOCK:
            counters.COUNTERS.pool_workers = max(
                counters.COUNTERS.pool_workers, workers)
        return ex


def shutdown_shared_executors(wait: bool = False) -> None:
    """Tear down the persistent executors (atexit / tests)."""
    with _SHARED_LOCK:
        for ex, _ in _SHARED.values():
            ex.shutdown(wait=wait)
        _SHARED.clear()
        for ex in _RETIRED:
            ex.shutdown(wait=wait)
        _RETIRED.clear()


atexit.register(shutdown_shared_executors)


def _run_one(task: Callable[[], object], index: int, context: object,
             on_error: str) -> object:
    """Execute one task with fault-injection hook and error policy."""
    import time
    from ..testing import faults
    t0 = time.perf_counter()
    try:
        faults.check("pool_worker", index=index, context=context)
        return task()
    except Exception as e:
        if on_error == "return":
            return TaskFailure(context=context, error=e,
                               elapsed=time.perf_counter() - t0)
        # Attach the task's context so a surviving exception says *which*
        # unit/loop died, not just that something in the batch did.
        if context is not None and not getattr(e, "task_context", None):
            e.task_context = context
            e.args = (f"{e.args[0] if e.args else e}"
                      f" [task context: {context!r}]",) + tuple(e.args[1:])
        raise


def run_tasks(tasks: Sequence[Callable[[], object]],
              parallel: bool | None = None,
              mode: str | None = None,
              max_workers: int | None = None,
              picklable: bool = False,
              contexts: Sequence[object] | None = None,
              on_error: str = "raise",
              timeout: float | None = None,
              reuse: "bool | str" = False) -> list:
    """Run independent zero-arg callables; results in submission order.

    ``parallel=None`` auto-selects (pool when the resolved mode is not
    serial and there is more than one task); ``parallel=False`` forces
    the serial path; ``parallel=True`` forces a pool even on one core
    (useful for determinism regression tests).

    ``contexts`` (same length as ``tasks``) labels each task for error
    reporting.  ``on_error="raise"`` (default) propagates the first
    failure, annotated with its task's context; ``on_error="return"``
    isolates failures, placing a :class:`TaskFailure` in the failing
    task's result slot so the rest of the batch still completes.

    ``timeout`` bounds, in seconds, how long the caller waits for each
    task's result once it starts waiting on it (so with as many workers
    as tasks it approximates a per-task run-time limit).  A task that
    exceeds it yields a :class:`TaskFailure` whose ``timed_out`` flag is
    set (``on_error="return"``) or raises the ``TimeoutError``
    (``on_error="raise"``) -- either way the caller can tell a hang from
    a crash.  The overrun task itself cannot be interrupted (threads are
    not killable); it keeps running in the pool and its eventual result
    is discarded.  The serial path cannot preempt at all, so ``timeout``
    is ignored there.

    ``reuse`` routes the batch through the persistent
    :func:`shared_executor` instead of constructing (and tearing down) a
    fresh executor -- the right choice for hot callers that fan many
    batches and would otherwise pay pool startup per batch.  ``True``
    picks the kind matching the resolved mode; a string names the shared
    kind explicitly (the parallel-worlds race passes ``"worlds"`` so its
    tasks can block on DOALL futures in the ``"thread"`` pool without
    recursion deadlock).  A reused executor is never shut down here, so
    timed-out orphans keep occupying shared workers until they finish.
    """
    tasks = list(tasks)
    if contexts is not None:
        contexts = list(contexts)
        if len(contexts) != len(tasks):
            raise ValueError("contexts must match tasks 1:1")
    ctx_of = (lambda i: contexts[i]) if contexts is not None \
        else (lambda i: None)
    resolved = pool_mode(mode)
    if resolved == "process" and not picklable:
        resolved = "thread"   # closures cannot cross a process boundary
    if parallel is None:
        parallel = resolved != "serial" and len(tasks) > 1
    if parallel and resolved == "serial":
        resolved = "thread"   # explicit request overrides the auto pick

    counters.bump("pool_batches")
    counters.bump("pool_tasks", len(tasks))

    # A thread-scoped artifact store (repro.store.scoped_store) is
    # thread-local, so pool workers would silently fall back to the
    # process-default store -- leaking one session's artifacts into the
    # shared tier.  Extend the submitter's scope across its workers.
    # Process pools are exempt: stores don't cross process boundaries,
    # and process tasks must stay picklable.
    if resolved != "process":
        from ..store import current_override, scoped_store
        override = current_override()
        if override is not None:
            def _scope(task, _ov=override):
                def run():
                    with scoped_store(_ov):
                        return task()
                return run
            tasks = [_scope(t) for t in tasks]

    if not parallel or len(tasks) <= 1:
        with counters._LOCK:
            counters.COUNTERS.pool_mode = "serial"
        return [_run_one(t, i, ctx_of(i), on_error)
                for i, t in enumerate(tasks)]

    workers = worker_count(len(tasks), max_workers)
    counters.bump("pool_parallel_tasks", len(tasks))
    with counters._LOCK:
        counters.COUNTERS.pool_mode = resolved
        counters.COUNTERS.pool_workers = max(
            counters.COUNTERS.pool_workers, workers)
    if reuse:
        kind = reuse if isinstance(reuse, str) \
            else ("process" if resolved == "process" else "thread")
        ex = shared_executor(kind, workers)
    else:
        executor_cls = ProcessPoolExecutor if resolved == "process" \
            else ThreadPoolExecutor
        ex = executor_cls(max_workers=workers)
    try:
        futures = [ex.submit(_run_one, t, i, ctx_of(i), on_error)
                   for i, t in enumerate(tasks)]
        # submission order, not completion order: deterministic merge
        results = []
        import time as _time
        for i, f in enumerate(futures):
            if timeout is None:
                results.append(f.result())
                continue
            t0 = _time.perf_counter()
            try:
                results.append(f.result(timeout=timeout))
            except FuturesTimeout:
                f.cancel()   # drop it if still queued; running = orphaned
                elapsed = _time.perf_counter() - t0
                err = TimeoutError(
                    f"task did not finish within {timeout}s")
                if on_error == "return":
                    results.append(TaskFailure(
                        context=ctx_of(i), error=err, elapsed=elapsed,
                        timed_out=True))
                    continue
                ctx = ctx_of(i)
                if ctx is not None:
                    err.task_context = ctx
                    err.args = (f"{err.args[0]} "
                                f"[task context: {ctx!r}]",)
                raise err from None
        return results
    finally:
        # don't block on orphaned (timed-out but unkillable) tasks; a
        # shared executor outlives the batch by design
        if not reuse:
            ex.shutdown(wait=timeout is None)
