"""Engine counters: observability for the incremental analysis engine.

The incremental dependence engine (scoped invalidation, memoized pair
testing, pooled whole-program analysis) is a performance feature, and
performance features regress silently unless they are measurable.  This
module keeps one process-wide :class:`EngineCounters` record that the
engine layers update as they work:

* **pair testing** -- hit/miss counts of the ``test_pair`` memo cache
  (:mod:`repro.dependence.tests`);
* **invalidation scope** -- per-event eviction/retention counts for the
  session's loop-dependence cache and the interprocedural summary store
  (:mod:`repro.ped.session`);
* **pool utilization** -- how many tasks ran through the analysis pool,
  in which mode, over how many workers (:mod:`repro.perf.pool`).

Benchmarks and regression tests read the counters through
:func:`snapshot` after :func:`reset`-ing them around the region of
interest.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass, field, fields


@dataclass
class EngineCounters:
    """Mutable process-wide counters for the incremental engine."""

    # -- memoized pair testing ------------------------------------------------
    pair_hits: int = 0
    pair_misses: int = 0
    pair_evictions: int = 0

    # -- scoped invalidation --------------------------------------------------
    #: invalidation events processed by the session layer
    invalidations: int = 0
    #: events that used a transformation-declared dirty scope
    scoped_invalidations: int = 0
    #: loop-dependence cache entries dropped / kept across all events
    deps_evicted: int = 0
    deps_retained: int = 0
    #: interprocedural summaries rebuilt / reused across all events
    summaries_rebuilt: int = 0
    summaries_retained: int = 0
    #: analyzers dropped / kept across all events
    analyzers_evicted: int = 0
    analyzers_retained: int = 0

    # -- pool utilization -----------------------------------------------------
    pool_batches: int = 0
    pool_tasks: int = 0
    #: tasks that actually went through an executor (not the serial path)
    pool_parallel_tasks: int = 0
    pool_workers: int = 0
    pool_mode: str = ""
    #: shared-executor reuses (persistent pool hits, no startup cost)
    pool_reuses: int = 0

    # -- fork-join DOALL runtime ----------------------------------------------
    #: PARALLEL DO entries executed for real on the worker pool
    par_loops: int = 0
    #: iteration chunks dispatched across all parallel loop entries
    par_chunks: int = 0
    #: PARALLEL DO entries that fell back to the serial simulation
    #: (ineligible body, unset reduction seed, tiny trip count...)
    par_fallbacks: int = 0

    # -- closure-compiled execution engine ------------------------------------
    #: compiled-unit reuses via the per-UnitIR (generation, code) pair
    compile_hits: int = 0
    #: structural-fingerprint LRU hits relinked after a generation bump
    #: (transform rolled back, undo/redo) without recompiling
    compile_relinks: int = 0
    #: full unit compilations
    compile_misses: int = 0

    # -- vectorized execution engine ------------------------------------------
    #: nest entries executed as bulk numpy operations
    vec_loops: int = 0
    #: nest entries whose runtime prechecks failed (bounds, aliasing,
    #: dependence distances...) and re-ran on the closure engine
    vec_fallbacks: int = 0
    #: iteration-space points executed in bulk across all nest entries
    vec_elements: int = 0
    #: nest entries that reused a hoisted precheck plan (resolved views,
    #: aliasing/dependence verdicts) from the entry-shape memo instead
    #: of re-deriving it
    vec_entry_hits: int = 0
    #: nest entries that derived (and memoized) a fresh precheck plan
    vec_entry_misses: int = 0

    # -- parallel-worlds explorer ---------------------------------------------
    #: candidate transform sequences proposed across all explorations
    worlds_proposed: int = 0
    #: child sessions forked (PedSession.fork)
    worlds_forked: int = 0
    #: worlds actually applied + executed in a race
    worlds_raced: int = 0
    #: worlds whose observables matched the serial oracle byte-for-byte
    worlds_accepted: int = 0
    #: worlds rejected by the byte-identity gate
    worlds_rejected: int = 0
    #: winning sequences replayed onto the exploring session
    worlds_adopted: int = 0

    # -- lint framework -------------------------------------------------------
    #: whole-program / incremental lint driver runs
    lint_runs: int = 0
    #: units actually re-analyzed by lint rules
    lint_units: int = 0
    #: units whose cached lint results were reused (incremental re-lint)
    lint_units_reused: int = 0
    #: units whose lint results were adopted from the shared artifact
    #: store (another session already linted the same program state)
    lint_units_shared: int = 0
    #: diagnostics produced (after dedup, including suppressed)
    lint_diags: int = 0

    # -- batch auto-parallelization fleet -------------------------------------
    #: programs dispatched to the fleet pipeline (incl. re-dispatches)
    fleet_tasks: int = 0
    #: programs whose pipeline completed (any terminal status)
    fleet_completed: int = 0
    #: failed dispatches re-queued with backoff
    fleet_retries: int = 0
    #: dispatches cut off by the per-task timeout
    fleet_timeouts: int = 0
    #: programs quarantined after exhausting their retry budget
    fleet_quarantined: int = 0
    #: programs skipped on resume because the checkpoint journal
    #: already records their completion
    fleet_resumed: int = 0
    #: execution-tier / pool-mode downgrades taken by the ladder
    fleet_degradations: int = 0
    #: serial/parallel observable divergences detected across the fleet
    fleet_divergences: int = 0

    # -- degraded-mode analysis ----------------------------------------------
    #: loops whose analysis fell back to a conservative assumed result
    degraded_loops: int = 0
    #: individual pair tests replaced by an assumed-dependence result
    degraded_pairs: int = 0
    #: analyses stopped early by an exhausted step/time budget
    budget_exhaustions: int = 0

    # -- derived --------------------------------------------------------------

    @property
    def pair_tests(self) -> int:
        return self.pair_hits + self.pair_misses

    def pair_hit_rate(self) -> float:
        total = self.pair_tests
        return self.pair_hits / total if total else 0.0

    def retention_rate(self) -> float:
        total = self.deps_evicted + self.deps_retained
        return self.deps_retained / total if total else 0.0

    def compile_reuse_rate(self) -> float:
        total = self.compile_hits + self.compile_relinks \
            + self.compile_misses
        return (self.compile_hits + self.compile_relinks) / total \
            if total else 0.0

    def snapshot(self) -> dict:
        out = asdict(self)
        out["pair_tests"] = self.pair_tests
        out["pair_hit_rate"] = self.pair_hit_rate()
        out["deps_retention_rate"] = self.retention_rate()
        out["compile_reuse_rate"] = self.compile_reuse_rate()
        return out

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, f.default)


#: the process-wide counter record (reset between measured regions)
COUNTERS = EngineCounters()

#: guards increments arriving from pool worker threads
_LOCK = threading.Lock()


def reset() -> None:
    """Zero every counter (start of a measured region)."""
    with _LOCK:
        COUNTERS.reset()


def snapshot() -> dict:
    """Current counter values plus derived rates, as a plain dict."""
    with _LOCK:
        return COUNTERS.snapshot()


def bump(name: str, n: int = 1) -> None:
    """Thread-safe increment of one counter field."""
    with _LOCK:
        setattr(COUNTERS, name, getattr(COUNTERS, name) + n)


def report() -> str:
    """Human-readable one-screen counter report."""
    s = snapshot()
    lines = [
        "incremental engine counters",
        f"  pair tests     {s['pair_tests']:>8}  "
        f"(hits {s['pair_hits']}, misses {s['pair_misses']}, "
        f"hit rate {s['pair_hit_rate']:.1%})",
        f"  invalidations  {s['invalidations']:>8}  "
        f"(scoped {s['scoped_invalidations']})",
        f"  deps cache     evicted {s['deps_evicted']}, "
        f"retained {s['deps_retained']} "
        f"({s['deps_retention_rate']:.1%} retained)",
        f"  summaries      rebuilt {s['summaries_rebuilt']}, "
        f"retained {s['summaries_retained']}",
        f"  pool           {s['pool_tasks']} tasks in "
        f"{s['pool_batches']} batches, mode "
        f"{s['pool_mode'] or '-'}, workers {s['pool_workers']}",
        f"  compile cache  hits {s['compile_hits']}, "
        f"relinks {s['compile_relinks']}, misses {s['compile_misses']} "
        f"({s['compile_reuse_rate']:.1%} reused)",
        f"  degraded       loops {s['degraded_loops']}, "
        f"pairs {s['degraded_pairs']}, "
        f"budget exhaustions {s['budget_exhaustions']}",
        f"  doall runtime  loops {s['par_loops']}, "
        f"chunks {s['par_chunks']}, fallbacks {s['par_fallbacks']}, "
        f"pool reuses {s['pool_reuses']}",
        f"  vector backend loops {s['vec_loops']}, "
        f"fallbacks {s['vec_fallbacks']}, "
        f"elements {s['vec_elements']}, "
        f"entry memo hits {s['vec_entry_hits']}, "
        f"misses {s['vec_entry_misses']}",
        f"  worlds         proposed {s['worlds_proposed']}, "
        f"forked {s['worlds_forked']}, raced {s['worlds_raced']}, "
        f"accepted {s['worlds_accepted']}, "
        f"rejected {s['worlds_rejected']}, "
        f"adopted {s['worlds_adopted']}",
        f"  lint           runs {s['lint_runs']}, "
        f"units {s['lint_units']}, reused {s['lint_units_reused']}, "
        f"shared {s['lint_units_shared']}, "
        f"diagnostics {s['lint_diags']}",
        f"  fleet          tasks {s['fleet_tasks']}, "
        f"completed {s['fleet_completed']}, "
        f"retries {s['fleet_retries']}, "
        f"timeouts {s['fleet_timeouts']}, "
        f"quarantined {s['fleet_quarantined']}, "
        f"resumed {s['fleet_resumed']}, "
        f"degradations {s['fleet_degradations']}, "
        f"divergences {s['fleet_divergences']}",
    ]
    return "\n".join(lines)
