"""Static performance estimation (Section 3.2; Kennedy-McIntosh-McKinley
[26]).

Workshop users asked PED to point them at the loops "where effective
parallelization would have the highest payoff"; ParaScope added a static
estimator for exactly this.  Ours walks the AST with the same cost
constants as the interpreter's virtual clock, multiplying by trip counts
(statically known bounds where possible, a documented default otherwise)
and folding in callee estimates bottom-up over the call graph, so the
static ranking and the dynamic profile are directly comparable.

With the fork-join DOALL runtime attached (:mod:`repro.interp.runtime`)
the estimate can also be *checked*: :func:`measure_parallel_payoff` runs
the program once with one worker and once with N, reads the per-loop
runtime statistics, and reports measured wall-clock speedup next to the
cost-model prediction.  :func:`navigation_report` folds these into the
ranking view so navigation is driven by evidence, not only by the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.constants import propagate_constants
from ..analysis.linear import LinearExpr, linearize
from ..fortran import ast
from ..interp.machine import COST_BRANCH, COST_CALL, COST_INTRINSIC, \
    COST_MEMREF, COST_OP, COST_STMT
from ..ir.loops import LoopInfo
from ..ir.program import AnalyzedProgram

#: assumed trip count for loops whose bounds are not compile-time known
DEFAULT_TRIP = 100


@dataclass
class LoopEstimate:
    unit: str
    loop: LoopInfo
    #: estimated time for one entry of the loop (all iterations)
    time: float
    trip: int
    trip_known: bool

    @property
    def id(self) -> str:
        return f"{self.unit}:{self.loop.id}"


@dataclass
class ProgramEstimate:
    total: float
    units: dict[str, float]
    loops: list[LoopEstimate] = field(default_factory=list)

    def ranked_loops(self) -> list[LoopEstimate]:
        return sorted(self.loops, key=lambda e: -e.time)

    def ranked_units(self) -> list[tuple[str, float]]:
        return sorted(self.units.items(), key=lambda kv: -kv[1])

    def loop_fraction(self, est: LoopEstimate) -> float:
        return est.time / self.total if self.total > 0 else 0.0


def _expr_cost(e: ast.Expr) -> float:
    cost = 0.0
    for node in ast.walk_expr(e):
        if isinstance(node, ast.BinOp):
            cost += COST_OP.get(node.op, 1)
        elif isinstance(node, ast.UnOp):
            cost += 1
        elif isinstance(node, ast.ArrayRef):
            cost += COST_MEMREF
        elif isinstance(node, ast.FuncRef) and node.intrinsic:
            cost += COST_INTRINSIC
    return cost


class Estimator:
    def __init__(self, program: AnalyzedProgram,
                 default_trip: int = DEFAULT_TRIP):
        self.program = program
        self.default_trip = default_trip
        self._unit_cost: dict[str, float] = {}
        self._loops: list[LoopEstimate] = []

    def estimate(self) -> ProgramEstimate:
        order = self.program.callgraph.reverse_topo_order()
        for name in order:
            if name in self.program.units:
                self._unit_cost[name] = self._estimate_unit(name)
        for name in self.program.units:
            if name not in self._unit_cost:
                self._unit_cost[name] = self._estimate_unit(name)
        main = self.program.main_unit
        total = self._unit_cost.get(main.unit.name, 0.0) if main else \
            sum(self._unit_cost.values())
        return ProgramEstimate(total=total, units=dict(self._unit_cost),
                               loops=list(self._loops))

    # -- per-unit ---------------------------------------------------------------

    def _estimate_unit(self, name: str) -> float:
        uir = self.program.units[name]
        cmap = propagate_constants(uir.cfg, uir.symtab)
        env: dict[str, LinearExpr] = {}
        for var, v in cmap.globals_.items():
            if isinstance(v, int):
                env[var] = LinearExpr.constant(v)
        consts = {var: v for var, v in cmap.globals_.items()
                  if isinstance(v, int)}

        def trip_of(lp: ast.DoLoop, local: dict[str, int]) -> tuple[int,
                                                                    bool]:
            lo = linearize(lp.start, _env_of(local))
            hi = linearize(lp.end, _env_of(local))
            step = linearize(lp.step, _env_of(local)).int_const \
                if lp.step is not None else 1
            if lo.int_const is not None and hi.int_const is not None \
                    and step:
                return max(0, (hi.int_const - lo.int_const + step)
                           // step), True
            return self.default_trip, False

        def _env_of(local: dict[str, int]) -> dict[str, LinearExpr]:
            out = dict(env)
            for k, v in local.items():
                out[k] = LinearExpr.constant(v)
            return out

        def body_cost(body: list[ast.Stmt], local: dict[str, int]) -> float:
            cost = 0.0
            for s in body:
                cost += self._stmt_cost(s, local, trip_of, body_cost, uir)
            return cost

        # Seed local constants from simple top-level assignments so
        # ``N = 100`` before the loops feeds trip counts.
        local: dict[str, int] = dict(consts)
        for s in uir.unit.body:
            if isinstance(s, ast.Assign) and isinstance(s.target,
                                                        ast.VarRef):
                le = linearize(s.value, _env_of(local))
                if le.int_const is not None:
                    local[s.target.name] = le.int_const
        return body_cost(uir.unit.body, local)

    def _stmt_cost(self, s: ast.Stmt, local, trip_of, body_cost, uir
                   ) -> float:
        if isinstance(s, (ast.TypeDecl, ast.DimensionStmt, ast.CommonStmt,
                          ast.ParameterStmt, ast.DataStmt, ast.SaveStmt,
                          ast.ExternalStmt, ast.IntrinsicStmt,
                          ast.ImplicitStmt, ast.FormatStmt)):
            return 0.0
        if isinstance(s, ast.Assign):
            return COST_STMT + COST_MEMREF + _expr_cost(s.value) \
                + _expr_cost(s.target) + self._call_costs(s.value)
        if isinstance(s, ast.DoLoop):
            trip, known = trip_of(s, local)
            inner = body_cost(s.body, local)
            time = trip * (inner + COST_STMT) + COST_STMT
            li = uir.loops.by_uid.get(s.uid)
            if li is not None:
                self._loops.append(LoopEstimate(
                    unit=uir.unit.name, loop=li, time=time, trip=trip,
                    trip_known=known))
            return time
        if isinstance(s, ast.IfBlock):
            # expected cost: condition + average of the arms
            arms = [body_cost(s.then_body, local)]
            for _, a in s.elifs:
                arms.append(body_cost(a, local))
            arms.append(body_cost(s.else_body, local))
            return COST_BRANCH + _expr_cost(s.cond) \
                + sum(arms) / max(len(arms), 1)
        if isinstance(s, ast.LogicalIf):
            return COST_BRANCH + _expr_cost(s.cond) + 0.5 * self._stmt_cost(
                s.stmt, local, trip_of, body_cost, uir)
        if isinstance(s, (ast.ArithIf, ast.Goto, ast.ComputedGoto)):
            return COST_BRANCH
        if isinstance(s, ast.CallStmt):
            callee = self._unit_cost.get(s.name.upper(), COST_CALL)
            return COST_CALL + callee \
                + sum(_expr_cost(a) for a in s.args)
        if isinstance(s, (ast.ReadStmt, ast.WriteStmt)):
            return COST_STMT * (1 + len(s.items))
        return COST_STMT

    def _call_costs(self, e: ast.Expr) -> float:
        cost = 0.0
        for node in ast.walk_expr(e):
            if isinstance(node, ast.FuncRef) and not node.intrinsic:
                cost += COST_CALL + self._unit_cost.get(node.name.upper(),
                                                        0.0)
        return cost


def estimate_program(program: AnalyzedProgram,
                     default_trip: int = DEFAULT_TRIP) -> ProgramEstimate:
    return Estimator(program, default_trip).estimate()


@dataclass
class LoopSpeedup:
    """Measured behaviour of one PARALLEL DO under the DOALL runtime."""

    unit: str
    loop_id: str
    line: int
    uid: int
    #: cost-model prediction: virtual serial time / virtual parallel time
    predicted: float
    #: wall-clock speedup: 1-worker elapsed / N-worker elapsed
    measured: float
    wall_serial: float
    wall_parallel: float
    iters: int
    workers: int

    @property
    def id(self) -> str:
        return f"{self.unit}:{self.loop_id}"


def measure_parallel_payoff(program, inputs=None, workers: int = 4,
                            schedule: str = "static",
                            engine: str = "compiled"
                            ) -> list[LoopSpeedup]:
    """Execute a program's PARALLEL DO loops on the worker pool and
    report measured vs. predicted speedup per loop.

    Runs the program twice through the DOALL runtime -- once with one
    worker (the same chunk/merge machinery, inline) and once with
    ``workers`` -- so the wall-clock ratio isolates pool parallelism
    from dispatch overhead.  Loops that fell back to the serial
    simulation in either run are absent from the result.  ``engine``
    selects the execution tier both runs use (the worlds explorer
    measures payoffs on the vector tier too).
    """
    from ..interp.verify import analyzed_program, run_program
    prog = analyzed_program(program)
    base = run_program(prog, inputs=list(inputs or []), engine=engine,
                       workers=1, schedule=schedule)
    par = run_program(prog, inputs=list(inputs or []), engine=engine,
                      workers=workers, schedule=schedule)
    by_uid: dict[int, tuple[str, LoopInfo]] = {}
    for uname, uir in prog.units.items():
        for uid, li in uir.loops.by_uid.items():
            by_uid[uid] = (uname, li)
    out: list[LoopSpeedup] = []
    for uid, sp in sorted(par._par_stats.items()):
        sb = base._par_stats.get(uid)
        if sb is None or uid not in by_uid:
            continue
        uname, li = by_uid[uid]
        predicted = (sp["virtual_serial"] / sp["virtual_parallel"]
                     if sp["virtual_parallel"] > 0 else float("inf"))
        measured = (sb["wall"] / sp["wall"]
                    if sp["wall"] > 0 else float("inf"))
        out.append(LoopSpeedup(
            unit=uname, loop_id=li.id, line=li.line, uid=uid,
            predicted=predicted, measured=measured,
            wall_serial=sb["wall"], wall_parallel=sp["wall"],
            iters=sp["iters"], workers=sp["workers"]))
    out.sort(key=lambda ls: -ls.wall_serial)
    return out


def navigation_report(program: AnalyzedProgram, top: int = 10,
                      measured: list[LoopSpeedup] | None = None) -> str:
    """The textual loop-ranking view PED's navigation uses.

    With ``measured`` (from :func:`measure_parallel_payoff`) the static
    ranking is followed by a measured-vs-predicted section so the user
    can see where the cost model and the worker pool disagree.

    Each ranked loop also shows its vector-tier lowering decision
    (``vec(d2)`` = executes as a depth-2 bulk numpy nest under
    ``engine="vector"``, otherwise the reason it stays on the closure
    engine), mirroring the runtime's per-loop fallback reporting.
    """
    est = estimate_program(program)
    try:
        from ..interp.vectorize import lowering_decisions
        decisions = lowering_decisions(program)
    except Exception:   # navigation must not depend on lowering success
        decisions = {}
    lines = [f"{'rank':>4}  {'loop':<14} {'line':>5} {'est. time':>12} "
             f"{'share':>6}  {'trip':<8} vector"]
    for i, le in enumerate(est.ranked_loops()[:top], 1):
        share = 100.0 * est.loop_fraction(le)
        trip = str(le.trip) + ("" if le.trip_known else "?")
        dec = decisions.get((le.unit, le.loop.uid))
        if dec is None:
            vec = "-"
        elif dec.vectorized:
            vec = f"vec(d{dec.depth})"
        else:
            vec = dec.reason or "no"
        lines.append(f"{i:>4}  {le.id:<14} {le.loop.line:>5} "
                     f"{le.time:>12.0f} {share:>5.1f}%  {trip:<8} {vec}")
    if measured:
        lines.append("")
        lines.append(f"measured on {measured[0].workers} workers "
                     f"(wall-clock vs. cost-model prediction)")
        lines.append(f"{'loop':<14} {'line':>5} {'iters':>8} "
                     f"{'predicted':>10} {'measured':>9}")
        for ls in measured[:top]:
            lines.append(f"{ls.id:<14} {ls.line:>5} {ls.iters:>8} "
                         f"{ls.predicted:>9.2f}x {ls.measured:>8.2f}x")
    return "\n".join(lines)
