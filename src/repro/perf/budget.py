"""Analysis budgets: bounded pair-testing effort with graceful fallback.

An interactive tool must answer in bounded time even on pathological
loops (huge reference cross-products, adversarial symbolic bounds).  An
:class:`AnalysisBudget` caps the work :meth:`DependenceAnalyzer.
analyze_loop` spends on one loop -- by pair-test count and/or wall-clock
seconds.  When a :class:`BudgetMeter` trips, the analyzer does not
crash: the remaining pairs fall back to conservative "dependence
assumed" results and the loop is flagged degraded in
``session.health()``.

Budgets are off by default (``None`` limits).  Configure them with
:func:`set_limits`, the :func:`limits` context manager, or the
``REPRO_BUDGET_PAIRS`` / ``REPRO_BUDGET_SECONDS`` environment
variables.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass

ENV_PAIRS = "REPRO_BUDGET_PAIRS"
ENV_SECONDS = "REPRO_BUDGET_SECONDS"


class BudgetExhausted(Exception):
    """Raised by :meth:`BudgetMeter.tick` once a limit is exceeded."""


@dataclass(frozen=True)
class AnalysisBudget:
    """Per-loop analysis effort limits (``None`` = unlimited)."""

    max_pair_tests: int | None = None
    max_seconds: float | None = None

    @property
    def unlimited(self) -> bool:
        return self.max_pair_tests is None and self.max_seconds is None

    def meter(self) -> "BudgetMeter":
        return BudgetMeter(self)


#: process-wide default budget (mutable via set_limits / limits)
_DEFAULT: AnalysisBudget | None = None


def _env_budget() -> AnalysisBudget:
    pairs = os.environ.get(ENV_PAIRS)
    seconds = os.environ.get(ENV_SECONDS)
    return AnalysisBudget(
        max_pair_tests=int(pairs) if pairs else None,
        max_seconds=float(seconds) if seconds else None)


def current() -> AnalysisBudget:
    """The budget new analyses start from: explicit default, else env."""
    if _DEFAULT is not None:
        return _DEFAULT
    return _env_budget()


def set_limits(pair_tests: int | None = None,
               seconds: float | None = None) -> None:
    """Install a process-wide default budget (``None``/``None`` clears)."""
    global _DEFAULT
    if pair_tests is None and seconds is None:
        _DEFAULT = None
    else:
        _DEFAULT = AnalysisBudget(max_pair_tests=pair_tests,
                                  max_seconds=seconds)


@contextmanager
def limits(pair_tests: int | None = None, seconds: float | None = None):
    """Scoped budget override: ``with budget.limits(pair_tests=100): ...``"""
    global _DEFAULT
    saved = _DEFAULT
    set_limits(pair_tests, seconds)
    try:
        yield current()
    finally:
        _DEFAULT = saved


class BudgetMeter:
    """Counts work against one :class:`AnalysisBudget` (one per loop).

    ``tick()`` is called before each pair test; it raises
    :class:`BudgetExhausted` once a limit trips and keeps raising for
    the rest of the analysis (the caller degrades the remaining pairs
    without re-measuring).  The ``budget`` fault-injection point fires
    here, so the exhaustion path is testable without a real timeout.
    """

    def __init__(self, budget: AnalysisBudget):
        self.budget = budget
        self.steps = 0
        self._t0 = time.monotonic() if budget.max_seconds is not None \
            else 0.0
        self.exhausted: str | None = None

    def tick(self) -> None:
        from ..testing import faults
        faults.check("budget", steps=self.steps)
        if self.exhausted is not None:
            raise BudgetExhausted(self.exhausted)
        self.steps += 1
        b = self.budget
        if b.max_pair_tests is not None and self.steps > b.max_pair_tests:
            self.exhausted = (f"analysis budget exhausted: "
                              f"{b.max_pair_tests} pair tests")
            raise BudgetExhausted(self.exhausted)
        if b.max_seconds is not None \
                and time.monotonic() - self._t0 > b.max_seconds:
            self.exhausted = (f"analysis budget exhausted: "
                              f"{b.max_seconds}s elapsed")
            raise BudgetExhausted(self.exhausted)
