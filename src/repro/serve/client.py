"""Minimal blocking client for the session server (stdlib http.client).

``op`` returns the *raw response body string* alongside the parsed
object: the server's op responses are canonical JSON, so those raw
strings are the served transcript and compare byte-for-byte against
:func:`repro.serve.replay.oracle_transcript`.
"""

from __future__ import annotations

import http.client
import json


class PedClient:
    """One keep-alive connection to a running PedServer."""

    def __init__(self, host: str, port: int, timeout: float = 600.0):
        self._conn = http.client.HTTPConnection(host, port,
                                                timeout=timeout)

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> tuple[str, dict]:
        body = json.dumps(payload) if payload is not None else None
        headers = {"Content-Type": "application/json"} \
            if body is not None else {}
        self._conn.request(method, path, body=body, headers=headers)
        resp = self._conn.getresponse()
        raw = resp.read().decode()
        return raw, json.loads(raw)

    def open(self, session_id: str, program: str | None = None,
             source: str | None = None) -> dict:
        payload = {"program": program} if program is not None \
            else {"source": source or ""}
        raw, parsed = self._request(
            "POST", f"/session/{session_id}/open", payload)
        return parsed

    def op(self, session_id: str, op: str,
           params: dict | None = None) -> tuple[str, dict]:
        return self._request("POST", f"/session/{session_id}/op",
                             {"op": op, "params": params or {}})

    def run_script(self, session_id: str,
                   script: list[dict]) -> list[str]:
        """Replay an op script; the raw bodies are the transcript."""
        return [self.op(session_id, step["op"],
                        step.get("params") or {})[0]
                for step in script]

    def close_session(self, session_id: str) -> dict:
        return self._request("DELETE", f"/session/{session_id}")[1]

    def health(self) -> dict:
        return self._request("GET", "/health")[1]

    def sessions(self) -> dict:
        return self._request("GET", "/sessions")[1]

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "PedClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
