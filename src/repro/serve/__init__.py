"""PED as a service: a concurrent multi-tenant session server.

The paper's PED is a single-user editor; the 1991 workshop that
evaluated it was many users analyzing the same eight programs.  This
package turns that workload into a service:

* :mod:`repro.serve.ops` -- a deterministic JSON op vocabulary over
  :class:`~repro.ped.session.PedSession` (analyze / edit / transform /
  lint / explore / health).  Responses are uid-free and canonical, so a
  served session's transcript is byte-comparable to a single-user
  in-process run;
* :mod:`repro.serve.state` -- transparent session serialization: an
  evicted session pickles to one blob (program AST + undo/redo journal +
  marks/classifications, with object identity preserved) and rehydrates
  on the next request;
* :mod:`repro.serve.manager` -- the session table: per-session locks so
  concurrent requests to *different* sessions proceed in parallel, LRU
  eviction to a bounded number of live sessions;
* :mod:`repro.serve.server` -- the asyncio HTTP/JSON front end
  (``python -m repro.serve``) with a ``/health`` endpoint surfacing the
  tiered artifact store's per-namespace hit/miss/evict/promote counters;
* :mod:`repro.serve.replay` -- the eight workshop programs' scripted
  sessions expressed as op lists, the oracle transcripts they must
  reproduce, and the concurrent load harness the A14 benchmark runs.

Cross-session sharing itself lives below this layer, in
:mod:`repro.store`: compile, pair-test, parsed-program and summary
artifacts are keyed on uid-free structural fingerprints, so two served
sessions analyzing the same program pay for each artifact once.
"""

from .client import PedClient
from .manager import SessionManager
from .ops import OPS, canonical_json, run_op
from .replay import SCRIPTS, oracle_transcript, run_script
from .server import PedServer
from .state import rehydrate, serialize

__all__ = [
    "OPS", "PedClient", "PedServer", "SCRIPTS", "SessionManager",
    "canonical_json", "oracle_transcript", "rehydrate", "run_op",
    "run_script", "serialize",
]
