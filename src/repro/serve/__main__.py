"""``python -m repro.serve``: run the session server."""

from __future__ import annotations

import argparse
import asyncio

from .server import PedServer


def main() -> None:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="PED session server (HTTP/JSON)")
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=8777)
    ap.add_argument("--max-live", type=int, default=8,
                    help="resident sessions before LRU snapshot "
                         "eviction (default 8)")
    ap.add_argument("--workers", type=int, default=8,
                    help="op executor threads (default 8)")
    args = ap.parse_args()
    server = PedServer(max_live=args.max_live, workers=args.workers)
    try:
        asyncio.run(server.serve_forever(args.host, args.port))
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
