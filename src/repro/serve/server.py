"""Asyncio HTTP/JSON front end for the session manager.

Stdlib-only (no web framework): a tiny HTTP/1.1 server over
``asyncio.start_server`` with keep-alive.  The event loop only parses
requests and shuttles bytes; every op executes on a thread pool via
``run_in_executor``, so CPU-bound analysis for different sessions
overlaps while the :class:`~repro.serve.manager.SessionManager`'s
per-session locks keep each individual session single-threaded.

Routes (bodies and responses are JSON):

* ``POST /session/{id}/open``    -- ``{"program": name}`` (corpus) or
  ``{"source": text}``; creates the session
* ``POST /session/{id}/op``      -- ``{"op": name, "params": {...}}``;
  the response body is *exactly* the canonical JSON of
  :func:`repro.serve.ops.run_op`, so a client's raw body bytes are
  directly comparable to an in-process transcript
* ``DELETE /session/{id}``       -- drops the session
* ``GET /sessions``              -- the session table
* ``GET /health``                -- manager stats + the artifact
  store's per-namespace, per-tier hit/miss/evict/promote counters
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor

from ..store import get_store
from .manager import SessionManager
from .ops import canonical_json

_MAX_BODY = 16 * 1024 * 1024


class PedServer:
    """One server instance wrapping one session manager."""

    def __init__(self, max_live: int = 8, workers: int = 8):
        self.manager = SessionManager(max_live=max_live)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve")
        self._server: asyncio.AbstractServer | None = None

    # -- request handling ---------------------------------------------------

    async def _dispatch(self, method: str, path: str,
                        body: bytes) -> tuple[int, str]:
        loop = asyncio.get_running_loop()
        parts = [p for p in path.split("/") if p]
        try:
            payload = json.loads(body) if body else {}
        except ValueError:
            return 400, canonical_json(
                {"error": {"type": "BadJSON", "message": "request body"}})

        if method == "GET" and parts == ["health"]:
            return 200, canonical_json(self.health())
        if method == "GET" and parts == ["sessions"]:
            return 200, canonical_json(
                {"sessions": self.manager.sessions()})
        if len(parts) == 3 and parts[0] == "session" \
                and parts[2] == "open" and method == "POST":
            sid = parts[1]

            def _open() -> tuple[int, str]:
                if "program" in payload:
                    from ..ped.scripts import program_source
                    source = program_source(payload["program"])
                else:
                    source = payload.get("source", "")
                try:
                    self.manager.open(
                        sid, source,
                        interprocedural=payload.get(
                            "interprocedural", True))
                except KeyError as e:
                    return 409, canonical_json(
                        {"error": {"type": "SessionExists",
                                   "message": str(e)}})
                except Exception as e:
                    return 400, canonical_json(
                        {"error": {"type": type(e).__name__,
                                   "message": str(e)}})
                return 200, canonical_json({"result": {"opened": sid}})

            return await loop.run_in_executor(self._pool, _open)
        if len(parts) == 3 and parts[0] == "session" \
                and parts[2] == "op" and method == "POST":
            sid = parts[1]
            out = await loop.run_in_executor(
                self._pool, self.manager.run, sid,
                payload.get("op", ""), payload.get("params") or {})
            return 200, canonical_json(out)
        if len(parts) == 2 and parts[0] == "session" \
                and method == "DELETE":
            closed = self.manager.close(parts[1])
            return 200, canonical_json({"result": {"closed": closed}})
        return 404, canonical_json(
            {"error": {"type": "NotFound", "message": path}})

    def health(self) -> dict:
        """Server-level health: the service view plus the shared store."""
        return {"manager": self.manager.stats(),
                "artifact_store": get_store().stats()}

    # -- HTTP plumbing ------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await reader.readline()
                if not request:
                    break
                try:
                    method, path, _ = request.decode(
                        "latin-1").strip().split(" ", 2)
                except ValueError:
                    break
                length = 0
                keep_alive = True
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    name = name.strip().lower()
                    if name == "content-length":
                        length = int(value.strip())
                    elif name == "connection" \
                            and value.strip().lower() == "close":
                        keep_alive = False
                if length > _MAX_BODY:
                    break
                body = await reader.readexactly(length) if length else b""
                status, out = await self._dispatch(method.upper(),
                                                   path, body)
                data = out.encode()
                reason = {200: "OK", 400: "Bad Request",
                          404: "Not Found",
                          409: "Conflict"}.get(status, "OK")
                writer.write(
                    f"HTTP/1.1 {status} {reason}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"Connection: "
                    f"{'keep-alive' if keep_alive else 'close'}\r\n"
                    f"\r\n".encode() + data)
                await writer.drain()
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass   # loop already torn down / peer already gone

    # -- lifecycle ----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, host, port)
        sock = self._server.sockets[0].getsockname()
        return sock[0], sock[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=False)

    async def serve_forever(self, host: str = "127.0.0.1",
                            port: int = 8777) -> None:
        host, port = await self.start(host, port)
        print(f"repro.serve listening on http://{host}:{port}")
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()
