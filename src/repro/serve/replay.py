"""The eight workshop programs' sessions as servable op scripts.

:mod:`repro.ped.scripts` drives the 1991 workshop groups through the
in-process ``PedSession`` API.  This module re-expresses each program's
session in the JSON op vocabulary of :mod:`repro.serve.ops`, one script
per corpus program, so the same interaction can be replayed

* in process (:func:`oracle_transcript`) -- the single-user ground
  truth;
* over HTTP against the session server -- which must produce
  byte-identical responses, however many other clients are hammering
  the same server and however many times the session was evicted and
  rehydrated in between.

A transcript is the list of canonical-JSON response strings, one per
op.  It contains no uids, no timings and no cache counters, so it is
comparable across processes and across runs.
"""

from __future__ import annotations

from ..ped.scripts import program_source
from ..ped.session import PedSession
from .ops import canonical_json, run_op


def _op(op: str, **params) -> dict:
    return {"op": op, "params": params}


#: program name -> op script (Section 2's groups, one per program)
SCRIPTS: dict[str, list[dict]] = {
    # G1 Poole & Hsieh: interprocedural call loops, embedding, expansion
    "spec77": [
        _op("units"),
        _op("hot_loops"),
        _op("check_program"),
        _op("select_loop", unit="GLOOP", var="LAT"),
        _op("dependences"),
        _op("sections"),
        _op("advice", name="parallelize"),
        _op("apply", name="parallelize"),
        _op("select_loop", unit="GLOOP", var="LAT"),
        _op("apply", name="loop_embedding"),
        _op("select_loop", unit="PHYS", assigns="Q"),
        _op("apply", name="scalar_expansion", params={"var": "Q"}),
        _op("select_loop", unit="SMOOTH", var="J", ordinal=1),
        _op("classify", var="T", kind="private",
            reason="killed at the start of each row"),
        _op("reject_pending", reason="user: rows are independent"),
        _op("undo"),
        _op("redo"),
        _op("history"),
        _op("health"),
    ],
    # G2 Zosel & Engle, part 1: dialect restructuring before loop work
    "neoss": [
        _op("help", topic="panes"),
        _op("hot_loops"),
        _op("select_loop", unit="REGIME", var="K"),
        _op("dependences"),
        _op("apply", name="control_flow_simplification"),
        _op("lint"),
        _op("history"),
        _op("health"),
    ],
    # G2 part 2: permutation subscripts + interprocedural KILL
    "nxsns": [
        _op("check_program"),
        _op("select_loop", unit="OVERLAP", var="IT"),
        _op("reject_pending", reason="user: MAP is a permutation"),
        _op("select_loop", unit="NXSNS", var="J", ordinal=1),
        _op("dependences"),
        _op("classify", var="ACC", kind="private",
            reason="killed inside RELAX on every path"),
        _op("advice", name="parallelize"),
        _op("apply", name="parallelize"),
        _op("apply", name="control_flow_simplification"),
        _op("history"),
        _op("health"),
    ],
    # G3 Pottle: index arrays, breaking conditions, assertions
    "dpmin": [
        _op("hot_loops"),
        _op("select_loop", unit="FORCES", var="N"),
        _op("dependences"),
        _op("breaking_conditions"),
        _op("assert_fact", text="MONOTONE(IT, 3)"),
        _op("assert_fact", text="MONOTONE(JT, 3)"),
        _op("assert_fact", text="MONOTONE(KT, 3)"),
        _op("assert_fact", text="DISJOINT(IT, JT, 3)"),
        _op("assert_fact", text="DISJOINT(JT, KT, 3)"),
        _op("assert_fact", text="DISJOINT(IT, KT, 3)"),
        _op("select_loop", unit="FORCES", var="N"),
        _op("advice", name="parallelize"),
        _op("apply", name="parallelize"),
        _op("apply", name="control_flow_simplification"),
        _op("select_loop", unit="LSRCH", var="I"),
        _op("reject_pending", reason="user: reduction is associative"),
        _op("history"),
        _op("health"),
    ],
    # G4 Heimbach, part 1: distribution then privatization
    "slab2d": [
        _op("hot_loops"),
        _op("select_loop", unit="STEP", var="J"),
        _op("dependences"),
        _op("select_loop", unit="STEP", var="I"),
        _op("apply", name="loop_distribution"),
        _op("select_loop", unit="STEP", var="J"),
        _op("classify", var="BUF", kind="private",
            reason="wholly rewritten each row after distribution"),
        _op("advice", name="parallelize"),
        _op("apply", name="parallelize"),
        _op("select_loop", unit="STEP", assigns="TMP"),
        _op("apply", name="scalar_expansion", params={"var": "TMP"}),
        _op("reject_pending", reason="user: boundary values settled"),
        _op("undo"),
        _op("redo"),
        _op("history"),
        _op("health"),
    ],
    # G4 part 2: expansion with extent, unrolling, reduction deletion
    "slalom": [
        _op("help"),
        _op("hot_loops"),
        _op("select_loop", unit="FACTOR", assigns="T"),
        _op("dependences"),
        _op("classify", var="T", kind="private",
            reason="killed each iteration"),
        _op("apply", name="scalar_expansion",
            params={"var": "T", "extent": 24}),
        _op("apply", name="loop_unrolling",
            loop={"var": "J"}, params={"factor": 4}),
        _op("select_loop", unit="RESID", var="I", ordinal=1),
        _op("reject_pending",
            reason="user: sum reduction reassociates"),
        _op("history"),
        _op("health"),
    ],
    # G5 Brickner: the MCN assertion, fusion, unrolling
    "pueblo3d": [
        _op("hot_loops"),
        _op("select_loop", unit="SWEEP", var="I"),
        _op("dependences"),
        _op("symbolic_info"),
        _op("mark_first_pending",
            reason="user: neighbor offset exceeds region"),
        _op("assert_fact", text="MCN .GT. IENDV(IR) - ISTRT(IR)"),
        _op("select_loop", unit="SWEEP", var="I"),
        _op("advice", name="parallelize"),
        _op("apply", name="loop_fusion"),
        _op("apply", name="loop_unrolling",
            loop={"var": "I", "ordinal": 1}, params={"factor": 2}),
        _op("select_loop", unit="SWEEP", var="I"),
        _op("classify", var="X", kind="private",
            reason="killed each iteration"),
        _op("reject_pending",
            reason="user: neighbor offset exceeds region"),
        _op("history"),
        _op("health"),
    ],
    # G6 Fletcher: the JM relation, privatization, interchange
    "arc3d": [
        _op("check_program"),
        _op("hot_loops"),
        _op("select_loop", unit="FILTER", var="N"),
        _op("dependences"),
        _op("mark_first_pending",
            reason="user: WR1 rewritten every plane"),
        _op("classify", var="WR1", kind="private",
            reason="killed each N iteration given JM = JMAX - 1"),
        _op("advice", name="parallelize"),
        _op("apply", name="parallelize"),
        _op("select_loop", unit="SMOOTH", var="J"),
        _op("apply", name="loop_interchange"),
        _op("select_loop", unit="FILTER", var="N"),
        _op("reject_pending",
            reason="user: work arrays private per plane"),
        _op("history"),
        _op("health"),
    ],
}


def run_script(session: PedSession, script: list[dict]) -> list[str]:
    """Execute an op script in process; canonical response per op."""
    return [canonical_json(run_op(session, step["op"],
                                  step.get("params") or {}))
            for step in script]


def oracle_transcript(prog_name: str) -> list[str]:
    """The single-user ground truth: a fresh in-process session runs
    the program's script start to finish.  Every served replay of the
    same script must match this transcript byte for byte."""
    session = PedSession(program_source(prog_name))
    return run_script(session, SCRIPTS[prog_name])
