"""Deterministic JSON op vocabulary over a :class:`PedSession`.

Every op maps ``(session, params) -> JSON-serializable dict``.  Three
rules make served transcripts byte-comparable to single-user in-process
runs:

* **uid-free** -- responses may name units, loop display ids ("L2"),
  lines, variables and statement *text*, never statement uids (uids are
  process-local counters that differ between a served session, its
  rehydrated twin and the oracle);
* **cache-independent** -- a response must not change with the state of
  the artifact store (caches may only make it faster);
* **timing-free** -- no wall-clock values; the explore op serializes the
  worlds report through its canonical timing-free projection.

Errors are part of the contract: an op that raises produces a
deterministic ``{"error": {"type", "message"}}`` response, so scripted
replays that provoke failures still transcript-match.
"""

from __future__ import annotations

import json

from ..dependence.model import Mark
from ..ped.filters import DependenceFilter
from ..ped.session import PedSession


def canonical_json(obj) -> str:
    """The transcript normal form: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# --------------------------------------------------------------------------
# Loop selection (shared with the scripted workshop sessions)
# --------------------------------------------------------------------------

def _find_loop(s: PedSession, params: dict):
    """Resolve a loop selector: ``id`` ("L2"), ``var`` (+ ``ordinal``),
    or ``assigns`` (innermost loop directly assigning the scalar)."""
    if "id" in params:
        for li in s.loops():
            if li.id == params["id"]:
                return li
        raise LookupError(f"no loop {params['id']!r} "
                          f"in {s.current_unit_name}")
    if "var" in params:
        var = params["var"].upper()
        matches = [li for li in s.loops() if li.var == var]
        ordinal = int(params.get("ordinal", 0))
        if ordinal >= len(matches):
            raise LookupError(f"loop #{ordinal} of {var} not found "
                              f"in {s.current_unit_name}")
        return matches[ordinal]
    if "assigns" in params:
        from ..fortran import ast
        var = params["assigns"].upper()
        best = None
        for li in s.loops():
            for st in li.loop.body:
                if isinstance(st, ast.Assign) \
                        and isinstance(st.target, ast.VarRef) \
                        and st.target.name == var:
                    if best is None or li.depth > best.depth:
                        best = li
        if best is None:
            raise LookupError(f"no loop assigns {var} "
                              f"in {s.current_unit_name}")
        return best
    raise ValueError("loop selector needs 'id', 'var' or 'assigns'")


def _loop_info(li) -> dict:
    return {"id": li.id, "var": li.var, "line": li.line,
            "depth": li.depth}


def _dep_row(d) -> dict:
    return {"var": d.var, "type": str(d.dtype),
            "vector": list(d.vector), "mark": d.mark.value,
            "reason": d.reason, "source": d.source.text,
            "sink": d.sink.text, "carried": d.loop_carried}


# --------------------------------------------------------------------------
# The ops
# --------------------------------------------------------------------------

def _op_units(s: PedSession, p: dict) -> dict:
    return {"units": s.units()}


def _op_select_unit(s: PedSession, p: dict) -> dict:
    s.select_unit(p["unit"])
    return {"unit": s.current_unit_name,
            "loops": [_loop_info(li) for li in s.loops()]}


def _op_select_loop(s: PedSession, p: dict) -> dict:
    if "unit" in p:
        s.select_unit(p["unit"])
    li = _find_loop(s, p)
    s.select_loop(li)
    return {"loop": _loop_info(li), "pane": s.dependence_pane.render()}


def _op_dependences(s: PedSession, p: dict) -> dict:
    deps = s.dependences()
    return {"count": len(deps), "deps": [_dep_row(d) for d in deps],
            "pane": s.dependence_pane.render()}


def _op_analyze_all(s: PedSession, p: dict) -> dict:
    # serial on purpose: pool workers would bypass a thread-scoped store
    # (the isolated-cache benchmark leg), and op responses must not
    # depend on which store the analysis hit
    cache = s.analyze_all(parallel=False)
    return {"loops_analyzed": len(cache)}


def _op_hot_loops(s: PedSession, p: dict) -> dict:
    ranked = s.hot_loops(top=int(p.get("top", 10)))
    return {"loops": [{"unit": e.unit, "loop": e.loop.id,
                       "line": e.loop.line, "trip": e.trip,
                       "time": e.time} for e in ranked]}


def _op_check_program(s: PedSession, p: dict) -> dict:
    return {"diagnostics": [str(d) for d in s.check_program()]}


def _op_sections(s: PedSession, p: dict) -> dict:
    return {"text": s.sections_summary()}


def _op_symbolic_info(s: PedSession, p: dict) -> dict:
    return s.symbolic_info()


def _op_navigation(s: PedSession, p: dict) -> dict:
    return {"text": s.navigation_report(top=int(p.get("top", 10)))}


def _op_call_graph(s: PedSession, p: dict) -> dict:
    return {"text": s.call_graph_text()}


def _op_help(s: PedSession, p: dict) -> dict:
    return {"text": s.help(p.get("topic"))}


def _op_advice(s: PedSession, p: dict) -> dict:
    loop = _find_loop(s, p["loop"]) if "loop" in p else None
    adv = s.advice(p["name"], loop=loop, **p.get("params", {}))
    return {"ok": adv.ok, "explain": adv.explain()}


def _op_apply(s: PedSession, p: dict) -> dict:
    loop = _find_loop(s, p["loop"]) if "loop" in p else None
    res = s.apply(p["name"], loop=loop, **p.get("params", {}))
    return {"applied": res.applied,
            "description": res.description or "",
            "explain": res.advice.explain()}


def _op_classify(s: PedSession, p: dict) -> dict:
    loop = _find_loop(s, p["loop"]) if "loop" in p else None
    s.classify_variable(p["var"], p["kind"], loop=loop,
                        reason=p.get("reason", ""))
    return {"var": p["var"].upper(), "kind": p["kind"]}


def _op_reject_pending(s: PedSession, p: dict) -> dict:
    n = s.mark_dependences_where(DependenceFilter(mark=Mark.PENDING),
                                 Mark.REJECTED, p.get("reason", ""))
    return {"marked": n}


def _op_mark_first_pending(s: PedSession, p: dict) -> dict:
    deps = s.dependences()
    pend = [d for d in deps if d.mark is Mark.PENDING]
    if not pend:
        return {"marked": 0, "var": None}
    s.mark_dependence(pend[0], Mark.REJECTED, p.get("reason", ""))
    return {"marked": 1, "var": pend[0].var}


def _op_assert_fact(s: PedSession, p: dict) -> dict:
    s.assert_fact(p["text"])
    return {"asserted": p["text"]}


def _op_breaking_conditions(s: PedSession, p: dict) -> dict:
    deps = s.dependences()
    carried = [d for d in deps if d.loop_carried]
    if not carried:
        return {"var": None, "conditions": []}
    bcs = s.breaking_conditions(carried[0])
    return {"var": carried[0].var,
            "conditions": [str(b) for b in bcs]}


def _op_undo(s: PedSession, p: dict) -> dict:
    return {"ok": s.undo()}


def _op_redo(s: PedSession, p: dict) -> dict:
    return {"ok": s.redo()}


def _op_history(s: PedSession, p: dict) -> dict:
    return {"entries": s.history()}


def _op_source(s: PedSession, p: dict) -> dict:
    return {"text": s.source()}


def _op_edit(s: PedSession, p: dict) -> dict:
    return {"errors": list(s.edit(p["text"]))}


def _op_lint(s: PedSession, p: dict) -> dict:
    diags = s.lint()
    return {"count": len([d for d in diags if not d.suppressed]),
            "diagnostics": [d.to_json() for d in diags]}


def _op_explore(s: PedSession, p: dict) -> dict:
    report = s.explore(max_worlds=int(p.get("max_worlds", 8)),
                       adopt=bool(p.get("adopt", True)))
    return {"winner": report.winner,
            "adopted": list(report.adopted),
            "impediments": report.impediments,
            "results": [r.to_json(include_timing=False)
                        for r in report.results]}


def _op_health(s: PedSession, p: dict) -> dict:
    """The deterministic projection of :meth:`PedSession.health`.

    Process-global counters (pair/compile caches, pool, artifact store)
    are excluded on purpose: they depend on what *other* sessions in the
    process have done, so they can never be part of a transcript that
    must match a single-user run.  The server's ``/health`` endpoint is
    where the store counters live.
    """
    h = s.health()
    return {
        "ok": h.ok,
        "undo_depth": h.undo_depth,
        "redo_depth": h.redo_depth,
        "degraded_loops": h.degraded_loops,
        "failed_units": h.failed_units,
        "transform_failures": h.transform_failures,
        "guidance_failures": h.guidance_failures,
        "edit_failures": h.edit_failures,
        "lint": h.lint,
    }


#: op name -> handler
OPS = {
    "units": _op_units,
    "select_unit": _op_select_unit,
    "select_loop": _op_select_loop,
    "dependences": _op_dependences,
    "analyze_all": _op_analyze_all,
    "hot_loops": _op_hot_loops,
    "check_program": _op_check_program,
    "sections": _op_sections,
    "symbolic_info": _op_symbolic_info,
    "navigation": _op_navigation,
    "call_graph": _op_call_graph,
    "help": _op_help,
    "advice": _op_advice,
    "apply": _op_apply,
    "classify": _op_classify,
    "reject_pending": _op_reject_pending,
    "mark_first_pending": _op_mark_first_pending,
    "assert_fact": _op_assert_fact,
    "breaking_conditions": _op_breaking_conditions,
    "undo": _op_undo,
    "redo": _op_redo,
    "history": _op_history,
    "source": _op_source,
    "edit": _op_edit,
    "lint": _op_lint,
    "explore": _op_explore,
    "health": _op_health,
}


def run_op(session: PedSession, op: str, params: dict | None = None
           ) -> dict:
    """Execute one op; failures become deterministic error responses."""
    handler = OPS.get(op)
    if handler is None:
        return {"error": {"type": "UnknownOp", "message": op}}
    try:
        return {"result": handler(session, params or {})}
    except Exception as e:
        return {"error": {"type": type(e).__name__, "message": str(e)}}
