"""The session table: concurrent multi-tenant PedSession hosting.

Locking model, two levels:

* one table lock guarding the LRU bookkeeping (held only for dict
  surgery, never while a session executes an op);
* one lock per session entry, held for the duration of each op, so
  requests to the *same* session serialize (a ``PedSession`` is not
  thread-safe) while requests to *different* sessions proceed in
  parallel on the server's worker threads.

Residency is bounded: at most ``max_live`` sessions keep their live
``PedSession`` object; beyond that the least-recently-used idle session
is transparently snapshotted to bytes (:func:`repro.serve.state
.serialize`) and rehydrated on its next request.  A session whose lock
is currently held is never chosen as the victim -- eviction skips to
the next-least-recent idle entry rather than blocking the request that
triggered it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..ped.session import PedSession
from ..store import MISS, declare as _declare_ns, get_store
from .ops import run_op
from .state import rehydrate, serialize

#: pickled fresh-session seeds keyed by source text.  Every tenant of
#: the same program clones from one seed, so all tenants' ASTs assign
#: identical statement uids -- the property the uid-pinned "loopdeps"
#: artifacts (see repro.ped.session) need to be shareable across
#: sessions (and, via the disk tier, across server restarts).
_SEED_NS = "seed"
_declare_ns(_SEED_NS, mem_entries=32, disk=True)


class _Entry:
    __slots__ = ("lock", "session", "blob")

    def __init__(self, session: PedSession):
        self.lock = threading.Lock()
        self.session: PedSession | None = session
        self.blob: bytes | None = None


class SessionManager:
    """Bounded table of named sessions with LRU snapshot eviction."""

    def __init__(self, max_live: int = 8):
        if max_live < 1:
            raise ValueError("max_live must be >= 1")
        self.max_live = max_live
        self._table_lock = threading.Lock()
        #: session id -> entry, most recently used last
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self.evictions = 0
        self.rehydrations = 0
        self.ops_run = 0

    # -- lifecycle ----------------------------------------------------------

    def open(self, session_id: str, source: str,
             interprocedural: bool = True) -> None:
        """Create a session over Fortran source text.

        Tenants clone from a per-source pickled seed: the first open
        parses and serializes, later opens rehydrate the blob.  A clone
        is indistinguishable from a fresh parse except that its AST
        reuses the seed's statement uids, which is what lets tenants
        share uid-pinned loop-dependence artifacts.
        """
        session = self._seed_session(source, interprocedural)
        with self._table_lock:
            if session_id in self._entries:
                raise KeyError(f"session {session_id!r} already exists")
            self._entries[session_id] = _Entry(session)
        self._shed()

    @staticmethod
    def _seed_session(source: str, interprocedural: bool) -> PedSession:
        key = (source, bool(interprocedural))
        blob = get_store().get(_SEED_NS, key)
        if blob is not MISS:
            try:
                return rehydrate(blob)
            except Exception:
                pass
        session = PedSession(source, interprocedural=interprocedural)
        try:
            get_store().put(_SEED_NS, key, serialize(session))
        except Exception:
            pass
        return session

    def close(self, session_id: str) -> bool:
        with self._table_lock:
            return self._entries.pop(session_id, None) is not None

    def sessions(self) -> list[dict]:
        with self._table_lock:
            return [{"id": sid, "live": e.session is not None}
                    for sid, e in self._entries.items()]

    # -- the request path ---------------------------------------------------

    def run(self, session_id: str, op: str,
            params: dict | None = None) -> dict:
        """Execute one op against one session (thread-safe)."""
        with self._table_lock:
            entry = self._entries.get(session_id)
            if entry is not None:
                self._entries.move_to_end(session_id)
        if entry is None:
            return {"error": {"type": "UnknownSession",
                              "message": session_id}}
        with entry.lock:
            if entry.session is None:
                entry.session = rehydrate(entry.blob)
                entry.blob = None
                with self._table_lock:
                    self.rehydrations += 1
            session = entry.session
            response = run_op(session, op, params)
        with self._table_lock:
            self.ops_run += 1
        self._shed()
        return response

    # -- eviction -----------------------------------------------------------

    def _shed(self) -> None:
        """Snapshot least-recently-used idle sessions down to the bound."""
        while True:
            victim: _Entry | None = None
            with self._table_lock:
                live = [(sid, e) for sid, e in self._entries.items()
                        if e.session is not None]
                if len(live) <= self.max_live:
                    return
                for sid, e in live:       # oldest first
                    # never block on a session mid-op; skip to the next
                    # least-recent idle candidate
                    if e.lock.acquire(blocking=False):
                        victim = e
                        break
                if victim is None:
                    return                # everything is busy right now
            try:
                if victim.session is not None:
                    victim.blob = serialize(victim.session)
                    victim.session = None
                    with self._table_lock:
                        self.evictions += 1
            finally:
                victim.lock.release()

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict:
        with self._table_lock:
            live = sum(1 for e in self._entries.values()
                       if e.session is not None)
            return {
                "sessions": len(self._entries),
                "live": live,
                "snapshotted": len(self._entries) - live,
                "max_live": self.max_live,
                "evictions": self.evictions,
                "rehydrations": self.rehydrations,
                "ops_run": self.ops_run,
            }
