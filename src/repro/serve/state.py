"""Transparent session snapshot / rehydration for the session server.

An evicted session must come back *exactly* as it left: same marks,
same undo/redo journal, same event log, same pane selection -- a client
cannot tell whether its session stayed resident or round-tripped
through a snapshot.  The tests pin this as byte-identity of every op
response across serialize -> evict -> rehydrate.

The whole session state goes through ONE pickle.  That is the load-
bearing decision: the undo journal's :class:`UnitSnapshot` objects hold
references to the *live* ``ProgramUnit`` and ``SymbolTable`` objects
(restore writes captured state back onto them in place), so AST,
symbol tables and journal must be serialized in the same pickle for
those identities to survive.  Rehydration therefore reconstructs the
:class:`AnalyzedProgram` *directly* from the unpickled (already
resolved) units instead of re-running name resolution, which would
mint fresh symbol tables the journal no longer points at.

Derived analysis state (dependence caches, analyzers, interprocedural
summaries) is deliberately NOT serialized: it is rebuilt lazily on the
next request -- cheaply, because the artifact store (:mod:`repro.store`)
still holds the pair-test / compile / summary artifacts keyed by the
program's structural fingerprints, which pickling preserves along with
every statement uid.
"""

from __future__ import annotations

import io
import itertools
import pickle

from ..fortran import ast as fast
from ..ir.program import AnalyzedProgram, UnitIR
from ..ped.session import PedSession
from ..ped.panes import SourcePane

#: bump when the snapshot layout changes
SNAPSHOT_VERSION = 1


def _max_uid(program_ast: fast.Program) -> int:
    """Largest statement uid in the program (loop uids included)."""
    top = 0
    stack: list[fast.Stmt] = [s for u in program_ast.units
                              for s in u.body]
    while stack:
        st = stack.pop()
        if st.uid > top:
            top = st.uid
        for block in st.blocks():
            stack.extend(block)
    return top


def serialize(session: PedSession) -> bytes:
    """Snapshot a session into one self-contained blob."""
    state = {
        "version": SNAPSHOT_VERSION,
        "ast": session.program.ast,
        "symtabs": {name: uir.symtab
                    for name, uir in session.program.units.items()},
        "interprocedural": session.interprocedural,
        "include_input_deps": session.include_input_deps,
        "journal_limit": session.journal_limit,
        "assertions": session.assertions,
        "marks": session._marks,
        "loose_marks": session._loose_marks,
        "var_reasons": session._var_reasons,
        "events": session.events,
        "diagnostics": session.diagnostics,
        "degraded": session._degraded,
        "undo": session._undo,
        "redo": session._redo,
        "current_unit": session.current_unit_name,
        "current_loop_uid": (session.current_loop.loop.uid
                             if session.current_loop is not None
                             else None),
    }
    buf = io.BytesIO()
    pickle.Pickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(state)
    return buf.getvalue()


def rehydrate(blob: bytes) -> PedSession:
    """Reconstruct a session from :func:`serialize`'s blob."""
    state = pickle.loads(blob)
    if state.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported session snapshot version "
            f"{state.get('version')!r}")

    # The pickled units are already name-resolved and their symbol
    # tables are the very objects the journal snapshots reference:
    # rebuild the program container around them without re-resolving.
    prog = AnalyzedProgram.__new__(AnalyzedProgram)
    prog.ast = state["ast"]
    prog.units = {u.name: UnitIR(unit=u, symtab=state["symtabs"][u.name])
                  for u in prog.ast.units}
    prog._callgraph = None

    # Future clones (transforms) draw uids from this process's counter;
    # advance it past every unpickled uid so a snapshot restored into a
    # fresh process cannot mint colliding statement ids.
    floor = _max_uid(prog.ast)
    fast._node_ids = itertools.count(
        max(floor + 1, next(fast._node_ids)))

    s = PedSession(prog,
                   interprocedural=state["interprocedural"],
                   include_input_deps=state["include_input_deps"],
                   journal_limit=state["journal_limit"])
    s.assertions = state["assertions"]
    s._marks = state["marks"]
    s._loose_marks = state["loose_marks"]
    s._var_reasons = state["var_reasons"]
    s._degraded = state["degraded"]
    s._undo = state["undo"]
    s._redo = state["redo"]

    # Restore the view without logging navigation events: the event log
    # is part of the snapshot and is reinstated verbatim below.
    s.current_unit_name = state["current_unit"]
    s.source_pane = SourcePane(s.unit)
    uid = state["current_loop_uid"]
    if uid is not None:
        for li in s.unit.loops.all_loops():
            if li.loop.uid == uid:
                s.select_loop(li, _log=False)
                break
    s.events = state["events"]
    s.diagnostics = state["diagnostics"]
    return s
