"""repro.worlds: speculative parallel-worlds transform exploration.

The paper's workflow is one user applying one transformation at a time
and inspecting the dependence display to judge it.  With measured
speedups, byte-identity verification, a relink-aware compile cache and a
worker pool in place, the machine can instead race many candidate
transform sequences -- *worlds* -- at once and hand the user the
measured winner:

    propose -> fork -> race -> rank -> adopt

* **propose** (:mod:`.proposer`): candidate sequences derived from the
  autopar impediment report and the transformation-guidance list;
* **fork** (:meth:`PedSession.fork` over
  :meth:`ProgramSnapshot.materialize`): uid-preserving independent
  children, so worlds relink cached compiled units instead of
  recompiling, and losing worlds are dropped without touching survivors;
* **race** (:mod:`.scheduler`): concurrent apply + execute + profile on
  the shared worker pool, gated on byte-identical observables versus
  the serial oracle;
* **rank** (:mod:`.ranker`): deterministic virtual-speedup order with
  measured wall-clock speedups reported alongside;
* **adopt** (:func:`explore_session`, surfaced as
  ``session.explore()``): the winning sequence replays onto the
  exploring session through the normal power-steering path, so every
  adopted transformation is journaled and undoable.

``python -m repro.worlds`` races the corpus programs from the command
line; the fleet pipeline's ``--explore`` stage batches it.
"""

from __future__ import annotations

import pickle

from ..perf import counters as perf_counters
from ..store import MISS, declare as _declare_ns, get_store
from .proposer import propose_worlds
from .ranker import pick_winner, rank_results
from .report import WorldProposal, WorldResult, WorldsReport, WorldStep
from .scheduler import apply_steps, parallel_loop_ids, race_worlds

#: raced exploration outcomes shared across sessions.  A race is a
#: pure function of the program (fingerprint), the session's
#: analysis-relevant state (positional privatization, uid-free loose
#: marks, assertions) and the explore parameters; adoption -- the only
#: session mutation -- replays per session from the cached winner.
#: Timing fields inside cached results are host noise, but reports
#: exclude them from JSON by default, so transcripts stay identical.
_WORLDS_NS = "worlds"
_declare_ns(_WORLDS_NS, mem_entries=64, disk=True)


def _explore_key(session, max_worlds, workers, schedule, engines,
                 inputs, max_steps):
    """Uid-free store key for one exploration, or None if unkeyable."""
    from ..fortran import ast
    from ..interp.compile import program_fingerprint
    try:
        privates = []
        for name in sorted(session.program.units):
            uir = session.program.units[name]
            for i, (t, _) in enumerate(ast.walk_stmts(uir.unit.body)):
                if isinstance(t, ast.DoLoop) \
                        and (t.parallel or t.private_vars):
                    privates.append((name, i, t.parallel,
                                     tuple(sorted(t.private_vars))))
        loose = tuple(sorted(
            (sig.var, sig.dtype, sig.source_text, sig.sink_text,
             sig.vector, mark.value, reason)
            for sig, (mark, reason) in session._loose_marks.items()))
        return (program_fingerprint(session.program),
                tuple(privates), loose,
                tuple(a.text for a in session.assertions.assertions),
                session.include_input_deps, session.interprocedural,
                max_worlds, workers, schedule, engines,
                repr(inputs), max_steps)
    except Exception:
        return None

__all__ = [
    "WorldStep", "WorldProposal", "WorldResult", "WorldsReport",
    "propose_worlds", "race_worlds", "rank_results", "pick_winner",
    "apply_steps", "parallel_loop_ids", "explore_session",
]


def explore_session(session, inputs=None, max_worlds: int = 8,
                    workers: int = 4, schedule: str = "static",
                    engines=None, adopt: bool = True,
                    race_workers: int | None = None,
                    max_steps: int = 5_000_000) -> WorldsReport:
    """Full exploration of one session: propose, race, rank, adopt.

    ``engines`` is a tuple of execution-engine names; the first is the
    primary (oracle + timing) engine and every listed engine must
    byte-match the oracle for a world to be accepted.  ``None`` follows
    the session default (``REPRO_EXEC_ENGINE`` or ``"compiled"``).

    With ``adopt=True`` the winner's steps are replayed onto the
    session itself -- but only when the winner actually parallelized
    something; a winner that merely ties the serial program changes
    nothing worth journaling.
    """
    from ..interp.verify import resolve_engine
    if engines is None:
        engines = (resolve_engine(None),)
    elif isinstance(engines, str):
        engines = tuple(e for e in engines.split(",") if e)
    else:
        engines = tuple(engines)
    engines = tuple(resolve_engine(e) for e in engines)

    skey = _explore_key(session, max_worlds, workers, schedule,
                        engines, inputs, max_steps)
    cached = get_store().get(_WORLDS_NS, skey) if skey else MISS
    ranked = None
    if cached is not MISS:
        try:
            ranked, impediments, oracle_clock = pickle.loads(cached)
        except Exception:
            ranked = None
    if ranked is None:
        proposals, impediments = propose_worlds(session,
                                                max_worlds=max_worlds)
        results, oracle_clock = race_worlds(
            session, proposals, inputs=inputs, workers=workers,
            schedule=schedule, engines=engines,
            race_workers=race_workers, max_steps=max_steps)
        ranked = rank_results(results)
        if skey is not None:
            try:
                get_store().put(
                    _WORLDS_NS, skey,
                    pickle.dumps((ranked, impediments, oracle_clock),
                                 pickle.HIGHEST_PROTOCOL))
            except Exception:
                pass
    winner = pick_winner(ranked)
    report = WorldsReport(
        results=ranked,
        winner=winner.name if winner is not None else None,
        workers=workers, schedule=schedule, engines=engines,
        oracle_clock=oracle_clock, impediments=impediments)
    if adopt and winner is not None and winner.parallel_loops:
        ok, applied, err = apply_steps(session, winner.proposal.steps)
        if ok and session.source() != winner.source:
            ok, err = False, ("adopted program does not match the raced "
                              "winner (non-deterministic replay?)")
        if ok:
            report.adopted = applied
            perf_counters.bump("worlds_adopted")
        else:
            report.adopt_error = err
    return report
