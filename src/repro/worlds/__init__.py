"""repro.worlds: speculative parallel-worlds transform exploration.

The paper's workflow is one user applying one transformation at a time
and inspecting the dependence display to judge it.  With measured
speedups, byte-identity verification, a relink-aware compile cache and a
worker pool in place, the machine can instead race many candidate
transform sequences -- *worlds* -- at once and hand the user the
measured winner:

    propose -> fork -> race -> rank -> adopt

* **propose** (:mod:`.proposer`): candidate sequences derived from the
  autopar impediment report and the transformation-guidance list;
* **fork** (:meth:`PedSession.fork` over
  :meth:`ProgramSnapshot.materialize`): uid-preserving independent
  children, so worlds relink cached compiled units instead of
  recompiling, and losing worlds are dropped without touching survivors;
* **race** (:mod:`.scheduler`): concurrent apply + execute + profile on
  the shared worker pool, gated on byte-identical observables versus
  the serial oracle;
* **rank** (:mod:`.ranker`): deterministic virtual-speedup order with
  measured wall-clock speedups reported alongside;
* **adopt** (:func:`explore_session`, surfaced as
  ``session.explore()``): the winning sequence replays onto the
  exploring session through the normal power-steering path, so every
  adopted transformation is journaled and undoable.

``python -m repro.worlds`` races the corpus programs from the command
line; the fleet pipeline's ``--explore`` stage batches it.
"""

from __future__ import annotations

from ..perf import counters as perf_counters
from .proposer import propose_worlds
from .ranker import pick_winner, rank_results
from .report import WorldProposal, WorldResult, WorldsReport, WorldStep
from .scheduler import apply_steps, parallel_loop_ids, race_worlds

__all__ = [
    "WorldStep", "WorldProposal", "WorldResult", "WorldsReport",
    "propose_worlds", "race_worlds", "rank_results", "pick_winner",
    "apply_steps", "parallel_loop_ids", "explore_session",
]


def explore_session(session, inputs=None, max_worlds: int = 8,
                    workers: int = 4, schedule: str = "static",
                    engines=None, adopt: bool = True,
                    race_workers: int | None = None,
                    max_steps: int = 5_000_000) -> WorldsReport:
    """Full exploration of one session: propose, race, rank, adopt.

    ``engines`` is a tuple of execution-engine names; the first is the
    primary (oracle + timing) engine and every listed engine must
    byte-match the oracle for a world to be accepted.  ``None`` follows
    the session default (``REPRO_EXEC_ENGINE`` or ``"compiled"``).

    With ``adopt=True`` the winner's steps are replayed onto the
    session itself -- but only when the winner actually parallelized
    something; a winner that merely ties the serial program changes
    nothing worth journaling.
    """
    from ..interp.verify import resolve_engine
    if engines is None:
        engines = (resolve_engine(None),)
    elif isinstance(engines, str):
        engines = tuple(e for e in engines.split(",") if e)
    else:
        engines = tuple(engines)
    engines = tuple(resolve_engine(e) for e in engines)

    proposals, impediments = propose_worlds(session,
                                            max_worlds=max_worlds)
    results, oracle_clock = race_worlds(
        session, proposals, inputs=inputs, workers=workers,
        schedule=schedule, engines=engines, race_workers=race_workers,
        max_steps=max_steps)
    ranked = rank_results(results)
    winner = pick_winner(ranked)
    report = WorldsReport(
        results=ranked,
        winner=winner.name if winner is not None else None,
        workers=workers, schedule=schedule, engines=engines,
        oracle_clock=oracle_clock, impediments=impediments)
    if adopt and winner is not None and winner.parallel_loops:
        ok, applied, err = apply_steps(session, winner.proposal.steps)
        if ok and session.source() != winner.source:
            ok, err = False, ("adopted program does not match the raced "
                              "winner (non-deterministic replay?)")
        if ok:
            report.adopted = applied
            perf_counters.bump("worlds_adopted")
        else:
            report.adopt_error = err
    return report
