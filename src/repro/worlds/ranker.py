"""World ranking and winner selection.

Ranking is on the **virtual** speedup -- the fork-join cost model's
oracle-clock / world-clock ratio.  The virtual clock is byte-identical
across worker counts, chunk schedules and execution engines (that is the
runtime's core invariant), so the ranked order, and therefore the
adopted winner, is deterministic under every race configuration.
Wall-clock ``measured_speedup`` is reported alongside and benchmarked
(A13), but a host's scheduling jitter never reorders worlds.

Ties break toward fewer steps (prefer the cheaper sequence -- in
particular the plain-autopar baseline over a same-speed embellishment),
then lexicographic name.  Rejected and failed worlds trail the accepted
ones in stable proposal order, so the full report is deterministic too.
"""

from __future__ import annotations

from .report import WorldResult


def _rank_key(r: WorldResult) -> tuple:
    return (-r.virtual_speedup, len(r.proposal.steps), r.name)


def rank_results(results: list[WorldResult]) -> list[WorldResult]:
    """Accepted worlds best-first, then rejected, then failed."""
    accepted = sorted((r for r in results if r.accepted), key=_rank_key)
    rejected = [r for r in results if r.status == "rejected"]
    failed = [r for r in results if r.status == "failed"]
    return accepted + rejected + failed


def pick_winner(ranked: list[WorldResult]) -> WorldResult | None:
    """The top accepted world, or None when nothing survived the gate."""
    for r in ranked:
        if r.accepted:
            return r
    return None
