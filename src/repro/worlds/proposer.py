"""World proposal: turn analysis products into candidate sequences.

The proposer never mutates the exploring session.  It forks a probe,
auto-parallelizes the probe, and reads the impediment report --
exactly the data PED shows a user deciding what to try next -- plus the
transformation-guidance list on each impeded loop.  From those it
derives candidate worlds:

* the **baseline**: plain ``auto_parallelize`` (what the session would
  do today with one keystroke);
* one world per actionable impediment suggestion -- reduction
  recognition, array privatization (``classify_variable``), or a
  dependence-breaking assertion -- each followed by a fresh
  auto-parallelize sweep;
* a **combo** world applying every distinct impediment fix before the
  sweep (fixes on different loops compose);
* one world per safe structure transform (interchange, distribution,
  alignment, skewing, reversal) on an impeded loop, again followed by
  the sweep.

Lint is a second, independent vote: unsuppressed RACE findings on the
probe's post-autopar program become proposals too -- RACE001/002 map to
privatizing the flagged scalar, RACE003 to reduction recognition --
named ``lint:<rule>(<var>)+autopar@<unit>:<loop>``.

Proposal order is deterministic: baseline first, then impediment fixes
in importance order, combo, lint-driven fixes, then structure
transforms; duplicates (same step sequence) are dropped and the list is
capped at ``max_worlds``.
"""

from __future__ import annotations

import re

from ..perf import counters as perf_counters
from .report import WorldProposal, WorldStep

#: structure transforms worth trying before a re-sweep, in guidance order
STRUCTURE_TRANSFORMS = ("loop_interchange", "loop_distribution",
                        "loop_alignment", "loop_skewing", "loop_reversal")

_CLASSIFY_RE = re.compile(r"classify_variable\('([A-Z0-9_]+)',\s*'private'\)")
_ASSERT_RE = re.compile(r"ASSERT (.+)$")

AUTOPAR = WorldStep(op="autopar")


def _lint_race_findings(probe):
    """Unsuppressed RACE findings (with a loop anchor) on the probe's
    post-autopar program, in deterministic diagnostic order."""
    try:
        from ..lint import lint_program
        diags = lint_program(probe.program)
    except Exception:
        return []
    return [d for d in diags
            if d.rule.startswith("RACE") and not d.suppressed
            and d.loop is not None]


def _suggestion_steps(imp, suggestion: str) -> tuple[WorldStep, ...] | None:
    """Map one autopar impediment suggestion to its fix step."""
    if "apply reduction_recognition" in suggestion:
        return (WorldStep(op="apply", transform="reduction_recognition",
                          unit=imp.unit, loop=imp.loop_id),)
    m = _CLASSIFY_RE.search(suggestion)
    if m:
        return (WorldStep(op="classify", var=m.group(1), kind="private",
                          unit=imp.unit, loop=imp.loop_id),)
    m = _ASSERT_RE.search(suggestion)
    if m:
        return (WorldStep(op="assert", text=m.group(1).strip()),)
    return None


def propose_worlds(session, max_worlds: int = 8
                   ) -> tuple[list[WorldProposal], int]:
    """Candidate worlds for a session, plus the probe's impediment count.

    The session itself is untouched: proposals are derived on a fork.
    """
    probe = session.fork()
    auto_report = probe.auto_parallelize()
    proposals: list[WorldProposal] = [WorldProposal(
        name="autopar",
        steps=(AUTOPAR,),
        rationale="baseline: plain auto-parallelize sweep")]

    fix_steps: list[WorldStep] = []   # distinct fixes, importance order
    for imp in auto_report.impediments:
        for sug in imp.suggestions:
            steps = _suggestion_steps(imp, sug)
            if steps is None:
                continue
            fix = steps[0]
            label = {"apply": "reduce", "classify": "privatize",
                     "assert": "assert"}[fix.op]
            what = fix.var or fix.transform or fix.text
            proposals.append(WorldProposal(
                name=f"{label}({what})+autopar@{imp.unit}:{imp.loop_id}"
                if fix.op != "assert"
                else f"assert+autopar@{imp.unit}:{imp.loop_id}",
                steps=steps + (AUTOPAR,),
                rationale=sug))
            if fix not in fix_steps:
                fix_steps.append(fix)
    if len(fix_steps) >= 2:
        proposals.append(WorldProposal(
            name="combo+autopar",
            steps=tuple(fix_steps) + (AUTOPAR,),
            rationale=f"all {len(fix_steps)} impediment fixes combined"))

    # lint-driven proposals: the race detector re-derives parallel
    # safety from independent analyses, so a RACE finding on a marked
    # loop is evidence the mark needs a fix the impediment report may
    # not carry -- RACE001/002 suggest privatizing the flagged scalar,
    # RACE003 suggests recognizing the reduction.
    for d in _lint_race_findings(probe):
        if d.rule in ("RACE001", "RACE002") and d.var:
            step = WorldStep(op="classify", var=d.var, kind="private",
                             unit=d.unit, loop=d.loop)
        elif d.rule == "RACE003" and d.var:
            step = WorldStep(op="apply",
                             transform="reduction_recognition",
                             unit=d.unit, loop=d.loop)
        else:
            continue
        proposals.append(WorldProposal(
            name=f"lint:{d.rule}({d.var})+autopar@{d.unit}:{d.loop}",
            steps=(step, AUTOPAR),
            rationale=f"lint {d.rule}: {d.message}"))

    # structure transforms on impeded loops, guided by the probe's
    # safety checks (the probe's post-autopar state matches what the
    # structure world sees: parallelize only marks loops, ids stay put)
    for imp in auto_report.impediments:
        try:
            probe.select_unit(imp.unit)
            safe = probe.safe_transformations(imp.loop_id)
        except Exception:
            continue
        safe_names = {n for n, _ in safe}
        for tname in STRUCTURE_TRANSFORMS:
            if tname not in safe_names:
                continue
            proposals.append(WorldProposal(
                name=f"{tname}+autopar@{imp.unit}:{imp.loop_id}",
                steps=(WorldStep(op="apply", transform=tname,
                                 unit=imp.unit, loop=imp.loop_id),
                       AUTOPAR),
                rationale=f"guidance: {tname} is safe on the impeded "
                          f"loop {imp.unit}:{imp.loop_id}"))

    seen: set[tuple] = set()
    names: dict[str, int] = {}
    unique: list[WorldProposal] = []
    for p in proposals:
        sig = p.signature()
        if sig in seen:
            continue
        seen.add(sig)
        # names key the winner lookup: two distinct worlds at the same
        # loop (e.g. two breaking assertions) must not collide
        n = names.get(p.name, 0) + 1
        names[p.name] = n
        if n > 1:
            p = WorldProposal(name=f"{p.name}#{n}", steps=p.steps,
                              rationale=p.rationale)
        unique.append(p)
    unique = unique[:max_worlds]
    perf_counters.bump("worlds_proposed", len(unique))
    return unique, len(auto_report.impediments)
