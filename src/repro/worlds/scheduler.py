"""World racing: fork, apply, execute, and gate every candidate.

Each proposal is raced independently:

1. the exploring session is forked (:meth:`PedSession.fork` -- a
   uid-preserving materialized snapshot, so the fork's first execution
   relinks the parent's compiled units instead of recompiling);
2. the proposal's steps are replayed onto the fork through the normal
   power-steering paths (``apply`` / ``classify_variable`` /
   ``assert_fact`` / ``auto_parallelize``); a refused or crashing step
   fails the world -- the transaction layer guarantees the fork is left
   consistent, and losing forks are simply dropped;
3. the world executes on every requested engine, once with 1 worker and
   once with the race's worker count, and every run is compared
   byte-for-byte (:func:`repro.interp.verify.identical_runs`) against
   the serial oracle run of the *unmodified* parent program;
4. acceptance requires byte-identity under every engine x worker combo;
   the deterministic virtual speedup (oracle clock / world clock) and
   the measured wall-clock speedup are recorded.

Races fan across the persistent shared thread pool
(``run_tasks(reuse="worlds")``): a dedicated executor kind, so world
tasks can themselves fork DOALL chunks onto the ``thread`` executor
without pool-recursion deadlock.  Results return in submission order --
the race outcome is deterministic even though completion order is not.
"""

from __future__ import annotations

import time

from ..interp.verify import identical_runs, run_program
from ..perf import counters as perf_counters
from ..perf.pool import TaskFailure, cpu_count, run_tasks
from .report import (STATUS_ACCEPTED, STATUS_FAILED, STATUS_REJECTED,
                     WorldProposal, WorldResult, WorldStep)


def apply_steps(session, steps) -> tuple[bool, list[str], str]:
    """Replay a world's steps onto a session via the public APIs.

    Returns ``(ok, applied_descriptions, error)``.  The first refused or
    crashing step stops the replay with ``ok=False``; the power-steering
    transaction layer has already restored the session's program, so a
    failed world is safe to discard (or, on the exploring session
    itself, leaves prior successful steps journaled and undoable).
    """
    applied: list[str] = []
    for st in steps:
        try:
            if st.op == "autopar":
                rep = session.auto_parallelize()
                applied.append(f"auto_parallelize: "
                               f"{len(rep.parallelized)} loop(s)")
            elif st.op == "apply":
                session.select_unit(st.unit)
                res = session.apply(st.transform, loop=st.loop,
                                    **dict(st.params))
                if not res.applied:
                    return False, applied, (
                        f"{st.describe()} refused: "
                        f"{res.error or res.advice.explain()}")
                applied.append(st.describe())
            elif st.op == "classify":
                session.select_unit(st.unit)
                session.classify_variable(st.var, st.kind, loop=st.loop,
                                          reason="worlds explorer")
                applied.append(st.describe())
            elif st.op == "assert":
                session.assert_fact(st.text)
                applied.append(st.describe())
            else:
                return False, applied, f"unknown step op {st.op!r}"
        except Exception as e:
            return False, applied, (f"{st.describe()} failed: "
                                    f"{type(e).__name__}: {e}")
    return True, applied, ""


def parallel_loop_ids(program) -> list[str]:
    """unit:loop display ids of every PARALLEL DO in a program."""
    out = []
    for uname in program.unit_names():
        try:
            loops = program.units[uname].loops.all_loops()
        except Exception:
            continue
        out.extend(f"{uname}:{li.id}" for li in loops if li.loop.parallel)
    return out


def _race_one(child, proposal: WorldProposal, oracle, oracle_clock: float,
              inputs, workers: int, schedule: str,
              engines: tuple[str, ...], max_steps: int) -> WorldResult:
    t0 = time.perf_counter()
    result = WorldResult(proposal=proposal, engines=engines)
    perf_counters.bump("worlds_raced")
    ok, applied, err = apply_steps(child, proposal.steps)
    result.applied = applied
    if not ok:
        result.status = STATUS_FAILED
        result.error = err
        result.elapsed = time.perf_counter() - t0
        return result
    prog = child.program
    result.parallel_loops = parallel_loop_ids(prog)
    result.source = child.source()
    try:
        identical = True
        total_diffs = 0
        for ei, eng in enumerate(engines):
            tw = time.perf_counter()
            w1 = run_program(prog, inputs=list(inputs or []), engine=eng,
                             workers=1, schedule=schedule,
                             max_steps=max_steps)
            wall_serial = time.perf_counter() - tw
            tw = time.perf_counter()
            wn = run_program(prog, inputs=list(inputs or []), engine=eng,
                             workers=workers, schedule=schedule,
                             max_steps=max_steps)
            wall_parallel = time.perf_counter() - tw
            d1 = identical_runs(oracle, w1)
            dn = identical_runs(oracle, wn)
            total_diffs += len(d1) + len(dn)
            if d1 or dn:
                identical = False
                result.error = (f"{eng}: diverges from serial oracle "
                                f"({(d1 or dn).format(limit=2)})")
            if ei == 0:
                result.world_clock = wn.clock
                result.virtual_speedup = (
                    oracle_clock / wn.clock if wn.clock > 0
                    else float("inf"))
                result.wall_serial = wall_serial
                result.wall_parallel = wall_parallel
                result.measured_speedup = (
                    wall_serial / wall_parallel if wall_parallel > 0
                    else float("inf"))
    except Exception as e:
        result.status = STATUS_FAILED
        result.error = f"execution failed: {type(e).__name__}: {e}"
        result.elapsed = time.perf_counter() - t0
        return result
    result.byte_identical = identical
    result.diffs = total_diffs
    result.status = STATUS_ACCEPTED if identical else STATUS_REJECTED
    perf_counters.bump(
        "worlds_accepted" if identical else "worlds_rejected")
    result.elapsed = time.perf_counter() - t0
    return result


def race_worlds(session, proposals, inputs=None, workers: int = 4,
                schedule: str = "static",
                engines: tuple[str, ...] = ("compiled",),
                race_workers: int | None = None,
                max_steps: int = 5_000_000
                ) -> tuple[list[WorldResult], float]:
    """Race every proposal concurrently; results in proposal order.

    Returns ``(results, oracle_clock)``.  The oracle -- the unmodified
    parent program run serially on the primary engine -- executes once
    up front; every world's runs are compared against its snapshot.
    """
    oracle = run_program(session.program, inputs=list(inputs or []),
                         engine=engines[0], workers=1, schedule=schedule,
                         max_steps=max_steps)
    oracle_clock = oracle.clock
    # forks are taken serially (cheap AST clones) so the race tasks
    # start from fully-built children and stay read-only on the parent
    children = [session.fork() for _ in proposals]
    tasks = [
        lambda child=child, p=p: _race_one(
            child, p, oracle, oracle_clock, inputs, workers, schedule,
            engines, max_steps)
        for child, p in zip(children, proposals)]
    raced = run_tasks(
        tasks,
        max_workers=race_workers or min(len(tasks), cpu_count()),
        contexts=[p.name for p in proposals],
        on_error="return",
        reuse="worlds")
    results: list[WorldResult] = []
    for p, r in zip(proposals, raced):
        if isinstance(r, TaskFailure):
            results.append(WorldResult(
                proposal=p, status=STATUS_FAILED,
                error=f"race task died: {type(r.error).__name__}: "
                      f"{r.error}",
                engines=engines, elapsed=r.elapsed))
        else:
            results.append(r)
    return results, oracle_clock
