"""Data model of the parallel-worlds explorer.

A *world* is one candidate transform sequence speculatively applied to a
fork of the exploring session.  The model separates

* :class:`WorldStep` -- one replayable action (a registry transform, a
  variable classification, a user assertion, or an auto-parallelize
  sweep), addressed by unit name and display loop id so the same step
  applies identically to any uid-preserving fork of the same program;
* :class:`WorldProposal` -- a named, ordered step sequence with the
  rationale the proposer derived it from;
* :class:`WorldResult` -- what happened when the world was raced:
  apply outcome, byte-identity verdict against the serial oracle,
  deterministic virtual speedup (ranking key) and measured wall-clock
  speedup (reporting);
* :class:`WorldsReport` -- the ranked race outcome plus the adopted
  winner, JSON-able for the fleet's per-program record (timing fields
  are excluded by default so checkpoint-resumed fleet reports stay
  byte-identical).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class WorldStep:
    """One replayable action of a world's transform sequence."""

    #: "apply" | "classify" | "assert" | "autopar"
    op: str
    #: registry transform name (op == "apply")
    transform: str = ""
    #: target unit name (apply/classify)
    unit: str = ""
    #: target loop display id, e.g. "L2" (apply/classify); display ids
    #: are source-order positional, so they resolve identically on any
    #: fork of the same program
    loop: str = ""
    #: variable name / classification kind (op == "classify")
    var: str = ""
    kind: str = ""
    #: assertion text (op == "assert")
    text: str = ""
    #: extra transform parameters (op == "apply")
    params: tuple = ()

    def describe(self) -> str:
        if self.op == "autopar":
            return "auto_parallelize"
        if self.op == "apply":
            where = f" @ {self.unit}:{self.loop}" if self.loop else ""
            return f"{self.transform}{where}"
        if self.op == "classify":
            return (f"classify {self.var} -> {self.kind} "
                    f"@ {self.unit}:{self.loop}")
        if self.op == "assert":
            return f"ASSERT {self.text}"
        return self.op

    def to_json(self) -> dict:
        out = {"op": self.op}
        for k in ("transform", "unit", "loop", "var", "kind", "text"):
            v = getattr(self, k)
            if v:
                out[k] = v
        if self.params:
            out["params"] = dict(self.params)
        return out


@dataclass(frozen=True)
class WorldProposal:
    """A named candidate transform sequence."""

    name: str
    steps: tuple[WorldStep, ...]
    rationale: str = ""

    def signature(self) -> tuple:
        """Dedup key: the step sequence itself, not the name."""
        return tuple(self.steps)

    def to_json(self) -> dict:
        return {"name": self.name,
                "steps": [s.to_json() for s in self.steps],
                "rationale": self.rationale}


#: race outcomes
STATUS_ACCEPTED = "accepted"   # applied, ran, byte-identical to oracle
STATUS_REJECTED = "rejected"   # ran but observables diverged
STATUS_FAILED = "failed"       # a step refused/crashed or the run died


@dataclass
class WorldResult:
    """One world's race outcome."""

    proposal: WorldProposal
    status: str = STATUS_FAILED
    error: str = ""
    #: descriptions of the steps that actually applied, in order
    applied: list[str] = field(default_factory=list)
    #: unit:loop ids parallel in the world's final program
    parallel_loops: list[str] = field(default_factory=list)
    byte_identical: bool = False
    #: observable differences vs. the serial oracle (0 when identical)
    diffs: int = 0
    #: deterministic ranking key: oracle virtual clock / world virtual
    #: clock -- identical across workers, schedules and engines because
    #: the fork-join virtual clock is
    virtual_speedup: float = 0.0
    world_clock: float = 0.0
    #: wall-clock speedup of the world itself (1 worker vs. N workers on
    #: the primary engine); host-dependent, reported but never ranked on
    measured_speedup: float = 0.0
    wall_serial: float = 0.0
    wall_parallel: float = 0.0
    #: engines the world executed (and byte-matched the oracle) under
    engines: tuple[str, ...] = ()
    #: the world's final program text (what adoption must reproduce)
    source: str = ""
    elapsed: float = 0.0

    @property
    def name(self) -> str:
        return self.proposal.name

    @property
    def accepted(self) -> bool:
        return self.status == STATUS_ACCEPTED

    def to_json(self, include_timing: bool = False) -> dict:
        out = {
            "name": self.name,
            "status": self.status,
            "steps": [s.to_json() for s in self.proposal.steps],
            "applied": list(self.applied),
            "parallel_loops": list(self.parallel_loops),
            "byte_identical": self.byte_identical,
            "diffs": self.diffs,
            "virtual_speedup": round(self.virtual_speedup, 6),
            "engines": list(self.engines),
        }
        if self.error:
            out["error"] = self.error
        if include_timing:
            out["measured_speedup"] = round(self.measured_speedup, 3)
            out["wall_serial"] = round(self.wall_serial, 6)
            out["wall_parallel"] = round(self.wall_parallel, 6)
            out["elapsed"] = round(self.elapsed, 6)
        return out


@dataclass
class WorldsReport:
    """The full outcome of one exploration."""

    #: results in rank order (accepted best-first, then rejected/failed)
    results: list[WorldResult] = field(default_factory=list)
    #: name of the top-ranked accepted world (None: nothing survived)
    winner: str | None = None
    #: step descriptions replayed onto the exploring session
    adopted: list[str] = field(default_factory=list)
    adopt_error: str = ""
    #: race configuration
    workers: int = 4
    schedule: str = "static"
    engines: tuple[str, ...] = ("compiled",)
    oracle_clock: float = 0.0
    #: impediment count of the probe's auto-parallelize sweep
    impediments: int = 0

    @property
    def winner_result(self) -> WorldResult | None:
        for r in self.results:
            if r.name == self.winner:
                return r
        return None

    def ranked(self) -> list[WorldResult]:
        """Accepted worlds only, best first."""
        return [r for r in self.results if r.accepted]

    def describe(self) -> str:
        lines = [f"explored {len(self.results)} world(s) at "
                 f"{self.workers} workers / {self.schedule} schedule "
                 f"on {'+'.join(self.engines)}"]
        lines.append(f"{'world':<36} {'status':<9} {'virtual':>8} "
                     f"{'measured':>9} {'parallel':>8}")
        for r in self.results:
            virt = f"{r.virtual_speedup:.2f}x" if r.accepted else "-"
            meas = f"{r.measured_speedup:.2f}x" \
                if r.accepted and r.measured_speedup else "-"
            mark = " <- winner" if r.name == self.winner else ""
            lines.append(f"{r.name:<36} {r.status:<9} {virt:>8} "
                         f"{meas:>9} {len(r.parallel_loops):>8}{mark}")
            if r.error:
                lines.append(f"    {r.error}")
        if self.adopted:
            lines.append("adopted: " + "; ".join(self.adopted))
        elif self.adopt_error:
            lines.append(f"adoption failed: {self.adopt_error}")
        return "\n".join(lines)

    def to_json(self, include_timing: bool = False) -> dict:
        return {
            "winner": self.winner,
            "adopted": list(self.adopted),
            "workers": self.workers,
            "schedule": self.schedule,
            "engines": list(self.engines),
            "oracle_clock": self.oracle_clock,
            "impediments": self.impediments,
            "worlds": [r.to_json(include_timing=include_timing)
                       for r in self.results],
        }
