"""CLI: ``python -m repro.worlds [programs...] [options]``.

Examples::

    python -m repro.worlds                        # explore all 8
    python -m repro.worlds slalom --engines compiled,vector
    python -m repro.worlds dpmin --format json --timing
"""

from __future__ import annotations

import argparse
import json
import sys

from ..corpus import ORDER, PROGRAMS
from ..perf import counters
from ..ped.session import PedSession


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.worlds",
        description="Speculative parallel-worlds transform explorer: "
                    "race candidate transform sequences per program, "
                    "gate on byte-identity vs. the serial oracle, rank "
                    "by speedup, adopt the winner.")
    p.add_argument("programs", nargs="*", metavar="PROGRAM",
                   help=f"corpus programs (default: all -- "
                        f"{', '.join(ORDER)})")
    p.add_argument("--max-worlds", type=int, default=8,
                   help="candidate worlds raced per program (default: 8)")
    p.add_argument("--workers", type=int, default=4,
                   help="DOALL worker count each world runs under "
                        "(default: 4)")
    p.add_argument("--schedule", choices=("static", "dynamic"),
                   default="static")
    p.add_argument("--engines", default=None,
                   help="comma-separated execution tiers every world "
                        "must byte-match the oracle on; first is the "
                        "timing engine (default: session engine)")
    p.add_argument("--race-workers", type=int, default=None,
                   help="concurrent world races (default: min(worlds, "
                        "cores))")
    p.add_argument("--no-adopt", action="store_true",
                   help="rank only; do not replay the winner onto the "
                        "session")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--timing", action="store_true",
                   help="include wall-clock fields in JSON output "
                        "(non-canonical)")
    p.add_argument("--counters", action="store_true",
                   help="print engine counters afterwards")
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    names = args.programs or list(ORDER)
    unknown = [n for n in names if n not in PROGRAMS]
    if unknown:
        print(f"unknown program(s): {', '.join(unknown)} "
              f"(known: {', '.join(ORDER)})", file=sys.stderr)
        return 2
    out = {}
    for name in names:
        session = PedSession(PROGRAMS[name].source)
        report = session.explore(
            inputs=PROGRAMS[name].inputs,
            max_worlds=args.max_worlds, workers=args.workers,
            schedule=args.schedule, engines=args.engines,
            adopt=not args.no_adopt, race_workers=args.race_workers)
        if args.format == "json":
            out[name] = report.to_json(include_timing=args.timing)
        else:
            print(f"== {name} ==")
            print(report.describe())
            print()
    if args.format == "json":
        print(json.dumps(out, sort_keys=True, indent=1))
    if args.counters:
        print(counters.report())
    return 0


if __name__ == "__main__":
    sys.exit(main())
