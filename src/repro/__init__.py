"""repro: a reproduction of the ParaScope Editor (PED).

``repro`` implements the interactive parallel programming tool described in
"Experiences Using the ParaScope Editor" (PPoPP 1993): a Fortran 77 front
end, dependence analysis with scalar/symbolic/interprocedural support, the
Figure-2 transformation catalog under the power-steering paradigm, the
user-assertion language of Section 3.3, static performance estimation, a
profiling interpreter, and the pane-based editor session model.

Quick start::

    from repro import PedSession
    session = PedSession(fortran_source_text)
    loop = session.loops()[0]
    session.select_loop(loop)
    print(session.render())            # the Figure-1 style window
    session.classify_variable("T", "private", reason="killed each iter")
    advice = session.apply("parallelize", loop)
"""

__version__ = "1.0.0"


def __getattr__(name):
    # PedSession is imported lazily so that low-level subpackages
    # (repro.fortran, repro.dependence, ...) can be used without pulling in
    # the whole session stack.
    if name == "PedSession":
        from .ped.session import PedSession
        return PedSession
    raise AttributeError(name)


__all__ = ["PedSession", "__version__"]
