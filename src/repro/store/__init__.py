"""Tiered cross-session artifact store.

Every expensive artifact the system derives -- compiled units, pair-test
verdicts, parsed programs, interprocedural summaries, pristine program
snapshots -- is keyed on *uid-free structural identity* (a fingerprint,
a source text, a canonical signature).  Two sessions analyzing the same
unit therefore ask the same questions, and the service layer's job is to
make them pay for the answer once.  This module is that shared layer:

* a **memory tier** per namespace -- a thread-safe LRU bounded by entry
  count *and* approximate bytes, so a thousand-session server cannot
  grow a cache without limit;
* an optional **disk tier** -- fingerprint-digest-keyed pickle files
  that survive process restarts (a freshly started server re-hits the
  previous run's pair-test and summary verdicts).  A disk hit is
  *promoted* back into the memory tier.  Namespaces whose values embed
  process-local state (closures in compiled units, statement uids in
  snapshots) never touch disk;
* **per-tier counters** -- hits / misses / evictions / promotions /
  stores per namespace, surfaced through ``session.health()`` and the
  server's ``/health`` endpoint, because a sharing layer that cannot
  prove its hit rate is indistinguishable from one that does nothing.

Configuration (read when the default store is first built):

* ``REPRO_STORE_MEM_ENTRIES`` / ``REPRO_STORE_MEM_BYTES`` -- default
  per-namespace memory bounds (entries / approximate bytes);
* ``REPRO_STORE_<NS>_ENTRIES`` / ``REPRO_STORE_<NS>_BYTES`` -- override
  one namespace (``<NS>`` upper-cased: PAIR, COMPILE, PROGRAM, SUMMARY,
  SNAPSHOT);
* ``REPRO_STORE_DIR`` -- disk-tier root directory (unset/empty
  disables the disk tier);
* ``REPRO_STORE_DISK_ENTRIES`` / ``REPRO_STORE_DISK_BYTES`` -- disk
  tier bounds (entries / bytes of pickled artifacts);
* ``REPRO_STORE_DISK_TTL`` -- disk-tier artifact age bound in seconds:
  files older than this (by mtime) are garbage-collected on store
  construction and opportunistically on writes, with per-namespace
  ``ttl_evictions`` counters surfaced through ``stats()``/``health()``
  (unset = artifacts never expire).

The process-global default store is shared by every session (that is
the point).  Benchmarks and tests that need *isolated* per-session
caches install a private store for the current thread with
:func:`scoped_store`; lookups made from that thread -- which is where a
session's analysis runs -- then never touch the shared tiers.  (Work a
session explicitly fans out to pool workers keeps using the shared
store; the scoped override is a measurement tool, not a sandbox.)
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from sys import getsizeof


class _Miss:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<miss>"


#: sentinel returned by :meth:`ArtifactStore.get` when no tier has the key
MISS = _Miss()


@dataclass
class TierCounters:
    """Hit/miss/evict/promote counters for one namespace's tier."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    promotions: int = 0
    stores: int = 0
    #: values that could not enter the tier (unpicklable, over-size...)
    skips: int = 0
    #: disk-tier entries removed by the TTL age sweep (memory tiers: 0)
    ttl_evictions: int = 0

    def as_dict(self) -> dict:
        total = self.hits + self.misses
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "promotions": self.promotions, "stores": self.stores,
                "skips": self.skips,
                "ttl_evictions": self.ttl_evictions,
                "hit_rate": self.hits / total if total else 0.0}


@dataclass
class NamespaceSpec:
    """Declared defaults for one artifact namespace."""

    name: str
    mem_entries: int = 1024
    mem_bytes: int | None = None
    #: whether values may be persisted to the disk tier (closures and
    #: uid-bearing artifacts must say False)
    disk: bool = False


#: namespace declarations, registered by the subsystems that own them
_DECLARED: dict[str, NamespaceSpec] = {}


def declare(name: str, mem_entries: int = 1024,
            mem_bytes: int | None = None, disk: bool = False
            ) -> NamespaceSpec:
    """Register (or update) a namespace's default bounds.

    Idempotent; every :class:`ArtifactStore` instance lazily creates its
    tiers for declared namespaces on first use.
    """
    spec = NamespaceSpec(name=name, mem_entries=mem_entries,
                         mem_bytes=mem_bytes, disk=disk)
    _DECLARED[name] = spec
    return spec


def _env_int(name: str) -> int | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def _env_float(name: str) -> float | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def _approx_size(value) -> int:
    """Cheap shallow size estimate (the bytes bound is approximate by
    contract; exact deep sizes would cost more than the artifacts)."""
    try:
        return getsizeof(value)
    except Exception:
        return 64


class _MemoryNamespace:
    """One namespace's in-memory LRU (entries + approximate bytes)."""

    __slots__ = ("entries", "max_entries", "max_bytes", "total_bytes",
                 "counters")

    def __init__(self, max_entries: int, max_bytes: int | None):
        self.entries: "OrderedDict[object, tuple[object, int]]" = \
            OrderedDict()
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.total_bytes = 0
        self.counters = TierCounters()

    def shrink(self) -> int:
        evicted = 0
        while len(self.entries) > self.max_entries or (
                self.max_bytes is not None
                and self.total_bytes > self.max_bytes
                and self.entries):
            _, (_, nbytes) = self.entries.popitem(last=False)
            self.total_bytes -= nbytes
            self.counters.evictions += 1
            evicted += 1
        return evicted


class _DiskNamespaceIndex:
    __slots__ = ("files", "total_bytes")

    def __init__(self):
        #: digest -> (path, nbytes); insertion order approximates LRU
        self.files: "OrderedDict[str, tuple[str, int]]" = OrderedDict()
        self.total_bytes = 0


class DiskTier:
    """Digest-keyed pickle files under ``root/<namespace>/``.

    Files are written atomically (tmp + rename) and verified on load:
    each file stores ``(key, value)`` and a read only counts as a hit
    when the unpickled key equals the probe key (the digest is a
    filename, not a proof).  Corrupt or unreadable files are treated as
    misses and removed.  Bounds are enforced per tier across all
    namespaces, oldest-first.
    """

    def __init__(self, root: str, max_entries: int = 4096,
                 max_bytes: int | None = 256 * 1024 * 1024,
                 ttl: float | None = None):
        self.root = root
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        #: artifact age bound in seconds (None = artifacts never expire)
        self.ttl = ttl
        self._lock = threading.Lock()
        self._index: dict[str, _DiskNamespaceIndex] = {}
        self._counters: dict[str, TierCounters] = {}
        self._last_sweep = 0.0
        self._scan()
        if self.ttl is not None:
            self.sweep()

    # -- bookkeeping ------------------------------------------------------

    def _ns(self, namespace: str) -> _DiskNamespaceIndex:
        idx = self._index.get(namespace)
        if idx is None:
            idx = self._index[namespace] = _DiskNamespaceIndex()
        return idx

    def counters(self, namespace: str) -> TierCounters:
        c = self._counters.get(namespace)
        if c is None:
            c = self._counters[namespace] = TierCounters()
        return c

    def _scan(self) -> None:
        """Rebuild the index from what a previous process left behind."""
        try:
            namespaces = sorted(os.listdir(self.root))
        except OSError:
            return
        entries = []
        for ns in namespaces:
            nsdir = os.path.join(self.root, ns)
            if not os.path.isdir(nsdir):
                continue
            for fn in sorted(os.listdir(nsdir)):
                if not fn.endswith(".pkl"):
                    continue
                path = os.path.join(nsdir, fn)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                entries.append((st.st_mtime, ns, fn[:-4], path,
                                st.st_size))
        for _, ns, digest, path, size in sorted(entries):
            idx = self._ns(ns)
            idx.files[digest] = (path, size)
            idx.total_bytes += size

    def _entry_count(self) -> int:
        return sum(len(i.files) for i in self._index.values())

    def _byte_count(self) -> int:
        return sum(i.total_bytes for i in self._index.values())

    def _evict_oldest(self) -> None:
        # oldest-first across namespaces (approximate: index order)
        for ns, idx in self._index.items():
            if idx.files:
                digest, (path, size) = idx.files.popitem(last=False)
                idx.total_bytes -= size
                self.counters(ns).evictions += 1
                try:
                    os.remove(path)
                except OSError:
                    pass
                return

    def sweep(self, now: float | None = None) -> int:
        """Remove artifacts older than ``ttl`` seconds (by file mtime).

        Age-based GC for long-lived server deployments: bounds how stale
        a cross-session verdict can get, independent of the entry/byte
        LRU bounds.  Runs on construction, then opportunistically from
        :meth:`put` (at most once per ``ttl / 4`` seconds), and is safe
        to call directly (tests pass a fake ``now``).  Returns the
        number of files removed; a no-op when ``ttl`` is None.
        """
        if self.ttl is None:
            return 0
        import time as _time
        now = _time.time() if now is None else now
        cutoff = now - self.ttl
        removed = 0
        with self._lock:
            self._last_sweep = now
            for ns, idx in self._index.items():
                for digest in list(idx.files):
                    path, size = idx.files[digest]
                    try:
                        mtime = os.path.getmtime(path)
                    except OSError:
                        mtime = 0.0          # vanished: drop the entry
                    if mtime > cutoff:
                        continue
                    idx.files.pop(digest)
                    idx.total_bytes -= size
                    self.counters(ns).ttl_evictions += 1
                    removed += 1
                    try:
                        os.remove(path)
                    except OSError:
                        pass
        return removed

    def _maybe_sweep(self) -> None:
        if self.ttl is None:
            return
        import time as _time
        if _time.time() - self._last_sweep >= self.ttl / 4:
            self.sweep()

    def _drop(self, namespace: str, digest: str) -> None:
        idx = self._ns(namespace)
        ent = idx.files.pop(digest, None)
        if ent is not None:
            idx.total_bytes -= ent[1]
            try:
                os.remove(ent[0])
            except OSError:
                pass

    # -- access -----------------------------------------------------------

    @staticmethod
    def digest(key) -> str:
        """Filename-safe digest of a key's canonical repr."""
        return hashlib.sha256(repr(key).encode(
            "utf-8", "backslashreplace")).hexdigest()

    def get(self, namespace: str, key, digest: str):
        c = self.counters(namespace)
        with self._lock:
            ent = self._ns(namespace).files.get(digest)
        if ent is None:
            # probe the filesystem anyway: another process may have
            # written the artifact after our scan
            path = os.path.join(self.root, namespace, digest + ".pkl")
            if not os.path.exists(path):
                c.misses += 1
                return MISS
            ent = (path, 0)
        path = ent[0]
        try:
            with open(path, "rb") as f:
                stored_key, value = pickle.load(f)
        except Exception:
            with self._lock:
                self._drop(namespace, digest)
                c.misses += 1
            return MISS
        if stored_key != key:        # digest collision: not our artifact
            c.misses += 1
            return MISS
        with self._lock:
            idx = self._ns(namespace)
            if digest in idx.files:
                idx.files.move_to_end(digest)
            else:                    # found by filesystem probe
                idx.files[digest] = (path, os.path.getsize(path))
                idx.total_bytes += idx.files[digest][1]
            c.hits += 1
        return value

    def put(self, namespace: str, key, value, digest: str) -> None:
        self._maybe_sweep()
        c = self.counters(namespace)
        try:
            blob = pickle.dumps((key, value),
                                protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            with self._lock:
                c.skips += 1
            return
        nsdir = os.path.join(self.root, namespace)
        path = os.path.join(nsdir, digest + ".pkl")
        tmp = path + ".tmp"
        try:
            os.makedirs(nsdir, exist_ok=True)
            with open(tmp, "wb") as f:
                f.write(blob)
            os.replace(tmp, path)
        except OSError:
            with self._lock:
                c.skips += 1
            try:
                os.remove(tmp)
            except OSError:
                pass
            return
        with self._lock:
            idx = self._ns(namespace)
            old = idx.files.pop(digest, None)
            if old is not None:
                idx.total_bytes -= old[1]
            idx.files[digest] = (path, len(blob))
            idx.total_bytes += len(blob)
            c.stores += 1
            while self._entry_count() > self.max_entries or (
                    self.max_bytes is not None
                    and self._byte_count() > self.max_bytes
                    and self._entry_count()):
                self._evict_oldest()

    def clear(self, namespace: str | None = None) -> None:
        with self._lock:
            names = [namespace] if namespace is not None \
                else list(self._index)
            for ns in names:
                idx = self._index.get(ns)
                if idx is None:
                    continue
                for path, _ in idx.files.values():
                    try:
                        os.remove(path)
                    except OSError:
                        pass
                idx.files.clear()
                idx.total_bytes = 0

    def stats(self) -> dict:
        with self._lock:
            out = {}
            for ns in sorted(set(self._index) | set(self._counters)):
                idx = self._index.get(ns)
                d = self.counters(ns).as_dict()
                d["size"] = len(idx.files) if idx else 0
                d["bytes"] = idx.total_bytes if idx else 0
                out[ns] = d
            out["_limits"] = {"entries": self.max_entries,
                              "bytes": self.max_bytes,
                              "ttl": self.ttl}
            return out


class ArtifactStore:
    """Namespaced tiered artifact cache (memory LRU + optional disk)."""

    def __init__(self, disk_dir: str | None = None,
                 mem_entries: int | None = None,
                 mem_bytes: int | None = None,
                 disk_entries: int | None = None,
                 disk_bytes: int | None = None,
                 disk_ttl: float | None = None,
                 from_env: bool = True):
        self._lock = threading.RLock()
        self._mem: dict[str, _MemoryNamespace] = {}
        self._from_env = from_env
        self._default_entries = mem_entries if mem_entries is not None \
            else (_env_int("REPRO_STORE_MEM_ENTRIES")
                  if from_env else None)
        self._default_bytes = mem_bytes if mem_bytes is not None \
            else (_env_int("REPRO_STORE_MEM_BYTES") if from_env else None)
        if disk_dir is None and from_env:
            disk_dir = os.environ.get("REPRO_STORE_DIR", "").strip() \
                or None
        self.disk: DiskTier | None = None
        if disk_dir:
            de = disk_entries if disk_entries is not None else (
                _env_int("REPRO_STORE_DISK_ENTRIES") if from_env
                else None)
            db = disk_bytes if disk_bytes is not None else (
                _env_int("REPRO_STORE_DISK_BYTES") if from_env else None)
            dt = disk_ttl if disk_ttl is not None else (
                _env_float("REPRO_STORE_DISK_TTL") if from_env else None)
            self.disk = DiskTier(
                disk_dir,
                max_entries=de if de is not None else 4096,
                max_bytes=db if db is not None else 256 * 1024 * 1024,
                ttl=dt)
        self._disk_enabled: dict[str, bool] = {}

    # -- namespaces -------------------------------------------------------

    def _spec(self, name: str) -> NamespaceSpec:
        spec = _DECLARED.get(name)
        if spec is None:
            spec = declare(name)
        return spec

    def _mem_ns(self, name: str) -> _MemoryNamespace:
        ns = self._mem.get(name)
        if ns is None:
            spec = self._spec(name)
            entries = spec.mem_entries
            nbytes = spec.mem_bytes
            if self._default_entries is not None:
                entries = self._default_entries
            if self._default_bytes is not None:
                nbytes = self._default_bytes
            if self._from_env:
                upper = name.upper()
                env_e = _env_int(f"REPRO_STORE_{upper}_ENTRIES")
                env_b = _env_int(f"REPRO_STORE_{upper}_BYTES")
                if env_e is not None:
                    entries = env_e
                if env_b is not None:
                    nbytes = env_b
            ns = self._mem[name] = _MemoryNamespace(entries, nbytes)
            self._disk_enabled[name] = spec.disk
        return ns

    def set_limit(self, name: str, entries: int | None = None,
                  nbytes: "int | None | object" = False) -> None:
        """Resize one namespace's memory tier (0 entries disables it)."""
        with self._lock:
            ns = self._mem_ns(name)
            if entries is not None:
                ns.max_entries = max(0, entries)
            if nbytes is not False:
                ns.max_bytes = nbytes
            ns.shrink()

    # -- access -----------------------------------------------------------

    def get(self, name: str, key):
        """Look ``key`` up through the tiers; :data:`MISS` when absent.

        A disk hit is promoted into the memory tier so the next lookup
        is cheap.
        """
        with self._lock:
            ns = self._mem_ns(name)
            ent = ns.entries.get(key)
            if ent is not None:
                ns.entries.move_to_end(key)
                ns.counters.hits += 1
                return ent[0]
            ns.counters.misses += 1
            disk_ok = self._disk_enabled[name] and self.disk is not None
        if not disk_ok:
            return MISS
        value = self.disk.get(name, key, DiskTier.digest(key))
        if value is MISS:
            return MISS
        with self._lock:
            ns = self._mem_ns(name)
            if key not in ns.entries:
                size = _approx_size(value)
                ns.entries[key] = (value, size)
                ns.total_bytes += size
                ns.counters.promotions += 1
                ns.shrink()
        return value

    def put(self, name: str, key, value, nbytes: int | None = None,
            disk: bool = True) -> int:
        """Store into the memory tier (write-through to disk when the
        namespace allows it and ``disk`` is not overridden to False).
        Returns the number of memory-tier evictions this put caused.
        """
        size = nbytes if nbytes is not None else _approx_size(value)
        with self._lock:
            ns = self._mem_ns(name)
            old = ns.entries.pop(key, None)
            if old is not None:
                ns.total_bytes -= old[1]
            if ns.max_entries > 0:
                ns.entries[key] = (value, size)
                ns.total_bytes += size
                ns.counters.stores += 1
            else:
                ns.counters.skips += 1
            evicted = ns.shrink()
            disk_ok = disk and self._disk_enabled[name] \
                and self.disk is not None
        if disk_ok:
            self.disk.put(name, key, value, DiskTier.digest(key))
        return evicted

    def clear(self, name: str | None = None, disk: bool = True) -> None:
        with self._lock:
            names = [name] if name is not None else list(self._mem)
            for n in names:
                ns = self._mem.get(n)
                if ns is not None:
                    ns.entries.clear()
                    ns.total_bytes = 0
        if disk and self.disk is not None:
            self.disk.clear(name)

    # -- observability ----------------------------------------------------

    def info(self, name: str) -> dict:
        """Occupancy + memory-tier counters for one namespace (the shape
        ``pair_cache_info`` / ``compile_cache_info`` have always had)."""
        with self._lock:
            ns = self._mem_ns(name)
            d = ns.counters.as_dict()
            d.update(size=len(ns.entries), limit=ns.max_entries,
                     limit_bytes=ns.max_bytes, bytes=ns.total_bytes)
            return d

    def stats(self) -> dict:
        """Per-namespace, per-tier counters plus totals."""
        with self._lock:
            memory = {}
            th = tm = 0
            for name in sorted(self._mem):
                ns = self._mem[name]
                d = ns.counters.as_dict()
                d.update(size=len(ns.entries), limit=ns.max_entries,
                         limit_bytes=ns.max_bytes, bytes=ns.total_bytes)
                memory[name] = d
                th += ns.counters.hits
                tm += ns.counters.misses
        out = {
            "memory": memory,
            "disk": self.disk.stats() if self.disk is not None else None,
            "totals": {"hits": th, "misses": tm,
                       "hit_rate": th / (th + tm) if th + tm else 0.0},
        }
        return out


# ---------------------------------------------------------------------------
# The process-default store and the per-thread override
# ---------------------------------------------------------------------------

_DEFAULT: ArtifactStore | None = None
_DEFAULT_LOCK = threading.Lock()
_TLS = threading.local()


def get_store() -> ArtifactStore:
    """The active store: the current thread's scoped override when one
    is installed, otherwise the process-wide shared store."""
    override = getattr(_TLS, "store", None)
    if override is not None:
        return override
    global _DEFAULT
    if _DEFAULT is None:
        with _DEFAULT_LOCK:
            if _DEFAULT is None:
                _DEFAULT = ArtifactStore()
    return _DEFAULT


def current_override() -> ArtifactStore | None:
    """This thread's :func:`scoped_store` override, or None.

    The analysis pool uses this to extend a caller's scope across its
    worker threads: work fanned out on behalf of a scoped session must
    read and fill that session's store, not the process default.
    """
    return getattr(_TLS, "store", None)


def set_default_store(store: ArtifactStore | None) -> None:
    """Replace the process-default store (None re-reads the environment
    on next :func:`get_store`)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        _DEFAULT = store


@contextmanager
def scoped_store(store: ArtifactStore | None = None):
    """Install a private store for the current thread.

    ``None`` builds a fresh environment-independent in-memory store --
    the \"isolated per-session caches\" configuration the A14 benchmark
    compares the shared store against.
    """
    if store is None:
        store = ArtifactStore(disk_dir=None, from_env=False)
    prev = getattr(_TLS, "store", None)
    _TLS.store = store
    try:
        yield store
    finally:
        _TLS.store = prev


__all__ = [
    "MISS", "ArtifactStore", "DiskTier", "NamespaceSpec", "TierCounters",
    "current_override", "declare", "get_store", "scoped_store",
    "set_default_store",
]
