"""Dependence analysis: tests, fact base, and the dependence graph."""

from .ddg import DependenceAnalyzer, LoopDependences, RefSite, merge_vectors
from .facts import FactBase, IndexArrayFact, LinearFact
from .model import ANY, EQ, GT, LT, DepType, Dependence, DirectionVector, \
    Mark, Reference, carrier_level, direction_str, is_forward
from .tests import LoopCtx, PairResult, test_pair

__all__ = [
    "DependenceAnalyzer", "LoopDependences", "RefSite", "merge_vectors",
    "FactBase", "IndexArrayFact", "LinearFact",
    "DepType", "Dependence", "DirectionVector", "Mark", "Reference",
    "ANY", "EQ", "GT", "LT", "carrier_level", "direction_str", "is_forward",
    "LoopCtx", "PairResult", "test_pair",
]
