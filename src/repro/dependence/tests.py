"""Hierarchical data-dependence tests (Goff-Kennedy-Tseng style).

Given two subscripted references to the same array inside a common loop
nest, decide for which direction vectors a dependence can exist.  The
suite runs cheap exact tests first and falls back to conservative ones:

* **ZIV** -- subscripts free of loop indices: constant difference decides;
* **strong SIV** -- equal coefficients on one index: exact distance;
* **weak-zero / weak-crossing SIV** -- one-sided or negated coefficients:
  exact intersection/crossing point, checked against loop bounds;
* **GCD** -- divisibility of the constant term by the coefficient gcd;
* **Banerjee** -- symbolic interval bounding of the dependence equation
  under the direction constraints, with *symbolic* interval endpoints so
  that assertions such as ``MCN > IENDV(IR) - ISTRT(IR)`` (pueblo3d) can
  disprove dependences even when loop bounds are unknown expressions;
* **index-array reasoning** -- permutation / monotone-gap / disjointness
  facts about arrays appearing in subscripts (dpmin's ``F(IT(N)+1)``).

A subscript pair tested only by exact tests yields a *proven* result;
anything that needed a conservative assumption is *pending* -- exactly the
marking discipline of Section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import gcd

from ..analysis.linear import LinearExpr, linearize
from ..fortran import ast
from ..perf import counters as _counters
from ..store import MISS, declare as _declare_ns, get_store
from .facts import FactBase
from .model import ANY, EQ, GT, LT, DirectionVector, expand_vector

#: suffix distinguishing sink-iteration loop variables in the equation
SINK = "'"


@dataclass(frozen=True)
class LoopCtx:
    """Bounds context for one loop of the common nest."""

    var: str
    lo: LinearExpr | None      # None = unknown
    hi: LinearExpr | None
    step: int | None = 1

    @property
    def span(self) -> LinearExpr | None:
        """hi - lo (iteration range width), when both bounds are known."""
        if self.lo is None or self.hi is None:
            return None
        return self.hi - self.lo


@dataclass
class PairResult:
    """Outcome of testing one reference pair."""

    #: feasible concrete direction vectors (each entry in {<,=,>})
    vectors: list[DirectionVector] = field(default_factory=list)
    #: per-level constant distances valid for every feasible vector
    distances: dict[int, int] = field(default_factory=dict)
    exact: bool = True
    reason: str = ""

    @property
    def independent(self) -> bool:
        return not self.vectors


def rename_sink(e: ast.Expr, loop_vars: set[str]) -> ast.Expr:
    """Rename loop induction variables to their sink-iteration instances."""
    env = {v: ast.VarRef(v + SINK) for v in loop_vars}
    return ast.substitute(e, env)


def _subscript_equation(src: ast.Expr, snk: ast.Expr, loop_vars: set[str],
                        env: dict[str, LinearExpr]) -> LinearExpr:
    """h = src - snk with sink loop variables renamed (h = 0 <=> overlap)."""
    f = linearize(src, env)
    g = linearize(rename_sink(snk, loop_vars), env)
    return f - g


def _apply_equal_levels(h: LinearExpr, eq_vars: set[str]) -> LinearExpr:
    """Collapse sink instances onto source instances for '=' levels.

    Affine terms merge directly; residue expressions get the renamed
    variables substituted back so structurally-equal index-array
    references cancel (``IT(N')`` becomes ``IT(N)``).
    """
    out = LinearExpr.constant(h.const)
    for v, c in h.terms:
        if v.endswith(SINK) and v[:-len(SINK)] in eq_vars:
            out = out + LinearExpr.var(v[:-len(SINK)], c)
        else:
            out = out + LinearExpr.var(v, c)
    back = {v + SINK: ast.VarRef(v) for v in eq_vars}
    for c, e in h.residue:
        e2 = ast.substitute(e, back)
        out = out + LinearExpr.opaque(e2, c)
    return out


# --------------------------------------------------------------------------
# Symbolic interval arithmetic
# --------------------------------------------------------------------------

@dataclass
class SymInterval:
    """[lo, hi] with optionally-symbolic (LinearExpr) endpoints;
    None = unbounded on that side."""

    lo: LinearExpr | None = None
    hi: LinearExpr | None = None

    @staticmethod
    def exact(v: LinearExpr) -> "SymInterval":
        return SymInterval(v, v)

    def shift(self, d: LinearExpr) -> "SymInterval":
        return SymInterval(None if self.lo is None else self.lo + d,
                           None if self.hi is None else self.hi + d)

    def plus(self, other: "SymInterval") -> "SymInterval":
        lo = self.lo + other.lo if (self.lo is not None
                                    and other.lo is not None) else None
        hi = self.hi + other.hi if (self.hi is not None
                                    and other.hi is not None) else None
        return SymInterval(lo, hi)

    def scaled(self, c: Fraction) -> "SymInterval":
        if c == 0:
            z = LinearExpr()
            return SymInterval(z, z)
        lo = None if self.lo is None else self.lo.scale(c)
        hi = None if self.hi is None else self.hi.scale(c)
        if c < 0:
            lo, hi = hi, lo
        return SymInterval(lo, hi)


def _zero_feasible(rng: SymInterval, facts: FactBase) -> bool:
    """Can 0 lie in the (symbolically bounded) interval?"""
    if rng.lo is not None and facts.known_positive(rng.lo):
        return False
    if rng.hi is not None and facts.known_positive(-rng.hi):
        return False
    return True


# --------------------------------------------------------------------------
# Single-subscript feasibility under a direction vector
# --------------------------------------------------------------------------

def _delta_interval(direction: str, loop: LoopCtx) -> SymInterval:
    """Interval of delta = i_sink - i_source under a direction constraint.

    Normalized iteration counting assumes a positive step; negative-step
    loops are handled by the caller flipping the direction sense.
    """
    one = LinearExpr.constant(1)
    span = loop.span
    if direction == EQ:
        z = LinearExpr()
        return SymInterval(z, z)
    if direction == LT:
        return SymInterval(one, span)
    if direction == GT:
        return SymInterval(None if span is None else -span, -one)
    # ANY
    return SymInterval(None if span is None else -span, span)


def _index_array_checks(h: LinearExpr, dv_by_var: dict[str, str],
                        facts: FactBase) -> bool | None:
    """Index-array reasoning on the residue of the dependence equation.

    Returns False when the residue pattern proves independence, None when
    it says nothing.  Handles:

    * ``+A(v) - A(v')`` same array, one direction-constrained variable:
      permutation => no zero unless constant part is zero at '=' (already
      collapsed); monotone gap bounds the difference;
    * ``+A(v) - B(w')`` different arrays asserted disjoint.
    """
    if len(h.residue) != 2:
        return None
    (c1, e1), (c2, e2) = h.residue
    if {c1, c2} != {Fraction(1), Fraction(-1)}:
        return None
    pos, neg = (e1, e2) if c1 == 1 else (e2, e1)
    if not (isinstance(pos, ast.ArrayRef) and isinstance(neg, ast.ArrayRef)):
        return None
    if len(pos.subscripts) != 1 or len(neg.subscripts) != 1:
        return None
    rest = LinearExpr(h.const, h.terms)  # everything but the residue pair
    if rest.terms:
        return None  # loop-variable terms remain; too complex
    c = rest.const

    def base_var(e: ast.Expr) -> str | None:
        if isinstance(e, ast.VarRef):
            return e.name[:-len(SINK)] if e.name.endswith(SINK) else e.name
        return None

    pv = base_var(pos.subscripts[0])
    nv = base_var(neg.subscripts[0])

    if pos.name == neg.name and pv is not None and pv == nv:
        d = dv_by_var.get(pv)
        if d in (LT, GT):
            # h = A(i) - A(i') + c with i != i'
            if facts.is_permutation(pos.name) and c == 0:
                return False
            g = facts.monotone_gap(pos.name)
            if g is not None:
                # i < i': A(i) - A(i') <= -g  => h <= c - g
                if d == LT and c - g < 0:
                    return False
                # i > i': A(i) - A(i') >= g  => h >= c + g
                if d == GT and c + g > 0:
                    return False
        return None
    if pos.name != neg.name:
        if facts.are_disjoint(pos.name, neg.name,
                              max_offset=int(abs(c))):
            return False
    return None


def _subscript_feasible(h: LinearExpr, dv: DirectionVector,
                        loops: list[LoopCtx], facts: FactBase) -> bool:
    """Feasibility of h = 0 under the direction vector ``dv``."""
    eq_vars = {loops[k].var for k, d in enumerate(dv) if d == EQ}
    h = _apply_equal_levels(h, eq_vars)

    dv_by_var = {loops[k].var: d for k, d in enumerate(dv)}
    ia = _index_array_checks(h, dv_by_var, facts)
    if ia is False:
        return False

    if h.residue:
        # Opaque residue left: can only be disproved by the fact base on
        # the full expression.
        s = facts.sign(h)
        return s not in ("+", "-")

    # Rewrite h over (i_k, delta_k): i'_k = i_k + delta_k.
    #   h = sum (a_k - b_k) i_k  -  sum b_k delta_k  +  sym
    by_level: dict[int, tuple[Fraction, Fraction]] = {}
    sym = LinearExpr.constant(h.const)
    var_level = {lp.var: k for k, lp in enumerate(loops)}
    for v, c in h.terms:
        base = v[:-len(SINK)] if v.endswith(SINK) else v
        if base in var_level:
            k = var_level[base]
            a, b = by_level.get(k, (Fraction(0), Fraction(0)))
            if v.endswith(SINK):
                b += -c  # term is c*i'_k; equation uses -b_k with b_k = -c
            else:
                a += c
            by_level[k] = (a, b)
        else:
            sym = sym + LinearExpr.var(v, c)

    # GCD test (integer coefficients, no symbolic terms).
    if sym.is_constant and sym.const.denominator == 1:
        coeffs = []
        ok = True
        for a, b in by_level.values():
            for c in (a, b):
                if c.denominator != 1:
                    ok = False
                if c != 0:
                    coeffs.append(int(c))
        if ok and coeffs:
            g = 0
            for c in coeffs:
                g = gcd(g, abs(c))
            if g and int(sym.const) % g != 0:
                return False

    # Interval of the loop-variable part.
    rng = SymInterval.exact(sym)
    for k, (a, b) in sorted(by_level.items()):
        loop = loops[k]
        d = dv[k]
        # effective direction under negative step reverses
        if loop.step is not None and loop.step < 0:
            d = {LT: GT, GT: LT}.get(d, d)
        # combined i_k coefficient: note h contains a*i + c_sink*i' where
        # i' = i + delta; i-coefficient total = a + (coefficient of i').
        ci_sink = -b  # we stored b = -(c_sink)
        ci_total = a + ci_sink
        if ci_total != 0:
            if loop.lo is not None and loop.hi is not None:
                rng = rng.plus(
                    SymInterval(loop.lo, loop.hi).scaled(ci_total))
            else:
                rng = SymInterval(None, None)
        if ci_sink != 0:
            rng = rng.plus(_delta_interval(d, loop).scaled(ci_sink))
        if rng.lo is None and rng.hi is None:
            return True  # fully unbounded; cannot disprove

    return _zero_feasible(rng, facts)


# --------------------------------------------------------------------------
# Subscript classification (for exactness and distances)
# --------------------------------------------------------------------------

def _classify(h: LinearExpr, loops: list[LoopCtx]) -> tuple[str, int | None]:
    """Classify the dependence equation: ZIV / SIV(level) / MIV."""
    levels: set[int] = set()
    var_level = {lp.var: k for k, lp in enumerate(loops)}
    for v, _ in h.terms:
        base = v[:-len(SINK)] if v.endswith(SINK) else v
        if base in var_level:
            levels.add(var_level[base])
    if h.residue:
        return "SYM", None
    if not levels:
        if any(v for v, _ in h.terms):
            return "SYM", None
        return "ZIV", None
    if len(levels) == 1:
        return "SIV", next(iter(levels))
    return "MIV", None


def _strong_siv_distance(h: LinearExpr, level: int,
                         loops: list[LoopCtx]) -> int | None:
    """Exact sink-minus-source distance for strong SIV equations.

    h = a*i - a*i' + c = 0  =>  i' - i = c / a.
    """
    var = loops[level].var
    a = h.coeff(var)
    b = h.coeff(var + SINK)
    rest = LinearExpr(h.const,
                      tuple((v, c) for v, c in h.terms
                            if v not in (var, var + SINK)),
                      h.residue)
    if a == 0 or b != -a or rest.terms or rest.residue:
        return None
    d = rest.const / a
    if d.denominator != 1:
        return None
    return int(d)


# --------------------------------------------------------------------------
# Reference-pair testing (memoized)
# --------------------------------------------------------------------------

#: pair verdicts live in the tiered artifact store: the signature is
#: uid-free (expression trees, loop contexts, env, facts), so verdicts
#: are shared across sessions and survive restarts via the disk tier
_PAIR_NS = "pair"
_declare_ns(_PAIR_NS, mem_entries=8192, disk=True)


def _pair_signature(src_subs: tuple[ast.Expr, ...],
                    snk_subs: tuple[ast.Expr, ...],
                    loops: list[LoopCtx],
                    env: dict[str, LinearExpr],
                    facts: FactBase):
    """Canonical, hashable signature of one ``test_pair`` invocation.

    Every input that can influence the verdict participates: the
    subscript expression trees (frozen dataclasses, structural
    equality), the loop-bound contexts, the linearizer environment, and
    the fact base (linear facts, index-array facts, ranges).  Two calls
    with equal signatures are guaranteed the same result, so unchanged
    loops re-resolve their DDGs from cached verdicts.
    """
    return (
        src_subs, snk_subs,
        tuple((lp.var, lp.lo, lp.hi, lp.step) for lp in loops),
        tuple(sorted(env.items(), key=lambda kv: kv[0])),
        tuple(facts.linear),
        tuple(facts.index_arrays),
        tuple(sorted(facts.ranges.items())),
    )


def clear_pair_cache() -> None:
    get_store().clear(_PAIR_NS)


def set_pair_cache_limit(n: int) -> None:
    """Resize the memo LRU's memory tier (0 disables caching)."""
    get_store().set_limit(_PAIR_NS, entries=max(0, n))


def pair_cache_info() -> dict:
    """Size/limit plus the process-wide hit/miss counters."""
    info = get_store().info(_PAIR_NS)
    c = _counters.COUNTERS
    return {"size": info["size"], "limit": info["limit"],
            "hits": c.pair_hits, "misses": c.pair_misses,
            "hit_rate": c.pair_hit_rate()}


def test_pair(src_subs: tuple[ast.Expr, ...], snk_subs: tuple[ast.Expr, ...],
              loops: list[LoopCtx],
              env: dict[str, LinearExpr] | None = None,
              facts: FactBase | None = None) -> PairResult:
    """Test a pair of array references for dependence.

    Returns the feasible concrete direction vectors over the common nest
    plus exactness and distance information.  Results are memoized on a
    canonical signature of the inputs (bounded LRU): re-analysis of an
    unchanged loop answers from cached verdicts instead of re-running
    the hierarchical suite.
    """
    from ..testing import faults
    faults.check("pair_test")
    env = env or {}
    facts = facts or FactBase()
    try:
        key = _pair_signature(src_subs, snk_subs, loops, env, facts)
    except TypeError:           # unhashable oddity: run uncached
        key = None
    if key is not None:
        hit = get_store().get(_PAIR_NS, key)
        if hit is not MISS:
            _counters.COUNTERS.pair_hits += 1
            return PairResult(vectors=list(hit.vectors),
                              distances=dict(hit.distances),
                              exact=hit.exact, reason=hit.reason)
        _counters.COUNTERS.pair_misses += 1
    result = _test_pair_uncached(src_subs, snk_subs, loops, env, facts)
    if key is not None:
        evicted = get_store().put(
            _PAIR_NS, key,
            PairResult(vectors=list(result.vectors),
                       distances=dict(result.distances),
                       exact=result.exact, reason=result.reason))
        if evicted:
            _counters.COUNTERS.pair_evictions += evicted
    return result


def _test_pair_uncached(src_subs: tuple[ast.Expr, ...],
                        snk_subs: tuple[ast.Expr, ...],
                        loops: list[LoopCtx],
                        env: dict[str, LinearExpr],
                        facts: FactBase) -> PairResult:
    # A dependence needs both iterations to execute, so every common loop
    # ran at least once: hi - lo >= 0 holds within the test.
    exec_facts = FactBase(list(facts.linear), list(facts.index_arrays),
                          dict(facts.ranges))
    for lp in loops:
        span = lp.span
        if span is not None and not span.is_constant:
            exec_facts.assert_linear(span, ">=")
    facts = exec_facts
    loop_vars = {lp.var for lp in loops}

    if len(src_subs) != len(snk_subs):
        # Rank mismatch (e.g. linearized vs. multi-dim use): conservative.
        return PairResult(vectors=list(expand_vector((ANY,) * len(loops))),
                          exact=False, reason="rank mismatch")

    equations = [
        _subscript_equation(s, t, loop_vars, env)
        for s, t in zip(src_subs, snk_subs)
    ]

    exact = True
    reasons: list[str] = []
    distances: dict[int, int] = {}
    for h in equations:
        kind, lvl = _classify(h, loops)
        nonloop = sorted({
            v for v, _ in h.terms
            if (v[:-1] if v.endswith(SINK) else v) not in loop_vars})
        if kind in ("SIV", "MIV") and nonloop:
            exact = False
            reasons.append("symbolic term(s): " + ", ".join(nonloop))
        if kind == "ZIV":
            if h.const != 0:
                return PairResult(vectors=[], exact=True,
                                  reason="ZIV: constant subscripts differ")
        elif kind == "SIV":
            d = _strong_siv_distance(h, lvl, loops)
            if d is not None:
                prev = distances.get(lvl)
                if prev is not None and prev != d:
                    return PairResult(
                        vectors=[], exact=True,
                        reason="inconsistent SIV distances")
                distances[lvl] = d
                # distance beyond the iteration range => independent
                span = loops[lvl].span
                if d != 0 and span is not None:
                    excess = LinearExpr.constant(abs(d)) - span
                    if facts.known_positive(excess):
                        return PairResult(
                            vectors=[], exact=True,
                            reason="SIV distance exceeds loop range")
        elif kind == "SYM":
            exact = False
            names = sorted(set(
                v for v, _ in h.terms
                if (v[:-1] if v.endswith(SINK) else v) not in loop_vars)
                | {str(e) for _, e in h.residue})
            reasons.append("symbolic term(s): " + ", ".join(names))
        else:  # MIV
            exact = False
            reasons.append("coupled/MIV subscript (Banerjee)")

    # Delta-style constraint propagation: strong-SIV distances pin levels.
    pinned: dict[int, str] = {}
    for lvl, d in distances.items():
        step = loops[lvl].step or 1
        eff = d if step > 0 else -d
        pinned[lvl] = LT if eff > 0 else (GT if eff < 0 else EQ)

    n = len(loops)
    feasible: list[DirectionVector] = []

    def refine(prefix: tuple[str, ...]) -> None:
        k = len(prefix)
        if k == n:
            feasible.append(prefix)
            return
        choices = (pinned[k],) if k in pinned else (LT, EQ, GT)
        for d in choices:
            dv = prefix + (d,) + (ANY,) * (n - k - 1)
            if all(_subscript_feasible(h, dv, loops, facts)
                   for h in equations):
                refine(prefix + (d,))

    refine(())
    return PairResult(vectors=feasible, distances=distances, exact=exact,
                      reason="; ".join(dict.fromkeys(reasons)))
