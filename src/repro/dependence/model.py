"""Dependence model: the records PED's dependence pane displays.

A dependence connects a *source* reference to a *sink* reference and
carries the classification PED shows in Figure 1: type (true / anti /
output / input / control), direction vector per common loop level,
distance when known, the carrier level, and the editing mark
(proven / pending / accepted / rejected) with a reason string.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from ..fortran import ast


class DepType(Enum):
    TRUE = "True"        # write -> read (flow)
    ANTI = "Anti"        # read -> write
    OUTPUT = "Output"    # write -> write
    INPUT = "Input"      # read -> read (for locality views)
    CONTROL = "Control"

    def __str__(self) -> str:
        return self.value


class Mark(Enum):
    """Dependence editing state (Section 3.1, "dependence marking")."""

    PROVEN = "proven"      # exact test proved the dependence exists
    PENDING = "pending"    # assumed; user may accept or reject
    ACCEPTED = "accepted"  # user confirmed it is real
    REJECTED = "rejected"  # user asserted it is spurious (kept, disregarded)

    def __str__(self) -> str:
        return self.value


#: One direction per common loop level.
LT, EQ, GT, ANY = "<", "=", ">", "*"
Direction = str
DirectionVector = tuple[Direction, ...]


def direction_str(dv: DirectionVector) -> str:
    return "(" + ",".join(dv) + ")"


def expand_vector(dv: DirectionVector):
    """All concrete <,=,> vectors covered by a (possibly *) vector."""
    choices = [(LT, EQ, GT) if d == ANY else (d,) for d in dv]
    yield from itertools.product(*choices)


def is_forward(dv: DirectionVector) -> bool:
    """Lexicographically non-negative: a valid source->sink execution
    ordering (the first non-'=' entry is '<')."""
    for d in dv:
        if d == LT:
            return True
        if d == GT:
            return False
        if d == ANY:
            return True  # contains a forward component
    return True  # all '=' -> loop independent


def carrier_level(dv: DirectionVector) -> int | None:
    """1-based loop level carrying the dependence; None if loop-independent.

    The carrier is the outermost level whose direction can be '<'.
    """
    for i, d in enumerate(dv):
        if d == LT or d == ANY:
            return i + 1
        if d == GT:
            return None
    return None


@dataclass(frozen=True)
class Reference:
    """One variable reference participating in a dependence."""

    var: str
    stmt_uid: int
    line: int
    is_write: bool
    #: the textual form shown in the pane, e.g. "COEFF(I, J)"
    text: str
    #: original expression (None for implied accesses e.g. call effects)
    expr: ast.Expr | None = None

    def __str__(self) -> str:
        return self.text


_dep_ids = itertools.count(1)


def fresh_dep_id() -> int:
    """Mint a process-unique dependence id.

    Dependences adopted from the artifact store carry the ids they were
    pickled with; re-minting on adoption keeps pane selection ids (the
    only consumer) collision-free within a session.
    """
    return next(_dep_ids)


@dataclass
class Dependence:
    dtype: DepType
    source: Reference
    sink: Reference
    #: direction per common loop level, outermost first
    vector: DirectionVector
    #: distance per level where constant (None entries unknown)
    distances: tuple[int | None, ...] = ()
    #: 1-based carrying loop level; None = loop independent
    level: int | None = None
    mark: Mark = Mark.PENDING
    reason: str = ""
    #: ids of the loops (LoopInfo.id) forming the common nest
    nest_ids: tuple[str, ...] = ()
    id: int = field(default_factory=lambda: next(_dep_ids))

    @property
    def var(self) -> str:
        return self.source.var

    @property
    def loop_carried(self) -> bool:
        return self.level is not None

    @property
    def active(self) -> bool:
        """Rejected dependences stay listed but are disregarded for
        transformation safety (Section 3.1)."""
        return self.mark is not Mark.REJECTED

    def describe(self) -> str:
        lvl = f"carried level {self.level}" if self.level is not None \
            else "loop independent"
        return (f"{self.dtype} {self.source} -> {self.sink} "
                f"{direction_str(self.vector)} {lvl} [{self.mark}]")

    def __str__(self) -> str:
        return self.describe()
