"""Fact base: symbolic knowledge dependence tests may consult.

Facts come from three sources: static analysis (symbolic relations,
constant propagation), interprocedural constants, and *user assertions*
(Section 3.3).  The dependence tests query the fact base through a small
number of entailment questions; everything is expressed over
:class:`~repro.analysis.linear.LinearExpr` normal forms so structurally
equal symbolic terms compare reliably.

Supported fact kinds:

* linear inequalities/equalities: ``expr > 0``, ``expr >= 0``, ``expr = 0``
  (assertions like ``MCN .GT. IENDV(IR) - ISTRT(IR)`` normalize to these);
* variable ranges: ``lo <= var <= hi`` with integer endpoints;
* index-array properties: ``PERMUTATION(A)``, ``MONOTONE(A, gap)``
  (strictly increasing with ``A(i+1) - A(i) >= gap``), and
  ``DISJOINT(A, B, gap)`` (all values of ``A`` precede those of ``B`` by
  at least ``gap`` -- the paper's ``IT(NBA) + 3 <= JT(1)`` constraint).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from ..analysis.linear import LinearExpr


@dataclass(frozen=True)
class LinearFact:
    """``expr REL 0`` where REL is '>', '>=', or '='."""

    expr: LinearExpr
    rel: str  # ">" | ">=" | "="


@dataclass(frozen=True)
class IndexArrayFact:
    kind: str            # "permutation" | "monotone" | "disjoint"
    array: str
    other: str | None = None   # for disjoint
    gap: int = 1


@dataclass
class FactBase:
    linear: list[LinearFact] = field(default_factory=list)
    index_arrays: list[IndexArrayFact] = field(default_factory=list)
    #: var -> (lo, hi) integer range bounds (either side may be None)
    ranges: dict[str, tuple[int | None, int | None]] = field(
        default_factory=dict)

    # -- construction -------------------------------------------------------

    def assert_linear(self, expr: LinearExpr, rel: str) -> None:
        if rel not in (">", ">=", "="):
            raise ValueError(f"bad relation {rel!r}")
        self.linear.append(LinearFact(expr, rel))

    def assert_range(self, var: str, lo: int | None, hi: int | None) -> None:
        var = var.upper()
        old = self.ranges.get(var, (None, None))
        nlo = lo if old[0] is None else (max(old[0], lo) if lo is not None
                                         else old[0])
        nhi = hi if old[1] is None else (min(old[1], hi) if hi is not None
                                         else old[1])
        self.ranges[var] = (nlo, nhi)

    def assert_permutation(self, array: str) -> None:
        self.index_arrays.append(IndexArrayFact("permutation", array.upper()))

    def assert_monotone(self, array: str, gap: int = 1) -> None:
        self.index_arrays.append(
            IndexArrayFact("monotone", array.upper(), gap=gap))

    def assert_disjoint(self, a: str, b: str, gap: int = 1) -> None:
        self.index_arrays.append(
            IndexArrayFact("disjoint", a.upper(), b.upper(), gap))

    def merged_with(self, other: "FactBase") -> "FactBase":
        fb = FactBase(list(self.linear), list(self.index_arrays),
                      dict(self.ranges))
        fb.linear.extend(other.linear)
        fb.index_arrays.extend(other.index_arrays)
        for v, (lo, hi) in other.ranges.items():
            fb.assert_range(v, lo, hi)
        return fb

    # -- index array queries -------------------------------------------------

    def is_permutation(self, array: str) -> bool:
        array = array.upper()
        return any(f.array == array and f.kind in ("permutation", "monotone")
                   for f in self.index_arrays)

    def monotone_gap(self, array: str) -> int | None:
        array = array.upper()
        gaps = [f.gap for f in self.index_arrays
                if f.array == array and f.kind == "monotone"]
        return max(gaps) if gaps else None

    def are_disjoint(self, a: str, b: str, max_offset: int = 0) -> bool:
        """True when values of ``a`` and ``b`` (each possibly displaced by
        offsets up to ``max_offset``) can never collide."""
        a, b = a.upper(), b.upper()
        for f in self.index_arrays:
            if f.kind != "disjoint":
                continue
            if {f.array, f.other} == {a, b} and f.gap > max_offset:
                return True
        return False

    # -- entailment ----------------------------------------------------------

    def sign(self, q: LinearExpr) -> str | None:
        """Known sign of ``q``: '+', '-', '0', '>=0', '<=0', or None.

        Decision procedure: (1) constants; (2) interval evaluation using
        range facts; (3) match against asserted linear facts modulo an
        additive constant (``q = fact + c``).
        """
        if q.is_constant:
            if q.const > 0:
                return "+"
            if q.const < 0:
                return "-"
            return "0"

        lo, hi = self._interval(q)
        if lo is not None and lo > 0:
            return "+"
        if hi is not None and hi < 0:
            return "-"
        if lo is not None and hi is not None and lo == hi == 0:
            return "0"

        for f in self.linear:
            d = q - f.expr
            if d.is_constant:
                c = d.const
                if f.rel == "=":
                    if c > 0:
                        return "+"
                    if c < 0:
                        return "-"
                    return "0"
                if f.rel == ">" and c >= 0:
                    return "+"
                if f.rel == ">=" and c > 0:
                    return "+"
                if f.rel == ">=" and c == 0:
                    return ">=0"
            d2 = (-q) - f.expr
            if d2.is_constant:
                c = d2.const
                if f.rel == "=" and c != 0:
                    return "-" if c > 0 else "+"
                if f.rel == ">" and c >= 0:
                    return "-"
                if f.rel == ">=" and c > 0:
                    return "-"
                if f.rel == ">=" and c == 0:
                    return "<=0"
        # Two-fact combination: q = f1 + f2 + c.  Needed for reasoning like
        # "MCN > span" plus "span >= 0" entailing "MCN > 0".
        pos_facts = [f for f in self.linear if f.rel in (">", ">=")]
        for i, f1 in enumerate(pos_facts):
            d1 = q - f1.expr
            if d1.is_constant:
                continue  # single-fact pass already covered it
            for f2 in pos_facts:
                if f2 is f1:
                    continue
                d = d1 - f2.expr
                if not d.is_constant:
                    continue
                c = d.const
                strict = (f1.rel == ">") or (f2.rel == ">")
                if c > 0 or (c == 0 and strict):
                    return "+"
                if c == 0:
                    return ">=0"
            for f2 in pos_facts:
                d = (-q) - f1.expr - f2.expr if f2 is not f1 else None
                if d is not None and d.is_constant:
                    c = d.const
                    strict = (f1.rel == ">") or (f2.rel == ">")
                    if c > 0 or (c == 0 and strict):
                        return "-"
        if lo is not None and lo >= 0:
            return ">=0"
        if hi is not None and hi <= 0:
            return "<=0"
        return None

    def _interval(self, q: LinearExpr) -> tuple[Fraction | None,
                                                Fraction | None]:
        lo: Fraction | None = q.const
        hi: Fraction | None = q.const
        for v, c in q.terms:
            vlo, vhi = self.ranges.get(v, (None, None))
            tlo = c * vlo if vlo is not None else None
            thi = c * vhi if vhi is not None else None
            if c < 0:
                tlo, thi = thi, tlo
            lo = lo + tlo if (lo is not None and tlo is not None) else None
            hi = hi + thi if (hi is not None and thi is not None) else None
        if q.residue:
            return None, None
        return lo, hi

    def known_nonzero(self, q: LinearExpr) -> bool:
        return self.sign(q) in ("+", "-")

    def known_positive(self, q: LinearExpr) -> bool:
        return self.sign(q) == "+"

    def known_nonnegative(self, q: LinearExpr) -> bool:
        return self.sign(q) in ("+", "0", ">=0")

    def known_zero(self, q: LinearExpr) -> bool:
        return self.sign(q) == "0"
