"""Dependence graph construction for a selected loop.

This is what fills PED's dependence pane: given a loop, collect every
array and scalar reference inside it (including call side effects,
section-refined when interprocedural summaries are available), test all
conflicting pairs with the hierarchical suite, and produce
:class:`~repro.dependence.model.Dependence` records classified as
true/anti/output, levelled, direction-vectored, and marked
proven/pending.

Supporting analyses are folded in exactly as Section 4.1 describes:

* constant propagation and symbolic relations feed the linearizer's
  environment (so ``JM = JMAX - 1`` cancels against ``JMAX``);
* auxiliary induction variables are rewritten as affine functions of the
  loop index before testing;
* scalar kill analysis suppresses loop-carried dependences on
  privatizable scalars (and on variables the user classified private);
* user assertions arrive through the :class:`~repro.dependence.facts.
  FactBase`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..analysis.constants import propagate_constants
from ..analysis.defuse import SideEffectOracle, accesses, compute_defuse
from ..analysis.kills import privatizable_names
from ..analysis.linear import LinearExpr, linearize, to_expr
from ..analysis.symbolic import auxiliary_inductions, invariant_names, \
    symbolic_relations
from ..fortran import ast
from ..ir.loops import LoopInfo, LoopTree
from ..ir.program import UnitIR
from ..perf import budget as _budget
from ..perf import counters as _counters
from .facts import FactBase
from .model import ANY, EQ, GT, LT, DepType, Dependence, DirectionVector, \
    Mark, Reference
from .tests import LoopCtx, PairResult, test_pair


@dataclass(frozen=True, eq=False)
class RefSite:
    """One reference participating in pair testing.

    Frozen (with identity hashing -- ``eq=False`` keeps hashing free of
    the unhashable statement payload) so sites can serve directly as
    cache keys without defensive copying; the subscript-rewriting passes
    build updated sites with :func:`dataclasses.replace`.
    """

    var: str
    stmt: ast.Stmt
    is_write: bool
    #: loop chain from the selected loop inward (selected loop first)
    chain: tuple[int, ...]          # loop uids
    order: int                      # pre-order execution position
    expr: ast.Expr | None = None    # original reference
    #: subscripts used for testing (aux-induction substituted); None for
    #: scalars or whole-array (unknown section) accesses
    test_subs: tuple[ast.Expr, ...] | None = None
    from_call: bool = False

    @property
    def text(self) -> str:
        if self.expr is not None:
            return str(self.expr)
        if self.test_subs is not None:
            return f"{self.var}({', '.join(map(str, self.test_subs))})"
        return self.var

    def to_reference(self) -> Reference:
        return Reference(var=self.var, stmt_uid=self.stmt.uid,
                         line=self.stmt.line, is_write=self.is_write,
                         text=self.text, expr=self.expr)


@dataclass
class LoopDependences:
    """Everything PED knows about one loop."""

    loop: LoopInfo
    dependences: list[Dependence]
    privatizable: set[str]
    #: names of scalars involved in recognized reduction patterns
    reductions: set[str] = field(default_factory=set)
    #: degraded-mode notes: non-empty when part of the analysis failed
    #: or ran out of budget and dependences were conservatively assumed
    degraded: list[str] = field(default_factory=list)

    @property
    def is_degraded(self) -> bool:
        return bool(self.degraded)

    def carried(self) -> list[Dependence]:
        return [d for d in self.dependences if d.loop_carried and d.active]

    def parallelizable(self) -> bool:
        """No active loop-carried dependence at this loop's level.

        A degraded analysis is never parallelizable: incomplete
        information must read as "dependence assumed" (the sound
        conservative fallback), not as independence.
        """
        if self.degraded:
            return False
        return not [d for d in self.carried() if d.level == 1
                    and d.dtype is not DepType.INPUT]


def degraded_loop_dependences(li: LoopInfo, reason: str) -> LoopDependences:
    """Conservative stand-in when a loop's analysis failed outright.

    One synthetic assumed dependence keeps every safety check honest
    (``parallelizable()`` is False, transformations see a carried edge)
    and gives the dependence pane a row to flag.
    """
    ref = Reference(var="*", stmt_uid=li.loop.uid, line=li.line,
                    is_write=True, text=f"{li.id} (unanalyzed)")
    dep = Dependence(dtype=DepType.TRUE, source=ref, sink=ref,
                     vector=(ANY,), distances=(None,), level=1,
                     mark=Mark.PENDING,
                     reason=f"dependence assumed: {reason}",
                     nest_ids=(li.id,))
    return LoopDependences(loop=li, dependences=[dep], privatizable=set(),
                           degraded=[reason])


def _reverse_vector(dv: DirectionVector) -> DirectionVector:
    flip = {LT: GT, GT: LT, EQ: EQ, ANY: ANY}
    return tuple(flip[d] for d in dv)


def _lex_sign(dv: DirectionVector) -> str:
    for d in dv:
        if d == LT:
            return LT
        if d == GT:
            return GT
        if d == ANY:
            return ANY
    return EQ


def merge_vectors(vectors: list[DirectionVector]) -> list[DirectionVector]:
    """Collapse a set of concrete vectors into '*'-compressed rows."""
    if not vectors:
        return []
    n = len(vectors[0])
    per_pos = [sorted({v[i] for v in vectors}) for i in range(n)]
    product_size = 1
    for s in per_pos:
        product_size *= len(s)
    if product_size == len(set(vectors)):
        return [tuple(ANY if len(s) == 3 else (s[0] if len(s) == 1 else ANY)
                      for s in per_pos)] \
            if all(len(s) in (1, 3) for s in per_pos) \
            else sorted(set(vectors))
    return sorted(set(vectors))


class DependenceAnalyzer:
    """Computes dependences for the loops of one program unit."""

    def __init__(self, uir: UnitIR,
                 oracle: SideEffectOracle | None = None,
                 facts: FactBase | None = None,
                 include_input: bool = False,
                 use_scalar_kills: bool = True,
                 use_symbolic_relations: bool = True,
                 use_constants: bool = True,
                 extra_env: dict[str, LinearExpr] | None = None,
                 budget: "_budget.AnalysisBudget | None" = None):
        self.uir = uir
        self.oracle = oracle or SideEffectOracle()
        self.facts = facts or FactBase()
        self.include_input = include_input
        self.use_scalar_kills = use_scalar_kills
        self.use_symbolic_relations = use_symbolic_relations
        self.use_constants = use_constants
        #: additional substitutions (e.g. equality assertions JM = JMAX-1)
        self.extra_env = dict(extra_env or {})
        #: per-loop step/time budget; None defers to repro.perf.budget
        self.budget = budget
        self._defuse = None
        self._constmap = None

    # -- shared unit-level analyses -----------------------------------------

    @property
    def defuse(self):
        if self._defuse is None:
            self._defuse = compute_defuse(self.uir.cfg, self.uir.symtab,
                                          self.oracle)
        return self._defuse

    @property
    def constmap(self):
        if self._constmap is None:
            self._constmap = propagate_constants(self.uir.cfg,
                                                 self.uir.symtab, self.oracle)
        return self._constmap

    # -- environment ----------------------------------------------------------

    def _env_at(self, loop: LoopInfo) -> dict[str, LinearExpr]:
        env: dict[str, LinearExpr] = {}
        st = self.uir.symtab
        inv = invariant_names(loop.loop, st, self.oracle)
        if self.use_constants:
            for name, v in self.constmap.const_env(loop.loop.uid).items():
                if name in inv and isinstance(v, int):
                    env[name] = LinearExpr.constant(v)
        if self.use_symbolic_relations:
            rel = symbolic_relations(self.defuse, self.uir.cfg,
                                     loop.loop.uid, st)
            for name, le in rel.items():
                if name in inv and name not in env \
                        and le.variables() <= inv:
                    env[name] = le
        for name, le in self.extra_env.items():
            name = name.upper()
            if name in inv and name not in env:
                env[name] = le
        return env

    # -- reference collection --------------------------------------------------

    def _collect_refs(self, loop: LoopInfo) -> list[RefSite]:
        st = self.uir.symtab
        tree = self.uir.loops
        refs: list[RefSite] = []
        order = [0]

        def visit(body: list[ast.Stmt], chain: tuple[int, ...]) -> None:
            for s in body:
                order[0] += 1
                here = order[0]
                if isinstance(s, ast.CallStmt):
                    self._call_refs(s, chain, here, refs)
                else:
                    for a in accesses(s, st, self.oracle):
                        refs.append(RefSite(
                            var=a.name, stmt=s, is_write=a.is_def,
                            chain=chain, order=here, expr=a.ref,
                            test_subs=(a.ref.subscripts
                                       if isinstance(a.ref, ast.ArrayRef)
                                       else None)))
                if isinstance(s, ast.DoLoop):
                    visit(s.body, chain + (s.uid,))
                else:
                    for blk in s.blocks():
                        visit(blk, chain)

        visit([loop.loop], ())
        # The chain built above includes the selected loop as its first
        # element for statements inside it.
        return refs

    def _call_refs(self, s: ast.CallStmt, chain: tuple[int, ...],
                   order: int, refs: list[RefSite]) -> None:
        st = self.uir.symtab
        array_accesses = None
        if hasattr(self.oracle, "call_array_accesses"):
            array_accesses = self.oracle.call_array_accesses(
                st, s.name, s.args)
        # Scalar / name-level effects from the oracle.
        seen_arrays: set[str] = set()
        if array_accesses is not None:
            for ca in array_accesses:
                seen_arrays.add(ca.array)
                refs.append(RefSite(
                    var=ca.array, stmt=s, is_write=ca.is_write, chain=chain,
                    order=order, expr=None, test_subs=ca.subscripts,
                    from_call=True))
        for a in accesses(s, st, self.oracle):
            sym = st.get(a.name)
            if sym is not None and sym.is_array:
                if array_accesses is not None and a.name in seen_arrays:
                    continue
                if array_accesses is not None:
                    continue  # oracle enumerated arrays exhaustively
            refs.append(RefSite(
                var=a.name, stmt=s, is_write=a.is_def, chain=chain,
                order=order, expr=a.ref,
                test_subs=(a.ref.subscripts
                           if isinstance(a.ref, ast.ArrayRef) else None),
                from_call=a.ref is None))

    # -- auxiliary induction rewriting ----------------------------------------

    def _aux_subst(self, loop: LoopInfo) -> tuple[dict[str, ast.Expr],
                                                  dict[str, int]]:
        """AST substitutions for auxiliary induction variables.

        ``K`` becomes ``K.0 + step * (I - lo)`` where ``K.0`` is an opaque
        entry-value symbol shared by source and sink (it cancels in the
        dependence equation).  Returns (substitution map, last update
        order per variable) so refs after the update get ``+ step``.
        """
        subst: dict[str, ast.Expr] = {}
        update_uids: dict[str, tuple[int, ...]] = {}
        for aux in auxiliary_inductions(loop.loop, self.uir.symtab,
                                        self.oracle):
            if not aux.step.is_affine:
                continue
            step_e = to_expr(aux.step)
            iter_count = ast.BinOp("-", ast.VarRef(loop.loop.var),
                                   loop.loop.start)
            subst[aux.var] = ast.BinOp(
                "+", ast.VarRef(aux.var + ".0"),
                ast.BinOp("*", step_e, iter_count))
            update_uids[aux.var] = aux.defining_uids
        return subst, {v: max(u) for v, u in update_uids.items()}

    # -- iteration-local copy propagation ---------------------------------------

    def _iteration_copies(self, li: LoopInfo
                          ) -> dict[str, tuple[ast.Expr, int]]:
        """Scalars assigned once, unconditionally, at the top of the body.

        dpmin's ``I3 = IT(N)`` is the motivating pattern: forwarding the
        copy into subscripts turns opaque scalars into index-array
        references the fact base can reason about.  Returns
        ``var -> (rhs, defining order)``; substitution is only valid for
        references executing after the definition in the same iteration.
        """
        st = self.uir.symtab
        inv = invariant_names(li.loop, st, self.oracle)
        # Count defs of each scalar across the whole body.
        def_count: dict[str, int] = {}
        for s, _ in ast.walk_stmts(li.loop.body):
            for a in accesses(s, st, self.oracle):
                if a.is_def:
                    def_count[a.name] = def_count.get(a.name, 0) + 1

        # Pre-order numbering matching _collect_refs.
        order_map: dict[int, int] = {}
        counter = [0]

        def number(body: list[ast.Stmt]) -> None:
            for s in body:
                counter[0] += 1
                order_map[s.uid] = counter[0]
                for blk in s.blocks():
                    number(blk)

        number([li.loop])

        copies: dict[str, tuple[ast.Expr, int]] = {}
        for s in li.loop.body:
            order = order_map[s.uid]
            if not isinstance(s, ast.Assign) \
                    or not isinstance(s.target, ast.VarRef):
                continue
            v = s.target.name
            sym = st.get(v)
            if sym is None or sym.is_array or def_count.get(v, 0) != 1:
                continue
            ok = True
            for name in ast.variables_in(s.value):
                if name in inv or name == li.loop.var or name in copies:
                    continue
                ok = False
                break
            if ok and v not in ast.variables_in(s.value):
                copies[v] = (s.value, order)
        return copies

    @staticmethod
    def _apply_copies(expr: ast.Expr, copies: dict[str, tuple[ast.Expr, int]],
                      ref_order: int, depth: int = 4) -> ast.Expr:
        for _ in range(depth):
            env = {v: rhs for v, (rhs, o) in copies.items() if o < ref_order}
            new = ast.substitute(expr, env)
            if new == expr:
                return new
            expr = new
        return expr

    # -- main entry -------------------------------------------------------------

    def analyze_loop(self, loop: "LoopInfo | str | ast.DoLoop"
                     ) -> LoopDependences:
        """Analyze one loop, degrading (never raising) on internal faults.

        A bad loop key still raises (that is a caller error); once the
        loop is found, any failure inside the analysis pipeline or an
        exhausted budget produces a conservative result whose
        ``degraded`` notes say what was skipped.
        """
        li = self.uir.loops.find(loop)
        try:
            return self._analyze(li)
        except Exception as e:  # degraded mode: assume dependence
            _counters.bump("degraded_loops")
            return degraded_loop_dependences(
                li, f"loop analysis failed: {type(e).__name__}: {e}")

    @staticmethod
    def _guard(thunk, fallback, notes: list[str], what: str):
        """Run one optional analysis phase; on failure note it and fall
        back to the (conservative) default instead of aborting."""
        try:
            return thunk()
        except Exception as e:
            notes.append(f"{what} unavailable ({type(e).__name__}: {e})")
            return fallback

    def _analyze(self, li: LoopInfo) -> LoopDependences:
        st = self.uir.symtab
        notes: list[str] = []
        meter = (self.budget or _budget.current()).meter()
        # Refinement phases may fail individually: each falls back to
        # "no information", which only weakens (never unsounds) testing.
        env = self._guard(lambda: self._env_at(li), {}, notes,
                          "symbolic environment")
        facts = self._guard(lambda: self._facts_with_ranges(env),
                            self.facts, notes, "fact base ranges")
        refs = self._collect_refs(li)
        aux_subst, _aux_last = self._guard(
            lambda: self._aux_subst(li), ({}, {}), notes,
            "auxiliary induction analysis")
        copies = self._guard(lambda: self._iteration_copies(li), {}, notes,
                             "iteration-copy propagation")

        def rewrite_subs():
            for i, r in enumerate(refs):
                if r.test_subs is None:
                    continue
                subs = r.test_subs
                if copies:
                    subs = tuple(self._apply_copies(sub, copies, r.order)
                                 for sub in subs)
                if aux_subst:
                    subs = tuple(ast.substitute(sub, aux_subst)
                                 for sub in subs)
                if subs != r.test_subs:
                    refs[i] = replace(r, test_subs=subs)

        self._guard(rewrite_subs, None, notes, "subscript rewriting")

        private = set(li.loop.private_vars)
        if self.use_scalar_kills:
            private |= self._guard(
                lambda: privatizable_names(li.loop, st, self.oracle),
                set(), notes, "scalar kill analysis")

        deps: list[Dependence] = []
        deps.extend(self._array_dependences(li, refs, env, facts,
                                            meter, notes))
        scalar_deps, reductions = self._guard(
            lambda: self._scalar_dependences(li, refs, private, aux_subst),
            ([], set()), notes, "scalar dependence analysis")
        deps.extend(scalar_deps)
        deps.sort(key=lambda d: (d.var, d.source.line, d.sink.line))
        if notes:
            _counters.bump("degraded_loops")
        return LoopDependences(loop=li, dependences=deps,
                               privatizable=private, reductions=reductions,
                               degraded=notes)

    def _facts_with_ranges(self, env: dict[str, LinearExpr]) -> FactBase:
        fb = FactBase(list(self.facts.linear),
                      list(self.facts.index_arrays),
                      dict(self.facts.ranges))
        for name, le in env.items():
            c = le.int_const
            if c is not None:
                fb.assert_range(name, c, c)
        return fb

    # -- array dependences --------------------------------------------------------

    def _array_dependences(self, li: LoopInfo, refs: list[RefSite],
                           env: dict[str, LinearExpr],
                           facts: FactBase,
                           meter: "_budget.BudgetMeter | None" = None,
                           notes: list[str] | None = None
                           ) -> list[Dependence]:
        st = self.uir.symtab
        arrays: dict[str, list[RefSite]] = {}
        for r in refs:
            if r.var in li.loop.private_vars:
                continue  # user/analysis classified the array private
            sym = st.get(r.var)
            if sym is not None and sym.is_array:
                arrays.setdefault(r.var, []).append(r)

        out: list[Dependence] = []
        for var, sites in sorted(arrays.items()):
            n = len(sites)
            for i in range(n):
                for j in range(i, n):
                    a, b = sites[i], sites[j]
                    if not (a.is_write or b.is_write):
                        if not self.include_input:
                            continue
                    if i == j:
                        continue
                    out.extend(self._test_site_pair(li, a, b, env, facts,
                                                    meter, notes))
        return out

    def _loop_ctxs(self, li: LoopInfo, chain: tuple[int, ...],
                   env: dict[str, LinearExpr]) -> list[LoopCtx]:
        tree = self.uir.loops
        ctxs: list[LoopCtx] = []
        for uid in chain:
            lp = tree.by_uid[uid].loop
            lo = linearize(lp.start, env)
            hi = linearize(lp.end, env)
            step_le = linearize(lp.step, env) if lp.step is not None \
                else LinearExpr.constant(1)
            step = step_le.int_const
            if step is not None and step < 0:
                # Normalize to an ascending index range; the tests flip
                # direction sense for the negative step.
                lo, hi = hi, lo
            ctxs.append(LoopCtx(var=lp.var, lo=lo, hi=hi, step=step))
        return ctxs

    def _test_site_pair(self, li: LoopInfo, a: RefSite, b: RefSite,
                        env: dict[str, LinearExpr],
                        facts: FactBase,
                        meter: "_budget.BudgetMeter | None" = None,
                        notes: list[str] | None = None) -> list[Dependence]:
        # common nest: longest common prefix of the two loop chains
        chain: list[int] = []
        for x, y in zip(a.chain, b.chain):
            if x == y:
                chain.append(x)
            else:
                break
        if not chain:
            return []
        loops = self._loop_ctxs(li, tuple(chain), env)
        nest_ids = tuple(self.uir.loops.by_uid[u].id for u in chain)

        if a.test_subs is None or b.test_subs is None:
            # Whole-array / unknown-section access: assume everything.
            result = PairResult(
                vectors=[v for v in _all_vectors(len(loops))],
                exact=False,
                reason="summarized array access (no section information)")
        else:
            try:
                if meter is not None:
                    meter.tick()
                result = test_pair(a.test_subs, b.test_subs, loops, env,
                                   facts)
            except Exception as e:
                # Degraded pair: assume every direction rather than fail
                # the whole loop.  Budget exhaustion lands here too (the
                # meter keeps raising, so every remaining pair degrades).
                if isinstance(e, _budget.BudgetExhausted):
                    reason = str(e)
                else:
                    reason = f"pair test failed: {type(e).__name__}: {e}"
                note = f"{a.var}: dependence assumed ({reason})"
                if notes is not None and note not in notes:
                    notes.append(note)
                    if isinstance(e, _budget.BudgetExhausted):
                        _counters.bump("budget_exhaustions")
                _counters.bump("degraded_pairs")
                result = PairResult(
                    vectors=[v for v in _all_vectors(len(loops))],
                    exact=False,
                    reason=f"dependence assumed: {reason}")

        return self._emit(a, b, result, nest_ids)

    def _emit(self, a: RefSite, b: RefSite, result: PairResult,
              nest_ids: tuple[str, ...]) -> list[Dependence]:
        if not result.vectors:
            return []
        fwd: list[DirectionVector] = []
        bwd: list[DirectionVector] = []
        indep_pair: bool = False
        for v in result.vectors:
            sign = _lex_sign(v)
            if sign == LT:
                fwd.append(v)
            elif sign == GT:
                bwd.append(_reverse_vector(v))
            elif sign == EQ:
                indep_pair = True
            else:  # ANY at the deciding position: both ways possible
                fwd.append(v)
                bwd.append(_reverse_vector(v))

        out: list[Dependence] = []
        mark = Mark.PROVEN if result.exact else Mark.PENDING
        reason = result.reason if not result.exact else "exact test"

        def mk(src: RefSite, snk: RefSite,
               vectors: list[DirectionVector], flipped: bool) -> None:
            if not vectors:
                return
            dtype = _dep_type(src, snk)
            if dtype is None:
                return
            for dv in merge_vectors(vectors):
                level = _carrier(dv)
                dists = []
                for k, d in enumerate(dv):
                    if d == EQ:
                        dists.append(0)
                        continue
                    dk = result.distances.get(k)
                    # distances were computed for the (a, b) orientation;
                    # the flipped dependence runs sink-to-source
                    dists.append(-dk if (flipped and dk is not None)
                                 else dk)
                out.append(Dependence(
                    dtype=dtype, source=src.to_reference(),
                    sink=snk.to_reference(), vector=dv,
                    distances=tuple(dists),
                    level=level, mark=mark, reason=reason,
                    nest_ids=nest_ids))

        mk(a, b, fwd, False)
        mk(b, a, bwd, True)
        if indep_pair and a.stmt.uid != b.stmt.uid:
            src, snk = (a, b) if a.order <= b.order else (b, a)
            dtype = _dep_type(src, snk)
            if dtype is not None:
                n = len(nest_ids)
                out.append(Dependence(
                    dtype=dtype, source=src.to_reference(),
                    sink=snk.to_reference(), vector=(EQ,) * n,
                    distances=(0,) * n, level=None, mark=mark,
                    reason=reason, nest_ids=nest_ids))
        return out

    # -- scalar dependences ----------------------------------------------------

    def _scalar_dependences(self, li: LoopInfo, refs: list[RefSite],
                            private: set[str],
                            aux_subst: dict[str, ast.Expr]
                            ) -> tuple[list[Dependence], set[str]]:
        st = self.uir.symtab
        loop_vars = {s.var for s in li.statements()
                     if isinstance(s, ast.DoLoop)} | {li.loop.var}
        scalars: dict[str, list[RefSite]] = {}
        for r in refs:
            sym = st.get(r.var)
            if sym is None or sym.is_array:
                continue
            if r.var in loop_vars or r.var in aux_subst:
                continue
            scalars.setdefault(r.var, []).append(r)

        reductions = self._find_reductions(li)
        depth = 1  # scalar deps reported at the selected loop's level
        out: list[Dependence] = []
        for var, sites in sorted(scalars.items()):
            writes = [r for r in sites if r.is_write]
            reads = [r for r in sites if not r.is_write]
            if not writes:
                continue
            is_private = var in private
            is_reduction = var in reductions
            reason = ("same-iteration scalar flow (variable is private)"
                      if is_private
                      else "sum reduction candidate" if is_reduction
                      else "scalar carried across iterations")
            seen: set[tuple[int, int, DepType]] = set()

            def emit(src: RefSite, snk: RefSite, dtype: DepType,
                     carried: bool) -> None:
                key = (src.stmt.uid, snk.stmt.uid, dtype)
                if key in seen:
                    return
                seen.add(key)
                out.append(Dependence(
                    dtype=dtype, source=src.to_reference(),
                    sink=snk.to_reference(),
                    vector=(ANY,) if carried else (EQ,),
                    distances=(None,) if carried else (0,),
                    level=1 if carried else None,
                    mark=Mark.PENDING, reason=reason,
                    nest_ids=(li.id,)))

            if is_private:
                # Privatization removes the *carried* dependences, but the
                # same-iteration def->use flow still orders statements
                # (distribution must not split a private temporary's
                # producer from its consumer).
                for w in writes:
                    for r in reads:
                        if w.stmt.uid == r.stmt.uid:
                            continue
                        if w.order < r.order:
                            emit(w, r, DepType.TRUE, False)
                        else:
                            emit(r, w, DepType.ANTI, False)
                    for w2 in writes:
                        if w2 is not w and w.order < w2.order:
                            emit(w, w2, DepType.OUTPUT, False)
                continue

            for w in writes:
                for r in reads:
                    emit(w, r, DepType.TRUE, True)
                    emit(r, w, DepType.ANTI, True)
                for w2 in writes:
                    if w2 is not w:
                        emit(w, w2, DepType.OUTPUT, True)
            if len(writes) == 1 and not reads:
                w = writes[0]
                emit(w, w, DepType.OUTPUT, True)
        return out, reductions

    def _find_reductions(self, li: LoopInfo) -> set[str]:
        """Scalars updated only by associative accumulation ``s = s op e``."""
        st = self.uir.symtab
        cands: dict[str, int] = {}
        disq: set[str] = set()
        for s in [x for x, _ in ast.walk_stmts(li.loop.body)]:
            if isinstance(s, ast.Assign) and isinstance(s.target, ast.VarRef):
                v = s.target.name
                if _is_reduction_rhs(s.value, v):
                    cands[v] = cands.get(v, 0) + 1
                    continue
                disq.add(v)
                if v in _names(s.value):
                    pass
            else:
                for a in accesses(s, st, self.oracle):
                    if a.is_def:
                        disq.add(a.name)
            # uses of the candidate outside its own update disqualify
            if isinstance(s, ast.Assign):
                rhs_names = _names(s.value)
                tgt = s.target.name if isinstance(s.target, ast.VarRef) \
                    else None
                for v in rhs_names:
                    if v != tgt and v in cands:
                        disq.add(v)
            else:
                for e in s.exprs():
                    disq |= _names(e) & set(cands)
        return {v for v in cands if v not in disq
                and not (st.get(v) and st.get(v).is_array)}


def _names(e: ast.Expr) -> set[str]:
    return {n.name for n in ast.walk_expr(e)
            if isinstance(n, (ast.VarRef, ast.ArrayRef))}


def _is_reduction_rhs(value: ast.Expr, var: str) -> bool:
    """``var + e`` / ``var - e`` / ``var * e`` / MAX/MIN(var, e) patterns
    where ``e`` does not mention ``var``."""
    if isinstance(value, ast.BinOp) and value.op in ("+", "-", "*"):
        l, r = value.left, value.right
        if isinstance(l, ast.VarRef) and l.name == var \
                and var not in _names(r):
            return True
        if value.op == "+" and isinstance(r, ast.VarRef) and r.name == var \
                and var not in _names(l):
            return True
    if isinstance(value, ast.FuncRef) and value.name in ("MAX", "MIN",
                                                         "AMAX1", "AMIN1",
                                                         "MAX0", "MIN0",
                                                         "DMAX1", "DMIN1"):
        args = value.args
        if len(args) == 2:
            for k in (0, 1):
                if isinstance(args[k], ast.VarRef) \
                        and args[k].name == var \
                        and var not in _names(args[1 - k]):
                    return True
    return False


def _dep_type(src: RefSite, snk: RefSite) -> DepType | None:
    if src.is_write and not snk.is_write:
        return DepType.TRUE
    if not src.is_write and snk.is_write:
        return DepType.ANTI
    if src.is_write and snk.is_write:
        return DepType.OUTPUT
    return DepType.INPUT


def _carrier(dv: DirectionVector) -> int | None:
    for i, d in enumerate(dv):
        if d in (LT, ANY):
            return i + 1
        if d == GT:
            return None
    return None


def _all_vectors(n: int):
    from .model import expand_vector
    return list(expand_vector((ANY,) * n))
