"""Scalar data-flow, symbolic, and control-dependence analyses."""

from .constants import BOTTOM, TOP, ConstantMap, eval_const, \
    propagate_constants
from .controldep import ControlDep, control_dep_map, control_dependences
from .defuse import DefUse, Definition, SideEffectOracle, VarAccess, \
    accesses, compute_defuse, compute_liveness, stmt_defs, stmt_must_defs, \
    stmt_uses
from .kills import PrivatizableScalar, privatizable_names, scalar_kills, \
    upward_exposed_uses
from .linear import LinearExpr, linearize, simplify_expr, to_expr
from .symbolic import AuxiliaryInduction, auxiliary_inductions, \
    defined_names_in, invariant_names, symbolic_relations, trip_count

__all__ = [
    "BOTTOM", "TOP", "ConstantMap", "eval_const", "propagate_constants",
    "ControlDep", "control_dep_map", "control_dependences",
    "DefUse", "Definition", "SideEffectOracle", "VarAccess", "accesses",
    "compute_defuse", "compute_liveness", "stmt_defs", "stmt_must_defs",
    "stmt_uses",
    "PrivatizableScalar", "privatizable_names", "scalar_kills",
    "upward_exposed_uses",
    "LinearExpr", "linearize", "simplify_expr", "to_expr",
    "AuxiliaryInduction", "auxiliary_inductions", "defined_names_in",
    "invariant_names", "symbolic_relations", "trip_count",
]
