"""Affine (linear) form extraction for subscript expressions.

Dependence tests reason about subscripts of the form::

    a0 + a1*I1 + a2*I2 + ... + (symbolic residue)

where ``Ik`` are loop induction variables.  :class:`LinearExpr` is that
normal form: an integer/rational constant, integer coefficients per
variable, and a tuple of opaque residue expressions for anything
non-affine (index-array references ``IT(N)``, products of variables,
function calls, ...).  A subscript with a residue can still be tested
conservatively: two references whose residues are structurally identical
cancel when subtracted, which is how symbolic-but-equal terms (the ``MCN``
offsets of pueblo3d) are handled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from ..fortran import ast


@dataclass(frozen=True)
class LinearExpr:
    const: Fraction = Fraction(0)
    #: variable name -> coefficient
    terms: tuple[tuple[str, Fraction], ...] = ()
    #: opaque non-affine addends, each (coefficient, expression)
    residue: tuple[tuple[Fraction, ast.Expr], ...] = ()

    # -- constructors ------------------------------------------------------

    @staticmethod
    def constant(v: "int | Fraction") -> "LinearExpr":
        return LinearExpr(const=Fraction(v))

    @staticmethod
    def var(name: str, coef: "int | Fraction" = 1) -> "LinearExpr":
        return LinearExpr(terms=((name.upper(), Fraction(coef)),))

    @staticmethod
    def opaque(e: ast.Expr, coef: "int | Fraction" = 1) -> "LinearExpr":
        return LinearExpr(residue=((Fraction(coef), e),))

    # -- queries -----------------------------------------------------------

    @property
    def is_affine(self) -> bool:
        return not self.residue

    @property
    def is_constant(self) -> bool:
        return not self.terms and not self.residue

    @property
    def int_const(self) -> int | None:
        if self.is_constant and self.const.denominator == 1:
            return int(self.const)
        return None

    def coeff(self, name: str) -> Fraction:
        name = name.upper()
        for v, c in self.terms:
            if v == name:
                return c
        return Fraction(0)

    def variables(self) -> set[str]:
        return {v for v, _ in self.terms}

    def terms_dict(self) -> dict[str, Fraction]:
        return dict(self.terms)

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "LinearExpr") -> "LinearExpr":
        terms = dict(self.terms)
        for v, c in other.terms:
            terms[v] = terms.get(v, Fraction(0)) + c
        residue = _merge_residue(self.residue, other.residue)
        return _make(self.const + other.const, terms, residue)

    def __sub__(self, other: "LinearExpr") -> "LinearExpr":
        return self + other.scale(-1)

    def scale(self, k: "int | Fraction") -> "LinearExpr":
        k = Fraction(k)
        if k == 0:
            return LinearExpr()
        return _make(self.const * k,
                     {v: c * k for v, c in self.terms},
                     tuple((c * k, e) for c, e in self.residue))

    def __neg__(self) -> "LinearExpr":
        return self.scale(-1)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        parts = []
        if self.const or (not self.terms and not self.residue):
            parts.append(str(self.const))
        for v, c in self.terms:
            parts.append(f"{c}*{v}")
        for c, e in self.residue:
            parts.append(f"{c}*<{e}>")
        return " + ".join(parts)


def _merge_residue(a, b):
    """Combine residue lists, cancelling structurally-equal expressions."""
    acc: list[tuple[Fraction, ast.Expr]] = list(a)
    for coef, expr in b:
        for i, (c0, e0) in enumerate(acc):
            if e0 == expr:
                acc[i] = (c0 + coef, e0)
                break
        else:
            acc.append((coef, expr))
    return tuple((c, e) for c, e in acc if c != 0)


def _make(const: Fraction, terms: dict[str, Fraction],
          residue) -> LinearExpr:
    return LinearExpr(
        const=const,
        terms=tuple(sorted((v, c) for v, c in terms.items() if c != 0)),
        residue=tuple(residue))


def canonical(e: ast.Expr) -> ast.Expr:
    """Canonicalize an expression for structural comparison of residues.

    ``NAME(args)`` means the same value whether it parsed as a NameRef
    (unresolved), an ArrayRef, or a FuncRef -- assertion text is parsed
    without a symbol table, so all three spellings must compare equal.
    Everything is rewritten to ArrayRef form.
    """

    def fix(x: ast.Expr) -> ast.Expr:
        if isinstance(x, (ast.NameRef, ast.FuncRef)):
            return ast.ArrayRef(x.name, x.args
                                if isinstance(x, ast.NameRef) else x.args)
        return x

    return ast.map_expr(e, fix)


def linearize(e: ast.Expr,
              env: "dict[str, LinearExpr] | None" = None) -> LinearExpr:
    """Convert an expression to linear normal form.

    ``env`` maps variable names to known linear values (constants from
    constant propagation, symbolic relations such as ``JM -> JMAX - 1``,
    assertion-provided equalities).  Substitution is applied recursively
    but cycles are guarded by removing a name from the environment while
    expanding it.
    """
    env = env or {}

    def rec(x: ast.Expr, env_: dict[str, LinearExpr]) -> LinearExpr:
        if isinstance(x, ast.IntConst):
            return LinearExpr.constant(x.value)
        if isinstance(x, ast.RealConst):
            v = x.value
            if v == int(v):
                return LinearExpr.constant(int(v))
            return LinearExpr.constant(Fraction(v).limit_denominator(10**6))
        if isinstance(x, ast.VarRef):
            name = x.name.upper()
            if name in env_:
                sub = dict(env_)
                del sub[name]
                expansion = env_[name]
                # re-expand any variables inside the expansion
                out = LinearExpr.constant(expansion.const)
                for v, c in expansion.terms:
                    if v in sub:
                        out = out + rec(ast.VarRef(v), sub).scale(c)
                    else:
                        out = out + LinearExpr.var(v, c)
                for c, oe in expansion.residue:
                    out = out + LinearExpr.opaque(oe, c)
                return out
            return LinearExpr.var(name)
        if isinstance(x, ast.UnOp):
            if x.op == "-":
                return -rec(x.operand, env_)
            if x.op == "+":
                return rec(x.operand, env_)
            return LinearExpr.opaque(x)
        if isinstance(x, ast.BinOp):
            if x.op == "+":
                return rec(x.left, env_) + rec(x.right, env_)
            if x.op == "-":
                return rec(x.left, env_) - rec(x.right, env_)
            if x.op == "*":
                lhs = rec(x.left, env_)
                rhs = rec(x.right, env_)
                if lhs.is_constant:
                    return rhs.scale(lhs.const)
                if rhs.is_constant:
                    return lhs.scale(rhs.const)
                return LinearExpr.opaque(x)
            if x.op == "/":
                lhs = rec(x.left, env_)
                rhs = rec(x.right, env_)
                if rhs.is_constant and rhs.const != 0:
                    scaled = lhs.scale(Fraction(1) / rhs.const)
                    # Integer division truncates; only exact divisions are
                    # safe to keep affine.
                    if all(c.denominator == 1 for _, c in scaled.terms) \
                            and scaled.const.denominator == 1 \
                            and not scaled.residue:
                        return scaled
                return LinearExpr.opaque(x)
            if x.op == "**":
                lhs = rec(x.left, env_)
                rhs = rec(x.right, env_)
                if lhs.is_constant and rhs.is_constant \
                        and rhs.const.denominator == 1 and rhs.const >= 0:
                    return LinearExpr.constant(lhs.const ** int(rhs.const))
                return LinearExpr.opaque(x)
            return LinearExpr.opaque(x)
        # ArrayRef (index arrays!), FuncRef, logical/string constants
        return LinearExpr.opaque(x)

    return rec(canonical(e), env)


def to_expr(le: LinearExpr) -> ast.Expr:
    """Rebuild an AST expression from a linear form (for display/codegen)."""
    out: ast.Expr | None = None

    def add(term: ast.Expr, negate: bool) -> None:
        nonlocal out
        if out is None:
            out = ast.UnOp("-", term) if negate else term
        else:
            out = ast.BinOp("-" if negate else "+", out, term)

    if le.const != 0 or (not le.terms and not le.residue):
        c = le.const
        if c.denominator == 1:
            add(ast.IntConst(abs(int(c))), c < 0)
        else:
            add(ast.RealConst(str(float(abs(c)))), c < 0)
    for v, c in le.terms:
        base: ast.Expr = ast.VarRef(v)
        ac = abs(c)
        if ac != 1:
            k: ast.Expr = (ast.IntConst(int(ac)) if ac.denominator == 1
                           else ast.RealConst(str(float(ac))))
            base = ast.BinOp("*", k, base)
        add(base, c < 0)
    for c, e in le.residue:
        base = e
        ac = abs(c)
        if ac != 1:
            k = (ast.IntConst(int(ac)) if ac.denominator == 1
                 else ast.RealConst(str(float(ac))))
            base = ast.BinOp("*", k, base)
        add(base, c < 0)
    assert out is not None
    return out


def simplify_expr(e: ast.Expr,
                  env: "dict[str, LinearExpr] | None" = None) -> ast.Expr:
    """Expression simplification on demand (PED's symbolic service)."""
    return to_expr(linearize(e, env))
