"""Scalar kill analysis and privatization.

A scalar is *killed* in a loop iteration when it is (re)defined before any
use on every path through the body; such scalars carry no value between
iterations and may be made private, eliminating the loop-carried
dependences their shared storage would otherwise induce.  The paper
(Section 4.2) reports this as the single most broadly useful supporting
analysis: "almost all of the programs contain a loop that becomes
parallelizable following scalar privatization".

The analysis here is intraprocedural over the loop body's sub-CFG; the
interprocedural KILL refinement (nxsns's scalar killed inside a called
procedure) plugs in through the :class:`~repro.analysis.defuse.
SideEffectOracle`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fortran import ast
from ..ir.cfg import CFG, build_cfg
from ..ir.symtab import SymbolTable
from .defuse import SideEffectOracle, accesses, compute_liveness


@dataclass(frozen=True)
class PrivatizableScalar:
    name: str
    #: True when the scalar's value is needed after the loop, requiring a
    #: last-value copy-out if privatized.
    live_out: bool
    reason: str


def _body_cfg(loop: ast.DoLoop, unit_name: str) -> CFG:
    """CFG of the loop body in isolation (one iteration)."""
    shell = ast.ProgramUnit(kind="subroutine", name=unit_name,
                            params=(), body=loop.body)
    return build_cfg(shell)


def upward_exposed_uses(loop: ast.DoLoop, symtab: SymbolTable,
                        oracle: SideEffectOracle | None = None) -> set[str]:
    """Scalars whose value may be read before being written in an iteration.

    Computed as liveness at the head of the body sub-CFG with nothing live
    at its exit: any name live on entry has a read-before-write path.
    """
    oracle = oracle or SideEffectOracle()
    try:
        cfg = _body_cfg(loop, "BODY")
    except Exception:
        # A GOTO targeting a label outside the loop body defeats the
        # isolated sub-CFG; fall back to "every read is exposed".
        exposed = set()
        for s, _ in ast.walk_stmts(loop.body):
            for a in accesses(s, symtab, oracle):
                if not a.is_def:
                    exposed.add(a.name)
        return exposed
    live_in, _ = compute_liveness(cfg, symtab, oracle, live_at_exit=set())
    from ..ir.cfg import ENTRY
    exposed = set()
    for n in cfg.succs.get(ENTRY, ()):
        exposed |= live_in.get(n, set())
    return exposed


def scalar_kills(loop: ast.DoLoop, symtab: SymbolTable,
                 oracle: SideEffectOracle | None = None,
                 live_after: set[str] | None = None
                 ) -> list[PrivatizableScalar]:
    """Scalars killed on every iteration of ``loop``.

    ``live_after`` names values needed after the loop (from a whole-unit
    liveness solution); when omitted we assume arguments/COMMON/SAVE are
    live, matching :func:`compute_liveness` defaults.
    """
    oracle = oracle or SideEffectOracle()
    if live_after is None:
        live_after = {s.name for s in symtab.symbols.values()
                      if s.storage in ("argument", "common") or s.saved}

    defined: set[str] = set()
    used_as_array: set[str] = set()
    for s, _ in ast.walk_stmts(loop.body):
        for a in accesses(s, symtab, oracle):
            if a.is_def:
                defined.add(a.name)
            sym = symtab.get(a.name)
            if sym is not None and sym.is_array:
                used_as_array.add(a.name)

    exposed = upward_exposed_uses(loop, symtab, oracle)
    out: list[PrivatizableScalar] = []
    for name in sorted(defined):
        sym = symtab.get(name)
        if sym is None or sym.is_array or name in used_as_array:
            continue
        if name == loop.var:
            continue
        if name in exposed:
            continue
        out.append(PrivatizableScalar(
            name=name,
            live_out=name in live_after,
            reason="defined before any use on every path through the "
                   "loop body"))
    return out


def privatizable_names(loop: ast.DoLoop, symtab: SymbolTable,
                       oracle: SideEffectOracle | None = None) -> set[str]:
    return {p.name for p in scalar_kills(loop, symtab, oracle)}
