"""Array kill analysis: array privatization candidates (Section 4.3).

The paper reports that for loops in seven of the eight programs, *array
kill analysis* -- proving a temporary array is wholly written before being
read in every iteration of an outer loop -- would eliminate the important
dependences.  PED did not have it; we implement it as the proposed
extension.

The algorithm works over bounded regular sections (the same machinery as
interprocedural side-effect analysis): walk the loop body's top-level
constructs in textual order, accumulating per-iteration *written* sections
per array; a read is covered when some previously-written section contains
it.  An array is a privatization candidate when every read inside the loop
is covered by earlier same-iteration writes, so no value flows between
iterations through the array.

Symbolic relations matter here: arc3d's ``WR1(JMAX,K) = WR1(JM,K)`` only
covers row ``JMAX`` once ``JM = JMAX - 1`` lets the two write sections
``[1:JM]`` and ``[JMAX:JMAX]`` merge into ``[1:JMAX]`` -- pass the
relation environment from :func:`repro.analysis.symbolic.
symbolic_relations` (or a user assertion) as ``env``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fortran import ast
from ..ir.symtab import SymbolTable
from .defuse import SideEffectOracle, accesses
from .linear import LinearExpr, linearize

# Imported lazily to keep repro.analysis free of package-level dependence
# on repro.dependence (which itself imports repro.analysis submodules).
from ..dependence.facts import FactBase  # noqa: E402


@dataclass(frozen=True)
class Bound:
    lo: LinearExpr | None
    hi: LinearExpr | None

    @property
    def known(self) -> bool:
        return self.lo is not None and self.hi is not None


@dataclass
class ArrayKillResult:
    array: str
    privatizable: bool
    #: value may be needed after the loop: privatization requires copy-out
    live_out_risk: bool
    reason: str


def _expand_subscript(e: ast.Expr, loop_bounds: dict[str, Bound],
                      env: dict[str, LinearExpr]) -> Bound:
    le = linearize(e, env)
    if not le.is_affine:
        return Bound(None, None)
    lo = LinearExpr.constant(le.const)
    hi = LinearExpr.constant(le.const)
    for v, c in le.terms:
        if v in loop_bounds:
            b = loop_bounds[v]
            if not b.known:
                return Bound(None, None)
            tlo, thi = b.lo.scale(c), b.hi.scale(c)
            if c < 0:
                tlo, thi = thi, tlo
            lo = lo + tlo
            hi = hi + thi
        else:
            lo = lo + LinearExpr.var(v, c)
            hi = hi + LinearExpr.var(v, c)
    return Bound(lo, hi)


def _contains(outer: Bound, inner: Bound, facts: "FactBase") -> bool:
    """outer.lo <= inner.lo and inner.hi <= outer.hi, decided through the
    fact base (constants, ranges, and user assertions)."""
    if not outer.known or not inner.known:
        return False
    return facts.known_nonnegative(inner.lo - outer.lo) \
        and facts.known_nonnegative(outer.hi - inner.hi)


def _try_merge(a: Bound, b: Bound, facts: "FactBase") -> Bound | None:
    """Union of overlapping/adjacent bounds when the fact base can order
    the endpoints."""
    if not a.known or not b.known:
        return None
    # order so that a starts first when decidable
    d = b.lo - a.lo
    if facts.known_positive(-d):
        a, b = b, a
    elif not facts.known_nonnegative(d):
        return None
    gap = b.lo - a.hi
    one = LinearExpr.constant(1)
    if facts.known_nonnegative(one - gap):
        hi_d = b.hi - a.hi
        if facts.known_nonnegative(hi_d):
            return Bound(a.lo, b.hi)
        if facts.known_nonnegative(-hi_d):
            return Bound(a.lo, a.hi)
    return None


@dataclass
class _SectionSet:
    """Union of written regions for one array (list of per-dim bounds)."""

    facts: "FactBase"
    regions: list[tuple[Bound, ...]] = field(default_factory=list)

    def add(self, region: tuple[Bound, ...]) -> None:
        for i, r in enumerate(self.regions):
            if len(r) != len(region):
                continue
            diff_dims = [k for k in range(len(r))
                         if not (_contains(r[k], region[k], self.facts)
                                 and _contains(region[k], r[k], self.facts))]
            if len(diff_dims) == 0:
                return  # identical
            if len(diff_dims) == 1:
                k = diff_dims[0]
                m = _try_merge(r[k], region[k], self.facts)
                if m is not None:
                    new = list(r)
                    new[k] = m
                    self.regions[i] = tuple(new)
                    return
        self.regions.append(region)

    def covers(self, region: tuple[Bound, ...]) -> bool:
        for r in self.regions:
            if len(r) == len(region) and all(
                    _contains(rk, qk, self.facts)
                    for rk, qk in zip(r, region)):
                return True
        return False


class BodyArrayScan:
    """Textual-order array section scan of a statement list.

    Tracks, per array: the union of unconditionally-written sections
    visible so far, reads not covered by earlier writes, and writes whose
    section could not be bounded.  Used both for per-loop array kill
    analysis and for procedure-level killed-array summaries (the arc3d
    interprocedural case).
    """

    def __init__(self, symtab: SymbolTable,
                 oracle: SideEffectOracle | None = None,
                 env: dict[str, LinearExpr] | None = None,
                 call_sections=None,
                 facts: "FactBase | None" = None):
        self.symtab = symtab
        self.oracle = oracle or SideEffectOracle()
        self.env = env or {}
        self.call_sections = call_sections
        self.facts = facts or FactBase()
        self.written: dict[str, _SectionSet] = {}
        self.uncovered: dict[str, str] = {}
        self.arrays_written: set[str] = set()
        self.arrays_read: set[str] = set()
        self.unknown_write: set[str] = set()

    # -- recording -----------------------------------------------------------

    def region_of(self, subs, loop_bounds) -> tuple[Bound, ...]:
        return tuple(_expand_subscript(x, loop_bounds, self.env)
                     for x in subs)

    def bounds_with(self, lb, lp: ast.DoLoop) -> dict[str, Bound]:
        lo = linearize(lp.start, self.env)
        hi = linearize(lp.end, self.env)
        out = dict(lb)
        out[lp.var] = Bound(lo if lo.is_affine else None,
                            hi if hi.is_affine else None)
        return out

    def record_read(self, name: str, region, line: int) -> None:
        self.arrays_read.add(name)
        ws = self.written.get(name)
        if ws is None or not ws.covers(region):
            self.uncovered.setdefault(
                name, f"read at line {line} not covered by earlier "
                      f"writes")

    def record_write(self, name: str, region) -> None:
        self.arrays_written.add(name)
        if region is None or any(not b.known for b in region):
            self.unknown_write.add(name)
            return
        self.written.setdefault(name, _SectionSet(self.facts)).add(region)

    # -- traversal -------------------------------------------------------------

    def scan(self, body: list[ast.Stmt],
             loop_bounds: dict[str, Bound] | None = None,
             conditional: bool = False) -> "BodyArrayScan":
        loop_bounds = loop_bounds or {}
        for s in body:
            if isinstance(s, ast.DoLoop):
                inner = self.bounds_with(loop_bounds, s)
                for e in s.exprs():
                    self._expr_reads(e, loop_bounds)
                self.scan(s.body, inner, conditional)
                continue
            if isinstance(s, ast.IfBlock):
                self._expr_reads(s.cond, loop_bounds)
                for c, _ in s.elifs:
                    self._expr_reads(c, loop_bounds)
                for blk in s.blocks():
                    self.scan(blk, loop_bounds, True)
                continue
            if isinstance(s, ast.LogicalIf):
                self._expr_reads(s.cond, loop_bounds)
                self.scan([s.stmt], loop_bounds, True)
                continue
            if isinstance(s, ast.CallStmt) and self.call_sections is not None:
                triples = self.call_sections(s)
                if triples is None:
                    for a in accesses(s, self.symtab, self.oracle):
                        sym = self.symtab.get(a.name)
                        if sym is not None and sym.is_array:
                            if a.is_def:
                                self.record_write(a.name, None)
                            else:
                                self.record_read(
                                    a.name, (Bound(None, None),), s.line)
                    continue
                for name, region, is_write in triples:
                    if is_write:
                        if conditional:
                            self.unknown_write.add(name)
                            self.arrays_written.add(name)
                        else:
                            self.record_write(name, region)
                    else:
                        self.record_read(
                            name,
                            region if region is not None
                            else (Bound(None, None),), s.line)
                continue
            # ordinary statement: reads first, then the write
            for a in accesses(s, self.symtab, self.oracle):
                sym = self.symtab.get(a.name)
                if sym is None or not sym.is_array:
                    continue
                if not a.is_def and isinstance(a.ref, ast.ArrayRef):
                    self.record_read(
                        a.name, self.region_of(a.ref.subscripts,
                                               loop_bounds), s.line)
                elif not a.is_def:
                    self.record_read(a.name, (Bound(None, None),), s.line)
            for a in accesses(s, self.symtab, self.oracle):
                sym = self.symtab.get(a.name)
                if sym is None or not sym.is_array:
                    continue
                if a.is_def:
                    if conditional:
                        self.unknown_write.add(a.name)
                        self.arrays_written.add(a.name)
                    elif isinstance(a.ref, ast.ArrayRef):
                        self.record_write(
                            a.name, self.region_of(a.ref.subscripts,
                                                   loop_bounds))
                    else:
                        self.record_write(a.name, None)
        return self

    def _expr_reads(self, e: ast.Expr, loop_bounds) -> None:
        for node in ast.walk_expr(e):
            if isinstance(node, ast.ArrayRef):
                sym = self.symtab.get(node.name)
                if sym is not None and sym.is_array:
                    self.record_read(
                        node.name, self.region_of(node.subscripts,
                                                  loop_bounds), 0)

    # -- results ------------------------------------------------------------------

    def covered_arrays(self) -> set[str]:
        """Arrays written with every read covered by earlier writes."""
        return {a for a in self.arrays_written
                if a not in self.uncovered and a not in self.unknown_write}

    def killed_regions(self, name: str) -> "list[tuple[Bound, ...]] | None":
        ws = self.written.get(name)
        return list(ws.regions) if ws is not None else None


def array_kills(loop: ast.DoLoop, symtab: SymbolTable,
                oracle: SideEffectOracle | None = None,
                env: dict[str, LinearExpr] | None = None,
                call_sections=None,
                facts: "FactBase | None" = None) -> list[ArrayKillResult]:
    """Array privatization candidates for one loop.

    ``call_sections(stmt)`` may supply ``(array, region, is_write)``
    triples for CALL statements (from interprocedural section analysis),
    enabling the arc3d pattern of an array killed inside a called
    procedure.
    """
    # The loop variable ranges over [start, end] inside the body: hand
    # the fact base that range so subscripts like ROW(I) compare against
    # whole-row sections.
    facts = facts or FactBase()
    env = env or {}
    lo = linearize(loop.start, env)
    hi = linearize(loop.end, env)
    step = linearize(loop.step, env).int_const if loop.step is not None \
        else 1
    if lo.is_affine and hi.is_affine and step is not None:
        if step < 0:
            lo, hi = hi, lo
        facts = FactBase(list(facts.linear), list(facts.index_arrays),
                         dict(facts.ranges))
        iv = LinearExpr.var(loop.var)
        facts.assert_linear(iv - lo, ">=")
        facts.assert_linear(hi - iv, ">=")
    scan = BodyArrayScan(symtab, oracle, env, call_sections, facts)
    scan.scan(loop.body)
    results: list[ArrayKillResult] = []
    for name in sorted(scan.arrays_written):
        sym = symtab.get(name)
        live_risk = sym is not None and (sym.storage in ("argument",
                                                         "common")
                                         or sym.saved)
        if name in scan.uncovered:
            results.append(ArrayKillResult(
                name, False, live_risk, scan.uncovered[name]))
        elif name in scan.unknown_write and name in scan.arrays_read:
            results.append(ArrayKillResult(
                name, False, live_risk,
                "conditional or unanalyzable write section"))
        else:
            results.append(ArrayKillResult(
                name, True, live_risk,
                "every read covered by earlier same-iteration writes"))
    return results


def privatizable_arrays(loop: ast.DoLoop, symtab: SymbolTable,
                        oracle: SideEffectOracle | None = None,
                        env: dict[str, LinearExpr] | None = None,
                        call_sections=None,
                        facts: "FactBase | None" = None) -> set[str]:
    return {r.array for r in array_kills(loop, symtab, oracle, env,
                                         call_sections, facts)
            if r.privatizable}
