"""Symbolic analysis: relations, induction variables, invariance.

The paper's arc3d example motivates this analysis: ``JM = JMAX - 1`` is
established in an initialization routine and holds for the rest of the
program; carrying that relation into dependence testing lets the DO 15
loop be parallelized.  We provide:

* :func:`symbolic_relations` -- scalar equalities ``var = affine-expr``
  valid at a given statement (derived from unique reaching definitions);
* :func:`auxiliary_inductions` -- variables advanced by a loop-invariant
  amount every iteration (``K = K + 2``-style), rewritable in terms of the
  loop induction variable;
* :func:`invariant_names` -- variables not modified anywhere in a loop;
* on-demand expression simplification (via :mod:`repro.analysis.linear`).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..fortran import ast
from ..ir.cfg import CFG, ENTRY
from ..ir.symtab import SymbolTable
from .defuse import DefUse, SideEffectOracle, stmt_defs
from .linear import LinearExpr, linearize


def defined_names_in(body: list[ast.Stmt], symtab: SymbolTable,
                     oracle: SideEffectOracle | None = None) -> set[str]:
    """Every variable possibly defined anywhere in a statement list."""
    oracle = oracle or SideEffectOracle()
    out: set[str] = set()
    for s, _ in ast.walk_stmts(body):
        out |= stmt_defs(s, symtab, oracle)
    return out


def invariant_names(loop: ast.DoLoop, symtab: SymbolTable,
                    oracle: SideEffectOracle | None = None) -> set[str]:
    """Names whose values cannot change during the loop's execution."""
    defined = defined_names_in(loop.body, symtab, oracle) | {loop.var}
    return {s.name for s in symtab.symbols.values()} - defined


def symbolic_relations(du: DefUse, cfg: CFG, at_uid: int,
                       symtab: SymbolTable,
                       max_depth: int = 4) -> dict[str, LinearExpr]:
    """Equalities ``var = linear form`` valid on entry to statement.

    A relation is recorded when the variable has exactly one non-ENTRY
    reaching definition, that definition is a plain scalar assignment, and
    the right-hand side linearizes without residue.  Relations compose:
    ``JM = JMAX - 1`` with ``JMAX = N`` gives ``JM = N - 1`` (bounded by
    ``max_depth`` substitution rounds).
    """
    reach = du.reach_in.get(at_uid, frozenset())
    by_var: dict[str, list[int]] = {}
    for d in reach:
        by_var.setdefault(d.var, []).append(d.stmt_uid)

    raw: dict[str, LinearExpr] = {}
    for var, def_uids in by_var.items():
        real = [u for u in def_uids if u != ENTRY]
        if len(real) != 1 or len(def_uids) != len(real):
            continue
        stmt = cfg.stmts.get(real[0])
        if not isinstance(stmt, ast.Assign) or not isinstance(stmt.target,
                                                              ast.VarRef):
            continue
        le = linearize(stmt.value)
        if le.is_affine:
            raw[var] = le

    # Compose relations: substitute until fixpoint (bounded).
    out = dict(raw)
    for _ in range(max_depth):
        changed = False
        for var, le in list(out.items()):
            subst = {v: out[v] for v in le.variables()
                     if v in out and v != var}
            if not subst:
                continue
            new = linearize_from_linear(le, subst)
            if new is not None and new != le and var not in new.variables():
                out[var] = new
                changed = True
        if not changed:
            break
    # Drop self-referential relations (e.g. accumulators).
    return {v: le for v, le in out.items() if v not in le.variables()}


def linearize_from_linear(le: LinearExpr,
                          env: dict[str, LinearExpr]) -> LinearExpr | None:
    """Substitute linear expressions for variables inside a linear form."""
    out = LinearExpr.constant(le.const)
    for v, c in le.terms:
        if v in env:
            out = out + env[v].scale(c)
        else:
            out = out + LinearExpr.var(v, c)
    for c, e in le.residue:
        out = out + LinearExpr.opaque(e, c)
    return out


@dataclass(frozen=True)
class AuxiliaryInduction:
    """``var`` advances by ``step`` (linear, loop-invariant) per iteration.

    On iteration *k* (0-based) the value is ``initial + k*step`` where
    ``initial`` is the value on loop entry.  ``defining_stmts`` are the
    update statements.
    """

    var: str
    step: LinearExpr
    defining_uids: tuple[int, ...]


def auxiliary_inductions(loop: ast.DoLoop, symtab: SymbolTable,
                         oracle: SideEffectOracle | None = None
                         ) -> list[AuxiliaryInduction]:
    """Detect auxiliary induction variables in a loop body.

    Conservative pattern: a scalar updated only by ``v = v + c`` /
    ``v = v - c`` statements (any number of them, all unconditional at the
    top level of the body), where ``c`` is invariant in the loop.
    """
    oracle = oracle or SideEffectOracle()
    inv = invariant_names(loop, symtab, oracle)
    candidates: dict[str, list[tuple[int, LinearExpr]]] = {}
    disqualified: set[str] = set()

    def scan(body: list[ast.Stmt], conditional: bool) -> None:
        for s in body:
            if isinstance(s, ast.Assign) and isinstance(s.target, ast.VarRef):
                v = s.target.name
                le = linearize(s.value)
                # v = v + step ?
                if le.coeff(v) == 1:
                    step = le - LinearExpr.var(v)
                    step_vars = step.variables()
                    if (not conditional and step.is_affine
                            and step_vars <= inv):
                        candidates.setdefault(v, []).append((s.uid, step))
                        continue
                disqualified.add(v)
            else:
                defs = stmt_defs(s, symtab, oracle)
                disqualified.update(defs)
            if isinstance(s, ast.DoLoop):
                # updates inside an inner loop run a variable number of
                # times; disqualify anything defined there
                disqualified.update(
                    defined_names_in(s.body, symtab, oracle))
            else:
                for blk in s.blocks():
                    scan(blk, True)

    scan(loop.body, False)
    out = []
    for v, ups in sorted(candidates.items()):
        if v in disqualified or v == loop.var:
            continue
        total = LinearExpr()
        for _, st in ups:
            total = total + st
        out.append(AuxiliaryInduction(
            var=v, step=total, defining_uids=tuple(u for u, _ in ups)))
    return out


def loop_step_constant(loop: ast.DoLoop) -> int | None:
    """The loop's step as an integer when statically known (default 1)."""
    if loop.step is None:
        return 1
    le = linearize(loop.step)
    return le.int_const


def trip_count(loop: ast.DoLoop,
               env: dict[str, LinearExpr] | None = None) -> int | None:
    """Static trip count when bounds and step are known constants."""
    lo = linearize(loop.start, env)
    hi = linearize(loop.end, env)
    step = loop_step_constant(loop)
    if lo.int_const is None or hi.int_const is None or not step:
        return None
    n = (hi.int_const - lo.int_const + step) // step
    return max(0, n)
