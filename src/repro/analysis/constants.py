"""Constant propagation over the statement-level CFG.

Implements the classic Kildall-style lattice (TOP / constant / BOTTOM) per
variable, seeded with PARAMETER constants and (optionally) interprocedural
constants inherited from call sites -- the combination the paper credits
with locating constant-valued loop bounds, step sizes and subscripts.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..fortran import ast
from ..ir.cfg import CFG, ENTRY
from ..ir.symtab import SymbolTable
from .defuse import SideEffectOracle, accesses

#: Sentinel lattice values.
TOP = object()      # as-yet-unknown (optimistic)
BOTTOM = object()   # known non-constant


Value = object  # TOP | BOTTOM | int | float | bool


def _meet(a: Value, b: Value) -> Value:
    if a is TOP:
        return b
    if b is TOP:
        return a
    if a is BOTTOM or b is BOTTOM:
        return BOTTOM
    if a == b and type(a) is type(b):
        return a
    return BOTTOM


def eval_const(e: ast.Expr, env: dict[str, Value]) -> Value:
    """Evaluate an expression to a constant, or BOTTOM."""
    if isinstance(e, ast.IntConst):
        return e.value
    if isinstance(e, ast.RealConst):
        return e.value
    if isinstance(e, ast.LogicalConst):
        return e.value
    if isinstance(e, ast.VarRef):
        return env.get(e.name, BOTTOM)
    if isinstance(e, ast.UnOp):
        v = eval_const(e.operand, env)
        if v is BOTTOM or v is TOP:
            return v
        if e.op == "-":
            return -v
        if e.op == "+":
            return v
        if e.op == ".NOT.":
            return not v
        return BOTTOM
    if isinstance(e, ast.BinOp):
        lv = eval_const(e.left, env)
        rv = eval_const(e.right, env)
        if lv is TOP or rv is TOP:
            return TOP
        if lv is BOTTOM or rv is BOTTOM:
            return BOTTOM
        try:
            return _apply(e.op, lv, rv)
        except (ZeroDivisionError, TypeError, ValueError):
            return BOTTOM
    return BOTTOM


def _apply(op: str, a, b):
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if isinstance(a, int) and isinstance(b, int):
            q = Fraction(a, b)
            return int(q) if q.denominator == 1 else int(a / b)
        return a / b
    if op == "**":
        return a ** b
    if op == ".EQ.":
        return a == b
    if op == ".NE.":
        return a != b
    if op == ".LT.":
        return a < b
    if op == ".LE.":
        return a <= b
    if op == ".GT.":
        return a > b
    if op == ".GE.":
        return a >= b
    if op == ".AND.":
        return bool(a) and bool(b)
    if op == ".OR.":
        return bool(a) or bool(b)
    if op == ".EQV.":
        return bool(a) == bool(b)
    if op == ".NEQV.":
        return bool(a) != bool(b)
    raise ValueError(op)


@dataclass
class ConstantMap:
    """Solution: constants known at entry of each statement."""

    at_entry: dict[int, dict[str, Value]]
    #: constants valid throughout the unit (PARAMETERs, unconditional
    #: single assignments that dominate all uses)
    globals_: dict[str, Value]

    def value_at(self, stmt_uid: int, var: str) -> Value:
        env = self.at_entry.get(stmt_uid, {})
        v = env.get(var.upper(), TOP)
        if v is TOP:
            return self.globals_.get(var.upper(), TOP)
        return v

    def const_env(self, stmt_uid: int) -> dict[str, Value]:
        """Concrete constants (not TOP/BOTTOM) visible at a statement."""
        out = {k: v for k, v in self.globals_.items()
               if v is not TOP and v is not BOTTOM}
        for k, v in self.at_entry.get(stmt_uid, {}).items():
            if v is not TOP and v is not BOTTOM:
                out[k] = v
            elif v is BOTTOM:
                out.pop(k, None)
        return out


def propagate_constants(cfg: CFG, symtab: SymbolTable,
                        oracle: SideEffectOracle | None = None,
                        inherited: dict[str, Value] | None = None
                        ) -> ConstantMap:
    """Iterative constant propagation.

    ``inherited`` supplies interprocedural constants for arguments /
    COMMON variables (from :mod:`repro.interproc.constants`).
    """
    oracle = oracle or SideEffectOracle()
    seed: dict[str, Value] = {}
    for sym in symtab.symbols.values():
        if sym.storage == "parameter" and sym.param_value is not None:
            v = eval_const(sym.param_value, seed)
            if v is not BOTTOM:
                seed[sym.name] = v
    if inherited:
        for k, v in inherited.items():
            seed.setdefault(k.upper(), v)

    env_in: dict[int, dict[str, Value]] = {n: {} for n in cfg.nodes}
    env_out: dict[int, dict[str, Value]] = {n: {} for n in cfg.nodes}
    env_out[ENTRY] = dict(seed)

    order = cfg.rpo()
    changed = True
    iterations = 0
    while changed and iterations < 200:
        changed = False
        iterations += 1
        for n in order:
            if n == ENTRY:
                continue
            new_in: dict[str, Value] = {}
            preds = list(cfg.preds.get(n, ()))
            vars_seen: set[str] = set()
            for p in preds:
                vars_seen |= env_out[p].keys()
            for v in vars_seen:
                acc: Value = TOP
                for p in preds:
                    acc = _meet(acc, env_out[p].get(v, TOP))
                new_in[v] = acc
            stmt = cfg.stmts.get(n)
            new_out = dict(new_in)
            if stmt is not None:
                _transfer(stmt, new_in, new_out, symtab, oracle)
            if new_in != env_in[n] or new_out != env_out[n]:
                env_in[n] = new_in
                env_out[n] = new_out
                changed = True

    return ConstantMap(at_entry=env_in, globals_=dict(seed))


def _transfer(stmt: ast.Stmt, env_in: dict[str, Value],
              env_out: dict[str, Value], symtab: SymbolTable,
              oracle: SideEffectOracle) -> None:
    concrete = {k: v for k, v in env_in.items()
                if v is not TOP and v is not BOTTOM}
    if isinstance(stmt, ast.Assign) and isinstance(stmt.target, ast.VarRef):
        v = eval_const(stmt.value, concrete)
        env_out[stmt.target.name] = v if v is not TOP else BOTTOM
        return
    # Any other definition makes the variable non-constant.
    for a in accesses(stmt, symtab, oracle):
        if a.is_def:
            env_out[a.name] = BOTTOM
