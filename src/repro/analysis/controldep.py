"""Control dependence via postdominators (Ferrante-Ottenstein-Warren).

A statement *y* is control dependent on *x* when *x* has a successor from
which *y* is always reached (y postdominates it) but *y* does not
postdominate *x* itself.  PED displays control dependences alongside data
dependences; transformations consult them when reordering statements with
branches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.cfg import CFG, EXIT, immediate_dominators


@dataclass(frozen=True)
class ControlDep:
    #: uid of the branch statement
    source: int
    #: uid of the controlled statement
    sink: int


def control_dependences(cfg: CFG) -> list[ControlDep]:
    ipdom = immediate_dominators(cfg, entry=EXIT, backward=True)

    def pdom_chain(n: int):
        seen = set()
        cur: int | None = n
        while cur is not None and cur not in seen:
            seen.add(cur)
            yield cur
            cur = ipdom.get(cur)

    deps: set[ControlDep] = set()
    for a in cfg.nodes:
        succs = cfg.succs.get(a, set())
        if len(succs) < 2:
            continue
        a_pdoms = set(pdom_chain(a))
        for b in succs:
            # Walk b's postdominator chain up to (but excluding) ipdom(a).
            stop = ipdom.get(a)
            for n in pdom_chain(b):
                if n == stop:
                    break
                if n == a:
                    # a postdominates its own successor: loop back-edge;
                    # a is control dependent on itself -- record and stop.
                    deps.add(ControlDep(a, a))
                    break
                if n != EXIT and n in cfg.stmts:
                    deps.add(ControlDep(a, n))
    return sorted(deps, key=lambda d: (d.source, d.sink))


def control_dep_map(cfg: CFG) -> dict[int, set[int]]:
    """sink uid -> uids of branches it is control dependent on."""
    out: dict[int, set[int]] = {}
    for d in control_dependences(cfg):
        out.setdefault(d.sink, set()).add(d.source)
    return out
