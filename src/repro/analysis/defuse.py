"""Definition/use extraction and def-use chains.

Each executable statement contributes:

* ``defs``: variables it may define (scalar assignments and READ targets
  kill; array element assignments are may-defs and do not kill);
* ``uses``: variables it reads, including subscripts on both sides.

Procedure calls are handled through a pluggable :class:`SideEffectOracle`
so intraprocedural analysis can run standalone (worst-case assumptions)
and interprocedural MOD/REF/KILL analysis can sharpen it -- exactly the
refinement Section 4 of the paper credits for eliminating call-induced
dependences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fortran import ast
from ..ir.cfg import CFG, ENTRY
from ..ir.symtab import SymbolTable


@dataclass(frozen=True)
class VarAccess:
    """One variable access within a statement."""

    name: str
    is_def: bool
    #: the reference expression (VarRef/ArrayRef), or None for implied
    #: accesses such as call side effects
    ref: ast.Expr | None = None
    #: True when the access certainly happens and certainly overwrites the
    #: whole variable (used as the kill condition)
    must: bool = True


class SideEffectOracle:
    """Worst-case call side effects: every argument and every COMMON
    variable visible in the caller may be both read and written, and
    nothing is killed."""

    def call_effects(self, caller_symtab: SymbolTable, callee: str,
                     args: tuple[ast.Expr, ...]) -> tuple[set[str], set[str], set[str]]:
        """Return ``(ref_names, mod_names, kill_names)`` for a call."""
        names: set[str] = set()
        for a in args:
            for node in ast.walk_expr(a):
                if isinstance(node, (ast.VarRef, ast.ArrayRef)):
                    names.add(node.name)
        for sym in caller_symtab.symbols.values():
            if sym.storage == "common":
                names.add(sym.name)
        return set(names), set(names), set()


def _uses_in(e: ast.Expr) -> list[ast.Expr]:
    """All variable/array reads inside an expression."""
    out = []
    for node in ast.walk_expr(e):
        if isinstance(node, (ast.VarRef, ast.ArrayRef)):
            out.append(node)
    return out


def accesses(stmt: ast.Stmt, symtab: SymbolTable,
             oracle: SideEffectOracle | None = None) -> list[VarAccess]:
    """All variable accesses of one (non-structured view of a) statement."""
    oracle = oracle or SideEffectOracle()
    acc: list[VarAccess] = []

    def use(e: ast.Expr) -> None:
        for r in _uses_in(e):
            acc.append(VarAccess(r.name, is_def=False, ref=r))

    if isinstance(stmt, ast.Assign):
        use(stmt.value)
        t = stmt.target
        if isinstance(t, ast.ArrayRef):
            for sub in t.subscripts:
                use(sub)
            acc.append(VarAccess(t.name, is_def=True, ref=t, must=False))
        elif isinstance(t, ast.VarRef):
            acc.append(VarAccess(t.name, is_def=True, ref=t, must=True))
        else:  # FuncRef target should not survive resolution
            acc.append(VarAccess(getattr(t, "name", "?"), is_def=True,
                                 ref=None, must=False))
    elif isinstance(stmt, ast.DoLoop):
        use(stmt.start)
        use(stmt.end)
        if stmt.step is not None:
            use(stmt.step)
        acc.append(VarAccess(stmt.var, is_def=True, ref=None, must=True))
    elif isinstance(stmt, (ast.IfBlock,)):
        use(stmt.cond)
        for c, _ in stmt.elifs:
            use(c)
    elif isinstance(stmt, ast.LogicalIf):
        use(stmt.cond)
    elif isinstance(stmt, ast.ArithIf):
        use(stmt.expr)
    elif isinstance(stmt, ast.ComputedGoto):
        use(stmt.expr)
    elif isinstance(stmt, ast.CallStmt):
        refs, mods, kills = oracle.call_effects(symtab, stmt.name, stmt.args)
        for a in stmt.args:
            use(a)
        for name in sorted(mods):
            acc.append(VarAccess(name, is_def=True, ref=None,
                                 must=name in kills))
        for name in sorted(refs):
            if not any(x.name == name and not x.is_def for x in acc):
                acc.append(VarAccess(name, is_def=False, ref=None))
    elif isinstance(stmt, ast.ReadStmt):
        for it in stmt.items:
            if isinstance(it, ast.ArrayRef):
                for sub in it.subscripts:
                    use(sub)
                acc.append(VarAccess(it.name, is_def=True, ref=it,
                                     must=False))
            elif isinstance(it, ast.VarRef):
                acc.append(VarAccess(it.name, is_def=True, ref=it, must=True))
    elif isinstance(stmt, ast.WriteStmt):
        for it in stmt.items:
            use(it)
    elif isinstance(stmt, ast.OpaqueStmt):
        # Conservative effects of an un-lowered statement: every named
        # variable possibly read, every mod possibly written (never a kill).
        for name in stmt.refs:
            acc.append(VarAccess(name, is_def=False, ref=None))
        for name in stmt.mods:
            acc.append(VarAccess(name, is_def=True, ref=None, must=False))
    elif isinstance(stmt, ast.Return) and stmt.alt is not None:
        use(stmt.alt)
    # Function calls inside any used expression may also touch globals; we
    # treat user FuncRefs conservatively as readers of their args only,
    # which accesses() already records via use().
    return acc


def stmt_defs(stmt: ast.Stmt, symtab: SymbolTable,
              oracle: SideEffectOracle | None = None) -> set[str]:
    return {a.name for a in accesses(stmt, symtab, oracle) if a.is_def}


def stmt_uses(stmt: ast.Stmt, symtab: SymbolTable,
              oracle: SideEffectOracle | None = None) -> set[str]:
    return {a.name for a in accesses(stmt, symtab, oracle) if not a.is_def}


def stmt_must_defs(stmt: ast.Stmt, symtab: SymbolTable,
                   oracle: SideEffectOracle | None = None) -> set[str]:
    return {a.name for a in accesses(stmt, symtab, oracle)
            if a.is_def and a.must}


# --------------------------------------------------------------------------
# Reaching definitions and def-use chains over the CFG
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Definition:
    var: str
    stmt_uid: int


@dataclass
class DefUse:
    """Reaching-definition solution plus derived chains."""

    #: statement uid -> definitions reaching its entry
    reach_in: dict[int, frozenset[Definition]]
    #: (def statement uid, var) -> uids of statements using that def
    du_chains: dict[tuple[int, str], set[int]]
    #: (use statement uid, var) -> uids of defining statements
    ud_chains: dict[tuple[int, str], set[int]]
    #: per-statement def/use name sets (cached)
    defs: dict[int, set[str]]
    uses: dict[int, set[str]]
    must_defs: dict[int, set[str]]


def compute_defuse(cfg: CFG, symtab: SymbolTable,
                   oracle: SideEffectOracle | None = None) -> DefUse:
    oracle = oracle or SideEffectOracle()
    defs: dict[int, set[str]] = {}
    uses: dict[int, set[str]] = {}
    must: dict[int, set[str]] = {}
    for uid, stmt in cfg.stmts.items():
        acc = accesses(stmt, symtab, oracle)
        defs[uid] = {a.name for a in acc if a.is_def}
        uses[uid] = {a.name for a in acc if not a.is_def}
        must[uid] = {a.name for a in acc if a.is_def and a.must}

    # ENTRY generates a pseudo-definition for every symbol, modelling
    # arguments / COMMON / SAVE values flowing in.
    entry_gen = frozenset(Definition(name, ENTRY)
                          for name in symtab.symbols)

    gen: dict[int, frozenset[Definition]] = {}
    for uid in cfg.stmts:
        gen[uid] = frozenset(Definition(v, uid) for v in defs[uid])

    reach_in: dict[int, set[Definition]] = {n: set() for n in cfg.nodes}
    reach_out: dict[int, set[Definition]] = {n: set() for n in cfg.nodes}
    reach_out[ENTRY] = set(entry_gen)

    order = cfg.rpo()
    changed = True
    while changed:
        changed = False
        for n in order:
            if n == ENTRY:
                continue
            new_in: set[Definition] = set()
            for p in cfg.preds.get(n, ()):
                new_in |= reach_out[p]
            killed = must.get(n, set())
            new_out = {d for d in new_in if d.var not in killed}
            new_out |= gen.get(n, frozenset())
            if new_in != reach_in[n] or new_out != reach_out[n]:
                reach_in[n] = new_in
                reach_out[n] = new_out
                changed = True

    du: dict[tuple[int, str], set[int]] = {}
    ud: dict[tuple[int, str], set[int]] = {}
    for uid in cfg.stmts:
        for var in uses[uid]:
            for d in reach_in[uid]:
                if d.var == var:
                    du.setdefault((d.stmt_uid, var), set()).add(uid)
                    ud.setdefault((uid, var), set()).add(d.stmt_uid)

    return DefUse(
        reach_in={n: frozenset(v) for n, v in reach_in.items()},
        du_chains=du, ud_chains=ud, defs=defs, uses=uses, must_defs=must)


def compute_liveness(cfg: CFG, symtab: SymbolTable,
                     oracle: SideEffectOracle | None = None,
                     live_at_exit: set[str] | None = None
                     ) -> tuple[dict[int, set[str]], dict[int, set[str]]]:
    """Backward liveness; returns ``(live_in, live_out)`` per statement.

    ``live_at_exit`` defaults to every argument, COMMON and SAVE variable
    (their values may be observed by the caller after the unit returns).
    """
    oracle = oracle or SideEffectOracle()
    if live_at_exit is None:
        live_at_exit = {s.name for s in symtab.symbols.values()
                        if s.storage in ("argument", "common") or s.saved}
    use_map: dict[int, set[str]] = {}
    must: dict[int, set[str]] = {}
    for uid, stmt in cfg.stmts.items():
        acc = accesses(stmt, symtab, oracle)
        use_map[uid] = {a.name for a in acc if not a.is_def}
        must[uid] = {a.name for a in acc if a.is_def and a.must}

    live_in: dict[int, set[str]] = {n: set() for n in cfg.nodes}
    live_out: dict[int, set[str]] = {n: set() for n in cfg.nodes}
    from ..ir.cfg import EXIT
    live_in[EXIT] = set(live_at_exit)

    changed = True
    while changed:
        changed = False
        for n in reversed(cfg.rpo()):
            if n == EXIT:
                continue
            new_out: set[str] = set()
            for s in cfg.succs.get(n, ()):
                new_out |= live_in[s]
            new_in = use_map.get(n, set()) | (new_out - must.get(n, set()))
            if new_out != live_out[n] or new_in != live_in[n]:
                live_out[n] = new_out
                live_in[n] = new_in
                changed = True
    return live_in, live_out
