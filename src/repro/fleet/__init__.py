"""Batch auto-parallelization fleet with checkpoint/resume and
relative-debugging divergence bisection.

The fleet runs the whole PED pipeline -- parse, dependence analysis,
auto-parallelization, lint, serial/parallel verification, measurement --
over a corpus of programs, headlessly and fault-tolerantly:

* :mod:`repro.fleet.pipeline` -- the per-program stage pipeline;
* :mod:`repro.fleet.queue` -- retry/backoff/quarantine scheduling over
  :mod:`repro.perf.pool`, with pool and execution-tier degradation;
* :mod:`repro.fleet.checkpoint` -- the durable completion journal that
  makes a killed fleet resumable with zero re-execution;
* :mod:`repro.fleet.bisect` -- the relative debugger that turns "final
  state differs" into "first divergent statement";
* :mod:`repro.fleet.report` -- the canonical machine-readable report.

``python -m repro.fleet`` is the CLI.
"""

from .bisect import Divergence, find_divergence
from .checkpoint import CheckpointJournal, fingerprint_of
from .pipeline import MODES, PipelineOptions, StageResult, \
    run_program_pipeline
from .queue import ENGINE_LADDER, POOL_LADDER, FleetOptions, FleetRunner, \
    run_fleet
from .report import FleetReport

__all__ = [
    "Divergence", "find_divergence",
    "CheckpointJournal", "fingerprint_of",
    "MODES", "PipelineOptions", "StageResult", "run_program_pipeline",
    "ENGINE_LADDER", "POOL_LADDER", "FleetOptions", "FleetRunner",
    "run_fleet",
    "FleetReport",
]
