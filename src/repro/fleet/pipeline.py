"""Per-program fleet pipeline: parse -> analyze -> auto-parallelize ->
lint -> verify -> measure -> (on divergence) bisect.

One :func:`run_program_pipeline` call is one fleet task.  It is a
module-level function over picklable arguments so the queue can dispatch
it through a process pool, and it returns a plain JSON-able dict so
results survive the trip back.  Every stage is fault-isolated: a stage
that raises is recorded (``ok=False`` with the error text) and only the
stages that depend on its product are skipped -- a program whose
dependence analysis dies still gets linted, one whose measurement dies
still reports its divergence.  The :mod:`repro.testing.faults` hook
``fleet_stage`` fires *outside* the isolation, so an injected fault
escalates to a task failure and exercises the queue's retry path.

Modes
-----
``seeded``   the lint-corpus seeded variant of the program (its PARALLEL
             marks and defects included) -- the relative-debugging
             showcase;
``auto``     the pristine corpus program, parallelized by
             :func:`repro.ped.autopar.auto_parallelize`;
``plain``    the pristine program, analysis and lint only.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field

from ..corpus import PROGRAMS
from ..interp.relative import run_to_sync
from ..interp.verify import compare_runs, run_program
from ..lint import lint_program
from ..testing import faults

__all__ = ["MODES", "STAGES", "PipelineOptions", "StageResult",
           "run_program_pipeline"]

MODES = ("seeded", "auto", "plain")

STAGES = ("parse", "analyze", "autopar", "explore", "lint", "verify",
          "measure", "bisect")


@dataclass
class PipelineOptions:
    """Picklable per-task knobs (one mode/tier choice per attempt)."""

    mode: str = "auto"
    #: emulated worker count / schedule for verify + bisect
    workers: int = 4
    schedule: str = "static"
    #: execution tier for the measure stage (degraded by the queue)
    engine: str = "compiled"
    rtol: float = 1e-9
    atol: float = 1e-8
    force_reassociation: bool = False
    max_steps: int = 5_000_000
    #: skip the bisect stage (cheap smoke runs)
    bisect: bool = True
    #: replace the single autopar sweep with the parallel-worlds
    #: explorer (auto mode only): race candidate transform sequences
    #: and adopt the best byte-identical one
    explore: bool = False
    max_worlds: int = 8

    def to_dict(self) -> dict:
        return {
            "mode": self.mode, "workers": self.workers,
            "schedule": self.schedule, "engine": self.engine,
            "rtol": self.rtol, "atol": self.atol,
            "force_reassociation": self.force_reassociation,
            "max_steps": self.max_steps, "bisect": self.bisect,
            "explore": self.explore, "max_worlds": self.max_worlds,
        }


@dataclass
class StageResult:
    stage: str
    ok: bool = True
    skipped: bool = False
    error: str = ""
    elapsed: float = 0.0

    def to_dict(self) -> dict:
        return {"stage": self.stage, "ok": self.ok,
                "skipped": self.skipped, "error": self.error,
                "elapsed": self.elapsed}


class _Pipeline:
    def __init__(self, name: str, opts: PipelineOptions):
        self.name = name
        self.opts = opts
        self.stages: list[StageResult] = []
        self.record: dict = {
            "program": name, "mode": opts.mode, "engine": opts.engine,
            "workers": opts.workers, "schedule": opts.schedule,
            "status": "ok", "parallel_loops": [], "impediments": 0,
            "degraded_analyses": 0, "lint": [], "diverged": False,
            "divergence": None, "virtual_speedup": None,
            "worlds": None,
        }
        # stage products
        self.source = None          # sequential reference source
        self.program = None         # program under test (with marks)
        self.assertions = None

    def stage(self, name: str, fn, needs=()) -> StageResult:
        """Run one stage with fault isolation; injected faults escalate."""
        faults.check("fleet_stage", program=self.name, stage=name)
        res = StageResult(name)
        self.stages.append(res)
        if any(not s.ok for s in self.stages if s.stage in needs):
            res.ok = False
            res.skipped = True
            res.error = "skipped: upstream stage failed"
            return res
        t0 = time.perf_counter()
        try:
            fn()
        except Exception as e:       # noqa: BLE001 -- isolation boundary
            res.ok = False
            res.error = f"{type(e).__name__}: {e}"
            self.record["status"] = "error"
        finally:
            res.elapsed = time.perf_counter() - t0
        return res

    # -- stages ---------------------------------------------------------------

    def parse(self) -> None:
        if self.opts.mode == "seeded":
            from ..lint.seeds import SEEDS, seeded_program, seeded_source
            if self.name in SEEDS:
                self.program, self.assertions = seeded_program(self.name)
                par_source = seeded_source(self.name)
            else:
                par_source = _source_of(self.name)
                self.program = _parse(par_source)
            # serial reference: same statements, PARALLEL marks dropped
            self.source = re.sub(r"\bPARALLEL\s+DO\b", "DO", par_source)
        else:
            self.source = _source_of(self.name)
            self.program = _parse(self.source)

    def analyze(self) -> None:
        # seeded mode takes the marks as given (the whole point is to
        # debug what the user already did); auto/plain build a session
        if self.opts.mode == "seeded":
            self.record["parallel_loops"] = _marked_loops(self.program)
            return
        from ..ped.reporting import program_stats
        from ..ped.session import PedSession
        self.session = PedSession(self.source)
        health = self.session.health()
        self.record["degraded_analyses"] = \
            len(health.degraded_loops) + len(health.failed_units)
        self.record["stats"] = program_stats(self.session)

    def autopar(self) -> None:
        if self.opts.mode != "auto" or self.opts.explore:
            return   # the explore stage supersedes the single sweep
        from ..ped.autopar import auto_parallelize
        report = auto_parallelize(self.session)
        self.program = self.session.program
        health = self.session.health()
        self.record["parallel_loops"] = list(report.parallelized)
        self.record["impediments"] = len(report.impediments)
        self.record["degraded_analyses"] = \
            len(health.degraded_loops) + len(health.failed_units)
        self.record["autopar"] = report.to_json() \
            if hasattr(report, "to_json") else None

    def explore(self) -> None:
        if self.opts.mode != "auto" or not self.opts.explore:
            return
        from ..worlds import parallel_loop_ids
        o = self.opts
        rep = self.session.explore(
            inputs=_inputs(self.name), max_worlds=o.max_worlds,
            workers=o.workers, schedule=o.schedule,
            engines=(o.engine,), adopt=True)
        if rep.adopt_error:
            raise RuntimeError(f"winner adoption failed: "
                               f"{rep.adopt_error}")
        self.program = self.session.program
        health = self.session.health()
        self.record["parallel_loops"] = \
            parallel_loop_ids(self.session.program)
        self.record["impediments"] = rep.impediments
        self.record["degraded_analyses"] = \
            len(health.degraded_loops) + len(health.failed_units)
        # canonical (timing-free) form: checkpoint resume must replay
        # this record byte-identically
        self.record["worlds"] = rep.to_json()

    def lint(self) -> None:
        src = self.source if self.opts.mode != "seeded" else None
        diags = lint_program(self.program, self.assertions, source=src,
                             include_suppressed=False)
        self.record["lint"] = [
            f"{d.rule}:{d.unit}:{d.line}" for d in diags]

    def verify(self) -> None:
        if self.opts.mode == "plain" \
                or not self.record["parallel_loops"]:
            return
        o = self.opts
        serial = run_to_sync(self.program, _inputs(self.name),
                             adversarial=False, max_steps=o.max_steps)
        adv = run_to_sync(self.program, _inputs(self.name),
                          adversarial=True, workers=o.workers,
                          schedule=o.schedule,
                          force_reassociation=o.force_reassociation,
                          max_steps=o.max_steps)
        diff = compare_runs(serial, adv, rtol=o.rtol, atol=o.atol)
        self.record["diverged"] = bool(diff)
        if diff:
            self.record["verify_diffs"] = diff.to_json()

    def measure(self) -> None:
        if self.record["diverged"]:
            return   # a racy program's speedup is meaningless
        o = self.opts
        seq = run_program(self.source, inputs=_inputs(self.name),
                          engine=o.engine, max_steps=o.max_steps)
        par = run_program(self.program, inputs=_inputs(self.name),
                          engine=o.engine, max_steps=o.max_steps)
        if par.clock > 0:
            self.record["virtual_speedup"] = round(
                seq.clock / par.clock, 6)

    def bisect(self) -> None:
        if not self.record["diverged"] or not self.opts.bisect:
            return
        from .bisect import find_divergence
        o = self.opts
        div = find_divergence(
            self.program, _inputs(self.name), workers=o.workers,
            schedule=o.schedule, rtol=o.rtol, atol=o.atol,
            force_reassociation=o.force_reassociation,
            max_steps=o.max_steps)
        if div is not None:
            self.record["divergence"] = div.to_json()

    # -- driver ---------------------------------------------------------------

    def run(self) -> dict:
        t0 = time.perf_counter()
        self.stage("parse", self.parse)
        self.stage("analyze", self.analyze, needs=("parse",))
        self.stage("autopar", self.autopar, needs=("parse", "analyze"))
        self.stage("explore", self.explore, needs=("parse", "analyze"))
        self.stage("lint", self.lint, needs=("parse",))
        self.stage("verify", self.verify,
                   needs=("parse", "autopar", "explore"))
        self.stage("measure", self.measure,
                   needs=("parse", "autopar", "explore", "verify"))
        self.stage("bisect", self.bisect, needs=("verify",))
        self.record["stages"] = [s.to_dict() for s in self.stages]
        self.record["elapsed"] = time.perf_counter() - t0
        return self.record


def _parse(source: str):
    from ..ir.program import AnalyzedProgram
    return AnalyzedProgram.from_source(source)


def _source_of(name: str) -> str:
    """Program source by fleet name.

    ``synth:<seed>:<index>`` names are *regenerated* here, inside the
    worker -- the work item that crosses the process boundary is just
    the name, never a program object."""
    from ..corpus import synth
    if name.startswith(synth.NAME_PREFIX):
        return synth.source_for_name(name)
    return PROGRAMS[name].source


def _marked_loops(program) -> list[str]:
    from ..fortran import ast
    out = []
    for uname, uir in program.units.items():
        for s, _ in ast.walk_stmts(uir.unit.body):
            if isinstance(s, ast.DoLoop) and s.parallel:
                out.append(f"{uname}:line {s.line}")
    return out


def _inputs(name: str) -> list:
    cp = PROGRAMS.get(name)
    return list(cp.inputs) if cp is not None else []


def run_program_pipeline(name: str, options: dict | None = None) -> dict:
    """Run the full pipeline for one corpus program; returns its record.

    ``options`` is :meth:`PipelineOptions.to_dict` output (kept as a
    dict so the call crosses process boundaries untouched).
    """
    from ..corpus import synth
    if name not in PROGRAMS and not name.startswith(synth.NAME_PREFIX):
        raise ValueError(f"unknown corpus program {name!r}; "
                         f"known: {', '.join(PROGRAMS)} or "
                         f"synth:<seed>:<index>")
    opts = PipelineOptions(**(options or {}))
    if opts.mode not in MODES:
        raise ValueError(f"unknown mode {opts.mode!r}; known: "
                         f"{', '.join(MODES)}")
    return _Pipeline(name, opts).run()
