"""Machine-readable fleet report.

:meth:`FleetReport.to_json` is the fleet's contract with CI and with the
checkpoint/resume test: with ``include_timing=False`` (the default) it
contains only deterministic fields -- virtual speedups, lint ids,
parallelized loops, divergence localizations, attempt counts -- so a run
resumed from a checkpoint serializes byte-identically to the same run
uninterrupted.  Wall-clock timings are additive (``include_timing=True``)
and never part of the canonical form.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["FleetReport"]

#: wall-clock keys stripped from the canonical form, wherever they nest
_TIMING_KEYS = ("elapsed", "wall", "stage_times")


def _strip_timing(obj):
    if isinstance(obj, dict):
        return {k: _strip_timing(v) for k, v in obj.items()
                if k not in _TIMING_KEYS}
    if isinstance(obj, list):
        return [_strip_timing(v) for v in obj]
    return obj


@dataclass
class FleetReport:
    """Aggregated outcome of one fleet run."""

    mode: str
    options: dict = field(default_factory=dict)
    #: per-program terminal records, in corpus order
    programs: list = field(default_factory=list)
    #: scheduling outcome (from the queue)
    retries: int = 0
    timeouts: int = 0
    quarantined: list = field(default_factory=list)
    resumed: list = field(default_factory=list)
    degradations: list = field(default_factory=list)
    elapsed: float = 0.0

    # -- derived ---------------------------------------------------------------

    @property
    def completed(self) -> list:
        return [r for r in self.programs
                if r.get("status") != "quarantined"]

    @property
    def diverged(self) -> list:
        return [r for r in self.programs if r.get("diverged")]

    def ok(self) -> bool:
        """Strict-mode gate: everything completed, nothing quarantined,
        no program's pipeline errored."""
        return not self.quarantined and all(
            r.get("status") == "ok" for r in self.programs)

    # -- serialization ---------------------------------------------------------

    def to_json(self, include_timing: bool = False) -> dict:
        out = {
            "fleet": "repro-fleet-report-v1",
            "mode": self.mode,
            "options": dict(self.options),
            "programs": [dict(r) for r in self.programs],
            "retries": self.retries,
            "timeouts": self.timeouts,
            "quarantined": list(self.quarantined),
            "degradations": list(self.degradations),
            "totals": {
                "programs": len(self.programs),
                "completed": len(self.completed),
                "diverged": len(self.diverged),
                "quarantined": len(self.quarantined),
            },
        }
        if include_timing:
            out["elapsed"] = self.elapsed
            out["resumed"] = list(self.resumed)
            return out
        return _strip_timing(out)

    def dumps(self, include_timing: bool = False) -> str:
        """Canonical serialization (sorted keys, stable separators): the
        byte-identity target of the resume test."""
        return json.dumps(self.to_json(include_timing=include_timing),
                          sort_keys=True, indent=1)

    # -- human rendering -------------------------------------------------------

    def describe(self) -> str:
        lines = [f"fleet report: {len(self.programs)} program(s), "
                 f"mode {self.mode}"]
        for r in self.programs:
            name = r.get("program", "?")
            status = r.get("status", "?")
            bits = [f"status {status}"]
            if r.get("parallel_loops"):
                bits.append(f"{len(r['parallel_loops'])} parallel "
                            f"loop(s)")
            if r.get("virtual_speedup"):
                bits.append(f"speedup {r['virtual_speedup']:.2f}x")
            if r.get("lint"):
                bits.append(f"lint {', '.join(r['lint'])}")
            if r.get("attempts", 1) > 1:
                bits.append(f"attempts {r['attempts']}")
            if name in self.resumed:
                bits.append("resumed")
            lines.append(f"  {name:<10} {'; '.join(bits)}")
            div = r.get("divergence")
            if r.get("diverged"):
                if div:
                    lines.append(
                        f"{'':13}diverged: {div['unit']} line "
                        f"{div['line']} ({div['variable']}), sync point "
                        f"{div['sync_index']}"
                        + (f" -- {div['race']}" if div.get("race")
                           else ""))
                else:
                    lines.append(f"{'':13}diverged (not localized)")
        tail = []
        if self.retries:
            tail.append(f"retries {self.retries}")
        if self.timeouts:
            tail.append(f"timeouts {self.timeouts}")
        if self.quarantined:
            tail.append(f"quarantined {', '.join(self.quarantined)}")
        if self.degradations:
            tail.append(f"degradations {len(self.degradations)}")
        if self.resumed:
            tail.append(f"resumed {len(self.resumed)}")
        if tail:
            lines.append("  [" + "; ".join(tail) + "]")
        return "\n".join(lines)
