"""Relative-debugging divergence bisection.

When a fleet run observes that a program's parallel execution differs
from its serial execution, :func:`compare_runs` alone can only say
*that* final state differs ("common:V mismatch at (1,1)").  This module
answers *where it first went wrong*: a binary search over the aligned
sync points of :mod:`repro.interp.relative` finds the smallest sync
index at which the two executions' observable states already differ,
i.e. the first divergent statement.  When that statement is itself a
PARALLEL DO join, the shadow access log refines the report down to the
racy statement and variable inside the loop body.

Cost: two full runs plus ``2 * ceil(log2(syncs))`` partial runs, each
halted at its probe point -- tens of runs even for the ~50k-sync corpus
programs, every one deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fortran import ast
from ..interp.relative import run_to_sync
from ..interp.shadow import dynamic_races, log_for, races_under, run_shadow
from ..interp.verify import compare_runs

__all__ = ["Divergence", "find_divergence"]


@dataclass
class Divergence:
    """The first point where parallel execution observably departs from
    serial execution."""

    unit: str
    #: source line of the first divergent statement
    line: int
    #: first observable key that differs there (e.g. ``common:V``)
    first_diff_key: str
    #: variable named by the diff key / race report
    variable: str
    #: 1-based sync index of the divergence
    sync_index: int
    #: "statement" (a plain statement after the racy loop consumed a
    #: stale value) or "parallel_do" (the loop join itself diverged)
    kind: str
    statement: str = ""
    #: enclosing/diverging PARALLEL DO, when one was identified
    loop_line: int | None = None
    loop_var: str = ""
    #: shadow-refined race description (kind + cells + iterations)
    race: str = ""
    race_kind: str = ""
    #: final-state differences of the two full runs
    diffs: list[str] = field(default_factory=list)
    #: partial executions spent locating the point
    probes: int = 0

    def describe(self) -> str:
        head = (f"first divergence at {self.unit} line {self.line} "
                f"(sync point {self.sync_index}): {self.statement}")
        parts = [head, f"  first differing observable: "
                       f"{self.first_diff_key} (variable {self.variable})"]
        if self.loop_line is not None:
            parts.append(f"  parallel loop: DO {self.loop_var} at "
                         f"{self.unit} line {self.loop_line}")
        if self.race:
            parts.append(f"  shadow: {self.race}")
        return "\n".join(parts)

    def to_json(self) -> dict:
        return {
            "unit": self.unit, "line": self.line,
            "first_diff_key": self.first_diff_key,
            "variable": self.variable, "sync_index": self.sync_index,
            "kind": self.kind, "statement": self.statement,
            "loop_line": self.loop_line, "loop_var": self.loop_var,
            "race": self.race, "race_kind": self.race_kind,
            "diffs": list(self.diffs), "probes": self.probes,
        }


def _var_of_key(key: str | None) -> str:
    if not key:
        return ""
    return key.split(":", 1)[1] if ":" in key else key


def _writer_line(program, unit: str, loop_line: int,
                 var: str) -> int | None:
    """Line of the first statement inside the PARALLEL DO at
    ``unit:loop_line`` that assigns ``var``."""
    uir = program.units.get(unit.upper())
    if uir is None:
        return None
    for s, _ in ast.walk_stmts(uir.unit.body):
        if isinstance(s, ast.DoLoop) and s.parallel and s.line == loop_line:
            for stmt, _ in ast.walk_stmts(s.body):
                if isinstance(stmt, ast.Assign) \
                        and stmt.target.name.upper() == var.upper():
                    return stmt.line
    return None


def find_divergence(program, inputs=(), workers: int = 4,
                    schedule: str = "static", rtol: float = 1e-9,
                    atol: float = 1e-8,
                    force_reassociation: bool = False,
                    max_steps: int = 5_000_000) -> Divergence | None:
    """Bisect to the first statement where the adversarial parallel
    execution of ``program`` observably differs from serial execution.

    Returns None when the two executions agree (to ``rtol``) -- either
    the parallelization is sound or, as with spec77's fixed-point
    recurrence, the seeded values mask the race dynamically.
    """
    def runs(halt_at=None):
        s = run_to_sync(program, inputs, adversarial=False,
                        halt_at=halt_at, max_steps=max_steps)
        a = run_to_sync(program, inputs, adversarial=True,
                        halt_at=halt_at, workers=workers,
                        schedule=schedule,
                        force_reassociation=force_reassociation,
                        max_steps=max_steps)
        return s, a

    serial, adv = runs()
    final = compare_runs(serial, adv, rtol=rtol, atol=atol)
    if not final:
        return None

    n = min(serial.sync_count, adv.sync_count)
    probes = 0

    def diverged(k: int):
        nonlocal probes
        probes += 1
        s, a = runs(halt_at=k)
        d = compare_runs(s, a, rtol=rtol, atol=atol)
        return (d if d else None), (a.halted or s.halted)

    # establish the upper bound: state at the last aligned sync point.
    # (If even that agrees, the divergence only materializes in the
    # final COMMON flush at RETURN/STOP -- report it at sync n.)
    top_diff, top_rec = diverged(n)
    if top_diff is None:
        rec = top_rec
        return Divergence(
            unit=rec.unit if rec else "?", line=rec.line if rec else 0,
            first_diff_key=final.first_key or "",
            variable=_var_of_key(final.first_key), sync_index=n,
            kind="final-flush", statement=rec.describe() if rec else "",
            diffs=list(final), probes=probes)

    # binary search: smallest k with diverged(k); invariant
    # diverged(lo-1) false, diverged(hi) true
    lo, hi = 1, n
    best_diff, best_rec = top_diff, top_rec
    while lo < hi:
        mid = (lo + hi) // 2
        d, rec = diverged(mid)
        if d is not None:
            hi = mid
            best_diff, best_rec = d, rec
        else:
            lo = mid + 1

    rec = best_rec
    key = best_diff.first_key or final.first_key or ""
    variable = _var_of_key(key)
    div = Divergence(
        unit=rec.unit, line=rec.line, first_diff_key=key,
        variable=variable, sync_index=hi,
        kind="parallel_do" if rec.kind == "parallel_do" else "statement",
        statement=rec.describe(), diffs=list(final), probes=probes)

    if rec.kind == "parallel_do":
        div.loop_line, div.loop_var = rec.line, rec.var
        _refine_with_shadow(div, program, inputs, workers, schedule,
                            max_steps, rename_line=True)
    elif hi > 1:
        # a clean plain statement often diverges because the join right
        # before it lost a race; peek one sync point back and, if that
        # was a PARALLEL DO, name it (slab2d: the post-loop read of a
        # privatized scalar; pueblo3d: the PRINT after the reassociated
        # reduction)
        probes += 1
        peek = run_to_sync(program, inputs, adversarial=False,
                           halt_at=hi - 1, max_steps=max_steps)
        prev = peek.halted
        if prev is not None and prev.kind == "parallel_do" \
                and prev.unit == rec.unit:
            div.loop_line, div.loop_var = prev.line, prev.var
            _refine_with_shadow(div, program, inputs, workers, schedule,
                                max_steps, rename_line=False)
    div.probes = probes
    return div


def _refine_with_shadow(div: Divergence, program, inputs, workers: int,
                        schedule: str, max_steps: int,
                        rename_line: bool = True) -> None:
    """Name the racy statement inside a diverging PARALLEL DO via the
    shadow access log."""
    try:
        shadow = run_shadow(program, list(inputs), max_steps=max_steps)
    except Exception:
        return
    log = log_for(shadow, div.unit, div.loop_line or div.line)
    if log is None:
        return
    races = races_under(log, workers, schedule, include_reductions=True) \
        or dynamic_races(log, include_reductions=True,
                         require_observed_ww=False)
    if not races:
        return
    # prefer the race on the variable the diff named
    race = next((r for r in races
                 if r.var.upper() == div.variable.upper()), races[0])
    div.race, div.race_kind = race.describe(), race.kind
    if not div.variable:
        div.variable = race.var
    if rename_line:
        line = _writer_line(program, div.unit,
                            div.loop_line or div.line, race.var)
        if line is not None:
            div.line = line
