"""On-disk checkpoint journal: a killed fleet resumes without re-running
completed programs.

The journal is append-only JSONL.  The first line is a header binding
the journal to a *fingerprint* of the work (program list + every option
that affects results); each following line is one program's terminal
record, written only after the program's pipeline finished (success or
quarantine) and made durable with flush+fsync before the fleet moves
on.  Loading is tolerant by construction:

* a missing file is an empty journal;
* a fingerprint mismatch (different corpus/options) discards the stale
  journal rather than resuming into wrong results;
* a torn final line -- the process died mid-append -- is dropped, so the
  worst case of any kill point is re-running one program.

The ``fleet_checkpoint`` fault point fires *before* the append: arming
it with ``exc=KeyboardInterrupt`` simulates a kill in the window where
work finished but was not yet durable, the exact window the resume test
must cover.
"""

from __future__ import annotations

import hashlib
import json
import os

from ..testing import faults

__all__ = ["CheckpointJournal", "fingerprint_of"]

_MAGIC = "repro-fleet-journal-v1"


def fingerprint_of(programs, options: dict) -> str:
    """Stable digest of the work a journal is valid for.

    Only result-affecting inputs participate: the program list and the
    pipeline options.  Scheduling knobs (fleet worker count, pool mode,
    timeouts, backoff) are deliberately excluded -- resuming a 4-worker
    run with 1 worker must reuse its completed programs.
    """
    payload = json.dumps({"programs": sorted(programs),
                          "options": options}, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class CheckpointJournal:
    """Append-only completion journal for one fleet run."""

    def __init__(self, path: str):
        self.path = path
        self._fh = None

    # -- reading ---------------------------------------------------------------

    def load(self, fingerprint: str) -> dict[str, dict]:
        """Completed records valid under ``fingerprint``: program name ->
        terminal record.  Returns {} for missing/stale/foreign journals."""
        try:
            with open(self.path, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except (FileNotFoundError, OSError):
            return {}
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return {}
        if header.get("journal") != _MAGIC \
                or header.get("fingerprint") != fingerprint:
            return {}
        out: dict[str, dict] = {}
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                break   # torn tail: everything after it is unreadable
            name = rec.get("program")
            if isinstance(name, str):
                out[name] = rec     # last record per program wins
        return out

    # -- writing ---------------------------------------------------------------

    def start(self, fingerprint: str, keep: dict[str, dict]) -> None:
        """Open for appending.  ``keep`` is the loaded record set being
        resumed; a stale/foreign/torn journal is rewritten from it so the
        file is always internally consistent afterwards."""
        valid = self.load(fingerprint)
        if valid.keys() == keep.keys() and os.path.exists(self.path):
            self._fh = open(self.path, "a", encoding="utf-8")
            return
        self._fh = open(self.path, "w", encoding="utf-8")
        self._write({"journal": _MAGIC, "fingerprint": fingerprint})
        for rec in keep.values():
            self._write(rec)

    def append(self, record: dict) -> None:
        """Durably journal one terminal record (fsync before return)."""
        faults.check("fleet_checkpoint", program=record.get("program"))
        if self._fh is None:
            raise RuntimeError("journal not started")
        self._write(record)

    def _write(self, obj: dict) -> None:
        self._fh.write(json.dumps(obj, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
