"""Fault-tolerant fleet queue: batches programs onto the analysis pool
with per-task timeouts, bounded exponential-backoff retry, poison-task
quarantine, execution-tier degradation, and checkpointed resume.

The control loop is deliberately simple -- rounds of "dispatch every
ready task, then settle each result":

* a task that returns a record **completes**: its record is made durable
  in the checkpoint journal before the fleet proceeds;
* a task that fails (crash or timeout) is **retried** after
  ``backoff_base * 2**(attempt-1)`` seconds (capped), up to
  ``max_attempts`` total attempts;
* a task whose attempts are exhausted is **quarantined**: it gets a
  terminal ``status="quarantined"`` record (also journaled) and stops
  poisoning the batch;
* repeated infrastructure failures walk two degradation ladders --
  the dispatch pool (process -> thread -> serial, on timeouts and
  worker deaths) and the failing program's execution tier
  (vector -> compiled -> tree, on its next attempt) -- trading speed
  for survival instead of aborting the fleet.

The sleeper and the pool entry point are injectable so the test suite
drives retry/backoff deterministically without real waiting.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field

from ..corpus import ORDER, PROGRAMS
from ..perf import counters
from ..perf.pool import TaskFailure, run_tasks
from ..testing import faults
from .checkpoint import CheckpointJournal, fingerprint_of
from .pipeline import PipelineOptions, run_program_pipeline
from .report import FleetReport

__all__ = ["FleetOptions", "FleetRunner", "run_fleet",
           "POOL_LADDER", "ENGINE_LADDER"]

#: dispatch-pool degradation ladder (left = fastest, right = safest)
POOL_LADDER = ("process", "thread", "serial")

#: execution-tier degradation ladder for a repeatedly failing program
ENGINE_LADDER = ("vector", "compiled", "tree")


def _is_synth_name(name: str) -> bool:
    """True for well-formed generative-corpus names (synth:<seed>:<i>)."""
    from ..corpus import synth
    try:
        synth.parse_name(name)
    except ValueError:
        return False
    return True


@dataclass
class FleetOptions:
    """Scheduling knobs (result-affecting ones live on the pipeline)."""

    #: concurrent pipeline tasks per batch
    fleet_workers: int = 2
    #: initial dispatch pool mode; degraded down :data:`POOL_LADDER`
    pool: str = "thread"
    #: per-task result-wait timeout in seconds (None = wait forever)
    timeout: float | None = 120.0
    #: total attempts per program before quarantine
    max_attempts: int = 3
    #: first retry delay; doubles per subsequent attempt
    backoff_base: float = 0.25
    #: longest single backoff sleep
    backoff_cap: float = 8.0


@dataclass
class _TaskState:
    name: str
    attempts: int = 0
    engine: str = "compiled"
    last_error: str = ""
    timed_out: bool = False
    failures: list = field(default_factory=list)


class FleetRunner:
    """One fleet run over a list of corpus programs."""

    def __init__(self, programs=None, pipeline: PipelineOptions | None = None,
                 options: FleetOptions | None = None,
                 checkpoint: str | None = None,
                 sleeper=time.sleep, log=None):
        names = list(programs) if programs else list(ORDER)
        unknown = [n for n in names
                   if n not in PROGRAMS and not _is_synth_name(n)]
        if unknown:
            raise ValueError(f"unknown corpus program(s): "
                             f"{', '.join(unknown)}")
        self.names = names
        self.pipeline = pipeline or PipelineOptions()
        self.options = options or FleetOptions()
        self.checkpoint_path = checkpoint
        self.sleeper = sleeper
        self.log = log or (lambda msg: None)
        self._pool_level = max(0, POOL_LADDER.index(self.options.pool)) \
            if self.options.pool in POOL_LADDER else 1

    # -- degradation ladders ---------------------------------------------------

    def _degrade_pool(self, report: FleetReport, why: str) -> None:
        if self._pool_level + 1 < len(POOL_LADDER):
            frm = POOL_LADDER[self._pool_level]
            self._pool_level += 1
            to = POOL_LADDER[self._pool_level]
            counters.bump("fleet_degradations")
            report.degradations.append(
                {"kind": "pool", "from": frm, "to": to, "why": why})
            self.log(f"fleet: degrading dispatch pool {frm} -> {to} "
                     f"({why})")

    def _degrade_engine(self, st: _TaskState, report: FleetReport,
                        why: str) -> None:
        if st.engine in ENGINE_LADDER:
            i = ENGINE_LADDER.index(st.engine)
            if i + 1 < len(ENGINE_LADDER):
                counters.bump("fleet_degradations")
                report.degradations.append(
                    {"kind": "engine", "program": st.name,
                     "from": st.engine, "to": ENGINE_LADDER[i + 1],
                     "why": why})
                st.engine = ENGINE_LADDER[i + 1]

    # -- main loop -------------------------------------------------------------

    def run(self) -> FleetReport:
        t_start = time.perf_counter()
        opts, pipe = self.options, self.pipeline
        report = FleetReport(mode=pipe.mode, options=pipe.to_dict())
        completed: dict[str, dict] = {}

        journal = None
        if self.checkpoint_path:
            fp = fingerprint_of(self.names, pipe.to_dict())
            journal = CheckpointJournal(self.checkpoint_path)
            prior = journal.load(fp)
            for name in self.names:
                if name in prior:
                    completed[name] = prior[name]
                    report.resumed.append(name)
                    counters.bump("fleet_resumed")
            journal.start(fp, {n: completed[n] for n in self.names
                               if n in completed})
            if report.resumed:
                self.log(f"fleet: resuming, {len(report.resumed)} "
                         f"program(s) already complete")

        states = {name: _TaskState(name, engine=pipe.engine)
                  for name in self.names}
        pending = [n for n in self.names if n not in completed]
        batch_no = 0
        try:
            while pending:
                batch = pending[:max(1, opts.fleet_workers)]
                batch_no += 1
                faults.check("fleet_dispatch", batch=batch_no)
                results = self._dispatch(batch, states, report)
                still = pending[len(batch):]
                retry_after = 0.0
                for name, result in zip(batch, results):
                    st = states[name]
                    st.attempts += 1
                    counters.bump("fleet_tasks")
                    if not isinstance(result, TaskFailure):
                        result["attempts"] = st.attempts
                        result["engine"] = st.engine
                        completed[name] = result
                        counters.bump("fleet_completed")
                        if result.get("diverged"):
                            counters.bump("fleet_divergences")
                        if journal is not None:
                            journal.append(result)
                        continue
                    # -- failure path -------------------------------------
                    st.last_error = repr(result)
                    st.timed_out = result.timed_out
                    st.failures.append(
                        f"attempt {st.attempts}: "
                        f"{type(result.error).__name__}: {result.error}")
                    if result.timed_out:
                        counters.bump("fleet_timeouts")
                        report.timeouts += 1
                        self._degrade_pool(report,
                                           f"{name} timed out")
                    else:
                        self._degrade_pool(
                            report, f"{name} crashed: "
                            f"{type(result.error).__name__}")
                    if st.attempts >= opts.max_attempts:
                        rec = self._quarantine_record(st)
                        completed[name] = rec
                        counters.bump("fleet_quarantined")
                        report.quarantined.append(name)
                        if journal is not None:
                            journal.append(rec)
                        self.log(f"fleet: quarantined {name} after "
                                 f"{st.attempts} attempt(s)")
                        continue
                    counters.bump("fleet_retries")
                    report.retries += 1
                    self._degrade_engine(st, report, "retry")
                    delay = min(opts.backoff_cap,
                                opts.backoff_base
                                * (2 ** (st.attempts - 1)))
                    retry_after = max(retry_after, delay)
                    still.append(name)
                if retry_after > 0:
                    self.sleeper(retry_after)
                pending = still
        finally:
            if journal is not None:
                journal.close()

        report.programs = [completed[n] for n in self.names
                           if n in completed]
        report.elapsed = time.perf_counter() - t_start
        return report

    # -- pieces ----------------------------------------------------------------

    def _dispatch(self, batch, states, report: FleetReport) -> list:
        mode = POOL_LADDER[self._pool_level]
        tasks = []
        for name in batch:
            d = self.pipeline.to_dict()
            d["engine"] = states[name].engine
            tasks.append(functools.partial(run_program_pipeline, name, d))
        # one worker per task: the result-wait timeout then bounds each
        # task's own run time, not its queueing delay (see run_tasks)
        return run_tasks(
            tasks, parallel=(mode != "serial" and len(tasks) > 1),
            mode=None if mode == "serial" else mode,
            max_workers=len(tasks), picklable=True, contexts=list(batch),
            on_error="return",
            timeout=self.options.timeout if mode != "serial" else None)

    def _quarantine_record(self, st: _TaskState) -> dict:
        return {
            "program": st.name, "mode": self.pipeline.mode,
            "status": "quarantined", "engine": st.engine,
            "attempts": st.attempts, "timed_out": st.timed_out,
            "failures": list(st.failures),
            "parallel_loops": [], "impediments": 0,
            "degraded_analyses": 0, "lint": [], "diverged": False,
            "divergence": None, "virtual_speedup": None,
        }


def run_fleet(programs=None, pipeline: PipelineOptions | None = None,
              options: FleetOptions | None = None,
              checkpoint: str | None = None, sleeper=time.sleep,
              log=None) -> FleetReport:
    """Run the batch auto-parallelization fleet; returns its report."""
    return FleetRunner(programs, pipeline, options, checkpoint,
                       sleeper=sleeper, log=log).run()
