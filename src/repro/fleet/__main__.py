"""CLI: ``python -m repro.fleet [programs...] [options]``.

Examples::

    python -m repro.fleet                         # all 8, auto mode
    python -m repro.fleet slab2d --mode seeded    # debug a seeded race
    python -m repro.fleet --checkpoint fleet.jsonl --report out.json
"""

from __future__ import annotations

import argparse
import sys

from ..corpus import ORDER
from ..perf import counters
from .pipeline import MODES, PipelineOptions
from .queue import POOL_LADDER, FleetOptions, run_fleet


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Batch auto-parallelization fleet over the workshop "
                    "corpus, with checkpoint/resume and divergence "
                    "bisection.")
    p.add_argument("programs", nargs="*", metavar="PROGRAM",
                   help=f"corpus programs (default: all -- "
                        f"{', '.join(ORDER)}), or synth:<seed>:<index>")
    p.add_argument("--synth", type=int, metavar="N", default=0,
                   help="append N generated programs from the "
                        "property-based synthesizer (repro.corpus.synth)")
    p.add_argument("--synth-seed", type=int, default=1993,
                   help="generation seed for --synth (default: 1993)")
    p.add_argument("--mode", choices=MODES, default="auto",
                   help="seeded defects, auto-parallelize, or "
                        "analysis-only (default: auto)")
    p.add_argument("--workers", type=int, default=4,
                   help="emulated PARALLEL DO worker count for "
                        "verification/bisection (default: 4)")
    p.add_argument("--schedule", choices=("static", "dynamic"),
                   default="static")
    p.add_argument("--engine", default="compiled",
                   help="execution tier for measurement "
                        "(vector|compiled|tree; default: compiled)")
    p.add_argument("--rtol", type=float, default=1e-9)
    p.add_argument("--atol", type=float, default=1e-8)
    p.add_argument("--force-reassociation", action="store_true",
                   help="parallelize inexact REAL reductions in the "
                        "divergence emulator")
    p.add_argument("--no-bisect", action="store_true",
                   help="skip divergence bisection (report only that "
                        "runs diverged)")
    p.add_argument("--explore", action="store_true",
                   help="auto mode: race parallel-worlds transform "
                        "candidates per program and adopt the best "
                        "byte-identical one (repro.worlds)")
    p.add_argument("--max-worlds", type=int, default=8,
                   help="candidate worlds raced per program with "
                        "--explore (default: 8)")
    p.add_argument("--fleet-workers", type=int, default=2,
                   help="concurrent program pipelines (default: 2)")
    p.add_argument("--pool", choices=POOL_LADDER, default="thread",
                   help="initial dispatch pool mode (default: thread)")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="per-program result timeout in seconds "
                        "(default: 120; 0 = no timeout)")
    p.add_argument("--max-attempts", type=int, default=3)
    p.add_argument("--backoff", type=float, default=0.25,
                   help="first retry delay in seconds (doubles per "
                        "attempt; default: 0.25)")
    p.add_argument("--checkpoint", metavar="PATH",
                   help="checkpoint journal; an interrupted run resumes "
                        "from it without re-running completed programs")
    p.add_argument("--report", metavar="PATH",
                   help="write the JSON report here")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="stdout format (default: text)")
    p.add_argument("--timing", action="store_true",
                   help="include wall-clock timing in JSON output "
                        "(non-canonical)")
    p.add_argument("--counters", action="store_true",
                   help="print engine counters afterwards")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 on any quarantine, pipeline error, or "
                        "divergence")
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    pipeline = PipelineOptions(
        mode=args.mode, workers=args.workers, schedule=args.schedule,
        engine=args.engine, rtol=args.rtol, atol=args.atol,
        force_reassociation=args.force_reassociation,
        bisect=not args.no_bisect,
        explore=args.explore, max_worlds=args.max_worlds)
    options = FleetOptions(
        fleet_workers=args.fleet_workers, pool=args.pool,
        timeout=args.timeout or None, max_attempts=args.max_attempts,
        backoff_base=args.backoff)
    programs = list(args.programs)
    if args.synth > 0:
        from ..corpus.synth import program_name
        programs = (programs or list(ORDER)) + [
            program_name(args.synth_seed, i) for i in range(args.synth)]
    report = run_fleet(programs or None, pipeline, options,
                       checkpoint=args.checkpoint,
                       log=lambda m: print(m, file=sys.stderr))
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(report.dumps(include_timing=args.timing) + "\n")
    if args.format == "json":
        print(report.dumps(include_timing=args.timing))
    else:
        print(report.describe())
    if args.counters:
        print(counters.report())
    if args.strict and not (report.ok() and not report.diverged):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
