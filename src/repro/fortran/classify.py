"""Grammar-table-driven F77 statement classifier.

Works the way classic fixed-form tooling does (the statement grammar
tables follow the uchchwhash Fortran linter): outside of character
literals, blanks are insignificant, so classification runs on the
blank-squashed upper-case statement field and disambiguates with the
classic rules:

* a statement is an **assignment** (or statement-function definition) iff
  it contains a top-level ``=`` with no top-level ``,`` after it — this is
  what makes ``DO10I=1,5`` a DO statement but ``DO10I=1`` an assignment;
* ``IF(`` is special-cased by finding the matching parenthesis: ``THEN``
  follows for a block IF, ``l1,l2,l3`` for an arithmetic IF, ``=`` for an
  assignment to an array named IF, anything else for a logical IF;
* everything else is a longest-first keyword-prefix match over the
  grammar tables.

The classifier never raises on legal F77: statements the IR does not
lower still get a kind here, which is what lets the front end degrade
them to :class:`repro.fortran.ast.OpaqueStmt` instead of rejecting the
file.  ``UNKNOWN`` is reserved for text that is not a valid statement
start at all.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .source import SourceError, read_logical_lines


class Grammar:
    """F77 statement grammar tables (word lists, lower-case).

    Mirrors the statement tables of the uchchwhash fixed-form linter:
    each category maps to the list of keyword spellings that open a
    statement of that category.  Multi-word spellings are joined during
    matching because fixed form allows both ``GO TO`` and ``GOTO``.
    """

    statements: dict[str, list[list[str]]] = {
        "control nonblock": [
            ["go", "to"], ["call"], ["return"], ["continue"], ["stop"],
            ["pause"], ["end"],
        ],
        "control block": [
            ["if"], ["else", "if"], ["else"], ["end", "if"], ["do"],
            ["end", "do"],
        ],
        "io": [
            ["read"], ["write"], ["print"], ["rewind"], ["backspace"],
            ["end", "file"], ["open"], ["close"], ["inquire"],
        ],
        "assign": [["assign"]],
        "specification": [
            ["dimension"], ["common"], ["equivalence"], ["implicit"],
            ["parameter"], ["external"], ["intrinsic"], ["save"],
        ],
        "type": [
            ["integer"], ["real"], ["double", "precision"], ["complex"],
            ["logical"], ["character"],
        ],
        "top level": [
            ["program"], ["function"], ["subroutine"], ["block", "data"],
            ["entry"],
        ],
        "misc nonexec": [["data"], ["format"]],
        # PED extensions (user assertions, explicit parallel loops).
        "extension": [["assert"], ["parallel", "do"]],
    }

    continuation_column = 5
    margin_column = 6

    @classmethod
    def executable_categories(cls) -> set[str]:
        return {"control nonblock", "control block", "io", "assign",
                "extension"}

    @classmethod
    def all_kinds(cls) -> set[str]:
        """Every keyword kind slug, plus the non-keyword statement kinds."""
        kinds = {"".join(words) for cat in cls.statements.values()
                 for words in cat}
        kinds |= {"assignment", "arithmeticif", "logicalif", "empty"}
        return kinds


@dataclass(frozen=True)
class Classification:
    """The classified kind of one statement."""

    kind: str       # e.g. "do", "goto", "assignment", "arithmeticif"
    category: str   # grammar-table category ("control block", "io", ...)

    @property
    def executable(self) -> bool:
        return self.category in ("control nonblock", "control block", "io",
                                 "assign", "extension", "executable")


UNKNOWN = Classification("unknown", "unknown")

#: kind -> category, derived from the grammar tables.
_KIND_CATEGORY: dict[str, str] = {
    "".join(words): cat
    for cat, wordlists in Grammar.statements.items()
    for words in wordlists
}

#: squashed keyword spellings, longest first, so END FILE beats END DO
#: beats END, and DOUBLE PRECISION beats DO.
_KEYWORDS: list[str] = sorted(
    ("".join(words).upper() for cat in Grammar.statements.values()
     for words in cat),
    key=len, reverse=True)

_TYPE_WORDS = ("INTEGER", "REAL", "DOUBLEPRECISION", "COMPLEX", "LOGICAL",
               "CHARACTER")

_FUNC_HEAD_RE = re.compile(
    r"^(?:INTEGER|REAL|DOUBLEPRECISION|COMPLEX|LOGICAL|CHARACTER)"
    r"(?:\*\d+|\*\([^)]*\))?"
    r"FUNCTION[A-Z_][A-Z0-9_]*\(")

_ARITH_IF_RE = re.compile(r"^\d+,\d+,\d+$")


def squash(text: str) -> str:
    """Upper-case and drop blanks outside character literals.

    Character literals are replaced by the placeholder ``'S'`` so that
    top-level comma/paren scanning never trips over quoted text.
    """
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch in "'\"":
            j = i + 1
            while j < n:
                if text[j] == ch:
                    if j + 1 < n and text[j + 1] == ch:
                        j += 2
                        continue
                    break
                j += 1
            out.append("'S'")
            i = j + 1
        elif ch in " \t":
            i += 1
        else:
            out.append(ch.upper())
            i += 1
    return "".join(out)


def _is_assignment(sq: str) -> bool:
    """Top-level ``=`` with no top-level ``,`` after it."""
    depth = 0
    seen_eq = False
    for ch in sq:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif depth == 0 and ch == "=" and not seen_eq:
            seen_eq = True
        elif depth == 0 and ch == "," and seen_eq:
            return False
    return seen_eq


def _match_paren(sq: str, start: int) -> int:
    """Index one past the parenthesis matching ``sq[start] == '('``."""
    depth = 0
    for j in range(start, len(sq)):
        if sq[j] == "(":
            depth += 1
        elif sq[j] == ")":
            depth -= 1
            if depth == 0:
                return j + 1
    return -1


def classify_statement(text: str) -> Classification:
    """Classify one statement field (label and continuations removed)."""
    sq = squash(text)
    if not sq:
        return Classification("empty", "control nonblock")

    # IF( first: a logical IF may wrap an assignment, which would otherwise
    # win the assignment test below.
    if sq.startswith("IF("):
        close = _match_paren(sq, 2)
        if close > 0:
            rest = sq[close:]
            if rest == "THEN":
                return Classification("if", "control block")
            if _ARITH_IF_RE.match(rest):
                return Classification("arithmeticif", "control nonblock")
            if rest.startswith("=") or rest == "":
                return Classification("assignment", "executable")
            return Classification("logicalif", "control nonblock")

    if _is_assignment(sq):
        return Classification("assignment", "executable")

    # REAL FUNCTION F(X) and friends: the type keyword would match first.
    if _FUNC_HEAD_RE.match(sq):
        return Classification("function", "top level")

    for kw in _KEYWORDS:
        if sq.startswith(kw):
            kind = kw.lower()
            # A keyword must be followed by something that can continue
            # its statement -- never by another letter that extends an
            # identifier in ways the statement could not (e.g. CALLX is a
            # CALL of X, but ENDY is not a valid END).
            if kind == "end" and sq not in ("END",):
                # END only stands alone (ENDDO/ENDIF/ENDFILE matched above)
                continue
            if kind == "else" and sq not in ("ELSE",):
                continue
            return Classification(kind, _KIND_CATEGORY[kind])

    return UNKNOWN


@dataclass(frozen=True)
class ClassifiedLine:
    """One classified logical line of a source file."""

    label: int | None
    line: int                  # first physical line number
    text: str                  # statement field
    cls: Classification


def classify_source(text: str) -> list[ClassifiedLine]:
    """Classify every statement of a fixed-form source file.

    Tolerant: a malformed logical line is classified UNKNOWN rather than
    raising, so semantic diagnostics can still cover the rest of the file.
    """
    try:
        logical = read_logical_lines(text)
    except SourceError:
        return []
    out: list[ClassifiedLine] = []
    for ll in logical:
        out.append(ClassifiedLine(ll.label, ll.first_line, ll.text,
                                  classify_statement(ll.text)))
    return out


@dataclass(frozen=True)
class NestingIssue:
    """A mis-nested label-DO range (FRONT006 input)."""

    line: int
    label: int
    message: str


def do_nesting_issues(text: str) -> list[NestingIssue]:
    """Detect label-DO ranges that do not close in LIFO order.

    ``DO 10`` ... ``DO 20`` ... ``10 CONTINUE`` ... ``20 CONTINUE`` is
    mis-nested: the inner range (20) must terminate before the outer (10).
    Shared terminal labels (``DO 16 J`` / ``DO 16 K`` / ``16 CONTINUE``)
    are legal and close all matching frames at once.
    """
    issues: list[NestingIssue] = []
    stack: list[tuple[int, int]] = []   # (term_label, do_line)
    for cl in classify_source(text):
        if cl.cls.kind in ("do", "paralleldo"):
            sq = squash(cl.text)
            m = re.match(r"^(?:PARALLEL)?DO(\d+)", sq)
            if m:
                stack.append((int(m.group(1)), cl.line))
        if cl.label is not None:
            lab = cl.label
            if stack and stack[-1][0] == lab:
                while stack and stack[-1][0] == lab:
                    stack.pop()
            elif any(t == lab for t, _ in stack):
                # Terminal label reached while inner ranges are still open.
                open_inner = [t for t, _ in stack[
                    next(i for i, (t, _) in enumerate(stack) if t == lab) + 1:]]
                issues.append(NestingIssue(
                    cl.line, lab,
                    f"DO range {lab} closes while inner DO range(s) "
                    f"{', '.join(map(str, open_inner))} are still open"))
                # Recover: close through the mis-nested frame.
                while stack and stack[-1][0] != lab:
                    stack.pop()
                while stack and stack[-1][0] == lab:
                    stack.pop()
    for lab, line in stack:
        issues.append(NestingIssue(line, lab,
                                   f"DO range {lab} never terminates"))
    return issues
