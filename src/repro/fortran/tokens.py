"""Token definitions and the statement-field lexer.

Fortran 77 is case-insensitive; the lexer upper-cases everything except
character literals.  Blanks are treated as token separators (the corpus and
pretty-printer always emit them), but the parser additionally re-joins
multi-word keywords (``GO TO``, ``END IF``, ``DOUBLE PRECISION``, ...) so
both spellings work.
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from enum import Enum, auto


class TokKind(Enum):
    NAME = auto()
    INT = auto()
    REAL = auto()
    STRING = auto()
    OP = auto()       # + - * / ** ( ) , = : relational/logical dot-ops
    EOF = auto()


@dataclass(frozen=True)
class Token:
    kind: TokKind
    value: str
    pos: int = 0

    def is_op(self, *values: str) -> bool:
        return self.kind is TokKind.OP and self.value in values

    def is_name(self, *values: str) -> bool:
        return self.kind is TokKind.NAME and self.value in values

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name},{self.value!r})"


class LexError(Exception):
    def __init__(self, message: str, col: int | None = None):
        super().__init__(message)
        self.col = col


#: Dot-delimited operators, longest first so .GE. wins over a hypothetical .G.
_DOT_OPS = [
    ".NEQV.", ".EQV.", ".AND.", ".OR.", ".NOT.",
    ".TRUE.", ".FALSE.",
    ".LE.", ".LT.", ".GE.", ".GT.", ".EQ.", ".NE.",
]

_NAME_START = set(string.ascii_uppercase + "_")
_NAME_CHARS = _NAME_START | set(string.digits)


def tokenize(text: str) -> list[Token]:
    """Tokenize the statement field of one logical line."""
    toks: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t":
            i += 1
            continue
        up = ch.upper()
        if ch in "'\"":
            j = i + 1
            buf = []
            while True:
                if j >= n:
                    raise LexError(f"unterminated string at col {i}", i)
                if text[j] == ch:
                    # doubled quote is an escaped quote
                    if j + 1 < n and text[j + 1] == ch:
                        buf.append(ch)
                        j += 2
                        continue
                    break
                buf.append(text[j])
                j += 1
            toks.append(Token(TokKind.STRING, "".join(buf), i))
            i = j + 1
            continue
        if ch == ".":
            rest = text[i:].upper()
            matched = False
            for op in _DOT_OPS:
                if rest.startswith(op):
                    toks.append(Token(TokKind.OP, op, i))
                    i += len(op)
                    matched = True
                    break
            if matched:
                continue
            # fall through: part of a real constant like .5 or 1.
        if up.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            tok, i = _lex_number(text, i)
            toks.append(tok)
            continue
        if ch == "." and toks and toks[-1].kind is TokKind.INT:
            # "1." trailing dot handled inside _lex_number; a lone '.' here
            # means something like "X1." which _lex_number already consumed.
            pass
        if up in _NAME_START:
            j = i
            while j < n and text[j].upper() in _NAME_CHARS:
                j += 1
            name = text[i:j].upper()
            # D/E-exponent reals like 1.5D0 are lexed by _lex_number; a NAME
            # here is a genuine identifier or keyword.
            toks.append(Token(TokKind.NAME, name, i))
            i = j
            continue
        if ch == "*" and i + 1 < n and text[i + 1] == "*":
            toks.append(Token(TokKind.OP, "**", i))
            i += 2
            continue
        if ch in "<>=/" and i + 1 < n and text[i + 1] == "=":
            # F90-style relationals, accepted as a convenience.
            mapped = {"<=": ".LE.", ">=": ".GE.", "==": ".EQ.", "/=": ".NE."}
            toks.append(Token(TokKind.OP, mapped[text[i:i + 2]], i))
            i += 2
            continue
        if ch == "<":
            toks.append(Token(TokKind.OP, ".LT.", i))
            i += 1
            continue
        if ch == ">":
            toks.append(Token(TokKind.OP, ".GT.", i))
            i += 1
            continue
        if ch in "+-*/(),=:$%":
            toks.append(Token(TokKind.OP, ch, i))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r} at col {i} in {text!r}",
                       i)
    toks.append(Token(TokKind.EOF, "", n))
    return toks


def _lex_number(text: str, i: int) -> tuple[Token, int]:
    """Lex an integer or real constant starting at ``i``."""
    n = len(text)
    j = i
    while j < n and text[j].isdigit():
        j += 1
    is_real = False
    if j < n and text[j] == ".":
        # Guard against "1.EQ.2": a dot followed by a dot-operator letter
        # sequence ending in '.' is an operator, not a decimal point.
        rest = text[j:].upper()
        if not any(rest.startswith(op) for op in _DOT_OPS):
            is_real = True
            j += 1
            while j < n and text[j].isdigit():
                j += 1
    if j < n and text[j].upper() in "ED":
        k = j + 1
        if k < n and text[k] in "+-":
            k += 1
        if k < n and text[k].isdigit():
            is_real = True
            j = k
            while j < n and text[j].isdigit():
                j += 1
    value = text[i:j].upper()
    kind = TokKind.REAL if is_real else TokKind.INT
    return Token(kind, value, i), j
