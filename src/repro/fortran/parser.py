"""Recursive-descent parser for the Fortran 77 subset.

The parser runs in three stages:

1. :func:`repro.fortran.source.read_logical_lines` assembles fixed-form
   text into logical lines;
2. each logical line is classified and parsed into a flat statement
   (``_parse_statement``);
3. a structurer nests flat statements into DO loops and IF blocks,
   resolving label-terminated DO loops (including shared terminal labels,
   as in ``DO 16 J`` / ``DO 16 K`` / ``16 CONTINUE``).

Multi-word keywords (``GO TO``, ``END IF``, ``ELSE IF``, ``DOUBLE
PRECISION``, ``END DO``) are joined during classification so both
spellings parse identically.
"""

from __future__ import annotations

from . import ast
from .source import LogicalLine, read_logical_lines
from .tokens import LexError, TokKind, Token, tokenize


class ParseError(Exception):
    """Syntax error with source position.

    ``line`` is the first physical line of the logical statement; ``col``
    is the 0-based offset within the joined statement text (continuation
    cards collapse onto one logical line).
    """

    def __init__(self, message: str, line: int | None = None,
                 col: int | None = None):
        if line and col is not None:
            message = f"line {line}, col {col}: {message}"
        elif line:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line
        self.col = col


_TYPE_KEYWORDS = {"INTEGER", "REAL", "LOGICAL", "CHARACTER", "DOUBLEPRECISION",
                  "COMPLEX"}

_INTRINSICS = {
    "ABS", "IABS", "DABS", "SQRT", "DSQRT", "EXP", "DEXP", "LOG", "ALOG",
    "DLOG", "LOG10", "ALOG10", "SIN", "DSIN", "COS", "DCOS", "TAN", "ATAN",
    "DATAN", "ATAN2", "DATAN2", "MAX", "AMAX1", "MAX0", "DMAX1", "MIN",
    "AMIN1", "MIN0", "DMIN1", "MOD", "AMOD", "DMOD", "INT", "IFIX", "IDINT",
    "NINT", "REAL", "FLOAT", "SNGL", "DBLE", "SIGN", "ISIGN", "DSIGN",
    "DIM", "IDIM", "LEN", "ICHAR", "CHAR", "ASIN", "ACOS", "SINH", "COSH",
    "TANH",
}


def is_intrinsic(name: str) -> bool:
    return name.upper() in _INTRINSICS


class _TokenStream:
    """Cursor over a token list with small lookahead helpers."""

    def __init__(self, toks: list[Token], line: int):
        self.toks = toks
        self.i = 0
        self.line = line

    @property
    def cur(self) -> Token:
        return self.toks[self.i]

    def peek(self, k: int = 1) -> Token:
        j = min(self.i + k, len(self.toks) - 1)
        return self.toks[j]

    def advance(self) -> Token:
        t = self.toks[self.i]
        if t.kind is not TokKind.EOF:
            self.i += 1
        return t

    def expect_op(self, value: str) -> Token:
        t = self.cur
        if not t.is_op(value):
            raise ParseError(f"expected {value!r}, got {t.value!r}",
                             self.line, t.pos)
        return self.advance()

    def expect_name(self) -> str:
        t = self.cur
        if t.kind is not TokKind.NAME:
            raise ParseError(f"expected a name, got {t.value!r}",
                             self.line, t.pos)
        self.advance()
        return t.value

    def expect_int(self) -> int:
        t = self.cur
        if t.kind is not TokKind.INT:
            raise ParseError(f"expected an integer, got {t.value!r}",
                             self.line, t.pos)
        self.advance()
        return int(t.value)

    def at_end(self) -> bool:
        return self.cur.kind is TokKind.EOF

    def expect_end(self) -> None:
        if not self.at_end():
            raise ParseError(f"trailing tokens starting at {self.cur.value!r}",
                             self.line, self.cur.pos)


# --------------------------------------------------------------------------
# Expression parsing (precedence climbing)
# --------------------------------------------------------------------------

_BIN_PREC = {
    ".EQV.": 1, ".NEQV.": 1,
    ".OR.": 2,
    ".AND.": 3,
    ".EQ.": 5, ".NE.": 5, ".LT.": 5, ".LE.": 5, ".GT.": 5, ".GE.": 5,
    "+": 6, "-": 6,
    "*": 7, "/": 7,
    "**": 9,
}
_RIGHT_ASSOC = {"**"}


def parse_expression(ts: _TokenStream, min_prec: int = 0) -> ast.Expr:
    left = _parse_unary(ts)
    while True:
        t = ts.cur
        if t.kind is not TokKind.OP:
            break
        prec = _BIN_PREC.get(t.value)
        if prec is None or prec < min_prec:
            break
        ts.advance()
        nxt = prec if t.value in _RIGHT_ASSOC else prec + 1
        right = parse_expression(ts, nxt)
        left = ast.BinOp(t.value, left, right)
    return left


def _parse_unary(ts: _TokenStream) -> ast.Expr:
    t = ts.cur
    if t.is_op("-", "+"):
        ts.advance()
        operand = parse_expression(ts, 8)  # binds tighter than * but below **
        if t.value == "+":
            return operand
        return ast.UnOp("-", operand)
    if t.is_op(".NOT."):
        ts.advance()
        return ast.UnOp(".NOT.", parse_expression(ts, 4))
    return _parse_primary(ts)


def _parse_primary(ts: _TokenStream) -> ast.Expr:
    t = ts.cur
    if t.kind is TokKind.INT:
        ts.advance()
        return ast.IntConst(int(t.value))
    if t.kind is TokKind.REAL:
        ts.advance()
        return ast.RealConst(t.value)
    if t.kind is TokKind.STRING:
        ts.advance()
        return ast.StringConst(t.value)
    if t.is_op(".TRUE."):
        ts.advance()
        return ast.LogicalConst(True)
    if t.is_op(".FALSE."):
        ts.advance()
        return ast.LogicalConst(False)
    if t.is_op("("):
        ts.advance()
        inner = parse_expression(ts)
        ts.expect_op(")")
        return inner
    if t.kind is TokKind.NAME:
        name = ts.expect_name()
        if ts.cur.is_op("("):
            ts.advance()
            args: list[ast.Expr] = []
            if not ts.cur.is_op(")"):
                args.append(parse_expression(ts))
                while ts.cur.is_op(","):
                    ts.advance()
                    args.append(parse_expression(ts))
            ts.expect_op(")")
            if is_intrinsic(name):
                return ast.FuncRef(name, tuple(args), intrinsic=True)
            return ast.NameRef(name, tuple(args))
        return ast.VarRef(name)
    raise ParseError(f"unexpected token {t.value!r} in expression",
                     ts.line, t.pos)


def parse_expr_text(text: str) -> ast.Expr:
    """Parse a standalone expression string (used by assertions & tests)."""
    ts = _TokenStream(tokenize(text), 0)
    e = parse_expression(ts)
    ts.expect_end()
    return e


# --------------------------------------------------------------------------
# Statement classification and parsing
# --------------------------------------------------------------------------

_TWO_WORD = {
    ("GO", "TO"): "GOTO",
    ("END", "IF"): "ENDIF",
    ("END", "DO"): "ENDDO",
    ("ELSE", "IF"): "ELSEIF",
    ("DOUBLE", "PRECISION"): "DOUBLEPRECISION",
    ("IMPLICIT", "NONE"): "IMPLICITNONE",
    ("PARALLEL", "DO"): "PARALLELDO",
    ("BLOCK", "DATA"): "BLOCKDATA",
    ("END", "FILE"): "ENDFILE",
}

_KEYWORDS = {
    "PROGRAM", "SUBROUTINE", "FUNCTION", "END", "ENDDO", "ENDIF",
    "DO", "IF", "ELSE", "ELSEIF", "GOTO", "CONTINUE", "CALL", "RETURN",
    "STOP", "READ", "WRITE", "PRINT", "FORMAT", "DIMENSION", "COMMON",
    "PARAMETER", "DATA", "SAVE", "EXTERNAL", "INTRINSIC", "IMPLICIT",
    "IMPLICITNONE", "INTEGER", "REAL", "LOGICAL", "CHARACTER",
    "DOUBLEPRECISION", "COMPLEX", "ASSERT", "PARALLELDO",
    "PAUSE", "REWIND", "BACKSPACE", "ENDFILE", "OPEN", "CLOSE", "INQUIRE",
    "ASSIGN", "EQUIVALENCE", "ENTRY", "BLOCKDATA",
}


def _looks_like_assignment(ts: _TokenStream) -> bool:
    """Classic F77 disambiguation: a statement is an assignment (or a
    statement-function definition) iff it has a ``=`` at paren depth 0 with
    no top-level ``,`` after it.  ``DO 10 I = 1, 5`` fails the test (comma
    after the ``=``); ``OPEN(1) = 2`` and ``REAL = 3`` pass it.
    """
    depth = 0
    eq_at = None
    for j in range(ts.i, len(ts.toks)):
        t = ts.toks[j]
        if t.kind is TokKind.OP:
            if t.value == "(":
                depth += 1
            elif t.value == ")":
                depth -= 1
            elif depth == 0 and t.value == "=" and eq_at is None:
                eq_at = j
            elif depth == 0 and t.value == "," and eq_at is not None:
                return False
    return eq_at is not None


def _join_keywords(ts: _TokenStream) -> str | None:
    """Return the statement keyword, consuming its tokens.

    Handles two-word forms by peeking.  Returns ``None`` when the statement
    does not start with a recognized keyword (i.e. it is an assignment or a
    statement-function definition).
    """
    t = ts.cur
    if t.kind is not TokKind.NAME:
        return None
    kw = t.value
    # Assignment wins over any keyword except IF (a logical IF can wrap an
    # assignment: ``IF (L) X = 1``).
    if kw != "IF" and _looks_like_assignment(ts):
        return None
    nxt = ts.peek()
    if nxt.kind is TokKind.NAME and (kw, nxt.value) in _TWO_WORD:
        ts.advance()
        ts.advance()
        return _TWO_WORD[(kw, nxt.value)]
    if kw in _KEYWORDS:
        ts.advance()
        return kw
    return None


def _parse_statement(ll: LogicalLine) -> ast.Stmt:
    """Parse one logical line into a flat statement node."""
    line = ll.first_line
    try:
        toks = tokenize(ll.text)
    except LexError as e:
        raise ParseError(str(e), line, e.col) from e
    ts = _TokenStream(toks, line)
    if ts.at_end():
        return ast.Continue(label=ll.label, line=line)
    kw = _join_keywords(ts)
    stmt = _parse_keyword_statement(ts, kw, line) if kw else _parse_assignment(ts, line)
    stmt.label = ll.label
    stmt.line = line
    return stmt


def _parse_assignment(ts: _TokenStream, line: int) -> ast.Stmt:
    target = _parse_primary(ts)
    if not isinstance(target, (ast.VarRef, ast.NameRef)):
        raise ParseError("bad assignment target", line)
    ts.expect_op("=")
    value = parse_expression(ts)
    ts.expect_end()
    return ast.Assign(target, value)


def _parse_keyword_statement(ts: _TokenStream, kw: str, line: int) -> ast.Stmt:
    if kw == "DO":
        return _parse_do(ts, line)
    if kw == "PARALLELDO":
        return _parse_do(ts, line, parallel=True)
    if kw == "IF":
        return _parse_if(ts, line)
    if kw == "ELSEIF":
        ts.expect_op("(")
        cond = parse_expression(ts)
        ts.expect_op(")")
        then = ts.expect_name()
        if then != "THEN":
            raise ParseError("ELSE IF requires THEN", line)
        return _Marker("elseif", cond=cond)
    if kw == "ELSE":
        return _Marker("else")
    if kw == "ENDIF":
        return _Marker("endif")
    if kw == "ENDDO":
        return _Marker("enddo")
    if kw == "END":
        return _Marker("end")
    if kw == "GOTO":
        if ts.cur.kind is TokKind.NAME:
            # Assigned GOTO: ``GOTO IJMP`` / ``GOTO IJMP, (10, 20)``.
            # Control targets are dynamic; degrade to an opaque statement
            # that records the jump variable as a conservative read.
            var = ts.expect_name()
            return ast.OpaqueStmt("assigned-goto",
                                  text="GOTO " + var + _rest_raw(ts),
                                  refs=(var,))
        if ts.cur.is_op("("):
            ts.advance()
            labels = [ts.expect_int()]
            while ts.cur.is_op(","):
                ts.advance()
                labels.append(ts.expect_int())
            ts.expect_op(")")
            if ts.cur.is_op(","):
                ts.advance()
            expr = parse_expression(ts)
            ts.expect_end()
            return ast.ComputedGoto(labels, expr)
        lab = ts.expect_int()
        ts.expect_end()
        return ast.Goto(lab)
    if kw == "CONTINUE":
        ts.expect_end()
        return ast.Continue()
    if kw == "CALL":
        name = ts.expect_name()
        args: list[ast.Expr] = []
        alt_labels: list[int] = []
        if ts.cur.is_op("("):
            ts.advance()
            while not ts.cur.is_op(")"):
                if ts.cur.is_op("*") or ts.cur.is_op("$"):
                    # Alternate-return actual: ``*10`` (or VAX-style ``$10``)
                    ts.advance()
                    alt_labels.append(ts.expect_int())
                else:
                    args.append(parse_expression(ts))
                if ts.cur.is_op(","):
                    ts.advance()
                elif not ts.cur.is_op(")"):
                    break
            ts.expect_op(")")
        ts.expect_end()
        return ast.CallStmt(name, tuple(args), tuple(alt_labels))
    if kw == "RETURN":
        alt = None
        if not ts.at_end():
            alt = parse_expression(ts)
            ts.expect_end()
        return ast.Return(alt)
    if kw == "STOP":
        msg = None
        if not ts.at_end():
            msg = ts.advance().value
        return ast.Stop(msg)
    if kw in ("READ", "WRITE", "PRINT"):
        return _parse_io(ts, kw, line)
    if kw == "FORMAT":
        return ast.FormatStmt(text=_rest_text(ts))
    if kw == "DIMENSION":
        return ast.DimensionStmt(entities=tuple(_parse_entity_list(ts)))
    if kw == "COMMON":
        return _parse_common(ts, line)
    if kw == "PARAMETER":
        ts.expect_op("(")
        defs = []
        while True:
            name = ts.expect_name()
            ts.expect_op("=")
            defs.append((name, parse_expression(ts)))
            if not ts.cur.is_op(","):
                break
            ts.advance()
        ts.expect_op(")")
        ts.expect_end()
        return ast.ParameterStmt(tuple(defs))
    if kw == "DATA":
        return _parse_data(ts, line)
    if kw == "SAVE":
        names = []
        while ts.cur.kind is TokKind.NAME:
            names.append(ts.expect_name())
            if ts.cur.is_op(","):
                ts.advance()
        return ast.SaveStmt(tuple(names))
    if kw == "EXTERNAL":
        names = [ts.expect_name()]
        while ts.cur.is_op(","):
            ts.advance()
            names.append(ts.expect_name())
        return ast.ExternalStmt(tuple(names))
    if kw == "INTRINSIC":
        names = [ts.expect_name()]
        while ts.cur.is_op(","):
            ts.advance()
            names.append(ts.expect_name())
        return ast.IntrinsicStmt(tuple(names))
    if kw == "IMPLICITNONE":
        return ast.ImplicitStmt(rules=None)
    if kw == "IMPLICIT":
        return _parse_implicit(ts, line)
    if kw in _TYPE_KEYWORDS:
        return _parse_type_decl(ts, kw, line)
    if kw == "PROGRAM":
        return _Marker("program", name=ts.expect_name())
    if kw == "SUBROUTINE":
        name = ts.expect_name()
        params, stars = _parse_param_list(ts)
        return _Marker("subroutine", name=name, params=params,
                       alt_returns=stars)
    if kw == "FUNCTION":
        name = ts.expect_name()
        params, _ = _parse_param_list(ts)
        return _Marker("function", name=name, params=params, rtype=None)
    if kw == "ASSERT":
        return ast.AssertStmt(text=_rest_text(ts))
    if kw == "PAUSE":
        return ast.OpaqueStmt("pause", text="PAUSE" + _rest_raw(ts))
    if kw in ("OPEN", "CLOSE", "INQUIRE", "REWIND", "BACKSPACE", "ENDFILE"):
        return _parse_opaque_io(ts, kw, line)
    if kw == "ASSIGN":
        lab = ts.expect_int()
        to = ts.expect_name()
        if to != "TO":
            raise ParseError("ASSIGN requires TO", line)
        var = ts.expect_name()
        ts.expect_end()
        return ast.OpaqueStmt("assign", text=f"ASSIGN {lab} TO {var}",
                              mods=(var,))
    if kw == "EQUIVALENCE":
        return _parse_equivalence(ts, line)
    if kw == "ENTRY":
        name = ts.expect_name()
        return ast.OpaqueStmt("entry", text="ENTRY " + name + _rest_raw(ts),
                              decl=True)
    if kw == "BLOCKDATA":
        name = ts.expect_name() if ts.cur.kind is TokKind.NAME else "BLOCKDATA"
        return _Marker("blockdata", name=name)
    raise ParseError(f"unsupported statement keyword {kw}", line)


def _tok_text(t: Token) -> str:
    if t.kind is TokKind.STRING:
        return "'" + t.value.replace("'", "''") + "'"
    return t.value


def _rest_text(ts: _TokenStream) -> str:
    parts = []
    while not ts.at_end():
        parts.append(_tok_text(ts.advance()))
    return " ".join(parts)


def _rest_raw(ts: _TokenStream) -> str:
    rest = _rest_text(ts)
    return " " + rest if rest else ""


#: Control-list spec keywords whose right-hand side variable is *written*
#: by the statement (everything else is an input).
_IO_OUT_SPECS = {"IOSTAT"}
#: For INQUIRE the polarity flips: every spec except these is an output.
_INQUIRE_IN_SPECS = {"FILE", "UNIT", "ERR"}


def _parse_opaque_io(ts: _TokenStream, kw: str, line: int) -> ast.Stmt:
    """OPEN/CLOSE/INQUIRE/REWIND/BACKSPACE/ENDFILE: keep the statement
    opaque but extract conservative variable effects from the control list
    (``IOSTAT=IOS`` writes IOS; ``UNIT=IU`` reads IU; INQUIRE's result
    specs all write)."""
    toks: list[Token] = []
    refs: list[str] = []
    mods: list[str] = []
    depth = 0
    spec: str | None = None
    while not ts.at_end():
        t = ts.advance()
        toks.append(t)
        if t.kind is TokKind.OP:
            if t.value == "(":
                depth += 1
            elif t.value == ")":
                depth -= 1
                if depth == 0:
                    spec = None
            elif t.value == "," and depth == 1:
                spec = None
        elif t.kind is TokKind.NAME:
            if ts.cur.is_op("=") and depth >= 1:
                spec = t.value
                toks.append(ts.advance())
                continue
            if kw == "INQUIRE":
                out = spec is not None and spec not in _INQUIRE_IN_SPECS
            else:
                out = spec in _IO_OUT_SPECS
            (mods if out else refs).append(t.value)
    text = kw + (" " + " ".join(_tok_text(t) for t in toks) if toks else "")
    return ast.OpaqueStmt(kw.lower(), text=text,
                          refs=tuple(dict.fromkeys(refs)),
                          mods=tuple(dict.fromkeys(mods)))


def _parse_equivalence(ts: _TokenStream, line: int) -> ast.Stmt:
    groups: list[tuple[ast.Expr, ...]] = []
    while True:
        ts.expect_op("(")
        items = [_parse_primary(ts)]
        while ts.cur.is_op(","):
            ts.advance()
            items.append(_parse_primary(ts))
        ts.expect_op(")")
        groups.append(tuple(items))
        if not ts.cur.is_op(","):
            break
        ts.advance()
    ts.expect_end()
    return ast.EquivalenceStmt(tuple(groups))


def _parse_param_list(ts: _TokenStream) -> tuple[tuple[str, ...], int]:
    """Dummy-argument list; ``*`` alternate-return dummies are counted but
    not named (they are matched positionally by ``CALL ... *label``)."""
    if not ts.cur.is_op("("):
        return (), 0
    ts.advance()
    params: list[str] = []
    stars = 0
    while not ts.cur.is_op(")"):
        if ts.cur.is_op("*") or ts.cur.is_op("$"):
            ts.advance()
            stars += 1
        else:
            params.append(ts.expect_name())
        if ts.cur.is_op(","):
            ts.advance()
        elif not ts.cur.is_op(")"):
            break
    ts.expect_op(")")
    return tuple(params), stars


def _parse_do(ts: _TokenStream, line: int, parallel: bool = False) -> ast.Stmt:
    term_label = None
    if ts.cur.kind is TokKind.INT:
        term_label = ts.expect_int()
        if ts.cur.is_op(","):
            ts.advance()
    var = ts.expect_name()
    ts.expect_op("=")
    start = parse_expression(ts)
    ts.expect_op(",")
    end = parse_expression(ts)
    step = None
    if ts.cur.is_op(","):
        ts.advance()
        step = parse_expression(ts)
    private: set[str] = set()
    if ts.cur.is_name("PRIVATE"):
        ts.advance()
        ts.expect_op("(")
        private.add(ts.expect_name())
        while ts.cur.is_op(","):
            ts.advance()
            private.add(ts.expect_name())
        ts.expect_op(")")
    ts.expect_end()
    return ast.DoLoop(var=var, start=start, end=end, step=step, body=[],
                      term_label=term_label, parallel=parallel,
                      private_vars=private)


def _parse_if(ts: _TokenStream, line: int) -> ast.Stmt:
    ts.expect_op("(")
    cond = parse_expression(ts)
    ts.expect_op(")")
    if ts.cur.is_name("THEN") and ts.peek().kind is TokKind.EOF:
        ts.advance()
        return _Marker("ifthen", cond=cond)
    if ts.cur.kind is TokKind.INT:
        # Arithmetic IF: IF (e) l1, l2, l3
        l1 = ts.expect_int()
        ts.expect_op(",")
        l2 = ts.expect_int()
        ts.expect_op(",")
        l3 = ts.expect_int()
        ts.expect_end()
        return ast.ArithIf(cond, l1, l2, l3)
    # Logical IF: IF (cond) stmt
    kw = _join_keywords(ts)
    if kw in ("DO", "PARALLELDO", "IF", "ELSE", "ELSEIF", "ENDIF", "ENDDO",
              "END"):
        raise ParseError(f"statement {kw} not allowed in logical IF", line)
    inner = (_parse_keyword_statement(ts, kw, line) if kw
             else _parse_assignment(ts, line))
    inner.line = line
    return ast.LogicalIf(cond, inner)


def _parse_io(ts: _TokenStream, kw: str, line: int) -> ast.Stmt:
    unit = "*"
    if kw == "PRINT":
        # PRINT *, items  or PRINT fmt, items
        if ts.cur.is_op("*"):
            ts.advance()
        elif ts.cur.kind is TokKind.INT:
            ts.advance()
        if ts.cur.is_op(","):
            ts.advance()
        items = _parse_io_items(ts)
        return ast.WriteStmt(tuple(items), unit)
    # READ/WRITE (unit[, fmt]) items  |  READ *, items
    if ts.cur.is_op("("):
        ts.advance()
        specs = []
        depth = 0
        # collect control list tokens naively: unit [, fmt] possibly key=val
        while not (ts.cur.is_op(")") and depth == 0):
            if ts.cur.is_op("("):
                depth += 1
            elif ts.cur.is_op(")"):
                depth -= 1
            specs.append(ts.advance().value)
            if ts.at_end():
                raise ParseError("unterminated I/O control list", line)
        ts.expect_op(")")
        unit = specs[0] if specs else "*"
    elif ts.cur.is_op("*"):
        ts.advance()
        if ts.cur.is_op(","):
            ts.advance()
    items = _parse_io_items(ts)
    cls = ast.ReadStmt if kw == "READ" else ast.WriteStmt
    return cls(tuple(items), unit)


def _parse_io_items(ts: _TokenStream) -> list[ast.Expr]:
    items: list[ast.Expr] = []
    if ts.at_end():
        return items
    items.append(parse_expression(ts))
    while ts.cur.is_op(","):
        ts.advance()
        items.append(parse_expression(ts))
    ts.expect_end()
    return items


def _parse_dims(ts: _TokenStream, line: int) -> tuple[ast.DimSpec, ...]:
    ts.expect_op("(")
    dims: list[ast.DimSpec] = []
    while True:
        if ts.cur.is_op("*"):
            ts.advance()
            dims.append(ast.DimSpec(ast.IntConst(1), None))
        else:
            first = parse_expression(ts)
            if ts.cur.is_op(":"):
                ts.advance()
                if ts.cur.is_op("*"):
                    ts.advance()
                    dims.append(ast.DimSpec(first, None))
                else:
                    dims.append(ast.DimSpec(first, parse_expression(ts)))
            else:
                dims.append(ast.DimSpec(ast.IntConst(1), first))
        if not ts.cur.is_op(","):
            break
        ts.advance()
    ts.expect_op(")")
    return tuple(dims)


def _parse_entity(ts: _TokenStream, line: int) -> ast.Entity:
    name = ts.expect_name()
    dims: tuple[ast.DimSpec, ...] = ()
    if ts.cur.is_op("("):
        dims = _parse_dims(ts, line)
    return ast.Entity(name, dims)


def _parse_entity_list(ts: _TokenStream) -> list[ast.Entity]:
    ents = [_parse_entity(ts, ts.line)]
    while ts.cur.is_op(","):
        ts.advance()
        ents.append(_parse_entity(ts, ts.line))
    ts.expect_end()
    return ents


def _parse_type_decl(ts: _TokenStream, kw: str, line: int) -> ast.Stmt:
    length = None
    if kw == "CHARACTER" and ts.cur.is_op("*"):
        ts.advance()
        if ts.cur.is_op("("):
            ts.advance()
            if ts.cur.is_op("*"):
                ts.advance()
                length = None
            else:
                length = parse_expression(ts)
            ts.expect_op(")")
        else:
            length = ast.IntConst(ts.expect_int())
    # FUNCTION with a result type: "REAL FUNCTION F(X)"
    if ts.cur.is_name("FUNCTION"):
        ts.advance()
        name = ts.expect_name()
        params, _ = _parse_param_list(ts)
        return _Marker("function", name=name, params=params, rtype=kw)
    ents = _parse_entity_list(ts)
    return ast.TypeDecl(kw, tuple(ents), length)


def _parse_common(ts: _TokenStream, line: int) -> ast.Stmt:
    blocks: list[tuple[str, tuple[ast.Entity, ...]]] = []
    while not ts.at_end():
        name = ""
        if ts.cur.is_op("/"):
            ts.advance()
            if not ts.cur.is_op("/"):
                name = ts.expect_name()
            ts.expect_op("/")
        ents: list[ast.Entity] = [_parse_entity(ts, line)]
        while ts.cur.is_op(","):
            ts.advance()
            if ts.cur.is_op("/"):
                break
            ents.append(_parse_entity(ts, line))
        blocks.append((name, tuple(ents)))
        if not (ts.cur.is_op("/") or ts.cur.is_op(",")):
            break
    return ast.CommonStmt(tuple(blocks))


def _parse_data_value(ts: _TokenStream) -> ast.Expr:
    """A DATA value: an optionally-signed constant (never an expression,
    or the closing ``/`` would parse as division)."""
    neg = False
    if ts.cur.is_op("-"):
        ts.advance()
        neg = True
    elif ts.cur.is_op("+"):
        ts.advance()
    v = _parse_primary(ts)
    return ast.UnOp("-", v) if neg else v


def _parse_data(ts: _TokenStream, line: int) -> ast.Stmt:
    groups = []
    while not ts.at_end():
        targets = [_parse_primary(ts)]
        while ts.cur.is_op(","):
            ts.advance()
            targets.append(_parse_primary(ts))
        ts.expect_op("/")
        values: list[ast.Expr] = []
        while not ts.cur.is_op("/"):
            v = _parse_data_value(ts)
            if ts.cur.is_op("*") and isinstance(v, ast.IntConst):
                ts.advance()
                rep = _parse_data_value(ts)
                values.extend([rep] * v.value)
            else:
                values.append(v)
            if ts.cur.is_op(","):
                ts.advance()
        ts.expect_op("/")
        groups.append((tuple(targets), tuple(values)))
        if ts.cur.is_op(","):
            ts.advance()
    return ast.DataStmt(tuple(groups))


def _parse_implicit(ts: _TokenStream, line: int) -> ast.Stmt:
    rules: list[tuple[str, list[tuple[str, str]]]] = []
    while not ts.at_end():
        tname = ts.expect_name()
        if tname == "DOUBLE":
            nxt = ts.expect_name()
            if nxt != "PRECISION":
                raise ParseError("bad IMPLICIT type", line)
            tname = "DOUBLEPRECISION"
        ts.expect_op("(")
        ranges: list[tuple[str, str]] = []
        while True:
            a = ts.expect_name()
            if ts.cur.is_op("-"):
                ts.advance()
                b = ts.expect_name()
            else:
                b = a
            ranges.append((a, b))
            if not ts.cur.is_op(","):
                break
            ts.advance()
        ts.expect_op(")")
        rules.append((tname, ranges))
        if ts.cur.is_op(","):
            ts.advance()
    return ast.ImplicitStmt(rules=rules)


# --------------------------------------------------------------------------
# Structurer: markers and nesting
# --------------------------------------------------------------------------

class _Marker(ast.Stmt):
    """Internal pseudo-statement for block delimiters and unit headers."""

    def __init__(self, kind: str, **attrs):
        super().__init__()
        self.marker = kind
        self.attrs = attrs


class _Frame:
    """Open block during structuring."""

    def __init__(self, kind: str, stmt: ast.Stmt | None, sink: list[ast.Stmt]):
        self.kind = kind            # "do" | "if"
        self.stmt = stmt
        self.sink = sink            # list currently receiving statements


def _structure_unit(stmts: list[ast.Stmt], line: int) -> list[ast.Stmt]:
    """Nest a flat statement list into DO/IF block structure."""
    body: list[ast.Stmt] = []
    stack: list[_Frame] = [_Frame("top", None, body)]

    def close_do_frames_for_label(label: int) -> None:
        while (len(stack) > 1 and stack[-1].kind == "do"
               and stack[-1].stmt.term_label == label):  # type: ignore[union-attr]
            stack.pop()

    for s in stmts:
        if isinstance(s, _Marker):
            m = s.marker
            if m == "ifthen":
                blk = ast.IfBlock(cond=s.attrs["cond"], then_body=[],
                                  label=s.label, line=s.line)
                stack[-1].sink.append(blk)
                stack.append(_Frame("if", blk, blk.then_body))
            elif m == "elseif":
                fr = stack[-1]
                if fr.kind != "if":
                    raise ParseError("ELSE IF outside IF block", s.line)
                arm: list[ast.Stmt] = []
                fr.stmt.elifs.append((s.attrs["cond"], arm))  # type: ignore[union-attr]
                fr.sink = arm
            elif m == "else":
                fr = stack[-1]
                if fr.kind != "if":
                    raise ParseError("ELSE outside IF block", s.line)
                fr.sink = fr.stmt.else_body  # type: ignore[union-attr]
            elif m == "endif":
                if stack[-1].kind != "if":
                    raise ParseError("END IF without IF", s.line)
                stack.pop()
            elif m == "enddo":
                if stack[-1].kind != "do":
                    raise ParseError("END DO without DO", s.line)
                stack.pop()
            else:  # pragma: no cover - headers handled by caller
                raise ParseError(f"unexpected {m} inside a unit", s.line)
            continue
        if isinstance(s, ast.DoLoop):
            stack[-1].sink.append(s)
            stack.append(_Frame("do", s, s.body))
            continue
        stack[-1].sink.append(s)
        if s.label is not None:
            close_do_frames_for_label(s.label)
    if len(stack) != 1:
        kind = stack[-1].kind.upper()
        raise ParseError(f"unterminated {kind} block", line)
    return body


def parse_program(text: str) -> ast.Program:
    """Parse a complete fixed-form Fortran source file."""
    logical = read_logical_lines(text)
    flat = [_parse_statement(ll) for ll in logical]
    units: list[ast.ProgramUnit] = []
    i = 0
    n = len(flat)
    while i < n:
        s = flat[i]
        kind, name, params, rtype, hline = "program", "MAIN", (), None, s.line
        alt_returns = 0
        if isinstance(s, _Marker) and s.marker in ("program", "subroutine",
                                                   "function", "blockdata"):
            kind = s.marker
            name = s.attrs["name"]
            params = s.attrs.get("params", ())
            rtype = s.attrs.get("rtype")
            alt_returns = s.attrs.get("alt_returns", 0)
            i += 1
        # Collect statements until the matching END at nesting level 0.
        unit_stmts: list[ast.Stmt] = []
        depth = 0
        while i < n:
            s = flat[i]
            if isinstance(s, _Marker):
                if s.marker in ("ifthen",):
                    depth += 1
                elif s.marker in ("endif",):
                    depth -= 1
                elif s.marker == "end" and depth == 0:
                    i += 1
                    break
                elif s.marker in ("program", "subroutine", "function",
                                  "blockdata"):
                    raise ParseError(
                        f"nested program unit {s.attrs['name']}", s.line)
            unit_stmts.append(s)
            i += 1
        else:
            if unit_stmts and not isinstance(unit_stmts[-1], _Marker):
                raise ParseError(f"missing END for unit {name}", hline)
        body = _structure_unit(unit_stmts, hline)
        units.append(ast.ProgramUnit(kind=kind, name=name, params=params,
                                     body=body, result_type=rtype, line=hline,
                                     alt_returns=alt_returns))
    return ast.Program(units=units, source=text)
