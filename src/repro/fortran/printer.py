"""Pretty-printer: AST back to fixed-form Fortran 77 text.

This is the text the PED source pane displays and what transformations
emit.  Output is valid input to :func:`repro.fortran.parser.parse_program`,
which the property-based round-trip tests rely on.
"""

from __future__ import annotations

from . import ast


INDENT = "  "


def _stmt_field(text: str, label: int | None, indent: int) -> str:
    """Lay out one statement line in fixed form (label cols 1-5, body 7+)."""
    lab = f"{label:<5d}" if label is not None else "     "
    line = f"{lab} {INDENT * indent}{text}"
    return _wrap(line)


def _wrap(line: str) -> str:
    """Split lines longer than 72 columns using continuation cards."""
    if len(line) <= 72:
        return line
    pieces = []
    body = line
    first = True
    while body:
        if first:
            take = body[:72]
            # try to break at the last space before col 72 that is outside
            # a trivial position
            cut = take.rfind(" ", 40, 72)
            if cut <= 6:
                cut = 72
            pieces.append(body[:cut])
            body = body[cut:]
            first = False
        else:
            chunk = body[:60]
            cut = chunk.rfind(" ", 20, 60) if len(body) > 60 else len(body)
            if cut <= 0:
                cut = min(60, len(body))
            pieces.append("     & " + body[:cut].lstrip())
            body = body[cut:]
    return "\n".join(pieces)


def print_expr(e: ast.Expr) -> str:
    return str(e)


def _has_terminal(body: list[ast.Stmt], label: int) -> bool:
    """True if the loop body already ends with the terminal label statement.

    Loops that share a terminal label (``DO 10 I`` / ``DO 10 J`` /
    ``10 CONTINUE``) hold the labelled statement in the innermost body, so
    we descend through trailing same-label loops.
    """
    if not body:
        return False
    last = body[-1]
    if last.label == label:
        return True
    if isinstance(last, ast.DoLoop) and last.term_label == label:
        return _has_terminal(last.body, label)
    return False


def print_stmt(s: ast.Stmt, indent: int = 0) -> list[str]:
    """Render one statement (possibly structured) as fixed-form lines."""
    out: list[str] = []
    emit = lambda text, label=None, ind=indent: out.append(
        _stmt_field(text, label, ind))

    if isinstance(s, ast.Assign):
        emit(f"{s.target} = {s.value}", s.label)
    elif isinstance(s, ast.DoLoop):
        head = "PARALLEL DO" if s.parallel else "DO"
        rng = f"{s.var} = {s.start}, {s.end}"
        if s.step is not None:
            rng += f", {s.step}"
        if s.private_vars:
            rng += f" PRIVATE({', '.join(sorted(s.private_vars))})"
        if s.term_label is not None:
            emit(f"{head} {s.term_label} {rng}", s.label)
        else:
            emit(f"{head} {rng}", s.label)
        for st in s.body:
            out.extend(print_stmt(st, indent + 1))
        if s.term_label is None:
            emit("ENDDO", None)
        elif not _has_terminal(s.body, s.term_label):
            emit("CONTINUE", s.term_label)
    elif isinstance(s, ast.IfBlock):
        emit(f"IF ({s.cond}) THEN", s.label)
        for st in s.then_body:
            out.extend(print_stmt(st, indent + 1))
        for cond, arm in s.elifs:
            emit(f"ELSE IF ({cond}) THEN", None)
            for st in arm:
                out.extend(print_stmt(st, indent + 1))
        if s.else_body:
            emit("ELSE", None)
            for st in s.else_body:
                out.extend(print_stmt(st, indent + 1))
        emit("ENDIF", None)
    elif isinstance(s, ast.LogicalIf):
        inner = print_stmt(s.stmt, 0)[0][6:].strip()
        emit(f"IF ({s.cond}) {inner}", s.label)
    elif isinstance(s, ast.ArithIf):
        emit(f"IF ({s.expr}) {s.neg_label}, {s.zero_label}, {s.pos_label}",
             s.label)
    elif isinstance(s, ast.Goto):
        emit(f"GOTO {s.target}", s.label)
    elif isinstance(s, ast.ComputedGoto):
        labs = ", ".join(str(t) for t in s.targets)
        emit(f"GOTO ({labs}), {s.expr}", s.label)
    elif isinstance(s, ast.Continue):
        emit("CONTINUE", s.label)
    elif isinstance(s, ast.CallStmt):
        actuals = [str(a) for a in s.args]
        actuals.extend(f"*{lab}" for lab in s.alt_labels)
        if actuals:
            emit(f"CALL {s.name}({', '.join(actuals)})", s.label)
        else:
            emit(f"CALL {s.name}", s.label)
    elif isinstance(s, ast.Return):
        emit("RETURN" if s.alt is None else f"RETURN {s.alt}", s.label)
    elif isinstance(s, ast.Stop):
        emit("STOP" if s.message is None else f"STOP {s.message}", s.label)
    elif isinstance(s, ast.ReadStmt):
        items = ", ".join(map(str, s.items))
        if s.unit == "*":
            emit(f"READ *, {items}" if items else "READ *", s.label)
        else:
            emit(f"READ ({s.unit}) {items}", s.label)
    elif isinstance(s, ast.WriteStmt):
        items = ", ".join(map(str, s.items))
        if s.unit == "*":
            emit(f"PRINT *, {items}" if items else "PRINT *", s.label)
        else:
            emit(f"WRITE ({s.unit}) {items}", s.label)
    elif isinstance(s, ast.FormatStmt):
        emit(f"FORMAT {s.text}", s.label)
    elif isinstance(s, ast.TypeDecl):
        tname = ("DOUBLE PRECISION" if s.type_name == "DOUBLEPRECISION"
                 else s.type_name)
        if s.type_name == "CHARACTER" and s.length is not None:
            tname += f"*{s.length}"
        emit(f"{tname} {', '.join(map(str, s.entities))}", s.label)
    elif isinstance(s, ast.DimensionStmt):
        emit(f"DIMENSION {', '.join(map(str, s.entities))}", s.label)
    elif isinstance(s, ast.CommonStmt):
        parts = []
        for name, ents in s.blocks_:
            blk = f"/{name}/ " if name else ""
            parts.append(f"{blk}{', '.join(map(str, ents))}")
        emit("COMMON " + ", ".join(parts), s.label)
    elif isinstance(s, ast.ParameterStmt):
        defs = ", ".join(f"{n} = {v}" for n, v in s.defs)
        emit(f"PARAMETER ({defs})", s.label)
    elif isinstance(s, ast.DataStmt):
        parts = []
        for targets, values in s.groups:
            t = ", ".join(map(str, targets))
            v = ", ".join(map(str, values))
            parts.append(f"{t} /{v}/")
        emit("DATA " + ", ".join(parts), s.label)
    elif isinstance(s, ast.SaveStmt):
        emit("SAVE " + ", ".join(s.names) if s.names else "SAVE", s.label)
    elif isinstance(s, ast.ExternalStmt):
        emit("EXTERNAL " + ", ".join(s.names), s.label)
    elif isinstance(s, ast.IntrinsicStmt):
        emit("INTRINSIC " + ", ".join(s.names), s.label)
    elif isinstance(s, ast.ImplicitStmt):
        if s.rules is None:
            emit("IMPLICIT NONE", s.label)
        else:
            parts = []
            for tname, ranges in s.rules:
                t = ("DOUBLE PRECISION" if tname == "DOUBLEPRECISION"
                     else tname)
                rs = ", ".join(a if a == b else f"{a}-{b}" for a, b in ranges)
                parts.append(f"{t} ({rs})")
            emit("IMPLICIT " + ", ".join(parts), s.label)
    elif isinstance(s, ast.EquivalenceStmt):
        groups = ", ".join(f"({', '.join(map(str, g))})" for g in s.groups)
        emit(f"EQUIVALENCE {groups}", s.label)
    elif isinstance(s, ast.OpaqueStmt):
        # Opaque statements round-trip through their (token-normalized)
        # source spelling.
        emit(s.text, s.label)
    elif isinstance(s, ast.AssertStmt):
        emit(f"ASSERT {s.text}", s.label)
    else:  # pragma: no cover - exhaustiveness guard
        raise TypeError(f"cannot print {type(s).__name__}")
    return out


def print_unit(unit: ast.ProgramUnit) -> str:
    lines: list[str] = []
    if unit.kind == "program":
        lines.append(_stmt_field(f"PROGRAM {unit.name}", None, 0))
    elif unit.kind == "blockdata":
        name = "" if unit.name == "BLOCKDATA" else f" {unit.name}"
        lines.append(_stmt_field(f"BLOCK DATA{name}", None, 0))
    elif unit.kind == "subroutine":
        dummies = list(unit.params) + ["*"] * unit.alt_returns
        params = f"({', '.join(dummies)})" if dummies else ""
        lines.append(_stmt_field(f"SUBROUTINE {unit.name}{params}", None, 0))
    else:
        rt = ("DOUBLE PRECISION" if unit.result_type == "DOUBLEPRECISION"
              else unit.result_type)
        prefix = f"{rt} " if rt else ""
        params = f"({', '.join(unit.params)})" if unit.params else "()"
        lines.append(_stmt_field(f"{prefix}FUNCTION {unit.name}{params}",
                                 None, 0))
    for s in unit.body:
        lines.extend(print_stmt(s, 1))
    lines.append(_stmt_field("END", None, 0))
    return "\n".join(lines)


def print_program(prog: ast.Program) -> str:
    return "\n".join(print_unit(u) for u in prog.units) + "\n"
