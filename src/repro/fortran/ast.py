"""Abstract syntax tree for the Fortran 77 subset PED operates on.

Design notes
------------
* Expression nodes are immutable in spirit (we never mutate them in place;
  transformations build new trees), which lets analyses hash and compare
  them structurally.
* ``NameRef`` with arguments is ambiguous at parse time between an array
  element and a function call; name resolution (``repro.ir.symtab``)
  rewrites these into :class:`ArrayRef` / :class:`FuncRef` once declarations
  are known.
* Every statement carries ``label`` (the numeric Fortran label, if any) and
  ``line`` (the first physical source line), which the PED panes use for
  display and navigation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields


_node_ids = itertools.count(1)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

class Expr:
    """Base class for expression nodes."""

    __slots__ = ()

    def children(self) -> tuple["Expr", ...]:
        return ()

    # Structural equality / hashing are supplied by the dataclass decorators
    # on subclasses (eq=True, frozen=True).


@dataclass(frozen=True)
class IntConst(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class RealConst(Expr):
    #: Original textual spelling, e.g. ``1.5D0`` (kept for round-tripping).
    text: str

    @property
    def value(self) -> float:
        return float(self.text.upper().replace("D", "E"))

    def __str__(self) -> str:
        return self.text


@dataclass(frozen=True)
class LogicalConst(Expr):
    value: bool

    def __str__(self) -> str:
        return ".TRUE." if self.value else ".FALSE."


@dataclass(frozen=True)
class StringConst(Expr):
    value: str

    def __str__(self) -> str:
        return "'" + self.value.replace("'", "''") + "'"


@dataclass(frozen=True)
class VarRef(Expr):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class NameRef(Expr):
    """``NAME(args)`` before resolution: array element or function call."""

    name: str
    args: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class ArrayRef(Expr):
    name: str
    subscripts: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return self.subscripts

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.subscripts))})"


@dataclass(frozen=True)
class FuncRef(Expr):
    name: str
    args: tuple[Expr, ...]
    intrinsic: bool = False

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # + - * / ** // .AND. .OR. .EQ. ...
    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        op = self.op if self.op.startswith(".") else f" {self.op} ".replace("  ", " ")
        if self.op in ("+", "-", "*", "/", "**"):
            return f"{_paren(self.left, self)} {self.op} {_paren(self.right, self, right=True)}"
        return f"{_paren(self.left, self)} {self.op} {_paren(self.right, self, right=True)}"


@dataclass(frozen=True)
class UnOp(Expr):
    op: str  # - + .NOT.
    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        sep = " " if self.op.startswith(".") else ""
        if self.op in "+-":
            # The parser binds unary minus tighter than * and / but looser
            # than **: only primaries and ** chains may go bare.
            s = str(self.operand)
            if _prec(self.operand) < 7:
                s = f"({s})"
            return f"{self.op}{s}"
        return f"{self.op}{sep}{_paren(self.operand, self)}"


_PREC = {
    ".OR.": 1, ".AND.": 2, ".NOT.": 3,
    ".EQ.": 4, ".NE.": 4, ".LT.": 4, ".LE.": 4, ".GT.": 4, ".GE.": 4,
    ".EQV.": 1, ".NEQV.": 1,
    "+": 5, "-": 5, "*": 6, "/": 6, "**": 7,
}


def _prec(e: Expr) -> int:
    if isinstance(e, BinOp):
        return _PREC.get(e.op, 8)
    if isinstance(e, UnOp):
        return 5 if e.op in "+-" else _PREC.get(e.op, 8)
    return 9


def _paren(child: Expr, parent: Expr, right: bool = False) -> str:
    # A same-precedence right child is always parenthesized: besides the
    # non-associative operators (-, /, **), Fortran integer division makes
    # even a * (b / c) differ from a * b / c.
    cp, pp = _prec(child), _prec(parent)
    need = cp < pp or (cp == pp and right and isinstance(parent, BinOp))
    s = str(child)
    return f"({s})" if need else s


def walk_expr(e: Expr):
    """Yield ``e`` and every sub-expression, pre-order."""
    yield e
    for c in e.children():
        yield from walk_expr(c)


def variables_in(e: Expr) -> set[str]:
    """All scalar/array names referenced in an expression."""
    out: set[str] = set()
    for node in walk_expr(e):
        if isinstance(node, VarRef):
            out.add(node.name)
        elif isinstance(node, (ArrayRef, NameRef)):
            out.add(node.name)
        elif isinstance(node, FuncRef) and not node.intrinsic:
            out.add(node.name)
    return out


def map_expr(e: Expr, fn) -> Expr:
    """Rebuild ``e`` bottom-up, applying ``fn`` to every node.

    ``fn`` receives a node whose children have already been rewritten and
    returns a replacement (or the node unchanged).
    """
    if isinstance(e, BinOp):
        e = BinOp(e.op, map_expr(e.left, fn), map_expr(e.right, fn))
    elif isinstance(e, UnOp):
        e = UnOp(e.op, map_expr(e.operand, fn))
    elif isinstance(e, (NameRef,)):
        e = NameRef(e.name, tuple(map_expr(a, fn) for a in e.args))
    elif isinstance(e, ArrayRef):
        e = ArrayRef(e.name, tuple(map_expr(s, fn) for s in e.subscripts))
    elif isinstance(e, FuncRef):
        e = FuncRef(e.name, tuple(map_expr(a, fn) for a in e.args), e.intrinsic)
    return fn(e)


def substitute(e: Expr, env: dict[str, Expr]) -> Expr:
    """Replace scalar variable references by expressions from ``env``."""

    def repl(node: Expr) -> Expr:
        if isinstance(node, VarRef) and node.name in env:
            return env[node.name]
        return node

    return map_expr(e, repl)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass
class Stmt:
    """Base class for statements.

    ``uid`` is a process-unique id used by analyses as a stable key; it is
    regenerated when transformations clone statements.
    """

    label: int | None = field(default=None, kw_only=True)
    line: int = field(default=0, kw_only=True)
    uid: int = field(default_factory=lambda: next(_node_ids), kw_only=True)

    def blocks(self) -> list[list["Stmt"]]:
        """Nested statement lists (overridden by structured statements)."""
        return []

    def exprs(self) -> list[Expr]:
        """Top-level expressions read by this statement (for analyses)."""
        return []

    def clone(self) -> "Stmt":
        """Deep-copy with fresh uids (expressions are shared: immutable)."""
        kwargs = {}
        for f in fields(self):
            if f.name == "uid":
                continue
            v = getattr(self, f.name)
            if f.name in ("body", "then_body", "else_body", "stmts"):
                v = [s.clone() for s in v]
            elif f.name == "elifs":
                v = [(c, [s.clone() for s in b]) for c, b in v]
            kwargs[f.name] = v
        return type(self)(**kwargs)


@dataclass
class Assign(Stmt):
    target: Expr  # VarRef or ArrayRef (NameRef before resolution)
    value: Expr

    def exprs(self) -> list[Expr]:
        return [self.value]


@dataclass
class DoLoop(Stmt):
    var: str
    start: Expr
    end: Expr
    step: Expr | None
    body: list[Stmt]
    #: Label of the terminating statement for label-form DO (``DO 10 I=...``).
    term_label: int | None = None
    #: PED annotation: loop runs its iterations concurrently.
    parallel: bool = False
    #: Variables the user or privatization analysis marked private.
    private_vars: set[str] = field(default_factory=set)

    def blocks(self) -> list[list[Stmt]]:
        return [self.body]

    def exprs(self) -> list[Expr]:
        out = [self.start, self.end]
        if self.step is not None:
            out.append(self.step)
        return out


@dataclass
class IfBlock(Stmt):
    cond: Expr
    then_body: list[Stmt]
    elifs: list[tuple[Expr, list[Stmt]]] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)

    def blocks(self) -> list[list[Stmt]]:
        out = [self.then_body]
        out.extend(b for _, b in self.elifs)
        out.append(self.else_body)
        return out

    def exprs(self) -> list[Expr]:
        return [self.cond] + [c for c, _ in self.elifs]


@dataclass
class LogicalIf(Stmt):
    """``IF (cond) stmt`` one-armed form."""

    cond: Expr
    stmt: Stmt

    def blocks(self) -> list[list[Stmt]]:
        return [[self.stmt]]

    def exprs(self) -> list[Expr]:
        return [self.cond]

    def clone(self) -> "LogicalIf":
        return LogicalIf(self.cond, self.stmt.clone(),
                         label=self.label, line=self.line)


@dataclass
class ArithIf(Stmt):
    """``IF (e) l1, l2, l3`` three-way arithmetic IF."""

    expr: Expr
    neg_label: int
    zero_label: int
    pos_label: int

    def exprs(self) -> list[Expr]:
        return [self.expr]


@dataclass
class Goto(Stmt):
    target: int


@dataclass
class ComputedGoto(Stmt):
    targets: list[int]
    expr: Expr

    def exprs(self) -> list[Expr]:
        return [self.expr]


@dataclass
class Continue(Stmt):
    pass


@dataclass
class CallStmt(Stmt):
    name: str
    args: tuple[Expr, ...] = ()
    #: Alternate-return labels (``CALL S(X, *10, *20)``), in argument order.
    alt_labels: tuple[int, ...] = ()

    def exprs(self) -> list[Expr]:
        return list(self.args)


@dataclass
class Return(Stmt):
    #: Alternate-return selector (``RETURN 1``); ``None`` for plain RETURN.
    alt: Expr | None = None

    def exprs(self) -> list[Expr]:
        return [self.alt] if self.alt is not None else []


@dataclass
class Stop(Stmt):
    message: str | None = None


@dataclass
class ReadStmt(Stmt):
    """Simplified list-directed / unit READ; items are targets."""

    items: tuple[Expr, ...] = ()
    unit: str = "*"

    def exprs(self) -> list[Expr]:
        # subscripts of the targets are *read*
        out = []
        for it in self.items:
            if isinstance(it, (ArrayRef, NameRef)):
                out.extend(it.children())
        return out


@dataclass
class WriteStmt(Stmt):
    items: tuple[Expr, ...] = ()
    unit: str = "*"

    def exprs(self) -> list[Expr]:
        return list(self.items)


@dataclass
class FormatStmt(Stmt):
    text: str = ""


@dataclass
class SaveStmt(Stmt):
    names: tuple[str, ...] = ()


@dataclass
class ExternalStmt(Stmt):
    names: tuple[str, ...] = ()


@dataclass
class IntrinsicStmt(Stmt):
    names: tuple[str, ...] = ()


@dataclass
class ImplicitStmt(Stmt):
    #: ``None`` means IMPLICIT NONE; otherwise list of (type, letter-ranges).
    rules: list[tuple[str, list[tuple[str, str]]]] | None = None


# Declarations -------------------------------------------------------------

@dataclass(frozen=True)
class DimSpec:
    """One array dimension: ``lower:upper`` (lower defaults to 1).

    ``upper`` may be ``None`` for assumed-size ``*`` dimensions.
    """

    lower: Expr
    upper: Expr | None

    def __str__(self) -> str:
        up = "*" if self.upper is None else str(self.upper)
        if isinstance(self.lower, IntConst) and self.lower.value == 1:
            return up
        return f"{self.lower}:{up}"


@dataclass(frozen=True)
class Entity:
    name: str
    dims: tuple[DimSpec, ...] = ()

    def __str__(self) -> str:
        if not self.dims:
            return self.name
        return f"{self.name}({', '.join(map(str, self.dims))})"


@dataclass
class TypeDecl(Stmt):
    type_name: str  # INTEGER REAL DOUBLE_PRECISION LOGICAL CHARACTER
    entities: tuple[Entity, ...] = ()
    #: CHARACTER*n length (None otherwise).
    length: Expr | None = None


@dataclass
class DimensionStmt(Stmt):
    entities: tuple[Entity, ...] = ()


@dataclass
class CommonStmt(Stmt):
    #: (block-name or "" for blank common, entities)
    blocks_: tuple[tuple[str, tuple[Entity, ...]], ...] = ()


@dataclass
class ParameterStmt(Stmt):
    defs: tuple[tuple[str, Expr], ...] = ()


@dataclass
class DataStmt(Stmt):
    #: (targets, values) pairs; values may include repeat counts r*v
    groups: tuple[tuple[tuple[Expr, ...], tuple[Expr, ...]], ...] = ()


@dataclass
class EquivalenceStmt(Stmt):
    """``EQUIVALENCE (a, b), (c(1), d)`` storage-association groups."""

    groups: tuple[tuple[Expr, ...], ...] = ()


@dataclass
class OpaqueStmt(Stmt):
    """A legal F77 statement the front end accepts but does not lower.

    Graceful-degradation node: the classifier names its ``kind`` (e.g.
    ``"open"``, ``"assigned-goto"``, ``"entry"``), ``text`` keeps the source
    spelling for round-tripping, and ``refs``/``mods`` carry conservative
    variable effects for the analyses (every named variable possibly read /
    possibly written).  Declaration-like opaques (``decl=True``) are no-ops;
    executable opaques raise a runtime fault if actually reached, so the
    interpreter never silently mis-executes what it did not lower.
    """

    kind: str = ""
    text: str = ""
    refs: tuple[str, ...] = ()
    mods: tuple[str, ...] = ()
    decl: bool = False

    def exprs(self) -> list[Expr]:
        return [VarRef(n) for n in self.refs]


@dataclass
class AssertStmt(Stmt):
    """PED extension: a user assertion embedded in the source.

    ``CASSERT``-style directive parsed from comments or inserted through
    the session API.  ``text`` holds the assertion-language source; the
    parsed form lives in :mod:`repro.assertions`.
    """

    text: str = ""


# --------------------------------------------------------------------------
# Program units
# --------------------------------------------------------------------------

@dataclass
class ProgramUnit:
    """A PROGRAM, SUBROUTINE or FUNCTION with its body."""

    kind: str    # "program" | "subroutine" | "function" | "blockdata"
    name: str
    params: tuple[str, ...]
    body: list[Stmt]
    result_type: str | None = None  # for functions
    line: int = 0
    #: Number of ``*`` alternate-return dummies in the SUBROUTINE header.
    alt_returns: int = 0

    def walk(self):
        """Yield every statement in the unit, pre-order, with nesting depth."""
        yield from walk_stmts(self.body)


@dataclass
class Program:
    """A whole Fortran file: a collection of program units."""

    units: list[ProgramUnit]
    source: str = ""

    def unit(self, name: str) -> ProgramUnit:
        for u in self.units:
            if u.name == name.upper():
                return u
        raise KeyError(name)

    @property
    def main(self) -> ProgramUnit | None:
        for u in self.units:
            if u.kind == "program":
                return u
        return None


def walk_stmts(body: list[Stmt], depth: int = 0):
    """Pre-order traversal of a statement list: yields ``(stmt, depth)``."""
    for s in body:
        yield s, depth
        for blk in s.blocks():
            yield from walk_stmts(blk, depth + 1)


def find_loops(body: list[Stmt]) -> list[DoLoop]:
    """All DO loops in a statement list, outermost-first pre-order."""
    return [s for s, _ in walk_stmts(body) if isinstance(s, DoLoop)]


def loop_depth_map(body: list[Stmt]) -> dict[int, int]:
    """Map loop uid -> nesting depth (0 = outermost) considering only DOs."""
    out: dict[int, int] = {}

    def rec(stmts: list[Stmt], d: int) -> None:
        for s in stmts:
            if isinstance(s, DoLoop):
                out[s.uid] = d
                rec(s.body, d + 1)
            else:
                for blk in s.blocks():
                    rec(blk, d)

    rec(body, 0)
    return out


def statements_of(loop: DoLoop) -> list[Stmt]:
    """Flat list of all statements inside a loop (pre-order, incl. nested)."""
    return [s for s, _ in walk_stmts(loop.body)]
