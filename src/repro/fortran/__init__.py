"""Fortran 77 front end: fixed-form source handling, lexer, parser, AST,
and pretty-printer."""

from . import ast
from .parser import ParseError, parse_expr_text, parse_program
from .printer import print_program, print_stmt, print_unit
from .source import SourceError, count_code_lines, read_logical_lines

__all__ = [
    "ast",
    "ParseError",
    "SourceError",
    "parse_program",
    "parse_expr_text",
    "print_program",
    "print_unit",
    "print_stmt",
    "read_logical_lines",
    "count_code_lines",
]
