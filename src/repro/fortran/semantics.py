"""Semantic analysis over parsed F77: the FRONT0xx diagnostic family.

Runs on a plain :class:`repro.fortran.ast.Program` (resolved or not) and
never raises on bad input -- where :mod:`repro.ir.symtab` would abort
resolution (e.g. an undeclared name under IMPLICIT NONE), this pass
reports a finding instead, which is what lets the lint driver surface
front-end errors the same way it surfaces races.

Rules
-----
======== ======== ======================================================
FRONT000 error    syntax error (tolerant entry point only), with line/col
FRONT001 error    name used without declaration under IMPLICIT NONE
FRONT002 info     declared local never referenced
FRONT003 error    subscript count differs from declared rank
FRONT004 warning  LOGICAL/arithmetic type mixing in an expression
FRONT005 error    COMMON member type conflict across units
FRONT006 error    mis-nested label-DO ranges
FRONT007 info     statement accepted but not lowered (opaque / alternate
                  returns) -- the analyses treat it conservatively
======== ======== ======================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from . import ast
from .classify import do_nesting_issues
from ..ir.symtab import SymbolTable, build_symbol_table


@dataclass(frozen=True)
class SemanticFinding:
    """One FRONT finding; mirrors the lint Diagnostic value fields."""

    rule: str
    severity: str
    unit: str
    line: int
    message: str
    var: str | None = None
    col: int | None = None

    def sort_key(self):
        return (self.unit, self.line, self.rule, self.var or "",
                self.message)


_NUMERIC = {"INTEGER", "REAL", "DOUBLEPRECISION", "COMPLEX"}
_ARITH_OPS = {"+", "-", "*", "/", "**"}
_LOGIC_OPS = {".AND.", ".OR.", ".EQV.", ".NEQV."}


def _expr_type(e: ast.Expr, st: SymbolTable) -> str | None:
    """Best-effort static type; ``None`` when unknown (stay quiet)."""
    if isinstance(e, ast.IntConst):
        return "INTEGER"
    if isinstance(e, ast.RealConst):
        return "DOUBLEPRECISION" if "D" in e.text.upper() else "REAL"
    if isinstance(e, ast.LogicalConst):
        return "LOGICAL"
    if isinstance(e, ast.StringConst):
        return "CHARACTER"
    if isinstance(e, (ast.VarRef, ast.ArrayRef)):
        sym = st.get(e.name)
        if sym is not None and sym.declared:
            return sym.type_name
        if st.implicit_none:
            return None
        return (sym.type_name if sym is not None
                else st.implicit_type(e.name))
    if isinstance(e, ast.UnOp):
        if e.op == ".NOT.":
            return "LOGICAL"
        return _expr_type(e.operand, st)
    if isinstance(e, ast.BinOp):
        if e.op in _LOGIC_OPS or e.op.startswith(".E") \
                or e.op in (".NE.", ".LT.", ".LE.", ".GT.", ".GE."):
            return "LOGICAL" if e.op not in _ARITH_OPS else None
        if e.op in _ARITH_OPS:
            lt = _expr_type(e.left, st)
            rt = _expr_type(e.right, st)
            for t in ("DOUBLEPRECISION", "REAL", "INTEGER"):
                if lt == t or rt == t:
                    return t
            return None
    return None   # NameRef / FuncRef / anything clever


def _walk_unit_exprs(unit: ast.ProgramUnit):
    """Yield ``(expr, stmt)`` for every top-level expression of the unit,
    including assignment/READ targets and DATA/EQUIVALENCE operands."""
    for s, _ in ast.walk_stmts(unit.body):
        for e in s.exprs():
            yield e, s
        if isinstance(s, ast.Assign):
            yield s.target, s
        elif isinstance(s, ast.ReadStmt):
            for it in s.items:
                yield it, s
        elif isinstance(s, ast.DataStmt):
            for targets, _values in s.groups:
                for t in targets:
                    yield t, s
        elif isinstance(s, ast.EquivalenceStmt):
            for group in s.groups:
                for t in group:
                    yield t, s


def _referenced_names(unit: ast.ProgramUnit) -> dict[str, int]:
    """name -> first line where the unit references it as data."""
    seen: dict[str, int] = {}

    def note(name: str, line: int) -> None:
        key = name.upper()
        if key not in seen:
            seen[key] = line

    for e, s in _walk_unit_exprs(unit):
        for node in ast.walk_expr(e):
            if isinstance(node, (ast.VarRef, ast.ArrayRef, ast.NameRef)):
                note(node.name, s.line)
            elif isinstance(node, ast.FuncRef) and not node.intrinsic:
                note(node.name, s.line)
    for s, _ in ast.walk_stmts(unit.body):
        if isinstance(s, ast.DoLoop):
            note(s.var, s.line)
        elif isinstance(s, ast.OpaqueStmt):
            for n in s.refs:
                note(n, s.line)
            for n in s.mods:
                note(n, s.line)
        elif isinstance(s, ast.SaveStmt):
            for n in s.names:
                note(n, s.line)
    return seen


def _check_implicit_none(unit: ast.ProgramUnit, st: SymbolTable,
                         out: list[SemanticFinding]) -> None:
    if not st.implicit_none:
        return
    flagged: set[str] = set()

    def flag(name: str, line: int) -> None:
        key = name.upper()
        if key in flagged or key in st.symbols:
            return
        flagged.add(key)
        out.append(SemanticFinding(
            "FRONT001", "error", unit.name, line,
            f"{key} is used without a declaration under IMPLICIT NONE",
            var=key))

    for e, s in _walk_unit_exprs(unit):
        for node in ast.walk_expr(e):
            if isinstance(node, (ast.VarRef, ast.ArrayRef)):
                flag(node.name, s.line)
    for s, _ in ast.walk_stmts(unit.body):
        if isinstance(s, ast.DoLoop):
            flag(s.var, s.line)
        elif isinstance(s, ast.OpaqueStmt):
            for n in s.refs + s.mods:
                flag(n, s.line)


def _check_unused(unit: ast.ProgramUnit, st: SymbolTable,
                  out: list[SemanticFinding]) -> None:
    if unit.kind == "blockdata":
        return
    referenced = _referenced_names(unit)
    decl_lines: dict[str, int] = {}
    for s, _ in ast.walk_stmts(unit.body):
        if isinstance(s, ast.TypeDecl):
            for ent in s.entities:
                decl_lines.setdefault(ent.name.upper(), s.line)
    for name in sorted(decl_lines):
        sym = st.get(name)
        if sym is None or not sym.declared:
            continue
        if sym.storage != "local" or sym.external or sym.saved:
            continue
        if name in referenced:
            continue
        out.append(SemanticFinding(
            "FRONT002", "info", unit.name, decl_lines[name],
            f"{name} is declared but never referenced", var=name))


def _check_rank(unit: ast.ProgramUnit, st: SymbolTable,
                out: list[SemanticFinding]) -> None:
    seen: set[tuple[str, int, int]] = set()
    for e, s in _walk_unit_exprs(unit):
        for node in ast.walk_expr(e):
            if not isinstance(node, (ast.ArrayRef, ast.NameRef)):
                continue
            sym = st.get(node.name)
            if sym is None or not sym.is_array:
                continue
            nsubs = len(node.children())
            if nsubs == sym.rank:
                continue
            key = (node.name.upper(), nsubs, s.line)
            if key in seen:
                continue
            seen.add(key)
            out.append(SemanticFinding(
                "FRONT003", "error", unit.name, s.line,
                f"{node.name} is declared with rank {sym.rank} but "
                f"referenced with {nsubs} subscript(s)", var=node.name))


def _check_types(unit: ast.ProgramUnit, st: SymbolTable,
                 out: list[SemanticFinding]) -> None:
    def visit(e: ast.Expr, line: int) -> None:
        for node in ast.walk_expr(e):
            if not isinstance(node, ast.BinOp):
                continue
            lt = _expr_type(node.left, st)
            rt = _expr_type(node.right, st)
            if node.op in _ARITH_OPS:
                for side, t in (("left", lt), ("right", rt)):
                    if t == "LOGICAL":
                        out.append(SemanticFinding(
                            "FRONT004", "warning", unit.name, line,
                            f"LOGICAL {side} operand of arithmetic "
                            f"{node.op}"))
            elif node.op in _LOGIC_OPS:
                for side, t in (("left", lt), ("right", rt)):
                    if t in _NUMERIC:
                        out.append(SemanticFinding(
                            "FRONT004", "warning", unit.name, line,
                            f"{t} {side} operand of logical {node.op}"))

    for e, s in _walk_unit_exprs(unit):
        visit(e, s.line)
    # LOGICAL <- arithmetic (or the reverse) assignments are certain bugs.
    for s, _ in ast.walk_stmts(unit.body):
        if not isinstance(s, ast.Assign):
            continue
        tt = _expr_type(s.target, st)
        vt = _expr_type(s.value, st)
        if tt is None or vt is None:
            continue
        if (tt == "LOGICAL") != (vt == "LOGICAL"):
            out.append(SemanticFinding(
                "FRONT004", "warning", unit.name, s.line,
                f"assignment mixes {tt} target with {vt} value",
                var=getattr(s.target, "name", None)))


def _common_layouts(unit: ast.ProgramUnit, st: SymbolTable):
    """block -> ordered [(member, type, rank)] plus the COMMON line."""
    layouts: dict[str, tuple[int, list[tuple[str, str, int]]]] = {}
    for s, _ in ast.walk_stmts(unit.body):
        if not isinstance(s, ast.CommonStmt):
            continue
        for block, ents in s.blocks_:
            line, members = layouts.setdefault(block, (s.line, []))
            for ent in ents:
                sym = st.get(ent.name)
                tname = sym.type_name if sym is not None \
                    else st.implicit_type(ent.name)
                rank = sym.rank if sym is not None else len(ent.dims)
                members.append((ent.name.upper(), tname, rank))
    return layouts


def _check_common_types(units, tables, out: list[SemanticFinding]) -> None:
    """FRONT005: positional member-type conflicts between units.

    Layout (length/shape) conflicts are LINT003's job; this rule reports
    the *type* disagreements LINT003's byte-layout check cannot see for
    same-size types (INTEGER vs REAL vs LOGICAL all occupy one cell)."""
    ref: dict[str, tuple[str, int, list[tuple[str, str, int]]]] = {}
    for unit in units:
        st = tables[unit.name]
        for block, (line, members) in _common_layouts(unit, st).items():
            if block not in ref:
                ref[block] = (unit.name, line, members)
                continue
            ref_unit, _ref_line, ref_members = ref[block]
            if len(ref_members) != len(members):
                continue   # shape conflict: LINT003 territory
            for i, ((rn, rt, _rr), (mn, mt, _mr)) in enumerate(
                    zip(ref_members, members)):
                if rt != mt:
                    blk = block or "blank"
                    out.append(SemanticFinding(
                        "FRONT005", "error", unit.name, line,
                        f"COMMON /{blk}/ member {i + 1} is {mt} {mn} "
                        f"here but {rt} {rn} in {ref_unit}", var=mn))


def _check_opaque(unit: ast.ProgramUnit,
                  out: list[SemanticFinding]) -> None:
    for s, _ in ast.walk_stmts(unit.body):
        if isinstance(s, ast.OpaqueStmt):
            effects = []
            if s.refs:
                effects.append(f"reads {', '.join(s.refs)}")
            if s.mods:
                effects.append(f"may write {', '.join(s.mods)}")
            eff = f" ({'; '.join(effects)})" if effects else ""
            out.append(SemanticFinding(
                "FRONT007", "info", unit.name, s.line,
                f"{s.kind} statement accepted but not lowered{eff}"))
        elif isinstance(s, ast.CallStmt) and s.alt_labels:
            out.append(SemanticFinding(
                "FRONT007", "info", unit.name, s.line,
                f"alternate-return CALL {s.name} accepted but not "
                f"lowered"))
        elif isinstance(s, ast.Return) and s.alt is not None:
            out.append(SemanticFinding(
                "FRONT007", "info", unit.name, s.line,
                "alternate RETURN accepted but not lowered"))


def analyze_unit(unit: ast.ProgramUnit,
                 st: SymbolTable | None = None) -> list[SemanticFinding]:
    """All unit-local FRONT findings for one program unit."""
    st = st or build_symbol_table(unit)
    out: list[SemanticFinding] = []
    _check_implicit_none(unit, st, out)
    _check_unused(unit, st, out)
    _check_rank(unit, st, out)
    _check_types(unit, st, out)
    _check_opaque(unit, out)
    return sorted(out, key=SemanticFinding.sort_key)


def analyze_program(prog: ast.Program) -> list[SemanticFinding]:
    """Unit-local findings plus cross-unit COMMON checks and (when the
    original source is attached) mis-nested DO detection."""
    out: list[SemanticFinding] = []
    tables = {u.name: build_symbol_table(u) for u in prog.units}
    for u in prog.units:
        out.extend(analyze_unit(u, tables[u.name]))
    _check_common_types(prog.units, tables, out)
    if prog.source:
        out.extend(_nesting_findings(prog.source, prog.units))
    return sorted(out, key=SemanticFinding.sort_key)


def _unit_at_line(units, line: int) -> str:
    name = units[0].name if units else ""
    for u in units:
        if u.line <= line:
            name = u.name
    return name


def _nesting_findings(source: str, units) -> list[SemanticFinding]:
    out = []
    for issue in do_nesting_issues(source):
        out.append(SemanticFinding(
            "FRONT006", "error", _unit_at_line(units, issue.line),
            issue.line, issue.message, var=str(issue.label)))
    return out


def analyze_source(text: str) -> list[SemanticFinding]:
    """Tolerant whole-file analysis: never raises.

    A file that fails to parse still gets FRONT000 (with line/column from
    the parser) and the classification-level FRONT006 nesting check, so a
    batch run over arbitrary inputs always yields diagnostics, never a
    traceback."""
    from .parser import ParseError, parse_program
    try:
        prog = parse_program(text)
    except ParseError as e:
        out = [SemanticFinding("FRONT000", "error", "", e.line or 0,
                               f"syntax error: {e}", col=e.col)]
        out.extend(_nesting_findings(text, []))
        return sorted(out, key=SemanticFinding.sort_key)
    except Exception as e:   # SourceError and friends
        return [SemanticFinding("FRONT000", "error", "",
                                getattr(e, "line_number", 0) or 0,
                                f"syntax error: {e}")]
    return analyze_program(prog)
