"""Fixed-form Fortran 77 source handling.

Classic Fortran 77 source is column-oriented:

* column 1: ``C``, ``c`` or ``*`` marks a comment line;
* columns 1-5: an optional numeric statement label;
* column 6: any non-blank, non-zero character marks a continuation line;
* columns 7-72: the statement field (columns beyond 72 are sequence
  numbers and are ignored).

This module turns raw text into :class:`LogicalLine` objects -- label,
statement text and the physical line numbers that produced it -- which is
what the lexer and parser consume.  We are deliberately tolerant of the
"relaxed" fixed form found in real codes: tabs in the label field, blank
lines, lowercase comment markers, and ``!`` trailing comments (a common
vendor extension, also used by our corpus).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SourceError(Exception):
    """Raised for malformed fixed-form input (e.g. a dangling continuation)."""

    def __init__(self, message: str, line_number: int | None = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


@dataclass
class LogicalLine:
    """One logical Fortran statement, possibly assembled from continuations."""

    label: int | None
    text: str
    #: 1-based physical line numbers contributing to this logical line.
    physical_lines: list[int] = field(default_factory=list)

    @property
    def first_line(self) -> int:
        return self.physical_lines[0] if self.physical_lines else 0


def is_comment_line(raw: str) -> bool:
    """True for full-line comments (including blank lines)."""
    if not raw.strip():
        return True
    c0 = raw[0]
    if c0 in "Cc*!":
        return True
    return False


def _strip_inline_comment(stmt: str) -> str:
    """Remove a trailing ``!`` comment, respecting character literals."""
    out = []
    in_string = False
    quote = ""
    for ch in stmt:
        if in_string:
            out.append(ch)
            if ch == quote:
                in_string = False
            continue
        if ch in "'\"":
            in_string = True
            quote = ch
            out.append(ch)
            continue
        if ch == "!":
            break
        out.append(ch)
    return "".join(out)


def split_line(raw: str, line_number: int) -> tuple[int | None, bool, str]:
    """Split a physical line into ``(label, is_continuation, statement_text)``.

    Tabs in the first six columns are expanded per the common DEC
    convention: a tab skips directly to the statement field.
    """
    if "\t" in raw[:6]:
        head, _, rest = raw.partition("\t")
        label_field = head[:5]
        # A digit immediately after the tab is a continuation marker.
        cont = bool(rest) and rest[0].isdigit() and rest[0] != "0"
        stmt = rest[1:] if cont else rest
    else:
        label_field = raw[:5]
        cont_field = raw[5:6]
        cont = cont_field not in ("", " ", "0")
        stmt = raw[6:72]
    label_field = label_field.strip()
    label: int | None = None
    if label_field:
        if not label_field.isdigit():
            raise SourceError(f"bad label field {label_field!r}", line_number)
        label = int(label_field)
    return label, cont, _strip_inline_comment(stmt)


def read_logical_lines(text: str) -> list[LogicalLine]:
    """Assemble fixed-form source text into logical lines.

    Comment lines interspersed among continuations are skipped, as the
    standard allows.
    """
    lines: list[LogicalLine] = []
    current: LogicalLine | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if is_comment_line(raw):
            continue
        label, cont, stmt = split_line(raw, lineno)
        if cont:
            if current is None:
                raise SourceError("continuation with no initial line", lineno)
            if label is not None:
                raise SourceError("continuation line carries a label", lineno)
            current.text += stmt
            current.physical_lines.append(lineno)
            continue
        if current is not None:
            lines.append(current)
        current = LogicalLine(label=label, text=stmt, physical_lines=[lineno])
    if current is not None:
        lines.append(current)
    return [ln for ln in lines if ln.text.strip() or ln.label is not None]


def count_code_lines(text: str) -> int:
    """Number of non-comment, non-blank physical lines (Table 1's metric)."""
    return sum(1 for raw in text.splitlines() if not is_comment_line(raw))
