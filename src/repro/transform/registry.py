"""Transformation registry: the live Figure-2 taxonomy.

``TAXONOMY`` reproduces the paper's Figure 2 grouping; the registry maps
transformation names to implementations and is what the PED session's
transform menu lists.  The "Interprocedural" group holds the paper's
*needed* transformations (loop embedding/extraction, control-flow
simplification, reduction restructuring) implemented here as extensions.
"""

from __future__ import annotations

from .base import Transformation
from .controlflow import ControlFlowSimplification
from .depbreak import ArrayRenaming, LoopAlignment, LoopPeeling, \
    LoopSplitting, Privatization, ReductionRecognition, ScalarExpansion
from .interproc_t import LoopEmbedding, LoopExtraction
from .memory import LoopUnrolling, ScalarReplacement, StripMining, \
    UnrollAndJam
from .misc import LoopBoundsAdjusting, Parallelize, Serialize, \
    StatementAddition, StatementDeletion
from .reorder import LoopDistribution, LoopFusion, LoopInterchange, \
    LoopReversal, LoopSkewing, StatementInterchange

_ALL: list[type[Transformation]] = [
    # Reordering
    LoopDistribution, LoopFusion, LoopInterchange, LoopReversal,
    LoopSkewing, StatementInterchange,
    # Dependence breaking
    Privatization, ScalarExpansion, ArrayRenaming, LoopPeeling,
    LoopSplitting, LoopAlignment, ReductionRecognition,
    # Memory optimizing
    StripMining, LoopUnrolling, UnrollAndJam, ScalarReplacement,
    # Miscellaneous
    Parallelize, Serialize, LoopBoundsAdjusting, StatementAddition,
    StatementDeletion, ControlFlowSimplification,
    # Interprocedural (paper's "needed" transformations)
    LoopEmbedding, LoopExtraction,
]

REGISTRY: dict[str, type[Transformation]] = {c.name: c for c in _ALL}

#: Figure 2 of the paper, regenerated from the registry by the benchmark.
TAXONOMY: dict[str, list[str]] = {}
for cls in _ALL:
    TAXONOMY.setdefault(cls.category, []).append(cls.name)


def get(name: str) -> Transformation:
    try:
        return REGISTRY[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown transformation {name!r}; available: "
            f"{', '.join(sorted(REGISTRY))}") from None


def names() -> list[str]:
    return sorted(REGISTRY)


def taxonomy_text() -> str:
    """Figure 2 as text: category headings with their transformations."""
    lines = []
    order = ["Reordering", "Dependence Breaking", "Memory Optimizing",
             "Miscellaneous", "Interprocedural"]
    for cat in order:
        if cat not in TAXONOMY:
            continue
        lines.append(cat)
        for name in sorted(TAXONOMY[cat]):
            pretty = name.replace("_", " ").title()
            lines.append(f"    {pretty}")
    return "\n".join(lines)
