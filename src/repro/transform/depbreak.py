"""Dependence-breaking transformations: privatization, scalar expansion,
array renaming, peeling, splitting, alignment, and the reduction
restructuring the paper lists as *needed* (Figure 2, Section 4.3)."""

from __future__ import annotations

from ..analysis.arraykills import privatizable_arrays
from ..analysis.kills import scalar_kills
from ..analysis.symbolic import trip_count
from ..fortran import ast
from .base import Advice, TContext, TransformError, Transformation, \
    add_expr, declare_array, fresh_name, owner_or_raise, sub_expr, \
    substitute_in_stmt


class Privatization(Transformation):
    """Mark a variable private to the loop body (Section 3.1's variable
    classification, as a transformation)."""

    name = "privatization"
    category = "Dependence Breaking"

    def check(self, ctx: TContext) -> Advice:
        if ctx.loop is None:
            return Advice.no("select a loop")
        var = (ctx.param("var") or "").upper()
        if not var:
            return Advice.no("name the variable to privatize")
        st = ctx.uir.symtab
        sym = st.get(var)
        if sym is None:
            return Advice.no(f"{var} is not a symbol in this unit")
        if ctx.param("force"):
            return Advice.yes(True, "user asserts the variable is "
                                    "privatizable")
        if sym.is_array:
            env = ctx.analyzer._env_at(ctx.loop)
            facts = ctx.analyzer._facts_with_ranges(env)
            oracle = ctx.analyzer.oracle
            cb = oracle.call_sections_for(st) \
                if hasattr(oracle, "call_sections_for") else None
            ok = var in privatizable_arrays(
                ctx.loop.loop, st, oracle, env, call_sections=cb,
                facts=facts)
            if not ok:
                return Advice.unsafe(
                    f"array kill analysis cannot prove {var} is wholly "
                    "written before read each iteration")
        else:
            killed = {p.name for p in scalar_kills(
                ctx.loop.loop, st, ctx.analyzer.oracle)}
            if var not in killed:
                return Advice.unsafe(
                    f"{var} is not killed on every iteration")
        return Advice.yes(True, f"{var} carries no value between "
                                "iterations")

    def _do(self, ctx: TContext):
        var = ctx.param("var").upper()
        ctx.loop.loop.private_vars.add(var)
        return f"privatized {var} in loop at line {ctx.loop.line}", []


class ScalarExpansion(Transformation):
    """Expand a scalar into an array indexed by the loop variable.

    The most-used transformation at the workshop (Table 4): it removes
    the loop-carried anti/output dependences a shared temporary induces.
    """

    name = "scalar_expansion"
    category = "Dependence Breaking"

    def check(self, ctx: TContext) -> Advice:
        if ctx.loop is None:
            return Advice.no("select a loop")
        var = (ctx.param("var") or "").upper()
        if not var:
            return Advice.no("name the scalar to expand")
        st = ctx.uir.symtab
        sym = st.get(var)
        if sym is None or sym.is_array:
            return Advice.no(f"{var} is not a scalar in this unit")
        lp = ctx.loop.loop
        assigned = any(
            isinstance(s, ast.Assign) and isinstance(s.target, ast.VarRef)
            and s.target.name == var
            for s, _ in ast.walk_stmts(lp.body))
        if not assigned:
            return Advice.no(f"{var} is not assigned inside the loop")
        env = ctx.analyzer._env_at(ctx.loop)
        n = trip_count(lp, env)
        if n is None:
            lo = ctx.param("extent")
            if lo is None:
                return Advice.unsafe(
                    "loop trip count unknown; pass extent= to size the "
                    "expansion array")
        killed = {p.name for p in scalar_kills(lp, st, ctx.analyzer.oracle)}
        if var not in killed and not ctx.param("force"):
            return Advice.unsafe(
                f"{var} has an upward-exposed use: expansion would read "
                "an undefined element on the first iteration")
        return Advice.yes(True, f"expanding {var} removes its carried "
                                "anti/output dependences")

    def _do(self, ctx: TContext):
        var = ctx.param("var").upper()
        lp = ctx.loop.loop
        st = ctx.uir.symtab
        env = ctx.analyzer._env_at(ctx.loop)
        n = trip_count(lp, env) or ctx.param("extent")
        sym = st.get(var)
        new = fresh_name(var, set(st.symbols))
        declare_array(ctx.uir, new, sym.type_name,
                      (ast.DimSpec(ast.IntConst(1), ast.IntConst(int(n))),))
        # Replace scalar refs with array refs indexed by a normalized
        # iteration number.
        idx: ast.Expr = ast.VarRef(lp.var)
        start = lp.start
        if not (isinstance(start, ast.IntConst) and start.value == 1):
            idx = add_expr(sub_expr(ast.VarRef(lp.var), start),
                           ast.IntConst(1))
        env_subst = {var: ast.ArrayRef(new, (idx,))}
        for s in lp.body:
            substitute_in_stmt(s, env_subst)
        # Live-out safety: copy the last element back after the loop.
        owner, pos = owner_or_raise(ctx.uir, lp)
        last_idx: ast.Expr = lp.end
        if not (isinstance(lp.start, ast.IntConst)
                and lp.start.value == 1):
            last_idx = add_expr(sub_expr(lp.end, lp.start), ast.IntConst(1))
        owner.insert(pos + 1, ast.Assign(
            target=ast.VarRef(var),
            value=ast.ArrayRef(new, (last_idx,)), line=lp.line))
        return f"expanded scalar {var} into array {new}", []


class ArrayRenaming(Transformation):
    """Give a new name to an array over a statement range, breaking
    storage-related (output/anti) dependences."""

    name = "array_renaming"
    category = "Dependence Breaking"

    def check(self, ctx: TContext) -> Advice:
        var = (ctx.param("var") or "").upper()
        stmts = ctx.param("stmts")
        if not var or not stmts:
            return Advice.no("pass var= and stmts= (statement list)")
        sym = ctx.uir.symtab.get(var)
        if sym is None or not sym.is_array:
            return Advice.no(f"{var} is not an array")
        return Advice(True, bool(ctx.param("force")), True,
                      ["renaming changes which storage later reads see; "
                       "the user must confirm no renamed value flows to an "
                       "un-renamed use (pass force=True)"])

    def _do(self, ctx: TContext):
        from .base import rename_array_in_stmt
        var = ctx.param("var").upper()
        stmts = ctx.param("stmts")
        st = ctx.uir.symtab
        sym = st.get(var)
        new = fresh_name(var, set(st.symbols))
        declare_array(ctx.uir, new, sym.type_name, sym.dims)
        for s in stmts:
            rename_array_in_stmt(s, var, new)
        return f"renamed {var} to {new} in {len(stmts)} statement(s)", []


class LoopPeeling(Transformation):
    """Peel the first (or last) k iterations out of the loop."""

    name = "loop_peeling"
    category = "Dependence Breaking"

    def check(self, ctx: TContext) -> Advice:
        if ctx.loop is None:
            return Advice.no("select a loop")
        k = ctx.param("iterations", 1)
        if not isinstance(k, int) or k < 1:
            return Advice.no("iterations must be a positive integer")
        step = ctx.loop.loop.step
        if step is not None and not (isinstance(step, ast.IntConst)
                                     and step.value == 1):
            return Advice.no("peeling implemented for unit-step loops")
        from .reorder import _has_unstructured_flow
        if _has_unstructured_flow(ctx.loop.loop.body):
            return Advice.no("loop body contains unstructured control flow")
        return Advice.yes(False, "peeling preserves execution order")

    def _do(self, ctx: TContext):
        lp = ctx.loop.loop
        k = ctx.param("iterations", 1)
        where = ctx.param("where", "front")
        owner, pos = owner_or_raise(ctx.uir, lp)
        peeled: list[ast.Stmt] = []
        for j in range(k):
            body = [s.clone() for s in lp.body
                    if not (isinstance(s, ast.Continue)
                            and s.label == lp.term_label)]
            if where == "front":
                value = add_expr(lp.start, ast.IntConst(j))
            else:
                value = sub_expr(lp.end, ast.IntConst(k - 1 - j))
            for s in body:
                substitute_in_stmt(s, {lp.var: value})
            guard_cond = ast.BinOp(
                ".LE.", value if where == "front" else lp.start,
                lp.end if where == "front" else value)
            peeled.append(ast.IfBlock(cond=guard_cond, then_body=body,
                                      line=lp.line))
        if where == "front":
            lp.start = add_expr(lp.start, ast.IntConst(k))
            owner[pos:pos] = peeled
        else:
            lp.end = sub_expr(lp.end, ast.IntConst(k))
            owner[pos + 1:pos + 1] = peeled
        return f"peeled {k} iteration(s) off the {where} of the loop", []


class LoopSplitting(Transformation):
    """Index-set splitting: one loop becomes two over [lo,p] and [p+1,hi]."""

    name = "loop_splitting"
    category = "Dependence Breaking"

    def check(self, ctx: TContext) -> Advice:
        if ctx.loop is None:
            return Advice.no("select a loop")
        if ctx.param("at") is None:
            return Advice.no("pass at= (the split point expression)")
        step = ctx.loop.loop.step
        if step is not None and not (isinstance(step, ast.IntConst)
                                     and step.value == 1):
            return Advice.no("splitting implemented for unit-step loops")
        return Advice.yes(False, "splitting preserves execution order")

    def _do(self, ctx: TContext):
        lp = ctx.loop.loop
        at = ctx.param("at")
        if isinstance(at, int):
            at = ast.IntConst(at)
        from .reorder import _normalize_enddo
        if not _normalize_enddo(lp, ctx.uir.unit):
            raise TransformError("terminal label is a GOTO target")
        owner, pos = owner_or_raise(ctx.uir, lp)
        # Clamp so a split point outside [start, end] degenerates to a
        # zero-trip piece instead of changing the iteration set.
        first_end = ast.FuncRef("MIN", (at, lp.end), intrinsic=True)
        second_start = ast.FuncRef(
            "MAX", (add_expr(at, ast.IntConst(1)), lp.start),
            intrinsic=True)
        second = ast.DoLoop(
            var=lp.var, start=second_start, end=lp.end,
            step=None, body=[s.clone() for s in lp.body],
            private_vars=set(lp.private_vars), line=lp.line)
        lp.end = first_end
        owner.insert(pos + 1, second)
        return f"split loop at {at}", []


class LoopAlignment(Transformation):
    """Align a carried dependence by shifting one statement's iteration
    space, converting the carried dependence to loop-independent.

    Restricted form: the loop body is a sequence of assignments; the
    chosen statement is shifted by ``offset`` iterations with peel/guard
    compensation.
    """

    name = "loop_alignment"
    category = "Dependence Breaking"

    def check(self, ctx: TContext) -> Advice:
        if ctx.loop is None:
            return Advice.no("select a loop")
        target = ctx.param("stmt")
        offset = ctx.param("offset")
        if target is None or not isinstance(offset, int) or offset == 0:
            return Advice.no("pass stmt= and a non-zero integer offset=")
        lp = ctx.loop.loop
        if not all(isinstance(s, (ast.Assign, ast.Continue))
                   for s in lp.body):
            return Advice.no("alignment implemented for straight-line "
                             "assignment bodies")
        if target not in lp.body:
            return Advice.no("stmt must be a top-level statement of the "
                             "loop body")
        step = lp.step
        if step is not None and not (isinstance(step, ast.IntConst)
                                     and step.value == 1):
            return Advice.no("alignment implemented for unit-step loops")
        return Advice.yes(True, "aligned instances execute in the same "
                                "iteration")

    def _do(self, ctx: TContext):
        lp = ctx.loop.loop
        target: ast.Stmt = ctx.param("stmt")
        offset: int = ctx.param("offset")
        # Shift the statement: it now executes for iteration value
        # (I - offset); guards keep the shifted instances in range and
        # peel code covers the displaced boundary instances.
        shifted = target.clone()
        substitute_in_stmt(shifted, {
            lp.var: sub_expr(ast.VarRef(lp.var), ast.IntConst(offset))})
        lo_guard = ast.BinOp(
            ".GE.", sub_expr(ast.VarRef(lp.var), ast.IntConst(offset)),
            lp.start)
        hi_guard = ast.BinOp(
            ".LE.", sub_expr(ast.VarRef(lp.var), ast.IntConst(offset)),
            lp.end)
        guarded = ast.IfBlock(cond=ast.BinOp(".AND.", lo_guard, hi_guard),
                              then_body=[shifted], line=target.line)
        idx = lp.body.index(target)
        lp.body[idx] = guarded
        owner, pos = owner_or_raise(ctx.uir, lp)
        # Compensation code for the instances the shift pushed out of the
        # loop's range: offset > 0 leaves the last ``offset`` instances
        # unexecuted (run them after the loop); offset < 0 the first ones
        # (run them before).
        comp: list[ast.Stmt] = []
        for j in range(1, abs(offset) + 1):
            inst = target.clone()
            if offset > 0:
                value = sub_expr(lp.end, ast.IntConst(offset - j))
            else:
                value = add_expr(lp.start, ast.IntConst(j - 1))
            substitute_in_stmt(inst, {lp.var: value})
            comp.append(inst)
        if offset > 0:
            owner[pos + 1:pos + 1] = comp
        else:
            owner[pos:pos] = comp
        return (f"aligned statement at line {target.line} by "
                f"{offset} iteration(s)"), []


class ReductionRecognition(Transformation):
    """Restructure a recognized reduction so the loop can run in parallel.

    ``s = s + e(i)`` becomes ``SP(i) = e(i)`` inside the (now
    parallelizable) loop plus a sequential accumulation loop after it --
    the classic two-phase reduction (Section 4.3, "Reductions").
    """

    name = "reduction_recognition"
    category = "Dependence Breaking"

    def _find(self, ctx: TContext, var: str) -> ast.Assign | None:
        for s, _ in ast.walk_stmts(ctx.loop.loop.body):
            if isinstance(s, ast.Assign) and isinstance(s.target,
                                                        ast.VarRef) \
                    and s.target.name == var:
                return s
        return None

    def check(self, ctx: TContext) -> Advice:
        if ctx.loop is None:
            return Advice.no("select a loop")
        var = (ctx.param("var") or "").upper()
        cands = ctx.deps.reductions
        if not var:
            if len(cands) == 1:
                var = next(iter(cands))
            else:
                return Advice.no(
                    f"pass var=; reduction candidates here: "
                    f"{sorted(cands) or 'none'}")
        if var not in cands:
            return Advice.unsafe(
                f"{var} does not match a recognized reduction pattern")
        stmt = self._find(ctx, var)
        if stmt is None or not isinstance(stmt.value, ast.BinOp) \
                or stmt.value.op not in ("+", "-"):
            return Advice.no("only sum reductions are restructured "
                             "automatically")
        if stmt not in ctx.loop.loop.body:
            return Advice.unsafe(
                "reduction update is conditional; partial-sum elements "
                "would be undefined for skipped iterations")
        env = ctx.analyzer._env_at(ctx.loop)
        if trip_count(ctx.loop.loop, env) is None \
                and ctx.param("extent") is None:
            return Advice.unsafe("loop trip count unknown; pass extent=")
        return Advice.yes(True, "sum reductions reassociate; restructuring "
                                "exposes the parallel phase")

    def _do(self, ctx: TContext):
        var = (ctx.param("var") or "").upper()
        if not var:
            var = next(iter(ctx.deps.reductions))
        lp = ctx.loop.loop
        st = ctx.uir.symtab
        stmt = self._find(ctx, var)
        env = ctx.analyzer._env_at(ctx.loop)
        n = trip_count(lp, env) or ctx.param("extent")
        sym = st.get(var)
        part = fresh_name(var, set(st.symbols))
        declare_array(ctx.uir, part, sym.type_name,
                      (ast.DimSpec(ast.IntConst(1), ast.IntConst(int(n))),))
        idx: ast.Expr = ast.VarRef(lp.var)
        if not (isinstance(lp.start, ast.IntConst) and lp.start.value == 1):
            idx = add_expr(sub_expr(ast.VarRef(lp.var), lp.start),
                           ast.IntConst(1))
        contrib = stmt.value.right
        if stmt.value.op == "-":
            contrib = ast.UnOp("-", contrib)
        stmt.target = ast.ArrayRef(part, (idx,))
        stmt.value = contrib
        # Accumulation loop after the parallel phase.
        owner, pos = owner_or_raise(ctx.uir, lp)
        acc = ast.DoLoop(
            var=lp.var, start=ast.IntConst(1), end=ast.IntConst(int(n)),
            step=None,
            body=[ast.Assign(
                target=ast.VarRef(var),
                value=ast.BinOp("+", ast.VarRef(var),
                                ast.ArrayRef(part, (ast.VarRef(lp.var),))),
                line=lp.line)],
            line=lp.line)
        owner.insert(pos + 1, acc)
        return (f"restructured sum reduction on {var}: parallel phase "
                f"writes {part}, sequential phase accumulates"), []
