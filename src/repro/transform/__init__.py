"""Source-to-source transformations under the power-steering paradigm."""

from .base import Advice, TContext, TransformError, TransformResult, \
    Transformation
from .registry import REGISTRY, TAXONOMY, get, names, taxonomy_text

__all__ = [
    "Advice", "TContext", "TransformError", "TransformResult",
    "Transformation",
    "REGISTRY", "TAXONOMY", "get", "names", "taxonomy_text",
]
