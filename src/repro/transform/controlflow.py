"""Control-flow simplification (Section 5.3, "Complex Control Flow").

neoss, nxsns and dpmin were written in Fortran dialects without
structured IF; the workshop participants had to restructure GOTO webs by
hand before PED's loop transformations became usable.  This module
automates the cases the paper shows:

* **arithmetic IF** ``IF (e) l1, l2, l3`` rewrites to logical IFs + GOTOs
  (and often further simplifies);
* **goto-over** ``IF (c) GOTO L; <b>; L:`` becomes
  ``IF (.NOT. c) THEN <b> ENDIF``;
* **if/else web** -- the paper's neoss example --
  ``IF (c) GOTO L1; <b2>; GOTO L2; L1: <b3>; L2: <b4>`` becomes a
  structured IF-THEN-ELSE.

The passes run to a fixpoint inside every statement list.  As the paper
notes, this need is unique to an interactive setting: automatic systems
use control dependence internally, but a *user* has to read the code.
"""

from __future__ import annotations

from ..fortran import ast
from .base import Advice, TContext, Transformation
from .reorder import _label_targets


def _negate(cond: ast.Expr) -> ast.Expr:
    flip = {".LT.": ".GE.", ".GE.": ".LT.", ".LE.": ".GT.", ".GT.": ".LE.",
            ".EQ.": ".NE.", ".NE.": ".EQ."}
    if isinstance(cond, ast.BinOp) and cond.op in flip:
        return ast.BinOp(flip[cond.op], cond.left, cond.right)
    if isinstance(cond, ast.UnOp) and cond.op == ".NOT.":
        return cond.operand
    return ast.UnOp(".NOT.", cond)


def _goto_target(s: ast.Stmt) -> int | None:
    """Label targeted when ``s`` is IF (c) GOTO L."""
    if isinstance(s, ast.LogicalIf) and isinstance(s.stmt, ast.Goto):
        return s.stmt.target
    return None


def convert_arith_ifs(body: list[ast.Stmt]) -> int:
    """Rewrite arithmetic IFs into logical IF + GOTO sequences in place.

    ``IF (e) l1, l2, l3`` means: goto l1 if e<0, l2 if e=0, l3 if e>0.
    Common degenerate forms produce a single logical IF.
    """
    changed = 0
    for i, s in enumerate(list(body)):
        for blk in s.blocks():
            changed += convert_arith_ifs(blk)
        if not isinstance(s, ast.ArithIf):
            continue
        e, l1, l2, l3 = s.expr, s.neg_label, s.zero_label, s.pos_label
        idx = body.index(s)
        repl: list[ast.Stmt] = []

        def lif(op: str, target: int) -> ast.Stmt:
            return ast.LogicalIf(
                cond=ast.BinOp(op, e, ast.IntConst(0)),
                stmt=ast.Goto(target, line=s.line), line=s.line)

        if l1 == l2 == l3:
            repl = [ast.Goto(l1, label=s.label, line=s.line)]
        elif l1 == l2:
            repl = [lif(".LE.", l1), ast.Goto(l3, line=s.line)]
        elif l2 == l3:
            repl = [lif(".LT.", l1), ast.Goto(l2, line=s.line)]
        elif l1 == l3:
            repl = [lif(".NE.", l1), ast.Goto(l2, line=s.line)]
        else:
            repl = [lif(".LT.", l1), lif(".EQ.", l2),
                    ast.Goto(l3, line=s.line)]
        repl[0].label = s.label
        body[idx:idx + 1] = repl
        changed += 1
    return changed


def remove_trivial_gotos(body: list[ast.Stmt]) -> int:
    """Delete ``GOTO L`` (or ``IF (c) GOTO L``) that jumps to the very
    next statement -- a common residue of arithmetic-IF conversion."""
    changed = 0
    i = 0
    while i < len(body):
        s = body[i]
        for blk in s.blocks():
            changed += remove_trivial_gotos(blk)
        nxt = body[i + 1] if i + 1 < len(body) else None
        target = None
        if isinstance(s, ast.Goto):
            target = s.target
        elif (t := _goto_target(s)) is not None \
                and not any(isinstance(n, ast.FuncRef)
                            for n in ast.walk_expr(s.cond)):
            target = t
        if target is not None and nxt is not None \
                and nxt.label == target:
            if s.label is None:
                body.pop(i)
                changed += 1
                continue
            if nxt.label is None or nxt.label == s.label:
                nxt.label = s.label
                body.pop(i)
                changed += 1
                continue
        i += 1
    return changed


def _find_label(body: list[ast.Stmt], label: int,
                start: int) -> int | None:
    for j in range(start, len(body)):
        if body[j].label == label:
            return j
    return None


def _label_refs_outside(unit_body: list[ast.Stmt], label: int,
                        exclude: set[int]) -> bool:
    """Is ``label`` targeted by any transfer not in ``exclude`` uids?"""
    for s, _ in ast.walk_stmts(unit_body):
        if s.uid in exclude:
            continue
        if isinstance(s, ast.Goto) and s.target == label:
            return True
        if isinstance(s, ast.LogicalIf) and isinstance(s.stmt, ast.Goto) \
                and s.stmt.target == label and s.uid not in exclude \
                and s.stmt.uid not in exclude:
            return True
        if isinstance(s, ast.ArithIf) and label in (s.neg_label,
                                                    s.zero_label,
                                                    s.pos_label):
            return True
        if isinstance(s, ast.ComputedGoto) and label in s.targets:
            return True
    return False


def structure_gotos(body: list[ast.Stmt],
                    unit_body: list[ast.Stmt]) -> int:
    """One pass of goto-elimination patterns over a statement list.

    Returns the number of rewrites performed.  Patterns only fire when
    the labels involved have no other references, so semantics are
    preserved exactly.
    """
    changed = 0
    i = 0
    while i < len(body):
        s = body[i]
        for blk in s.blocks():
            changed += structure_gotos(blk, unit_body)
        t = _goto_target(s)
        if t is None:
            i += 1
            continue
        j = _find_label(body, t, i + 1)
        if j is None:
            i += 1
            continue
        between = body[i + 1:j]
        if any(_contains_label_target(b, unit_body, {s.uid, s.stmt.uid})
               for b in between):
            i += 1
            continue
        # Pattern B: IF (c) GOTO L1; <b2>; GOTO L2; L1: <b3>; L2: <b4>
        if between and isinstance(between[-1], ast.Goto):
            l2 = between[-1].target
            k = _find_label(body, l2, j)
            if k is not None and k > j:
                b3 = body[j:k]
                goto_uid = between[-1].uid
                if not _label_refs_outside(unit_body, t,
                                           {s.uid, s.stmt.uid}) \
                        and not _label_refs_outside(unit_body, l2,
                                                    {goto_uid}) \
                        and not any(_contains_label_target(
                            b, unit_body, {s.uid, s.stmt.uid, goto_uid})
                            for b in b3):
                    then_body = b3
                    else_body = between[:-1]
                    _strip_label(then_body, t)
                    ifb = ast.IfBlock(cond=s.cond,
                                      then_body=_as_block(then_body),
                                      else_body=_as_block(else_body),
                                      label=s.label, line=s.line)
                    # keep the join label (b4 head) -- it may still be a
                    # target of other jumps; it stays on body[k].
                    body[i:k] = [ifb]
                    changed += 1
                    continue
        # Pattern A: IF (c) GOTO L; <b2>; L:  ==>  IF (.NOT.c) THEN b2
        if not _label_refs_outside(unit_body, t, {s.uid, s.stmt.uid}):
            blk = body[i + 1:j]
            ifb = ast.IfBlock(cond=_negate(s.cond),
                              then_body=_as_block(blk),
                              label=s.label, line=s.line)
            # The labelled join statement stays (label may be shared by a
            # DO terminator); only the branch is replaced.
            body[i:j] = [ifb]
            changed += 1
            continue
        i += 1
    return changed


def _contains_label_target(s: ast.Stmt, unit_body: list[ast.Stmt],
                           exclude: set[int]) -> bool:
    """Does the statement (or its children) carry a label that other code
    jumps to?  Moving it into an IF body would strand those jumps."""
    for inner, _ in ast.walk_stmts([s]):
        if inner.label is not None and _label_refs_outside(
                unit_body, inner.label, exclude):
            return True
    return False


def _strip_label(block: list[ast.Stmt], label: int) -> None:
    if block and block[0].label == label:
        block[0].label = None


def _as_block(stmts: list[ast.Stmt]) -> list[ast.Stmt]:
    return [s for s in stmts
            if not (isinstance(s, ast.Continue) and s.label is None)] \
        or [ast.Continue()]


class ControlFlowSimplification(Transformation):
    """Replace unstructured control flow with structured equivalents."""

    name = "control_flow_simplification"
    category = "Miscellaneous"
    needs_loop = False

    def _count_unstructured(self, body: list[ast.Stmt]) -> int:
        n = 0
        for s, _ in ast.walk_stmts(body):
            if isinstance(s, (ast.Goto, ast.ArithIf)):
                n += 1
            elif isinstance(s, ast.LogicalIf) and isinstance(s.stmt,
                                                             ast.Goto):
                n += 1
        return n

    def check(self, ctx: TContext) -> Advice:
        scope = ctx.loop.loop.body if ctx.loop is not None \
            else ctx.uir.unit.body
        n = self._count_unstructured(scope)
        if n == 0:
            return Advice.no("no unstructured control flow in scope")
        return Advice.yes(True, f"{n} unstructured transfer(s) found; "
                                "rewrites preserve semantics exactly")

    def _do(self, ctx: TContext):
        scope = ctx.loop.loop.body if ctx.loop is not None \
            else ctx.uir.unit.body
        unit_body = ctx.uir.unit.body
        total = 0
        total += convert_arith_ifs(scope)
        for _ in range(20):
            n = remove_trivial_gotos(scope)
            n += structure_gotos(scope, unit_body)
            total += n
            if n == 0:
                break
        return f"simplified control flow: {total} rewrite(s)", []
