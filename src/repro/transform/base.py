"""Power-steering framework for transformations (Section 5.1).

Every transformation answers three questions before anything changes:

* **applicable** -- is it syntactically meaningful here?
* **safe** -- does it preserve the program's semantics (per the
  dependence graph, with user-rejected dependences disregarded)?
* **profitable** -- does it plausibly contribute to parallelization or
  locality? (heuristic, surfaced as advice rather than a veto)

``check`` returns an :class:`Advice`; ``apply`` performs the mechanical
rewriting and returns a :class:`TransformResult`.  Appliers mutate the
unit's AST in place; callers are responsible for invalidating derived
analyses (the session layer does this automatically).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..dependence.ddg import DependenceAnalyzer, LoopDependences
from ..fortran import ast
from ..ir.loops import LoopInfo
from ..ir.program import UnitIR


class TransformError(Exception):
    pass


@dataclass
class Advice:
    applicable: bool
    safe: bool
    profitable: bool
    messages: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.applicable and self.safe

    def explain(self) -> str:
        status = []
        status.append("applicable" if self.applicable else "NOT applicable")
        status.append("safe" if self.safe else "NOT safe")
        status.append("profitable" if self.profitable else "not profitable")
        out = ", ".join(status)
        if self.messages:
            out += ": " + "; ".join(self.messages)
        return out

    @staticmethod
    def no(message: str) -> "Advice":
        return Advice(False, False, False, [message])

    @staticmethod
    def unsafe(message: str) -> "Advice":
        return Advice(True, False, False, [message])

    @staticmethod
    def yes(profitable: bool = True, message: str | None = None) -> "Advice":
        return Advice(True, True, profitable,
                      [message] if message else [])


@dataclass(frozen=True)
class DirtyScope:
    """What a transformation mutated, for scoped invalidation.

    ``loop_uids`` of ``None`` means the whole unit is dirty (the
    conservative default); otherwise it is the closed loop set -- the
    target loop, its ancestors (their analyses include the mutated
    statements), and its descendants -- captured *before* the mutation,
    while the loop tree is still valid.  The session evicts exactly the
    cached results whose loop chain intersects this set and propagates
    summary invalidation transitively up the call graph.
    """

    unit: str
    loop_uids: frozenset[int] | None = None

    @property
    def whole_unit(self) -> bool:
        return self.loop_uids is None

    def covers(self, unit: str, loop_uid: int) -> bool:
        if unit.upper() != self.unit.upper():
            return False
        return self.loop_uids is None or loop_uid in self.loop_uids


def loop_closure(loop: LoopInfo) -> frozenset[int]:
    """Uids of the loop, its ancestors, and its descendants."""
    return frozenset({li.uid for li in loop.nest()}
                     | {li.uid for li in loop.inner_loops()})


@dataclass
class TransformResult:
    advice: Advice
    applied: bool
    #: human-readable description of what changed
    description: str = ""
    #: any new program units created (loop embedding/extraction)
    new_units: list[ast.ProgramUnit] = field(default_factory=list)
    #: declared mutation scope (None when nothing was applied)
    dirty: DirtyScope | None = None
    #: error message when the apply failed and was rolled back
    error: str = ""


@dataclass
class TContext:
    """Everything a transformation needs to reason about its target."""

    uir: UnitIR
    analyzer: DependenceAnalyzer
    loop: LoopInfo | None = None
    params: dict[str, Any] = field(default_factory=dict)
    _deps: LoopDependences | None = None

    @property
    def deps(self) -> LoopDependences:
        if self._deps is None:
            if self.loop is None:
                raise TransformError("transformation requires a loop")
            self._deps = self.analyzer.analyze_loop(self.loop)
        return self._deps

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)


class Transformation:
    """Base class; subclasses set ``name``, ``category`` and implement
    ``check``/``apply``."""

    name: str = ""
    category: str = ""
    needs_loop: bool = True
    #: invalidation scope the transformation declares: "unit" (the
    #: conservative default -- everything derived for the unit is dirty)
    #: or "loop" (mutations confined to the target loop's nest; sibling
    #: loops' cached analyses stay valid)
    scope: str = "unit"

    def check(self, ctx: TContext) -> Advice:  # pragma: no cover - abstract
        raise NotImplementedError

    def dirty_scope(self, ctx: TContext) -> DirtyScope:
        """Declare what :meth:`_do` is about to mutate.

        Called *before* the mutation so the loop-nest closure can be
        read off the still-valid loop tree.  Subclasses with unusual
        footprints (e.g. fusing into a sibling) may override.
        """
        unit = ctx.uir.unit.name
        if self.scope == "loop" and ctx.loop is not None:
            return DirtyScope(unit=unit, loop_uids=loop_closure(ctx.loop))
        return DirtyScope(unit=unit)

    def apply(self, ctx: TContext) -> TransformResult:
        """Transactional apply: mutate cleanly or leave the unit untouched.

        Any exception after ``check`` passes (``dirty_scope``, ``_do``,
        commit) rolls the target unit (and, for interprocedural
        transformations, the whole program) back to a uid-identical
        pre-apply state, then surfaces as a :class:`TransformError`
        naming the transformation -- the power-steering contract of
        Section 3.2.  ``check`` is non-mutating by contract, so its
        exceptions propagate without a rollback.
        """
        from ..testing import faults
        from .transaction import Transaction
        # ``check`` is non-mutating by contract, so an exception from it
        # needs no rollback (and refused applies never pay for a
        # snapshot); everything from ``dirty_scope`` on runs inside the
        # transaction.
        advice = self.check(ctx)
        if not advice.ok:
            return TransformResult(advice=advice, applied=False)
        txn = Transaction.begin(ctx.uir, ctx.param("program"),
                                wide=self.category == "Interprocedural")
        try:
            dirty = self.dirty_scope(ctx)
            desc, new_units = self._do(ctx)
            # fault-injection point: the AST is fully mutated but the
            # transaction has not committed -- rollback must restore it
            faults.check("transform_do", transform=self.name)
            ctx.uir.invalidate()
            if new_units:
                # new program units force whole-program re-resolution
                dirty = DirtyScope(unit=dirty.unit)
            return TransformResult(advice=advice, applied=True,
                                   description=desc, new_units=new_units,
                                   dirty=dirty)
        except TransformError as e:
            txn.rollback()
            e.rolled_back = True
            raise
        except Exception as e:
            txn.rollback()
            err = TransformError(
                f"{self.name or type(self).__name__} failed and was "
                f"rolled back: {type(e).__name__}: {e}")
            err.rolled_back = True
            raise err from e

    def _do(self, ctx: TContext
            ) -> tuple[str, list[ast.ProgramUnit]]:  # pragma: no cover
        raise NotImplementedError


# --------------------------------------------------------------------------
# AST surgery helpers
# --------------------------------------------------------------------------

def find_owner(body: list[ast.Stmt], target: ast.Stmt
               ) -> tuple[list[ast.Stmt], int] | None:
    """Locate the statement list directly containing ``target``."""
    for i, s in enumerate(body):
        if s is target:
            return body, i
        for blk in s.blocks():
            found = find_owner(blk, target)
            if found is not None:
                return found
    return None


def owner_or_raise(uir: UnitIR, target: ast.Stmt
                   ) -> tuple[list[ast.Stmt], int]:
    found = find_owner(uir.unit.body, target)
    if found is None:
        raise TransformError(
            f"statement (line {target.line}) not found in unit "
            f"{uir.unit.name}")
    return found


def substitute_in_stmt(s: ast.Stmt, env: dict[str, ast.Expr]) -> None:
    """Substitute scalar variables throughout one statement, in place,
    recursing into nested blocks."""

    def fix(e: ast.Expr) -> ast.Expr:
        return ast.substitute(e, env)

    if isinstance(s, ast.Assign):
        s.value = fix(s.value)
        t = s.target
        if isinstance(t, ast.ArrayRef):
            s.target = ast.ArrayRef(t.name,
                                    tuple(fix(x) for x in t.subscripts))
        elif isinstance(t, ast.VarRef) and t.name in env:
            new = env[t.name]
            if isinstance(new, (ast.VarRef, ast.ArrayRef)):
                s.target = new
            # otherwise the target stays (cannot assign to an expression)
    elif isinstance(s, ast.DoLoop):
        s.start = fix(s.start)
        s.end = fix(s.end)
        if s.step is not None:
            s.step = fix(s.step)
    elif isinstance(s, ast.IfBlock):
        s.cond = fix(s.cond)
        s.elifs = [(fix(c), b) for c, b in s.elifs]
    elif isinstance(s, ast.LogicalIf):
        s.cond = fix(s.cond)
    elif isinstance(s, ast.ArithIf):
        s.expr = fix(s.expr)
    elif isinstance(s, ast.ComputedGoto):
        s.expr = fix(s.expr)
    elif isinstance(s, ast.CallStmt):
        s.args = tuple(fix(a) for a in s.args)
    elif isinstance(s, (ast.ReadStmt, ast.WriteStmt)):
        s.items = tuple(fix(i) for i in s.items)
    for blk in s.blocks():
        for inner in blk:
            substitute_in_stmt(inner, env)


def clone_body(body: list[ast.Stmt]) -> list[ast.Stmt]:
    return [s.clone() for s in body]


def rename_array_in_stmt(s: ast.Stmt, old: str, new: str) -> None:
    """Rename array references old -> new throughout a statement."""

    def fix_node(e: ast.Expr) -> ast.Expr:
        if isinstance(e, ast.ArrayRef) and e.name == old:
            return ast.ArrayRef(new, e.subscripts)
        return e

    def fix(e: ast.Expr) -> ast.Expr:
        return ast.map_expr(e, fix_node)

    if isinstance(s, ast.Assign):
        s.value = fix(s.value)
        t = s.target
        if isinstance(t, ast.ArrayRef):
            if t.name == old:
                s.target = ast.ArrayRef(new, tuple(
                    fix(x) for x in t.subscripts))
            else:
                s.target = ast.ArrayRef(t.name, tuple(
                    fix(x) for x in t.subscripts))
    elif isinstance(s, ast.IfBlock):
        s.cond = fix(s.cond)
        s.elifs = [(fix(c), b) for c, b in s.elifs]
    elif isinstance(s, ast.LogicalIf):
        s.cond = fix(s.cond)
    elif isinstance(s, ast.CallStmt):
        s.args = tuple(fix(a) for a in s.args)
    elif isinstance(s, (ast.ReadStmt, ast.WriteStmt)):
        s.items = tuple(fix(i) for i in s.items)
    elif isinstance(s, ast.DoLoop):
        s.start = fix(s.start)
        s.end = fix(s.end)
        if s.step is not None:
            s.step = fix(s.step)
    for blk in s.blocks():
        for inner in blk:
            rename_array_in_stmt(inner, old, new)


def fresh_name(base: str, taken: set[str]) -> str:
    """A new identifier not colliding with existing symbols."""
    base = base.upper()[:4]
    for i in range(1, 1000):
        cand = f"{base}X{i}"
        if cand not in taken:
            return cand
    raise TransformError("could not generate a fresh name")


def declare_array(uir: UnitIR, name: str, type_name: str,
                  dims: tuple[ast.DimSpec, ...]) -> None:
    """Insert a declaration for a new array and register the symbol."""
    decl = ast.TypeDecl(type_name=type_name,
                        entities=(ast.Entity(name, dims),))
    # Insert after the last existing declaration.
    body = uir.unit.body
    pos = 0
    for i, s in enumerate(body):
        if isinstance(s, (ast.TypeDecl, ast.DimensionStmt, ast.CommonStmt,
                          ast.ParameterStmt, ast.ImplicitStmt, ast.SaveStmt,
                          ast.ExternalStmt, ast.IntrinsicStmt, ast.DataStmt)):
            pos = i + 1
    body.insert(pos, decl)
    from ..ir.symtab import Symbol
    uir.symtab.symbols[name.upper()] = Symbol(
        name.upper(), type_name, dims=dims, declared=True)


def int_const(v: int) -> ast.IntConst:
    return ast.IntConst(v)


def add_expr(a: ast.Expr, b: ast.Expr) -> ast.Expr:
    """a + b with light constant folding."""
    if isinstance(b, ast.IntConst) and b.value == 0:
        return a
    if isinstance(a, ast.IntConst) and a.value == 0:
        return b
    if isinstance(a, ast.IntConst) and isinstance(b, ast.IntConst):
        return ast.IntConst(a.value + b.value)
    if isinstance(b, ast.IntConst) and b.value < 0:
        return ast.BinOp("-", a, ast.IntConst(-b.value))
    if isinstance(b, ast.UnOp) and b.op == "-":
        return ast.BinOp("-", a, b.operand)
    return ast.BinOp("+", a, b)


def sub_expr(a: ast.Expr, b: ast.Expr) -> ast.Expr:
    if isinstance(b, ast.IntConst) and b.value == 0:
        return a
    if isinstance(a, ast.IntConst) and isinstance(b, ast.IntConst):
        return ast.IntConst(a.value - b.value)
    return ast.BinOp("-", a, b)
