"""Interprocedural transformations: loop embedding and loop extraction
(Section 5.3, the spec77 request; Hall-Kennedy-McKinley [23]).

* **loop extraction** pulls a procedure's outermost loop out into its
  caller: ``CALL P(...)`` becomes ``DO I: CALL P$X(..., I)`` where ``P$X``
  is the procedure body minus the loop, with the induction variable added
  as a formal.  The caller can then fuse/interchange the exposed loop
  with its own loops.

* **loop embedding** pushes a caller's loop into the procedure:
  ``DO I: CALL P(...)`` becomes ``CALL P$E(..., lo, hi)`` where ``P$E``
  wraps P's body in the loop.  This gives the callee's compiler context
  the full iteration space (granularity) without inlining.

Both create a new program unit and leave the original in place (other
call sites keep using it).
"""

from __future__ import annotations

from ..fortran import ast
from ..ir.loops import LoopInfo
from .base import Advice, TContext, TransformError, Transformation, \
    owner_or_raise


def _single_call_body(loop: ast.DoLoop) -> ast.CallStmt | None:
    body = [s for s in loop.body if not isinstance(s, ast.Continue)]
    if len(body) == 1 and isinstance(body[0], ast.CallStmt):
        return body[0]
    return None


def _decl_stmts_for(unit: ast.ProgramUnit) -> list[ast.Stmt]:
    return [s for s in unit.body
            if isinstance(s, (ast.TypeDecl, ast.DimensionStmt,
                              ast.CommonStmt, ast.ParameterStmt,
                              ast.ImplicitStmt, ast.SaveStmt,
                              ast.ExternalStmt, ast.IntrinsicStmt,
                              ast.DataStmt))]


def _exec_stmts_for(unit: ast.ProgramUnit) -> list[ast.Stmt]:
    decls = set(map(id, _decl_stmts_for(unit)))
    return [s for s in unit.body if id(s) not in decls]


class LoopEmbedding(Transformation):
    """Move a caller loop into the called procedure."""

    name = "loop_embedding"
    category = "Interprocedural"

    def _target(self, ctx: TContext) -> tuple[ast.CallStmt,
                                              ast.ProgramUnit] | None:
        if ctx.loop is None:
            return None
        call = _single_call_body(ctx.loop.loop)
        if call is None:
            return None
        prog = ctx.param("program")
        if prog is None or call.name not in prog.units:
            return None
        return call, prog.units[call.name].unit

    def check(self, ctx: TContext) -> Advice:
        if ctx.loop is None:
            return Advice.no("select a loop")
        if _single_call_body(ctx.loop.loop) is None:
            return Advice.no("loop body must be a single CALL statement")
        tgt = self._target(ctx)
        if tgt is None:
            return Advice.no("pass program= (AnalyzedProgram) and ensure "
                             "the callee's source is available")
        call, callee = tgt
        lp = ctx.loop.loop
        # The loop variable may appear in the arguments (it is passed
        # through); loop bounds must not depend on callee effects.
        bound_vars = ast.variables_in(lp.start) | ast.variables_in(lp.end)
        if lp.var in bound_vars:
            return Advice.no("loop bounds reference the induction variable")
        return Advice.yes(True, "embedding gives the callee the full "
                                "iteration space")

    def _do(self, ctx: TContext):
        call, callee = self._target(ctx)
        lp = ctx.loop.loop
        # New unit: callee body wrapped in the loop.  The induction
        # variable and bounds become formals.
        new_name = (callee.name + "E")[:6]
        base = new_name
        prog = ctx.param("program")
        n = 1
        while new_name in prog.units:
            new_name = f"{base}{n}"
            n += 1
        lo_f, hi_f = "PEDLO", "PEDHI"
        decls = [s.clone() for s in _decl_stmts_for(callee)]
        execs = [s.clone() for s in _exec_stmts_for(callee)]
        # Drop trailing RETURNs that would exit mid-loop.
        execs = [s for s in execs if not isinstance(s, ast.Return)]
        ivar = lp.var
        inner_loop = ast.DoLoop(
            var=ivar, start=ast.VarRef(lo_f), end=ast.VarRef(hi_f),
            step=lp.step, body=execs, line=callee.line,
            parallel=lp.parallel, private_vars=set(lp.private_vars))
        new_body: list[ast.Stmt] = list(decls)
        new_body.append(ast.TypeDecl(
            type_name="INTEGER",
            entities=(ast.Entity(ivar), ast.Entity(lo_f),
                      ast.Entity(hi_f))))
        new_body.append(inner_loop)
        new_unit = ast.ProgramUnit(
            kind="subroutine", name=new_name,
            params=tuple(callee.params) + (lo_f, hi_f),
            body=new_body, line=callee.line)
        # Rewrite the call site: the loop becomes a single call.
        owner, pos = owner_or_raise(ctx.uir, lp)
        new_call = ast.CallStmt(
            name=new_name,
            args=tuple(call.args) + (lp.start, lp.end),
            label=lp.label, line=lp.line)
        owner[pos] = new_call
        return (f"embedded loop into new procedure {new_name}"), [new_unit]


class LoopExtraction(Transformation):
    """Pull a callee's outermost loop out to the call site."""

    name = "loop_extraction"
    category = "Interprocedural"
    needs_loop = False

    def _target(self, ctx: TContext) -> tuple[ast.CallStmt,
                                              ast.ProgramUnit,
                                              ast.DoLoop] | None:
        call: ast.CallStmt | None = ctx.param("call")
        prog = ctx.param("program")
        if call is None or prog is None or call.name not in prog.units:
            return None
        callee = prog.units[call.name].unit
        execs = _exec_stmts_for(callee)
        execs = [s for s in execs if not isinstance(s, (ast.Return,
                                                        ast.Continue))]
        if len(execs) != 1 or not isinstance(execs[0], ast.DoLoop):
            return None
        return call, callee, execs[0]

    def check(self, ctx: TContext) -> Advice:
        tgt = self._target(ctx)
        if tgt is None:
            return Advice.no("pass call= and program=; callee's executable "
                             "body must be a single outer DO loop")
        call, callee, loop = tgt
        bound_vars = ast.variables_in(loop.start) | ast.variables_in(loop.end)
        formals = {p.upper() for p in callee.params}
        st = ctx.param("program").units[callee.name].symtab
        for v in bound_vars:
            sym = st.get(v)
            if v not in formals and not (
                    sym is not None and sym.storage in ("common",
                                                        "parameter")):
                return Advice.no(
                    f"loop bound variable {v} is local to the callee; "
                    "bounds must be expressible at the call site")
        return Advice.yes(True, "extraction exposes the callee's loop for "
                                "fusion/interchange in the caller")

    def _do(self, ctx: TContext):
        call, callee, loop = self._target(ctx)
        prog = ctx.param("program")
        new_name = (callee.name + "X")[:6]
        base = new_name
        n = 1
        while new_name in prog.units:
            new_name = f"{base}{n}"
            n += 1
        ivar = loop.var
        decls = [s.clone() for s in _decl_stmts_for(callee)]
        inner_body = [s.clone() for s in loop.body
                      if not (isinstance(s, ast.Continue)
                              and s.label == loop.term_label)]
        new_unit = ast.ProgramUnit(
            kind="subroutine", name=new_name,
            params=tuple(callee.params) + (ivar,),
            body=decls + inner_body, line=callee.line)
        # Bounds at the call site: substitute actuals for formals.
        binding = {f.upper(): a for f, a in zip(callee.params, call.args)}
        lo = ast.substitute(loop.start, binding)
        hi = ast.substitute(loop.end, binding)
        step = ast.substitute(loop.step, binding) if loop.step is not None \
            else None
        owner, pos = owner_or_raise(ctx.uir, call)
        new_loop = ast.DoLoop(
            var=ivar, start=lo, end=hi, step=step,
            body=[ast.CallStmt(name=new_name,
                               args=tuple(call.args) + (ast.VarRef(ivar),),
                               line=call.line)],
            label=call.label, line=call.line)
        owner[pos] = new_loop
        # Caller must have the induction variable declared.
        if ctx.uir.symtab.get(ivar) is None:
            from ..ir.symtab import Symbol
            ctx.uir.symtab.symbols[ivar] = Symbol(ivar, "INTEGER",
                                                  declared=True)
            ctx.uir.unit.body.insert(0, ast.TypeDecl(
                type_name="INTEGER", entities=(ast.Entity(ivar),)))
        return (f"extracted loop from {callee.name} into caller via "
                f"{new_name}"), [new_unit]
