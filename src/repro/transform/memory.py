"""Memory-optimizing transformations: strip mining, unrolling,
unroll-and-jam, scalar replacement (Figure 2, "Memory Optimizing")."""

from __future__ import annotations

from ..dependence.model import ANY, GT, LT
from ..fortran import ast
from .base import Advice, TContext, TransformError, Transformation, \
    add_expr, fresh_name, owner_or_raise, sub_expr, substitute_in_stmt


def _unit_step(lp: ast.DoLoop) -> bool:
    return lp.step is None or (isinstance(lp.step, ast.IntConst)
                               and lp.step.value == 1)


class StripMining(Transformation):
    """Split a loop into strips of ``size`` iterations."""

    name = "strip_mining"
    category = "Memory Optimizing"
    scope = "loop"

    def check(self, ctx: TContext) -> Advice:
        if ctx.loop is None:
            return Advice.no("select a loop")
        size = ctx.param("size", 0)
        if not isinstance(size, int) or size < 2:
            return Advice.no("pass size= (strip length >= 2)")
        if not _unit_step(ctx.loop.loop):
            return Advice.no("strip mining implemented for unit-step loops")
        return Advice.yes(False, "strip mining preserves execution order")

    def _do(self, ctx: TContext):
        lp = ctx.loop.loop
        size = ctx.param("size")
        st = ctx.uir.symtab
        strip_var = fresh_name(lp.var + "S", set(st.symbols))
        from ..ir.symtab import Symbol
        st.symbols[strip_var] = Symbol(strip_var, "INTEGER", declared=True)
        from .reorder import _normalize_enddo
        if not _normalize_enddo(lp, ctx.uir.unit):
            raise TransformError("terminal label is a GOTO target")
        inner = ast.DoLoop(
            var=lp.var, start=ast.VarRef(strip_var),
            end=ast.FuncRef("MIN", (
                add_expr(ast.VarRef(strip_var), ast.IntConst(size - 1)),
                lp.end), intrinsic=True),
            step=None, body=lp.body, line=lp.line,
            private_vars=set(lp.private_vars))
        lp.var = strip_var
        lp.step = ast.IntConst(size)
        lp.body = [inner]
        lp.private_vars = set()
        return f"strip mined with strip size {size}", []


class LoopUnrolling(Transformation):
    """Unroll by ``factor`` with a remainder loop."""

    name = "loop_unrolling"
    category = "Memory Optimizing"
    scope = "loop"

    def check(self, ctx: TContext) -> Advice:
        if ctx.loop is None:
            return Advice.no("select a loop")
        f = ctx.param("factor", 0)
        if not isinstance(f, int) or f < 2:
            return Advice.no("pass factor= (>= 2)")
        if not _unit_step(ctx.loop.loop):
            return Advice.no("unrolling implemented for unit-step loops")
        from .reorder import _has_unstructured_flow
        if _has_unstructured_flow(ctx.loop.loop.body):
            return Advice.no("loop body contains unstructured control flow")
        return Advice.yes(True, "unrolling preserves execution order and "
                                "reduces loop overhead")

    def _do(self, ctx: TContext):
        lp = ctx.loop.loop
        f = ctx.param("factor")
        from .reorder import _normalize_enddo
        if not _normalize_enddo(lp, ctx.uir.unit):
            raise TransformError("terminal label is a GOTO target")
        owner, pos = owner_or_raise(ctx.uir, lp)
        original = [s for s in lp.body]
        new_body: list[ast.Stmt] = []
        for j in range(f):
            copies = [s.clone() for s in original]
            if j > 0:
                for s in copies:
                    substitute_in_stmt(s, {
                        lp.var: add_expr(ast.VarRef(lp.var),
                                         ast.IntConst(j))})
            new_body.extend(copies)
        # Remainder loop handles (hi - lo + 1) mod f trailing iterations.
        remainder = ast.DoLoop(
            var=lp.var,
            start=add_expr(
                lp.start,
                ast.BinOp("*", ast.IntConst(f), ast.BinOp(
                    "/", add_expr(sub_expr(lp.end, lp.start),
                                  ast.IntConst(1)),
                    ast.IntConst(f)))),
            end=lp.end, step=None,
            body=[s.clone() for s in original], line=lp.line,
            private_vars=set(lp.private_vars))
        lp.body = new_body
        lp.step = ast.IntConst(f)
        # main loop must stop where full strips end
        lp.end = sub_expr(
            add_expr(lp.start, ast.BinOp(
                "*", ast.IntConst(f), ast.BinOp(
                    "/", add_expr(sub_expr(lp.end, lp.start),
                                  ast.IntConst(1)),
                    ast.IntConst(f)))),
            ast.IntConst(1))
        owner.insert(pos + 1, remainder)
        return f"unrolled by factor {f} with remainder loop", []


class UnrollAndJam(Transformation):
    """Unroll the outer loop of a perfect nest and jam the copies into the
    inner loop body."""

    name = "unroll_and_jam"
    category = "Memory Optimizing"

    def check(self, ctx: TContext) -> Advice:
        if ctx.loop is None:
            return Advice.no("select a loop")
        inner = ctx.loop.is_perfect_nest_with()
        if inner is None:
            return Advice.no("loop is not a perfect nest")
        f = ctx.param("factor", 0)
        if not isinstance(f, int) or f < 2:
            return Advice.no("pass factor= (>= 2)")
        if not _unit_step(ctx.loop.loop) or not _unit_step(inner.loop):
            return Advice.no("unroll-and-jam implemented for unit-step "
                             "loops")
        bvars = ast.variables_in(inner.loop.start) \
            | ast.variables_in(inner.loop.end)
        if ctx.loop.loop.var in bvars:
            return Advice.no("inner loop bounds depend on the outer index")
        # Same legality condition as interchange: no (<,>) dependence.
        for d in ctx.deps.dependences:
            if not d.active or len(d.vector) < 2:
                continue
            if d.vector[0] in (LT, ANY) and d.vector[1] in (GT, ANY):
                return Advice.unsafe(
                    f"dependence {d.describe()} prevents jamming")
        return Advice.yes(True, "jamming increases register reuse across "
                                "outer iterations")

    def _do(self, ctx: TContext):
        outer = ctx.loop.loop
        inner = ctx.loop.is_perfect_nest_with().loop
        f = ctx.param("factor")
        from .reorder import _normalize_enddo
        if not _normalize_enddo(inner, ctx.uir.unit):
            raise TransformError("inner terminal label is a GOTO target")
        original = [s for s in inner.body if not isinstance(s, ast.Continue)]
        new_body: list[ast.Stmt] = []
        for j in range(f):
            copies = [s.clone() for s in original]
            if j > 0:
                for s in copies:
                    substitute_in_stmt(s, {
                        outer.var: add_expr(ast.VarRef(outer.var),
                                            ast.IntConst(j))})
            new_body.extend(copies)
        from .reorder import _normalize_enddo
        if not _normalize_enddo(outer, ctx.uir.unit):
            raise TransformError("terminal label is a GOTO target")
        owner, pos = owner_or_raise(ctx.uir, outer)
        remainder = ast.DoLoop(
            var=outer.var,
            start=add_expr(
                outer.start,
                ast.BinOp("*", ast.IntConst(f), ast.BinOp(
                    "/", add_expr(sub_expr(outer.end, outer.start),
                                  ast.IntConst(1)),
                    ast.IntConst(f)))),
            end=outer.end, step=None,
            body=[s.clone() for s in outer.body], line=outer.line)
        inner.body = new_body
        outer.step = ast.IntConst(f)
        outer.end = sub_expr(
            add_expr(outer.start, ast.BinOp(
                "*", ast.IntConst(f), ast.BinOp(
                    "/", add_expr(sub_expr(outer.end, outer.start),
                                  ast.IntConst(1)),
                    ast.IntConst(f)))),
            ast.IntConst(1))
        owner.insert(pos + 1, remainder)
        return f"unrolled outer loop by {f} and jammed", []


class ScalarReplacement(Transformation):
    """Replace a loop-invariant array reference with a scalar temporary,
    exposing the reuse to registers."""

    name = "scalar_replacement"
    category = "Memory Optimizing"

    def _invariant_refs(self, ctx: TContext) -> list[ast.ArrayRef]:
        from ..analysis.symbolic import invariant_names
        lp = ctx.loop.loop
        st = ctx.uir.symtab
        inv = invariant_names(lp, st, ctx.analyzer.oracle)
        seen: dict[ast.ArrayRef, int] = {}
        for s, _ in ast.walk_stmts(lp.body):
            exprs = list(s.exprs())
            if isinstance(s, ast.Assign):
                exprs.append(s.target)
            for e in exprs:
                for node in ast.walk_expr(e):
                    if isinstance(node, ast.ArrayRef) \
                            and ast.variables_in(node) - {node.name} <= inv \
                            and node.name in inv:
                        seen[node] = seen.get(node, 0) + 1
        return [r for r, n in seen.items() if n >= 1]

    def check(self, ctx: TContext) -> Advice:
        if ctx.loop is None:
            return Advice.no("select a loop")
        ref = ctx.param("ref")
        cands = self._invariant_refs(ctx)
        if ref is None:
            if not cands:
                return Advice.no("no loop-invariant array references")
            return Advice.yes(True, "candidates: " + ", ".join(
                sorted({str(c) for c in cands})))
        if all(str(ref) != str(c) for c in cands):
            return Advice.unsafe(f"{ref} is not loop-invariant here")
        # The reference must only be read, or written unconditionally,
        # for load-hoist/store-sink to be safe; we support read-only.
        lp = ctx.loop.loop
        for s, _ in ast.walk_stmts(lp.body):
            if isinstance(s, ast.Assign) and str(s.target) == str(ref):
                return Advice.unsafe(
                    f"{ref} is written in the loop; store sinking not "
                    "implemented")
        return Advice.yes(True, "hoisting the load removes repeated memory "
                                "access")

    def _do(self, ctx: TContext):
        ref = ctx.param("ref")
        if isinstance(ref, str):
            from ..fortran.parser import parse_expr_text
            ref = parse_expr_text(ref)
        lp = ctx.loop.loop
        st = ctx.uir.symtab
        sym = st.get(ref.name)
        tmp = fresh_name(ref.name + "T", set(st.symbols))
        from ..ir.symtab import Symbol
        st.symbols[tmp] = Symbol(tmp, sym.type_name if sym else "REAL",
                                 declared=True)

        def fix_node(e: ast.Expr) -> ast.Expr:
            if isinstance(e, ast.ArrayRef) and str(e) == str(ref):
                return ast.VarRef(tmp)
            return e

        for s, _ in ast.walk_stmts(lp.body):
            if isinstance(s, ast.Assign):
                s.value = ast.map_expr(s.value, fix_node)
            elif isinstance(s, ast.IfBlock):
                s.cond = ast.map_expr(s.cond, fix_node)
                s.elifs = [(ast.map_expr(c, fix_node), b)
                           for c, b in s.elifs]
            elif isinstance(s, ast.LogicalIf):
                s.cond = ast.map_expr(s.cond, fix_node)
            elif isinstance(s, ast.CallStmt):
                s.args = tuple(ast.map_expr(a, fix_node) for a in s.args)
            elif isinstance(s, ast.WriteStmt):
                s.items = tuple(ast.map_expr(i, fix_node) for i in s.items)
        owner, pos = owner_or_raise(ctx.uir, lp)
        owner.insert(pos, ast.Assign(target=ast.VarRef(tmp), value=ref,
                                     line=lp.line))
        lp.private_vars.discard(tmp)
        return f"replaced invariant reference {ref} with scalar {tmp}", []
