"""Transactional state capture for transformations (the Section 3.2
power-steering contract: a transformation either applies cleanly or the
program is untouched).

The machinery here is uid-preserving deep snapshots of program units:

* :func:`clone_keeping_uids` copies a statement list like
  :meth:`Stmt.clone` but keeps every statement's ``uid`` (and deep-copies
  per-loop annotation state such as ``private_vars``).  Because uids are
  the keys of every derived analysis -- CFG nodes, loop trees, the
  session's dependence cache -- a uid-preserving restore brings the AST
  back to a state for which all pre-mutation caches are still valid.
* :class:`UnitSnapshot` / :class:`ProgramSnapshot` capture and restore
  unit bodies, symbol tables and the program's unit list.
* :class:`Transaction` wraps one ``Transformation.apply``: begun before
  ``check``, rolled back on any exception so a mid-``_do`` crash cannot
  leave a half-mutated unit behind.

The same snapshots back the session's undo/redo journal: each applied
transformation records a (pre, post) :class:`ProgramSnapshot` pair, and
``undo()``/``redo()`` restore them with scoped re-invalidation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fortran import ast
from ..ir.program import AnalyzedProgram, UnitIR
from ..ir.symtab import SymbolTable


def _copy_meta(orig: ast.Stmt, cp: ast.Stmt) -> None:
    """Propagate uid (and unshare mutable annotations) onto a clone."""
    cp.uid = orig.uid
    if isinstance(orig, ast.DoLoop):
        cp.private_vars = set(orig.private_vars)
    for ob, cb in zip(orig.blocks(), cp.blocks()):
        for o2, c2 in zip(ob, cb):
            _copy_meta(o2, c2)


def clone_keeping_uids(stmts: list[ast.Stmt]) -> list[ast.Stmt]:
    """Deep-copy a statement list preserving every statement's uid."""
    clones = [s.clone() for s in stmts]
    for orig, cp in zip(stmts, clones):
        _copy_meta(orig, cp)
    return clones


def _copy_symtab(st: SymbolTable) -> dict:
    return {
        "symbols": dict(st.symbols),
        "common_blocks": {k: list(v) for k, v in st.common_blocks.items()},
    }


def _restore_symtab(st: SymbolTable, saved: dict) -> None:
    st.symbols = dict(saved["symbols"])
    st.common_blocks = {k: list(v) for k, v in saved["common_blocks"].items()}


@dataclass
class UnitSnapshot:
    """Everything a transformation may mutate inside one unit."""

    name: str
    #: the live ProgramUnit object (restored in place so references held
    #: by the AnalyzedProgram and UnitIR stay correct)
    unit_obj: ast.ProgramUnit
    body: list[ast.Stmt]
    params: tuple[str, ...]
    symtab: SymbolTable | None
    symtab_state: dict | None

    @classmethod
    def capture(cls, uir: UnitIR) -> "UnitSnapshot":
        return cls(name=uir.unit.name, unit_obj=uir.unit,
                   body=clone_keeping_uids(uir.unit.body),
                   params=tuple(uir.unit.params),
                   symtab=uir.symtab,
                   symtab_state=_copy_symtab(uir.symtab))

    def restore(self) -> None:
        """Put the captured state back onto the live unit object.

        The stored body is re-cloned on every restore (again preserving
        uids) so the snapshot itself stays pristine and can be restored
        any number of times (undo -> redo -> undo ...).
        """
        self.unit_obj.body[:] = clone_keeping_uids(self.body)
        self.unit_obj.params = self.params
        if self.symtab is not None and self.symtab_state is not None:
            _restore_symtab(self.symtab, self.symtab_state)


@dataclass
class ProgramSnapshot:
    """Snapshot of selected units plus the program's unit list."""

    #: unit snapshots keyed by name (may be a subset of the program)
    units: dict[str, UnitSnapshot]
    #: full unit-name order at capture time (None when no program known)
    order: list[str] | None = None
    #: the ProgramUnit objects forming the unit list at capture time
    unit_objs: dict[str, ast.ProgramUnit] = field(default_factory=dict)

    @classmethod
    def capture(cls, program: AnalyzedProgram | None,
                uirs: list[UnitIR]) -> "ProgramSnapshot":
        snaps = {u.unit.name: UnitSnapshot.capture(u) for u in uirs}
        if program is None:
            return cls(units=snaps)
        return cls(units=snaps,
                   order=[u.name for u in program.ast.units],
                   unit_objs={u.name: u for u in program.ast.units})

    @classmethod
    def capture_program(cls, program: AnalyzedProgram) -> "ProgramSnapshot":
        return cls.capture(program, list(program.units.values()))

    def restore(self, program: AnalyzedProgram | None) -> bool:
        """Restore captured units (and the unit list, when known).

        Returns True when the program's unit *set* changed (units were
        added or dropped), which callers must treat as a whole-program
        invalidation; False means only the captured units' content
        moved and scoped invalidation suffices.
        """
        for snap in self.units.values():
            snap.restore()
        if program is None or self.order is None:
            for snap in self.units.values():
                self._invalidate_unit(program, snap.name)
            return False
        before = set(program.units)
        program.ast.units[:] = [self.unit_objs[n] for n in self.order]
        changed = before != set(self.order)
        if changed:
            # drop UnitIRs for units that no longer exist; recreate any
            # that disappeared since capture (e.g. undo of an extraction
            # being redone)
            for name in before - set(self.order):
                program.units.pop(name, None)
            for name in self.order:
                if name not in program.units:
                    snap = self.units.get(name)
                    if snap is not None and snap.symtab is not None:
                        program.units[name] = UnitIR(
                            unit=self.unit_objs[name], symtab=snap.symtab)
                    else:
                        # not captured (shouldn't happen for unit-set
                        # changes, which always use wide snapshots):
                        # rebuild from scratch
                        from ..ir.symtab import build_symbol_table, \
                            resolve_unit
                        obj = self.unit_objs[name]
                        st = build_symbol_table(obj)
                        resolve_unit(obj, st, frozenset(self.order))
                        program.units[name] = UnitIR(unit=obj, symtab=st)
            # keep dict order aligned with source order
            program.units = {n: program.units[n] for n in self.order
                             if n in program.units}
        # A re-resolution since capture (e.g. applying a unit-creating
        # transformation) replaced UnitIRs and their symbol tables; the
        # restored state must pair each unit with its captured symtab.
        for name, snap in self.units.items():
            cur = program.units.get(name) if program is not None else None
            if cur is not None and snap.symtab is not None \
                    and cur.symtab is not snap.symtab:
                program.units[name] = UnitIR(unit=snap.unit_obj,
                                             symtab=snap.symtab)
        for name in self.units:
            self._invalidate_unit(program, name)
        program._callgraph = None
        return changed

    def materialize(self) -> AnalyzedProgram:
        """Build a brand-new :class:`AnalyzedProgram` from the capture.

        Where :meth:`restore` writes the snapshot back onto the *live*
        unit objects (the undo path), ``materialize`` constructs fresh
        :class:`ast.ProgramUnit` objects from re-cloned bodies and
        re-resolves them into an independent program.  Uids are
        preserved by :func:`clone_keeping_uids`, so the fork keeps the
        parent's structural fingerprints and the compile cache relinks
        its units instead of recompiling them.  This is the fork
        primitive behind :meth:`PedSession.fork` and the parallel-worlds
        explorer: mutations to the fork can never leak back into the
        parent because no AST node, symbol table or unit list is shared.
        """
        names = list(self.order) if self.order is not None \
            else list(self.units)
        fresh: list[ast.ProgramUnit] = []
        for name in names:
            snap = self.units.get(name)
            src_obj = snap.unit_obj if snap is not None \
                else self.unit_objs[name]
            body = clone_keeping_uids(snap.body if snap is not None
                                      else src_obj.body)
            params = snap.params if snap is not None \
                else tuple(src_obj.params)
            fresh.append(ast.ProgramUnit(
                kind=src_obj.kind, name=src_obj.name, params=params,
                body=body, result_type=src_obj.result_type,
                line=src_obj.line))
        # parallel=False: forks are routinely taken from inside pool
        # workers, and nested pools deadlock-prone for no gain here
        return AnalyzedProgram(ast.Program(units=fresh), parallel=False)

    @staticmethod
    def _invalidate_unit(program: AnalyzedProgram | None,
                         name: str) -> None:
        if program is not None and name in program.units:
            program.units[name].invalidate()


class Transaction:
    """Guards one transformation apply with rollback-on-exception."""

    def __init__(self, snapshot: ProgramSnapshot,
                 program: AnalyzedProgram | None, uir: UnitIR):
        self.snapshot = snapshot
        self.program = program
        self.uir = uir
        self.rolled_back = False

    @classmethod
    def begin(cls, uir: UnitIR, program: AnalyzedProgram | None = None,
              wide: bool = False) -> "Transaction":
        """Snapshot before mutation.

        ``wide`` captures every unit of the program (interprocedural
        transformations may rewrite callers and callees); the default
        captures only the target unit plus the program's unit list.
        """
        if program is not None and wide:
            snap = ProgramSnapshot.capture_program(program)
        else:
            snap = ProgramSnapshot.capture(program, [uir])
        return cls(snap, program, uir)

    def rollback(self) -> None:
        """Restore the pre-apply state; safe to call at most once."""
        if self.rolled_back:
            return
        self.snapshot.restore(self.program)
        # the target unit may have been mutated without the program
        # object knowing (program=None path): always drop its artifacts
        self.uir.invalidate()
        self.rolled_back = True
