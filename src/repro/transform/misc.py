"""Miscellaneous transformations: sequential<->parallel conversion, loop
bounds adjusting, statement addition/deletion (Figure 2,
"Miscellaneous")."""

from __future__ import annotations

from ..dependence.model import DepType
from ..fortran import ast
from ..fortran.parser import ParseError, parse_program
from .base import Advice, TContext, TransformError, Transformation, \
    owner_or_raise


class Parallelize(Transformation):
    """Convert a sequential DO into a PARALLEL DO.

    Safe exactly when no active loop-carried dependence remains at this
    loop's level -- rejected (user-deleted) dependences are disregarded,
    which is how dependence marking feeds transformation safety.
    """

    name = "parallelize"
    category = "Miscellaneous"
    scope = "loop"

    def check(self, ctx: TContext) -> Advice:
        if ctx.loop is None:
            return Advice.no("select a loop")
        if ctx.loop.loop.parallel:
            return Advice.no("loop is already parallel")
        blockers = [d for d in ctx.deps.carried()
                    if d.level == 1 and d.dtype is not DepType.INPUT]
        if blockers:
            msgs = [d.describe() for d in blockers[:5]]
            if len(blockers) > 5:
                msgs.append(f"... and {len(blockers) - 5} more")
            return Advice.unsafe("loop-carried dependence(s): "
                                 + " | ".join(msgs))
        return Advice.yes(True, "no loop-carried dependences at this level")

    def _do(self, ctx: TContext):
        lp = ctx.loop.loop
        lp.parallel = True
        lp.private_vars |= ctx.deps.privatizable
        lp.private_vars.discard(lp.var)
        return (f"parallelized loop at line {lp.line}; private: "
                f"{sorted(lp.private_vars) or 'none'}"), []


class Serialize(Transformation):
    """Convert a PARALLEL DO back to a sequential DO (always safe)."""

    name = "serialize"
    category = "Miscellaneous"
    scope = "loop"

    def check(self, ctx: TContext) -> Advice:
        if ctx.loop is None:
            return Advice.no("select a loop")
        if not ctx.loop.loop.parallel:
            return Advice.no("loop is not parallel")
        return Advice.yes(False, "sequential execution is always a legal "
                                 "schedule of a parallel loop")

    def _do(self, ctx: TContext):
        ctx.loop.loop.parallel = False
        return f"serialized loop at line {ctx.loop.line}", []


class LoopBoundsAdjusting(Transformation):
    """Set new loop bounds (user-directed; the system warns rather than
    proves, since changing bounds changes which iterations run)."""

    name = "loop_bounds_adjusting"
    category = "Miscellaneous"

    def check(self, ctx: TContext) -> Advice:
        if ctx.loop is None:
            return Advice.no("select a loop")
        if ctx.param("start") is None and ctx.param("end") is None \
                and ctx.param("step") is None:
            return Advice.no("pass start=/end=/step= expressions")
        return Advice(True, bool(ctx.param("force")), False,
                      ["adjusting bounds changes the iteration set; "
                       "pass force=True to confirm"])

    def _do(self, ctx: TContext):
        lp = ctx.loop.loop
        for key in ("start", "end", "step"):
            v = ctx.param(key)
            if v is None:
                continue
            if isinstance(v, int):
                v = ast.IntConst(v)
            elif isinstance(v, str):
                from ..fortran.parser import parse_expr_text
                v = parse_expr_text(v)
            setattr(lp, key, v)
        return f"adjusted bounds of loop at line {lp.line}", []


class StatementAddition(Transformation):
    """Insert a new statement (parsed from text) before/after a target."""

    name = "statement_addition"
    category = "Miscellaneous"
    needs_loop = False

    def check(self, ctx: TContext) -> Advice:
        text = ctx.param("text")
        anchor = ctx.param("anchor")
        if not text or anchor is None:
            return Advice.no("pass text= and anchor= (statement)")
        try:
            self._parse(text)
        except (ParseError, TransformError) as e:
            return Advice.no(f"cannot parse statement: {e}")
        return Advice(True, bool(ctx.param("force")), False,
                      ["adding code changes semantics by construction; "
                       "pass force=True to confirm"])

    @staticmethod
    def _parse(text: str) -> ast.Stmt:
        wrapper = f"      SUBROUTINE WRAP\n      {text}\n      END\n"
        prog = parse_program(wrapper)
        body = prog.units[0].body
        if len(body) != 1:
            raise TransformError("text must be a single statement")
        return body[0]

    def _do(self, ctx: TContext):
        stmt = self._parse(ctx.param("text"))
        anchor = ctx.param("anchor")
        where = ctx.param("where", "after")
        owner, idx = owner_or_raise(ctx.uir, anchor)
        stmt.line = anchor.line
        owner.insert(idx + (1 if where == "after" else 0), stmt)
        ctx.uir.invalidate()
        from ..ir.program import AnalyzedProgram  # noqa: F401
        return f"added statement {ctx.param('text')!r}", []


class StatementDeletion(Transformation):
    """Remove a statement (user-directed)."""

    name = "statement_deletion"
    category = "Miscellaneous"
    needs_loop = False

    def check(self, ctx: TContext) -> Advice:
        target = ctx.param("stmt")
        if target is None:
            return Advice.no("pass stmt= (the statement to delete)")
        return Advice(True, bool(ctx.param("force")), False,
                      ["deleting code changes semantics by construction; "
                       "pass force=True to confirm"])

    def _do(self, ctx: TContext):
        target = ctx.param("stmt")
        owner, idx = owner_or_raise(ctx.uir, target)
        owner.pop(idx)
        return f"deleted statement at line {target.line}", []
