"""Reordering transformations: distribution, interchange, fusion,
reversal, skewing, statement interchange (Figure 2, "Reordering")."""

from __future__ import annotations

import networkx as nx

from ..dependence.model import ANY, EQ, GT, LT, DepType
from ..fortran import ast
from ..ir.loops import LoopInfo
from .base import Advice, TContext, TransformError, Transformation, \
    add_expr, owner_or_raise, sub_expr, substitute_in_stmt


def _has_unstructured_flow(body: list[ast.Stmt]) -> bool:
    for s, _ in ast.walk_stmts(body):
        if isinstance(s, (ast.Goto, ast.ArithIf, ast.ComputedGoto)):
            return True
    return False


def _label_targets(unit: ast.ProgramUnit) -> set[int]:
    """Labels referenced by any control transfer in the unit."""
    out: set[int] = set()
    for s, _ in ast.walk_stmts(unit.body):
        if isinstance(s, ast.Goto):
            out.add(s.target)
        elif isinstance(s, ast.ArithIf):
            out.update((s.neg_label, s.zero_label, s.pos_label))
        elif isinstance(s, ast.ComputedGoto):
            out.update(s.targets)
    return out


def _normalize_enddo(loop: ast.DoLoop, unit: ast.ProgramUnit) -> bool:
    """Convert a label-form loop to ENDDO form when no GOTO needs the
    terminal label.  Returns False when the label is jump-targeted."""
    if loop.term_label is None:
        return True
    targets = _label_targets(unit)
    if loop.term_label in targets:
        return False
    if loop.body and isinstance(loop.body[-1], ast.Continue) \
            and loop.body[-1].label == loop.term_label:
        loop.body.pop()
    loop.term_label = None
    return True


class LoopDistribution(Transformation):
    """Split a loop into one loop per strongly-connected component of its
    statement-level dependence graph, in topological order."""

    name = "loop_distribution"
    category = "Reordering"
    scope = "loop"

    def _partitions(self, ctx: TContext) -> list[list[int]] | None:
        loop = ctx.loop.loop
        # CONTINUEs are no-ops (the terminal one is regenerated per loop);
        # unstructured flow was excluded by check(), so none is a target.
        top = [s for s in loop.body if not isinstance(s, ast.Continue)]
        if len(top) < 2:
            return None
        owner_of: dict[int, int] = {}
        for idx, s in enumerate(top):
            for inner, _ in ast.walk_stmts([s]):
                owner_of[inner.uid] = idx
        g = nx.DiGraph()
        g.add_nodes_from(range(len(top)))
        for d in ctx.deps.dependences:
            if not d.active or d.dtype is DepType.INPUT:
                continue
            a = owner_of.get(d.source.stmt_uid)
            b = owner_of.get(d.sink.stmt_uid)
            if a is None or b is None or a == b:
                continue
            # Distribution legality: a dependence (carried or not) is
            # satisfied as long as the source's partition runs before the
            # sink's; only dependence *cycles* force statements into the
            # same loop.  SCC condensation gives exactly that.
            g.add_edge(a, b)
            sym = ctx.uir.symtab.get(d.var)
            if sym is None or not sym.is_array:
                # A scalar flows a *per-iteration* value: splitting its
                # producer from its consumer would leave only the last
                # value.  Force them into one partition (expand the
                # scalar first if distribution is wanted there).
                g.add_edge(b, a)
        sccs = list(nx.strongly_connected_components(g))
        cond = nx.condensation(g, sccs)
        # Topological order of the condensation (dependences respected),
        # tie-broken toward original statement order.
        order = list(nx.lexicographical_topological_sort(
            cond, key=lambda n: min(cond.nodes[n]["members"])))
        parts = [sorted(cond.nodes[n]["members"]) for n in order]
        return parts if len(parts) > 1 else None

    def check(self, ctx: TContext) -> Advice:
        if ctx.loop is None:
            return Advice.no("select a loop")
        if _has_unstructured_flow(ctx.loop.loop.body):
            return Advice.no("loop body contains unstructured control flow")
        parts = self._partitions(ctx)
        if parts is None:
            return Advice.no("dependences tie all statements into one "
                             "partition")
        profitable = any(
            self._partition_parallel(ctx, p) for p in parts)
        return Advice.yes(profitable,
                          f"distributes into {len(parts)} loops")

    def _partition_parallel(self, ctx: TContext, part: list[int]) -> bool:
        uids = set()
        top = [s for s in ctx.loop.loop.body
               if not isinstance(s, ast.Continue)]
        for idx in part:
            for s, _ in ast.walk_stmts([top[idx]]):
                uids.add(s.uid)
        for d in ctx.deps.carried():
            if d.level == 1 and d.source.stmt_uid in uids \
                    and d.sink.stmt_uid in uids:
                return False
        return True

    def _do(self, ctx: TContext):
        loop = ctx.loop.loop
        unit = ctx.uir.unit
        parts = self._partitions(ctx)
        if parts is None:  # pragma: no cover - check() guards
            raise TransformError("not distributable")
        if not _normalize_enddo(loop, unit):
            raise TransformError("terminal label is a GOTO target")
        owner, idx = owner_or_raise(ctx.uir, loop)
        top = [s for s in loop.body if not isinstance(s, ast.Continue)]
        new_loops: list[ast.DoLoop] = []
        for part in parts:
            nl = ast.DoLoop(var=loop.var, start=loop.start, end=loop.end,
                            step=loop.step,
                            body=[top[i] for i in part],
                            term_label=None, parallel=False,
                            private_vars=set(loop.private_vars),
                            label=None, line=loop.line)
            new_loops.append(nl)
        owner[idx:idx + 1] = new_loops
        return (f"distributed loop at line {loop.line} into "
                f"{len(new_loops)} loops"), []


class LoopInterchange(Transformation):
    """Swap the headers of a perfectly nested loop pair."""

    name = "loop_interchange"
    category = "Reordering"
    scope = "loop"

    def _inner(self, ctx: TContext) -> LoopInfo | None:
        return ctx.loop.is_perfect_nest_with() if ctx.loop else None

    def check(self, ctx: TContext) -> Advice:
        if ctx.loop is None:
            return Advice.no("select a loop")
        inner = self._inner(ctx)
        if inner is None:
            return Advice.no("loop is not a perfect nest with a single "
                             "inner loop")
        outer, innr = ctx.loop.loop, inner.loop
        ovars = ast.variables_in(innr.start) | ast.variables_in(innr.end)
        if innr.step is not None:
            ovars |= ast.variables_in(innr.step)
        if outer.var in ovars:
            return Advice.no("inner loop bounds depend on the outer "
                             "induction variable (triangular nest)")
        ivars = ast.variables_in(outer.start) | ast.variables_in(outer.end)
        if innr.var in ivars:
            return Advice.no("outer loop bounds depend on the inner "
                             "induction variable")
        for d in ctx.deps.dependences:
            if not d.active or len(d.vector) < 2:
                continue
            v0, v1 = d.vector[0], d.vector[1]
            # Interchange is illegal exactly when some dependence may have
            # direction (<, >): swapping would make it lexicographically
            # backward.  ANY entries may hide either direction.
            if v0 in (LT, ANY) and v1 in (GT, ANY):
                return Advice.unsafe(
                    f"dependence {d.describe()} has (or may have) "
                    "direction (<,>)")
        profitable = not ctx.deps.parallelizable()
        return Advice.yes(profitable, "interchange is legal")

    def _do(self, ctx: TContext):
        outer = ctx.loop.loop
        inner = self._inner(ctx).loop
        for attr in ("var", "start", "end", "step"):
            a, b = getattr(outer, attr), getattr(inner, attr)
            setattr(outer, attr, b)
            setattr(inner, attr, a)
        return (f"interchanged loops at lines {outer.line}/{inner.line}"), []


class LoopFusion(Transformation):
    """Fuse two adjacent loops with identical bounds."""

    name = "loop_fusion"
    category = "Reordering"

    def _pair(self, ctx: TContext) -> tuple[ast.DoLoop, ast.DoLoop] | None:
        if ctx.loop is None:
            return None
        first = ctx.loop.loop
        found = owner_or_raise(ctx.uir, first)
        owner, idx = found
        other = ctx.param("with")
        if other is not None:
            other_li = ctx.uir.loops.find(other)
            second = other_li.loop
            if idx + 1 >= len(owner) or owner[idx + 1] is not second:
                return None
        else:
            if idx + 1 >= len(owner) or not isinstance(owner[idx + 1],
                                                       ast.DoLoop):
                return None
            second = owner[idx + 1]
        return first, second

    def check(self, ctx: TContext) -> Advice:
        pair = self._pair(ctx)
        if pair is None:
            return Advice.no("no adjacent loop to fuse with")
        a, b = pair
        if (a.start, a.end, a.step or ast.IntConst(1)) != \
                (b.start, b.end, b.step or ast.IntConst(1)):
            return Advice.no("loop bounds differ")
        if _has_unstructured_flow(a.body) or _has_unstructured_flow(b.body):
            return Advice.no("unstructured control flow in a loop body")
        bad = self._fusion_preventing(ctx, a, b)
        if bad:
            return Advice.unsafe(f"fusion-preventing dependence on {bad}")
        return Advice.yes(True, "bounds match and no fusion-preventing "
                                "dependence")

    def _fusion_preventing(self, ctx: TContext, a: ast.DoLoop,
                           b: ast.DoLoop) -> str | None:
        """Test cross-loop reference pairs under the fused iteration space;
        a feasible '>' vector means iteration i of the second body would
        need a value produced at iteration > i of the first."""
        from ..dependence.tests import test_pair
        st = ctx.uir.symtab
        env = ctx.analyzer._env_at(ctx.uir.loops.find(a))
        ctxs = ctx.analyzer._loop_ctxs(ctx.uir.loops.find(a),
                                       (a.uid,), env)
        facts = ctx.analyzer._facts_with_ranges(env)
        refs_a = _array_refs(a.body, st, b.var, a.var)
        refs_b = _array_refs(b.body, st, b.var, a.var)
        for var, subs_a, w_a in refs_a:
            for var2, subs_b, w_b in refs_b:
                if var != var2 or not (w_a or w_b):
                    continue
                r = test_pair(subs_a, subs_b, ctxs, env, facts)
                for v in r.vectors:
                    if v and v[0] == GT:
                        return var
        return None

    def _do(self, ctx: TContext):
        a, b = self._pair(ctx)
        unit = ctx.uir.unit
        if not _normalize_enddo(a, unit) or not _normalize_enddo(b, unit):
            raise TransformError("terminal label is a GOTO target")
        if b.var != a.var:
            for s in b.body:
                substitute_in_stmt(s, {b.var: ast.VarRef(a.var)})
        owner, idx = owner_or_raise(ctx.uir, a)
        a.body.extend(b.body)
        owner.remove(b)
        a.parallel = False
        a.private_vars |= b.private_vars
        return f"fused loops at lines {a.line} and {b.line}", []


def _array_refs(body: list[ast.Stmt], st, rename_from: str, rename_to: str):
    """(array, subscripts, is_write) triples; loop var normalized."""
    from ..analysis.defuse import accesses
    out = []
    env = {rename_from: ast.VarRef(rename_to)} if rename_from != rename_to \
        else {}
    for s, _ in ast.walk_stmts(body):
        for a in accesses(s, st):
            sym = st.get(a.name)
            if sym is None or not sym.is_array:
                continue
            if isinstance(a.ref, ast.ArrayRef):
                subs = tuple(ast.substitute(x, env) for x in a.ref.subscripts)
                out.append((a.name, subs, a.is_def))
    return out


class LoopReversal(Transformation):
    """Run the iterations backwards."""

    name = "loop_reversal"
    category = "Reordering"
    scope = "loop"

    def check(self, ctx: TContext) -> Advice:
        if ctx.loop is None:
            return Advice.no("select a loop")
        carried = [d for d in ctx.deps.carried() if d.level == 1]
        if carried:
            return Advice.unsafe(
                f"{len(carried)} loop-carried dependence(s) would reverse")
        return Advice.yes(False, "no carried dependences; reversal legal")

    def _do(self, ctx: TContext):
        lp = ctx.loop.loop
        lp.start, lp.end = lp.end, lp.start
        step = lp.step or ast.IntConst(1)
        if isinstance(step, ast.IntConst):
            lp.step = ast.IntConst(-step.value)
        elif isinstance(step, ast.UnOp) and step.op == "-":
            lp.step = step.operand
        else:
            lp.step = ast.UnOp("-", step)
        if isinstance(lp.step, ast.IntConst) and lp.step.value == 1:
            lp.step = None
        return f"reversed loop at line {lp.line}", []


class LoopSkewing(Transformation):
    """Skew the inner loop of a perfect nest by ``factor`` * outer index."""

    name = "loop_skewing"
    category = "Reordering"

    def check(self, ctx: TContext) -> Advice:
        if ctx.loop is None:
            return Advice.no("select a loop")
        inner = ctx.loop.is_perfect_nest_with()
        if inner is None:
            return Advice.no("loop is not a perfect nest")
        f = ctx.param("factor", 1)
        if not isinstance(f, int) or f == 0:
            return Advice.no("skew factor must be a non-zero integer")
        return Advice.yes(False, "skewing is always legal; profitable "
                                 "when it enables interchange")

    def _do(self, ctx: TContext):
        outer = ctx.loop.loop
        inner = ctx.loop.is_perfect_nest_with().loop
        f = ctx.param("factor", 1)
        shift = ast.BinOp("*", ast.IntConst(f), ast.VarRef(outer.var)) \
            if f != 1 else ast.VarRef(outer.var)
        inner.start = add_expr(inner.start, shift)
        inner.end = add_expr(inner.end, shift)
        for s in inner.body:
            substitute_in_stmt(
                s, {inner.var: sub_expr(ast.VarRef(inner.var), shift)})
        return (f"skewed inner loop at line {inner.line} by factor {f}"), []


class StatementInterchange(Transformation):
    """Swap two adjacent statements."""

    name = "statement_interchange"
    category = "Reordering"
    needs_loop = False

    def _pair(self, ctx: TContext) -> tuple[list[ast.Stmt], int] | None:
        target: ast.Stmt | None = ctx.param("stmt")
        if target is None:
            return None
        found = owner_or_raise(ctx.uir, target)
        owner, idx = found
        if idx + 1 >= len(owner):
            return None
        return owner, idx

    def check(self, ctx: TContext) -> Advice:
        pair = self._pair(ctx)
        if pair is None:
            return Advice.no("statement has no following sibling")
        owner, idx = pair
        a, b = owner[idx], owner[idx + 1]
        uids_a = {s.uid for s, _ in ast.walk_stmts([a])}
        uids_b = {s.uid for s, _ in ast.walk_stmts([b])}
        li = ctx.uir.loops.enclosing(a.uid)
        deps = (ctx.analyzer.analyze_loop(li).dependences if li is not None
                else [])
        for d in deps:
            if not d.active:
                continue
            if (d.source.stmt_uid in uids_a and d.sink.stmt_uid in uids_b) \
                    or (d.source.stmt_uid in uids_b
                        and d.sink.stmt_uid in uids_a):
                if not d.loop_carried:
                    return Advice.unsafe(
                        f"loop-independent dependence {d.describe()}")
        if li is None:
            # outside loops: compare def/use sets directly
            from ..analysis.defuse import stmt_defs, stmt_uses
            st = ctx.uir.symtab
            da, ua = set(), set()
            for s, _ in ast.walk_stmts([a]):
                da |= stmt_defs(s, st)
                ua |= stmt_uses(s, st)
            db, ub = set(), set()
            for s, _ in ast.walk_stmts([b]):
                db |= stmt_defs(s, st)
                ub |= stmt_uses(s, st)
            if (da & (db | ub)) or (db & ua):
                return Advice.unsafe("statements share defined variables")
        return Advice.yes(False, "no dependence between the statements")

    def _do(self, ctx: TContext):
        owner, idx = self._pair(ctx)
        owner[idx], owner[idx + 1] = owner[idx + 1], owner[idx]
        return (f"interchanged statements at lines {owner[idx].line} and "
                f"{owner[idx + 1].line}"), []
