"""arc3d: 3-D hydrodynamics code (Doreen Cheng, NASA Ames).

Features mirrored from the paper:

* the filter3d fragment of Section 4.3 appears verbatim: the DO 15 loop
  writes WR1 over ``J = 1..JM`` and patches row ``JMAX``, where the
  initialization established ``JM = JMAX - 1``; carrying that symbolic
  relation into array kill analysis privatizes WR1 (and two siblings)
  and parallelizes DO 15 (Table 3: array kills = N, via symbolic
  relation);
* an array killed inside a procedure invoked in a loop (the paper's
  "in arc3d, an array is killed inside a procedure invoked in a loop,
  so interprocedural array kill analysis is required");
* the residual smoother is the imperfect nest the workshop interchanged
  (Table 4: loop interchange = U);
* a killed scalar in the metric sweep (scalar kills = U) and an
  unrecognized sum reduction in the norm (reductions = N);
* per-plane routines with row sections (sections = U).
"""

from .base import CorpusProgram

SOURCE = """\
      PROGRAM ARC3D
C     implicit finite-difference fluid code, filter + smoother
      INTEGER JMAXP, KMP, LP
      PARAMETER (JMAXP = 30, KMP = 20, LP = 3)
      REAL Q(30, 20, 3, 5)
      INTEGER JMAX, KM, JM
      COMMON /MESH/ Q, JMAX, KM, JM
      INTEGER J, K, L, N
      REAL RNORM
      JMAX = 30
      KM = 20
C     the initialization relation the paper highlights: it holds for
C     the rest of the program and is what analysis must propagate
      JM = JMAX - 1
      DO 5 N = 1, 5
         DO 5 L = 1, LP
            DO 5 K = 1, KMP
               DO 5 J = 1, JMAXP
                  Q(J, K, L, N) = 1.0 + 0.01 * J + 0.02 * K
 5    CONTINUE
      DO 10 L = 1, LP
         CALL FILTER(L)
 10   CONTINUE
      CALL SMOOTH
      RNORM = 0.0
      CALL NORM(RNORM)
      PRINT *, RNORM
      END

      SUBROUTINE FILTER(L)
C     the paper's filter3d fragment, verbatim structure
      INTEGER L, N, J, K
      REAL Q(30, 20, 3, 5)
      INTEGER JMAX, KM, JM
      COMMON /MESH/ Q, JMAX, KM, JM
      REAL WR1(30, 20)
      DO 15 N = 1, 5
         DO 16 J = 1, JM
            DO 16 K = 2, KM
               WR1(J, K) = Q(J + 1, K, L, N) - Q(J, K, L, N)
 16      CONTINUE
         DO 76 K = 2, KM
            WR1(JMAX, K) = WR1(JM, K)
 76      CONTINUE
         DO 17 J = 1, JMAX
            DO 17 K = 2, KM
               Q(J, K, L, N) = Q(J, K, L, N) + 0.1 * WR1(J, K)
 17      CONTINUE
 15   CONTINUE
      RETURN
      END

      SUBROUTINE SMOOTH
C     residual smoother: the imperfect nest needing interchange; the
C     inner K recurrence forces K outermost for parallel J iterations.
C     ZCOL is killed inside WIPE, which DO 80 invokes each plane --
C     the interprocedural array kill case.
      INTEGER J, K, L
      REAL Q(30, 20, 3, 5)
      INTEGER JMAX, KM, JM
      COMMON /MESH/ Q, JMAX, KM, JM
      REAL ZCOL(20)
      COMMON /WORK/ ZCOL
      REAL W
      DO 80 L = 1, 3
         CALL WIPE(L)
 80   CONTINUE
      DO 90 J = 2, JMAX - 1
         DO 91 K = 2, KM
            W = Q(J, K, 1, 1) * 0.5
            Q(J, K, 1, 1) = W + Q(J, K - 1, 1, 1) * 0.5
 91      CONTINUE
 90   CONTINUE
      RETURN
      END

      SUBROUTINE WIPE(L)
C     wholly rewrites the shared column buffer, then folds it into Q:
C     ZCOL is KILLed here on every path
      INTEGER L, K
      REAL Q(30, 20, 3, 5)
      INTEGER JMAX, KM, JM
      COMMON /MESH/ Q, JMAX, KM, JM
      REAL ZCOL(20)
      COMMON /WORK/ ZCOL
      DO 85 K = 1, 20
         ZCOL(K) = Q(1, K, L, 1)
 85   CONTINUE
      DO 86 K = 2, 20
         Q(2, K, L, 1) = Q(2, K, L, 1) + 0.05 * ZCOL(K)
 86   CONTINUE
      RETURN
      END

      SUBROUTINE NORM(RNORM)
C     solution norm: the unrecognized sum reduction
      REAL RNORM
      INTEGER J, K
      REAL Q(30, 20, 3, 5)
      INTEGER JMAX, KM, JM
      COMMON /MESH/ Q, JMAX, KM, JM
      DO 95 J = 1, JMAX
         DO 95 K = 1, KM
            RNORM = RNORM + Q(J, K, 1, 1) * Q(J, K, 1, 1)
 95   CONTINUE
      RETURN
      END
"""

PROGRAM = CorpusProgram(
    name="arc3d",
    description="3-D hydrodynamics code",
    contributor="Doreen Cheng, NASA Ames Research Center",
    source=SOURCE,
    paper_lines=3600,
    paper_procedures=25,
    table3={"dependence": "U", "scalar kills": "U", "sections": "U",
            "array kills": "N", "reductions": "N", "index arrays": ""},
    table4={"loop interchange": "U"},
    notes="FILTER holds the Section 4.3 fragment; DO 15 parallelizes "
          "once JM = JMAX - 1 reaches array kill analysis.  SMOOTH's "
          "DO 90/91 nest interchanges so the parallel J dimension moves "
          "inside the sequential K recurrence.",
)
