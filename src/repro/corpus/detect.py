"""Need/use detectors that regenerate Tables 3 and 4 from the corpus.

Each detector answers the question behind one row of Table 3:

* **dependence** (U): does dependence analysis locate parallel loops?
* **scalar kills** (U): does some loop parallelize only once scalar kill
  analysis privatizes its temporaries?
* **sections** (U): does interprocedural MOD/REF + section analysis
  reduce the dependences of a call-containing loop? (The paper counts a
  program even when the loop does not become fully parallel.)
* **array kills** (N): is there a loop whose blocking dependences all
  fall to array privatization -- directly, or after distributing an
  inner loop (the slab2d combination)?
* **reductions** (N): does an unrecognized reduction block a loop?
* **index arrays** (N): do index-array subscripts or bounds defeat
  dependence testing on a non-parallel loop?

Table 4's *needed* rows have their own detectors (control-flow webs,
interprocedural granularity mismatch); its *used* rows come from the
scripted sessions (:mod:`repro.ped.scripts`).
"""

from __future__ import annotations

from ..analysis.arraykills import array_kills
from ..analysis.defuse import SideEffectOracle
from ..dependence.ddg import DependenceAnalyzer
from ..dependence.model import DepType
from ..fortran import ast, parse_program
from ..interproc import InterproceduralOracle, SummaryBuilder
from ..ir.program import AnalyzedProgram
from .base import ANALYSES, CorpusProgram


def _fresh(cp: CorpusProgram) -> tuple[AnalyzedProgram,
                                       InterproceduralOracle]:
    program = AnalyzedProgram(parse_program(cp.source))
    oracle = InterproceduralOracle(SummaryBuilder(program).build())
    return program, oracle


def _loops_with_analyzers(program, oracle, **kw):
    from ..interproc.symbolic import global_relations
    kw.setdefault("extra_env", global_relations(program))
    for name, uir in program.units.items():
        an = DependenceAnalyzer(uir, oracle=oracle, **kw)
        for li in uir.loops.all_loops():
            yield name, uir, an, li


def detect_dependence(cp: CorpusProgram) -> bool:
    """Dependence analysis finds at least one parallel loop."""
    program, oracle = _fresh(cp)
    for _, _, an, li in _loops_with_analyzers(program, oracle):
        if an.analyze_loop(li).parallelizable():
            return True
    return False


def detect_scalar_kills(cp: CorpusProgram) -> bool:
    """Some loop is parallel with scalar kill analysis, sequential
    without it."""
    program, oracle = _fresh(cp)
    for name, uir, an, li in _loops_with_analyzers(program, oracle):
        with_k = an.analyze_loop(li).parallelizable()
        if not with_k:
            continue
        an2 = DependenceAnalyzer(uir, oracle=oracle,
                                 use_scalar_kills=False,
                                 extra_env=an.extra_env)
        if not an2.analyze_loop(li).parallelizable():
            return True
    return False


def _has_call(li) -> bool:
    return any(isinstance(s, ast.CallStmt) for s in li.statements())


def detect_sections(cp: CorpusProgram) -> bool:
    """Interprocedural side-effect/section analysis strictly reduces the
    active dependences of some call-containing loop."""
    program, oracle = _fresh(cp)
    worst = SideEffectOracle()
    for name, uir, an, li in _loops_with_analyzers(program, oracle):
        if not _has_call(li):
            continue
        refined = len([d for d in an.analyze_loop(li).dependences
                       if d.dtype is not DepType.INPUT])
        an2 = DependenceAnalyzer(uir, oracle=worst)
        base = len([d for d in an2.analyze_loop(li).dependences
                    if d.dtype is not DepType.INPUT])
        if refined < base:
            return True
    return False


def _blocking_vars(ld) -> set[str]:
    return {d.var for d in ld.carried()
            if d.level == 1 and d.dtype is not DepType.INPUT}


def _array_kill_fixes(uir, an, li, oracle) -> bool:
    """Would array privatization eliminate important (blocking)
    dependences of this loop?

    Matches the paper's criterion -- "array kill analysis would eliminate
    important dependences" -- which does not require the loop to become
    fully parallel (other obstacles may remain)."""
    ld = an.analyze_loop(li)
    if ld.parallelizable():
        return False
    blocking = _blocking_vars(ld)
    st = uir.symtab
    arrays = {v for v in blocking if st.is_array(v)}
    if not arrays:
        return False
    env = an._env_at(li)
    facts = an._facts_with_ranges(env)
    cb = oracle.call_sections_for(st) \
        if hasattr(oracle, "call_sections_for") else None
    cands = {r.array for r in array_kills(li.loop, st, oracle, env,
                                          call_sections=cb, facts=facts)
             if r.privatizable}
    return bool(arrays & cands)


def detect_array_kills(cp: CorpusProgram) -> bool:
    """Array kill analysis (alone, or combined with inner-loop
    distribution) would reveal parallelism."""
    program, oracle = _fresh(cp)
    for name, uir, an, li in _loops_with_analyzers(program, oracle):
        if _array_kill_fixes(uir, an, li, oracle):
            return True
    # slab2d combination: distribute inner loops first, then retry.
    program, oracle = _fresh(cp)
    from ..interproc.symbolic import global_relations
    from ..transform import TContext, get
    genv = global_relations(program)
    for name, uir in program.units.items():
        an = DependenceAnalyzer(uir, oracle=oracle, extra_env=genv)
        changed = False
        for li in list(uir.loops.all_loops()):
            if li.depth == 0:
                continue
            t = get("loop_distribution")
            ctx = TContext(uir=uir, analyzer=an, loop=li)
            try:
                if t.check(ctx).ok:
                    t.apply(ctx)
                    changed = True
                    an = DependenceAnalyzer(uir, oracle=oracle,
                                            extra_env=genv)
            except Exception:
                continue
        if not changed:
            continue
        oracle2 = InterproceduralOracle(SummaryBuilder(program).build())
        an = DependenceAnalyzer(uir, oracle=oracle2, extra_env=genv)
        for li in uir.loops.all_loops():
            if li.depth == 0 and _array_kill_fixes(uir, an, li, oracle2):
                return True
    return False


def detect_reductions(cp: CorpusProgram) -> bool:
    """An unrecognized reduction blocks some loop."""
    program, oracle = _fresh(cp)
    for _, _, an, li in _loops_with_analyzers(program, oracle):
        ld = an.analyze_loop(li)
        if ld.reductions and not ld.parallelizable():
            blocked_by_red = any(
                d.var in ld.reductions for d in ld.carried()
                if d.level == 1)
            if blocked_by_red:
                return True
    return False


def _has_index_array_subscript(an, li) -> bool:
    refs = an._collect_refs(li)
    copies = an._iteration_copies(li)
    for r in refs:
        if r.test_subs is None:
            continue
        for sub in r.test_subs:
            sub = an._apply_copies(sub, copies, r.order)
            for node in ast.walk_expr(sub):
                if isinstance(node, ast.ArrayRef) \
                        and "%" not in node.name:
                    return True
    return False


def _has_index_array_bounds(li) -> bool:
    lp = li.loop
    exprs = [lp.start, lp.end] + ([lp.step] if lp.step is not None else [])
    for e in exprs:
        for node in ast.walk_expr(e):
            if isinstance(node, (ast.ArrayRef, ast.NameRef)):
                return True
    return False


def detect_index_arrays(cp: CorpusProgram) -> bool:
    """Index arrays in subscripts (or symbolic array bounds) defeat
    dependence testing on a non-parallel loop."""
    program, oracle = _fresh(cp)
    for _, _, an, li in _loops_with_analyzers(program, oracle):
        ld = an.analyze_loop(li)
        if ld.parallelizable():
            continue
        if _has_index_array_subscript(an, li) or _has_index_array_bounds(li):
            return True
    return False


def table3_row(cp: CorpusProgram) -> dict[str, str]:
    """Measured Table 3 row for one corpus program."""
    return {
        "dependence": "U" if detect_dependence(cp) else "",
        "scalar kills": "U" if detect_scalar_kills(cp) else "",
        "sections": "U" if detect_sections(cp) else "",
        "array kills": "N" if detect_array_kills(cp) else "",
        "reductions": "N" if detect_reductions(cp) else "",
        "index arrays": "N" if detect_index_arrays(cp) else "",
    }


# -- Table 4 need detectors ---------------------------------------------------

def needs_control_flow(cp: CorpusProgram) -> bool:
    """Unstructured control flow (arithmetic IFs / GOTO webs) present."""
    program = AnalyzedProgram(parse_program(cp.source))
    for uir in program.units.values():
        for s, _ in ast.walk_stmts(uir.unit.body):
            if isinstance(s, ast.ArithIf):
                return True
            if isinstance(s, ast.Goto):
                return True
            if isinstance(s, ast.LogicalIf) and isinstance(s.stmt,
                                                           ast.Goto):
                return True
    return False


def needs_interprocedural(cp: CorpusProgram,
                          granularity_threshold: int = 16,
                          min_inner_trip: int = 64) -> bool:
    """A small-trip-count loop whose body is a single call to a procedure
    containing substantially larger loops: the spec77 embedding /
    extraction case.  The inner loop must offer enough parallelism to be
    worth moving (>= ``min_inner_trip`` iterations and more than the
    outer loop has)."""
    from ..analysis.symbolic import trip_count
    from ..interproc.constants import interprocedural_constants
    from ..interproc.symbolic import global_relations
    from ..analysis.linear import LinearExpr
    program, oracle = _fresh(cp)
    genv = global_relations(program)

    def env_for(uir):
        env = dict(genv)
        for sym in uir.symtab.symbols.values():
            if sym.storage == "parameter" and sym.param_value is not None:
                from ..analysis.constants import eval_const
                v = eval_const(sym.param_value, {})
                if isinstance(v, int):
                    env[sym.name] = LinearExpr.constant(v)
        return env

    for name, uir in program.units.items():
        env = env_for(uir)
        for li in uir.loops.all_loops():
            body = [s for s in li.loop.body
                    if not isinstance(s, ast.Continue)]
            if len(body) != 1 or not isinstance(body[0], ast.CallStmt):
                continue
            callee = body[0].name
            if callee not in program.units:
                continue
            outer_trip = trip_count(li.loop, env) or 0
            if outer_trip == 0 or outer_trip > granularity_threshold:
                continue
            cuir = program.units[callee]
            cenv = env_for(cuir)
            for cli in cuir.loops.all_loops():
                inner_trip = trip_count(cli.loop, cenv)
                if inner_trip and inner_trip >= min_inner_trip \
                        and inner_trip > outer_trip:
                    return True
    return False
