"""The synthetic workshop corpus: eight programs standing in for Table 1.

``PROGRAMS`` preserves the paper's Table 1 ordering.
"""

from . import arc3d, dpmin, neoss, nxsns, pueblo3d, slab2d, slalom, spec77
from .base import ANALYSES, TRANSFORMS, CorpusProgram

PROGRAMS: dict[str, CorpusProgram] = {
    m.PROGRAM.name: m.PROGRAM
    for m in (spec77, neoss, nxsns, dpmin, slab2d, slalom, pueblo3d, arc3d)
}

ORDER = tuple(PROGRAMS)


def get(name: str) -> CorpusProgram:
    return PROGRAMS[name.lower()]


__all__ = ["CorpusProgram", "PROGRAMS", "ORDER", "get", "ANALYSES",
           "TRANSFORMS"]
