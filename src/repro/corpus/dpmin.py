"""dpmin: molecular mechanics and dynamics (Marcia Pottle, Cornell).

Features mirrored from the paper:

* the DO 300 force-update loop from Section 4.3 appears **verbatim**
  (all nine updates through the IT/JT/KT index arrays read from input) --
  the index-array obstacle (Table 3: index arrays = N) resolved only by
  the monotone/disjoint assertions the paper derives;
* dialect control flow (arithmetic IF) in the line-search
  (Table 4: control flow = N);
* an energy sum reduction (reductions = N);
* a killed scalar in the pair-interaction loop (scalar kills = U);
* a bond-table procedure called from a loop with column sections
  (sections = U);
* loop distribution opportunity in the update loop (Section 5.3 notes
  distribution opportunities in dpmin, not taken at the workshop).

dpmin is the corpus program whose obstacles do *not* include array
kills: its temporaries are all scalars or index-array-addressed.
"""

from .base import CorpusProgram

SOURCE = """\
      PROGRAM DPMIN
C     molecular mechanics energy minimization driver
      INTEGER NAT, NBA
      PARAMETER (NAT = 120, NBA = 36)
      REAL F(363), X(363), E
      INTEGER IT(36), JT(36), KT(36)
      COMMON /MOL/ F, X, IT, JT, KT
      INTEGER I, N
      DO 5 I = 1, 3 * NAT + 3
         F(I) = 0.0
         X(I) = 0.001 * I
 5    CONTINUE
C     index arrays are read from input in the original program; the
C     synthetic equivalent has the same gap-3 monotone structure:
C     IT(N) = 3*N - 2 grows by 3, JT and KT follow in disjoint ranges.
      DO 6 N = 1, NBA
         IT(N) = 3 * N - 2
         JT(N) = 108 + 3 * N - 2
         KT(N) = 216 + 3 * N - 2
 6    CONTINUE
      CALL FORCES
      CALL LSRCH(E)
      PRINT *, E, F(10)
      END

      SUBROUTINE FORCES
C     the paper's DO 300 loop, verbatim modulo the DT* definitions
      INTEGER NBA
      PARAMETER (NBA = 36)
      REAL F(363), X(363)
      INTEGER IT(36), JT(36), KT(36)
      COMMON /MOL/ F, X, IT, JT, KT
      INTEGER N, I3, J3, K3
      REAL DT1, DT2, DT3, DT4, DT5, DT6, DT7, DT8, DT9
      DO 300 N = 1, NBA
         I3 = IT(N)
         J3 = JT(N)
         K3 = KT(N)
         DT1 = X(I3 + 1) * 0.1
         DT2 = X(I3 + 2) * 0.1
         DT3 = X(I3 + 3) * 0.1
         DT4 = X(J3 + 1) * 0.1
         DT5 = X(J3 + 2) * 0.1
         DT6 = X(J3 + 3) * 0.1
         DT7 = X(K3 + 1) * 0.1
         DT8 = X(K3 + 2) * 0.1
         DT9 = X(K3 + 3) * 0.1
         F(I3 + 1) = F(I3 + 1) - DT1
         F(I3 + 2) = F(I3 + 2) - DT2
         F(I3 + 3) = F(I3 + 3) - DT3
         F(J3 + 1) = F(J3 + 1) - DT4
         F(J3 + 2) = F(J3 + 2) - DT5
         F(J3 + 3) = F(J3 + 3) - DT6
         F(K3 + 1) = F(K3 + 1) - DT7
         F(K3 + 2) = F(K3 + 2) - DT8
         F(K3 + 3) = F(K3 + 3) - DT9
 300  CONTINUE
      CALL BONDS
      RETURN
      END

      SUBROUTINE BONDS
C     pair interactions: R is killed every iteration (scalar kills = U);
C     the BTAB call's effects are confined to one table column
      INTEGER NAT
      PARAMETER (NAT = 120)
      REAL F(363), X(363)
      INTEGER IT(36), JT(36), KT(36)
      COMMON /MOL/ F, X, IT, JT, KT
      REAL R
      INTEGER I
      DO 310 I = 1, 3 * NAT - 3
         R = X(I + 3) - X(I)
         F(I) = F(I) + 0.5 * R
 310  CONTINUE
      DO 320 I = 1, 36
         CALL BTAB(I)
 320  CONTINUE
      RETURN
      END

      SUBROUTINE BTAB(COL)
C     bond table column update (section: one column of BT)
      INTEGER COL, K
      REAL BT(8, 36)
      COMMON /TAB/ BT
      DO 330 K = 1, 8
         BT(K, COL) = 0.25 * K + COL
 330  CONTINUE
      RETURN
      END

      SUBROUTINE LSRCH(E)
C     line search written in dialect Fortran: arithmetic IF + GOTO
      REAL E
      INTEGER NAT
      PARAMETER (NAT = 120)
      REAL F(363), X(363)
      INTEGER IT(36), JT(36), KT(36)
      COMMON /MOL/ F, X, IT, JT, KT
      REAL STEP
      INTEGER I
      E = 0.0
      DO 340 I = 1, 3 * NAT
         E = E + F(I) * F(I)
 340  CONTINUE
      STEP = 1.0
      I = 0
 350  CONTINUE
      I = I + 1
      IF (E - 100.0) 360, 360, 370
 360  STEP = STEP * 0.5
      GOTO 380
 370  STEP = STEP * 2.0
 380  CONTINUE
      IF (I .LT. 4) GOTO 350
      E = E * STEP
      RETURN
      END
"""

PROGRAM = CorpusProgram(
    name="dpmin",
    description="molecular mechanics and dynamics program",
    contributor="Marcia Pottle, Cornell Theory Center",
    source=SOURCE,
    paper_lines=5000,
    paper_procedures=52,
    table3={"dependence": "U", "scalar kills": "U", "sections": "U",
            "array kills": "", "reductions": "N", "index arrays": "N"},
    table4={"control flow": "N"},
    notes="FORCES holds the Section 4.3 DO 300 loop verbatim; the "
          "paper's breaking conditions IT(N)+3 <= IT(N+1), "
          "IT(NBA)+3 <= JT(1), JT(NBA)+3 <= KT(1) hold by construction "
          "and are checkable at run time.",
)
