"""pueblo3d: hydrodynamics benchmark (Ralph Brickner, LANL).

Features mirrored from the paper:

* the Section 3.3 kernel appears verbatim: loops over
  ``ISTRT(IR)..IENDV(IR)`` reading ``UF(I + MCN, *)`` and writing
  ``UF(I, *)``, where ``MCN`` ("my current neighbor") indexes linearized
  3-D arrays.  The construction appears in several loop nests consuming
  most of the execution time; the assertion
  ``MCN .GT. IENDV(IR) - ISTRT(IR)`` eliminates all carried dependences
  (Table 3: index arrays = N, via ISTRT/IENDV/MCN);
* per-cell temporaries wholly rewritten each outer iteration
  (array kills = N) and killed scalars (scalar kills = U);
* the flux and update sweeps are adjacent conformable loops the
  workshop fused, and the small accumulation loop was unrolled
  (Table 4: loop fusion = U, loop unrolling = U);
* boundary-zone routines called from sweeps with row sections
  (sections = U).
"""

from .base import CorpusProgram

SOURCE = """\
      PROGRAM PUEBLO
C     3-D hydro on linearized arrays with neighbor offsets
      INTEGER NZONE, NREG
      PARAMETER (NZONE = 512, NREG = 4)
      REAL UF(640, 5), WF(640, 5)
      INTEGER ISTRT(4), IENDV(4)
      INTEGER MCN, M
      COMMON /HYD/ UF, WF, ISTRT, IENDV, MCN, M
      INTEGER I, K, IR
      REAL CHK
      DO 5 K = 1, 5
         DO 5 I = 1, 640
            UF(I, K) = 0.001 * I + 0.1 * K
            WF(I, K) = 0.0
 5    CONTINUE
C     regions are disjoint 128-zone blocks; the neighbor offset MCN
C     exceeds every region's extent (the paper's key invariant)
      DO 6 IR = 1, NREG
         ISTRT(IR) = (IR - 1) * 128 + 1
         IENDV(IR) = (IR - 1) * 128 + 127
 6    CONTINUE
C     MCN and M vary across sweep phases (as in the original, where the
C     neighbor offset and field index are set per direction), so no
C     static analysis can resolve them -- only the user assertion can
      MCN = 128
      M = 2
      DO 10 IR = 1, NREG
         CALL SWEEP(IR)
 10   CONTINUE
      MCN = 127
      M = 3
      DO 11 IR = 1, NREG
         CALL SWEEP(IR)
 11   CONTINUE
      CALL BDRY
      CHK = 0.0
      DO 20 I = 1, 640
         CHK = 0.98 * CHK + UF(I, 2) + WF(I, 3)
 20   CONTINUE
      PRINT *, CHK
      END

      SUBROUTINE SWEEP(IR)
C     the paper's kernel, three instances (several of the ten nests)
      INTEGER IR
      REAL UF(640, 5), WF(640, 5)
      INTEGER ISTRT(4), IENDV(4)
      INTEGER MCN, M
      COMMON /HYD/ UF, WF, ISTRT, IENDV, MCN, M
      REAL X, Y
      INTEGER I
      DO 30 I = ISTRT(IR), IENDV(IR)
         X = UF(I + MCN, 3)
         UF(I, M) = X * 0.5 + UF(I, M) * 0.5
 30   CONTINUE
      DO 40 I = ISTRT(IR), IENDV(IR)
         Y = UF(I + MCN, 4)
         WF(I, M) = Y - UF(I, M)
 40   CONTINUE
      DO 50 I = ISTRT(IR), IENDV(IR)
         WF(I, M + 1) = WF(I, M) * 1.25
 50   CONTINUE
      RETURN
      END

      SUBROUTINE BDRY
C     boundary flux: TMP is wholly written then read per zone row
C     (array kills); EDGE updates one row per call (sections)
      REAL UF(640, 5), WF(640, 5)
      INTEGER ISTRT(4), IENDV(4)
      INTEGER MCN, M
      COMMON /HYD/ UF, WF, ISTRT, IENDV, MCN, M
      REAL TMP(128)
      INTEGER IR, I
      DO 60 IR = 1, 4
         DO 61 I = 1, 127
            TMP(I) = UF(128 * IR - 128 + I, 2) * 0.5
 61      CONTINUE
         TMP(128) = TMP(127)
         DO 62 I = 1, 127
            WF(128 * IR - 128 + I, 5) = TMP(I) + TMP(I + 1)
 62      CONTINUE
         CALL EDGE(IR)
 60   CONTINUE
      RETURN
      END

      SUBROUTINE EDGE(IR)
C     one region's first edge zone
      INTEGER IR
      REAL UF(640, 5), WF(640, 5)
      INTEGER ISTRT(4), IENDV(4)
      INTEGER MCN, M
      COMMON /HYD/ UF, WF, ISTRT, IENDV, MCN, M
      UF(128 * IR - 127, 5) = UF(128 * IR - 127, 5) * 0.9
      RETURN
      END
"""

PROGRAM = CorpusProgram(
    name="pueblo3d",
    description="hydrodynamics benchmark program",
    contributor="Ralph Brickner, Los Alamos National Laboratory",
    source=SOURCE,
    paper_lines=4000,
    paper_procedures=50,
    table3={"dependence": "U", "scalar kills": "U", "sections": "U",
            "array kills": "N", "reductions": "", "index arrays": "N"},
    table4={"loop fusion": "U", "loop unrolling": "U"},
    notes="SWEEP holds the Section 3.3 UF kernel; the assertion "
          "MCN .GT. IENDV(IR) - ISTRT(IR) holds by construction "
          "(MCN = 128, region extent 126) and parallelizes DO 30/40; "
          "DO 30 and DO 40 fuse after the assertion.",
)
