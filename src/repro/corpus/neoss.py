"""neoss: thermodynamics code (Mary Zosel, LLNL).

Features mirrored from the paper:

* the DO 50 loop with an arithmetic IF and GOTO web, quoted in Section
  5.3, appears verbatim (with concrete blocks) -- control-flow
  simplification is *needed* (Table 4: control flow = N);
* a density-table update loop whose important dependences fall to array
  kill analysis (Table 3: array kills = N);
* a sum reduction in the equation-of-state accumulation (reductions = N);
* a call-containing loop whose callee's write section cannot be analyzed
  (the subscript comes through a table lookup), so interprocedural
  section analysis fails to help -- neoss is the program where "analysis
  failed" (Table 3: sections blank);
* no loop gains from scalar privatization: the only carried scalars are
  genuine recurrences (Table 3: scalar kills blank).
"""

from .base import CorpusProgram

SOURCE = """\
      PROGRAM NEOSS
C     thermodynamic equation-of-state driver
      INTEGER NR, NK
      PARAMETER (NR = 40, NK = 60)
      REAL DENV(60), RES(41), PRES(60), ETAB(60)
      COMMON /STATE/ DENV, RES, PRES, ETAB
      INTEGER K
      REAL EOUT
      DO 5 K = 1, NK
         DENV(K) = 0.5 + 0.01 * K
         PRES(K) = 0.0
         ETAB(K) = 0.0
 5    CONTINUE
      DO 6 K = 1, NR + 1
         RES(K) = 0.02 * K
 6    CONTINUE
      CALL REGIME(NR)
      CALL EUPD(NR)
      EOUT = 0.0
      CALL ETOT(EOUT)
      PRINT *, EOUT
      END

      SUBROUTINE REGIME(NR)
C     the paper's DO 50 loop: dialect Fortran without structured IF.
C     <b1> computes a trial pressure, the arithmetic IF selects the
C     high- or low-density branch, <b4> commits the update.
      INTEGER NR, K, NK
      PARAMETER (NK = 60)
      REAL DENV(60), RES(41), PRES(60), ETAB(60)
      COMMON /STATE/ DENV, RES, PRES, ETAB
      REAL P
      P = 1.0
      DO 50 K = 1, NK
C     P is a genuine recurrence (damped trial pressure), NOT a killed
C     scalar: neoss is the corpus program without privatizable scalars.
      P = 0.5 * P + DENV(K) * 1.4
      IF (DENV(K) - RES(NR + 1)) 100, 10, 10
 10   CONTINUE
      P = P + 0.5 * DENV(K)
      GOTO 101
 100  P = P - 0.25 * DENV(K)
 101  PRES(K) = P
 50   CONTINUE
      RETURN
      END

      SUBROUTINE EUPD(NR)
C     energy-table update: TMP is wholly written, then read, every
C     iteration of the outer loop -- array kill analysis (not yet in
C     PED) is what would reveal the outer parallelism.  The LOOKUP call
C     writes through a table-driven subscript the analysis cannot bound.
      INTEGER NR, NK
      PARAMETER (NK = 60)
      REAL DENV(60), RES(41), PRES(60), ETAB(60)
      COMMON /STATE/ DENV, RES, PRES, ETAB
      REAL TMP(60)
      INTEGER ITER, K
      DO 60 ITER = 1, 4
         DO 61 K = 1, NK
            TMP(K) = PRES(K) + 0.1 * ITER
 61      CONTINUE
         DO 62 K = 1, NK
            ETAB(K) = ETAB(K) + 0.25 * TMP(K)
 62      CONTINUE
         CALL LOOKUP(ITER)
 60   CONTINUE
      RETURN
      END

      SUBROUTINE LOOKUP(ITER)
C     data-dependent table maintenance: every state array is read and
C     written through computed slots, so regular section analysis can
C     do no better than worst-case MOD/REF -- neoss is the program on
C     which the analysis "failed" (Section 4.2)
      INTEGER ITER, SLOT, NK
      PARAMETER (NK = 60)
      REAL DENV(60), RES(41), PRES(60), ETAB(60)
      COMMON /STATE/ DENV, RES, PRES, ETAB
      SLOT = INT(DENV(ITER) * 10.0) + 1
      PRES(SLOT) = PRES(SLOT) * 0.99
      ETAB(SLOT) = ETAB(SLOT) + PRES(SLOT)
      DENV(SLOT) = DENV(SLOT) * 1.0001
      RES(INT(PRES(SLOT)) + 1) = RES(INT(PRES(SLOT)) + 1) * 0.999
      RETURN
      END

      SUBROUTINE ETOT(EOUT)
C     total energy: a sum reduction PED does not recognize (Table 3)
      REAL EOUT
      INTEGER K, NK
      PARAMETER (NK = 60)
      REAL DENV(60), RES(41), PRES(60), ETAB(60)
      COMMON /STATE/ DENV, RES, PRES, ETAB
      DO 70 K = 1, NK
         EOUT = EOUT + ETAB(K) * DENV(K)
 70   CONTINUE
      RETURN
      END
"""

PROGRAM = CorpusProgram(
    name="neoss",
    description="thermodynamics code",
    contributor="Mary Zosel, Lawrence Livermore National Laboratory",
    source=SOURCE,
    paper_lines=350,
    paper_procedures=5,
    table3={"dependence": "U", "scalar kills": "", "sections": "",
            "array kills": "N", "reductions": "N", "index arrays": ""},
    table4={"control flow": "N"},
    notes="REGIME holds the Section 5.3 GOTO loop verbatim; EUPD's TMP "
          "needs array kill analysis; LOOKUP defeats section analysis "
          "(the 'analysis failed' program).",
)
