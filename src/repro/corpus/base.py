"""Corpus infrastructure: one synthetic stand-in per workshop program.

The real workshop codes (Table 1) are proprietary; each stand-in is
engineered to contain exactly the parallelization features the paper
attributes to its original, including the three kernels the paper quotes
verbatim (dpmin's DO 300, pueblo3d's MCN loop, arc3d's filter3d).  The
``table3``/``table4`` fields record the expected row of the respective
paper table; benchmarks *measure* the row from the program and compare.

Where the paper's table does not pin a mark to a specific program (the
OCR'd table loses column alignment), the assignment here satisfies every
constraint stated in the prose (e.g. "sections reduced dependences in
six programs; one had no calls in loops, analysis failed on the other")
and reproduces the per-row counts exactly; EXPERIMENTS.md documents this.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Table 3 analysis rows, in paper order.
ANALYSES = ("dependence", "scalar kills", "sections", "array kills",
            "reductions", "index arrays")

#: Table 4 transformation rows, in paper order.
TRANSFORMS = ("loop distribution", "loop interchange", "loop fusion",
              "scalar expansion", "loop unrolling", "control flow",
              "interprocedural")


@dataclass(frozen=True)
class CorpusProgram:
    name: str
    description: str
    contributor: str
    source: str
    #: line/procedure counts reported in the paper's Table 1
    paper_lines: int
    paper_procedures: int
    #: expected Table 3 row: analysis name -> "U" | "N" | ""
    table3: dict[str, str] = field(default_factory=dict)
    #: expected Table 4 row: transformation name -> "U" | "N" | ""
    table4: dict[str, str] = field(default_factory=dict)
    #: free-form notes on how the stand-in mirrors the original
    notes: str = ""
    #: interpreter inputs for profiling runs
    inputs: tuple = ()
