"""spec77: weather simulation (Steve Poole / Lo Hsieh, IBM).

Features mirrored from the paper:

* the key procedure GLOOP runs a latitude loop containing procedure
  calls; interprocedural MOD/REF + regular section analysis reveals the
  calls write disjoint columns, so the loop may run in parallel
  (Table 3: sections = U);
* GLOOP's loops have at most 12 iterations while the called procedures
  contain long longitude loops -- the granularity mismatch motivating
  loop embedding / extraction (Table 4: interprocedural = N);
* a temporary scalar killed each iteration (scalar kills = U) and a loop
  needing scalar expansion (Table 4: scalar expansion = U);
* a per-latitude work array wholly rewritten each outer iteration
  (array kills = N).
"""

from .base import CorpusProgram

SOURCE = """\
      PROGRAM SPEC77
C     weather simulation driver: spectral transform + grid physics
      INTEGER NLAT, NLON, NLEV
      PARAMETER (NLAT = 12, NLON = 96, NLEV = 4)
      REAL FLD(96, 12), FLX(96, 12), DIV(96, 12)
      REAL VOR(96, 12), TEN(96, 12)
      COMMON /GRID/ FLD, FLX, DIV, VOR, TEN
      INTEGER NSTEP, ISTEP
      REAL CHECK
      NSTEP = 3
      CALL SETUP
      DO 10 ISTEP = 1, NSTEP
         CALL GLOOP
         CALL SMOOTH
 10   CONTINUE
      CHECK = 0.0
      CALL NORM(CHECK)
      PRINT *, CHECK
      END

      SUBROUTINE SETUP
      INTEGER NLAT, NLON
      PARAMETER (NLAT = 12, NLON = 96)
      REAL FLD(96, 12), FLX(96, 12), DIV(96, 12)
      REAL VOR(96, 12), TEN(96, 12)
      COMMON /GRID/ FLD, FLX, DIV, VOR, TEN
      INTEGER I, J
      DO 20 J = 1, NLAT
         DO 20 I = 1, NLON
            FLD(I, J) = 1.0 + 0.01 * I + 0.1 * J
            FLX(I, J) = 0.0
            DIV(I, J) = 0.0
            VOR(I, J) = 0.5
            TEN(I, J) = 0.0
 20   CONTINUE
      RETURN
      END

      SUBROUTINE GLOOP
C     the key procedure: latitude loops containing procedure calls.
C     interprocedural sections prove each call touches only its own
C     latitude row, so these 12-iteration loops can run in parallel --
C     but 12 threads is poor granularity; the real parallelism is the
C     96-iteration longitude loops inside PHYS and DYN (embedding!).
      INTEGER NLAT
      PARAMETER (NLAT = 12)
      INTEGER LAT
      DO 30 LAT = 1, NLAT
         CALL PHYS(LAT)
 30   CONTINUE
      DO 40 LAT = 1, NLAT
         CALL DYN(LAT)
         CALL TEND(LAT)
 40   CONTINUE
      RETURN
      END

      SUBROUTINE PHYS(LAT)
C     grid-point physics for one latitude row
      INTEGER LAT, I, NLON
      PARAMETER (NLON = 96)
      REAL FLD(96, 12), FLX(96, 12), DIV(96, 12)
      REAL VOR(96, 12), TEN(96, 12)
      COMMON /GRID/ FLD, FLX, DIV, VOR, TEN
      REAL Q
      DO 50 I = 1, NLON
         Q = FLD(I, LAT) * 0.5
         FLX(I, LAT) = Q + VOR(I, LAT)
 50   CONTINUE
      RETURN
      END

      SUBROUTINE DYN(LAT)
C     dynamics for one latitude row
      INTEGER LAT, I, NLON
      PARAMETER (NLON = 96)
      REAL FLD(96, 12), FLX(96, 12), DIV(96, 12)
      REAL VOR(96, 12), TEN(96, 12)
      COMMON /GRID/ FLD, FLX, DIV, VOR, TEN
      DO 60 I = 2, NLON
         DIV(I, LAT) = FLX(I, LAT) - FLX(I - 1, LAT)
 60   CONTINUE
      DIV(1, LAT) = FLX(1, LAT)
      RETURN
      END

      SUBROUTINE TEND(LAT)
C     tendency accumulation for one latitude row
      INTEGER LAT, I, NLON
      PARAMETER (NLON = 96)
      REAL FLD(96, 12), FLX(96, 12), DIV(96, 12)
      REAL VOR(96, 12), TEN(96, 12)
      COMMON /GRID/ FLD, FLX, DIV, VOR, TEN
      DO 70 I = 1, NLON
         TEN(I, LAT) = TEN(I, LAT) + 0.1 * DIV(I, LAT)
 70   CONTINUE
      RETURN
      END

      SUBROUTINE SMOOTH
C     longitude smoothing; T is the classic expandable scalar: it
C     carries a value along the longitude sweep, creating anti/output
C     dependences that scalar expansion removes (Table 4).
      INTEGER NLAT, NLON
      PARAMETER (NLAT = 12, NLON = 96)
      REAL FLD(96, 12), FLX(96, 12), DIV(96, 12)
      REAL VOR(96, 12), TEN(96, 12)
      COMMON /GRID/ FLD, FLX, DIV, VOR, TEN
      REAL WORK(96), T
      INTEGER I, J
      DO 80 J = 1, NLAT
C        WORK is wholly written then read each iteration of J:
C        array kill analysis would privatize it (Table 3: N)
         DO 81 I = 1, NLON
            WORK(I) = FLD(I, J) + TEN(I, J)
 81      CONTINUE
         DO 82 I = 2, NLON - 1
            FLD(I, J) = 0.25 * WORK(I - 1) + 0.5 * WORK(I)
     &                + 0.25 * WORK(I + 1)
 82      CONTINUE
 80   CONTINUE
      DO 90 J = 1, NLAT
         T = VOR(1, J)
         DO 91 I = 2, NLON
            T = 0.9 * T + 0.1 * VOR(I, J)
            VOR(I, J) = T
 91      CONTINUE
 90   CONTINUE
      RETURN
      END

      SUBROUTINE NORM(CHECK)
      REAL CHECK
      INTEGER NLAT, NLON
      PARAMETER (NLAT = 12, NLON = 96)
      REAL FLD(96, 12), FLX(96, 12), DIV(96, 12)
      REAL VOR(96, 12), TEN(96, 12)
      COMMON /GRID/ FLD, FLX, DIV, VOR, TEN
      INTEGER I, J
      CHECK = 0.0
      DO 95 J = 1, NLAT
         DO 95 I = 1, NLON
C           damped checksum (deliberately order-dependent: spec77 is the
C           corpus program without reduction candidates in Table 3)
            CHECK = 0.9 * CHECK + ABS(FLD(I, J)) + ABS(TEN(I, J))
 95   CONTINUE
      RETURN
      END
"""

PROGRAM = CorpusProgram(
    name="spec77",
    description="weather simulation code",
    contributor="Steve Poole, IBM Kingston & Lo Hsieh, IBM Palo Alto",
    source=SOURCE,
    paper_lines=5600,
    paper_procedures=67,
    table3={"dependence": "U", "scalar kills": "U", "sections": "U",
            "array kills": "N", "reductions": "", "index arrays": ""},
    table4={"scalar expansion": "U", "interprocedural": "N"},
    notes="GLOOP's 12-iteration call-containing loops parallelize only "
          "through interprocedural section analysis; the 96-iteration "
          "loops live inside the callees, motivating loop embedding.",
)
