"""nxsns: quantum mechanics code (John Engle, LLNL).

Features mirrored from the paper:

* a scalar killed inside a procedure invoked from a loop --
  *interprocedural* scalar KILL analysis is what reveals the outer loop
  is parallelizable (Section 4.2 cites nxsns for exactly this;
  Table 3: scalar kills = U);
* loops containing procedure calls whose side effects are confined to
  one matrix column by regular section analysis (sections = U);
* an overlap integral accumulated by an unrecognized sum reduction
  (reductions = N);
* state indices permuted through an index array read from input
  (index arrays = N);
* dialect control flow with GOTOs in the convergence loop
  (Table 4: control flow = N);
* per-state work vectors wholly rewritten each outer iteration
  (array kills = N).
"""

from .base import CorpusProgram

SOURCE = """\
      PROGRAM NXSNS
C     quantum state relaxation driver
      INTEGER NS, NB
      PARAMETER (NS = 24, NB = 16)
      REAL PSI(24, 24), HAM(24, 24), OVL(24)
      INTEGER MAP(24)
      COMMON /QM/ PSI, HAM, OVL, MAP
      INTEGER I, J
      REAL TOTAL
      DO 5 J = 1, NS
         DO 5 I = 1, NS
            PSI(I, J) = 1.0 / (I + J)
            HAM(I, J) = 0.01 * (I - J)
 5    CONTINUE
      DO 6 I = 1, NS
C        MAP is a permutation of the state indices (read from input in
C        the original; synthesized here with the same property)
         MAP(I) = NS + 1 - I
         OVL(I) = 0.0
 6    CONTINUE
      DO 10 J = 1, NS
         CALL RELAX(J)
 10   CONTINUE
      CALL OVERLAP
      TOTAL = 0.0
      DO 20 I = 1, NS
         TOTAL = 0.75 * TOTAL + OVL(I)
 20   CONTINUE
      PRINT *, TOTAL
      END

      SUBROUTINE RELAX(J)
C     relaxes one state column.  The scalar ACC is KILLed here on every
C     path, so a caller loop over J carries nothing through it:
C     interprocedural scalar KILL analysis (nxsns's headline feature).
      INTEGER J, I, NS
      PARAMETER (NS = 24)
      REAL PSI(24, 24), HAM(24, 24), OVL(24)
      INTEGER MAP(24)
      COMMON /QM/ PSI, HAM, OVL, MAP
      REAL ACC
      COMMON /WK/ ACC
      ACC = 0.0
      DO 30 I = 1, NS
         ACC = ACC + HAM(I, J) * PSI(I, J)
 30   CONTINUE
      DO 40 I = 1, NS
         PSI(I, J) = PSI(I, J) - 0.05 * ACC
 40   CONTINUE
      RETURN
      END

      SUBROUTINE OVERLAP
C     overlap integrals; the convergence loop uses dialect GOTO flow and
C     a permutation-array subscript that blocks dependence analysis.
      INTEGER NS
      PARAMETER (NS = 24)
      REAL PSI(24, 24), HAM(24, 24), OVL(24)
      INTEGER MAP(24)
      COMMON /QM/ PSI, HAM, OVL, MAP
      REAL WRK(24), S
      INTEGER I, K, IT
      DO 50 IT = 1, 3
C        WRK wholly written before its uses each IT (array kills)
         DO 51 I = 1, NS
            WRK(I) = PSI(I, IT) * 2.0
 51      CONTINUE
         DO 52 I = 1, NS
            OVL(MAP(I)) = OVL(MAP(I)) + WRK(I)
 52      CONTINUE
 50   CONTINUE
C     dialect-style convergence test with GOTOs
      I = 1
 60   CONTINUE
      IF (OVL(I) .GT. 1000.0) GOTO 70
      OVL(I) = OVL(I) * 1.0
 70   CONTINUE
      I = I + 1
      IF (I .LE. NS) GOTO 60
      RETURN
      END
"""

PROGRAM = CorpusProgram(
    name="nxsns",
    description="quantum mechanics code",
    contributor="John Engle, Lawrence Livermore National Laboratory",
    source=SOURCE,
    paper_lines=1400,
    paper_procedures=11,
    table3={"dependence": "U", "scalar kills": "U", "sections": "U",
            "array kills": "N", "reductions": "N", "index arrays": "N"},
    table4={"control flow": "N"},
    notes="RELAX kills the COMMON scalar ACC on every path, so DO 10 in "
          "the main program parallelizes only with interprocedural KILL; "
          "OVERLAP's DO 52 subscripts through the MAP permutation.",
)
