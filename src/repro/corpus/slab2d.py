"""slab2d: 2-D severe storm fluid flow prototype (Roy Heimbach, NCSA).

Features mirrored from the paper:

* the flux sweep interleaves producing the row buffer BUF and consuming
  it inside one inner loop, so section-based array kill analysis cannot
  see the per-iteration kill; **distributing the inner loop** separates
  producer and consumer, after which kill analysis proves BUF private
  and the row loop parallelizes -- the paper's "to perform array
  privatization in slab2d, kill analysis must be combined with loop
  transformations" (Table 3: array kills = N; Table 4: loop
  distribution = U);
* a killed scalar in the advection sweep (scalar kills = U) and the
  shared temporary the workshop removed by scalar expansion
  (Table 4: scalar expansion = U);
* no procedure calls inside loops: slab2d is the Table-3 program for
  which interprocedural section analysis had nothing to contribute
  (sections blank).
"""

from .base import CorpusProgram

SOURCE = """\
      PROGRAM SLAB2D
C     2-D storm slab prototype: advection + diffusion on a small grid
      INTEGER NX, NY, NT
      PARAMETER (NX = 32, NY = 24, NT = 4)
      REAL U(32, 24), V(32, 24), H(32, 24), G(32, 24)
      COMMON /FLOW/ U, V, H, G
      INTEGER I, J
      REAL CHK
      DO 5 J = 1, NY
         DO 5 I = 1, NX
            U(I, J) = 0.1 * I
            V(I, J) = 0.05 * J
            H(I, J) = 10.0 + 0.01 * I * J
            G(I, J) = 0.0
 5    CONTINUE
C     the time march is inherently sequential and appears unrolled --
C     slab2d has no procedure calls inside loops (Table 3)
      CALL STEP
      CALL STEP
      CALL STEP
      CALL STEP
      CHK = 0.0
      DO 20 J = 1, NY
         DO 20 I = 1, NX
            CHK = 0.99 * CHK + H(I, J) + V(I, J)
 20   CONTINUE
      PRINT *, CHK
      END

      SUBROUTINE STEP
      INTEGER NX, NY
      PARAMETER (NX = 32, NY = 24)
      REAL U(32, 24), V(32, 24), H(32, 24), G(32, 24)
      COMMON /FLOW/ U, V, H, G
      REAL BUF(32), D, TMP
      INTEGER I, J
C     --- flux sweep over rows: BUF production and consumption are
C     interleaved in one inner loop, hiding the per-row kill ---
      DO 30 J = 2, NY
         BUF(1) = H(1, J) - H(1, J - 1)
         DO 31 I = 2, NX
            BUF(I) = H(I, J) - H(I, J - 1)
            G(I, J) = BUF(I) - BUF(I - 1)
 31      CONTINUE
 30   CONTINUE
C     --- apply fluxes (Jacobi update keeps rows independent) ---
      DO 35 J = 2, NY
         DO 36 I = 2, NX
            H(I, J) = H(I, J) - 0.1 * G(I, J)
 36      CONTINUE
 35   CONTINUE
C     --- advection sweep: D is killed each iteration (scalar kills) ---
      DO 40 J = 1, NY
         DO 41 I = 2, NX - 1
            D = U(I, J) * 0.5
            V(I, J) = V(I, J) + D * (H(I + 1, J) - H(I - 1, J))
 41      CONTINUE
 40   CONTINUE
C     --- boundary smoothing: TMP is the scalar-expansion temporary ---
      DO 50 I = 2, NX - 1
         TMP = U(I - 1, 1) + U(I + 1, 1)
         U(I, 1) = 0.5 * TMP
 50   CONTINUE
      RETURN
      END
"""

PROGRAM = CorpusProgram(
    name="slab2d",
    description="2-D severe storm fluid flow prototype",
    contributor="Roy Heimbach, National Center for Supercomputing "
                "Applications",
    source=SOURCE,
    paper_lines=550,
    paper_procedures=9,
    table3={"dependence": "U", "scalar kills": "U", "sections": "",
            "array kills": "N", "reductions": "", "index arrays": ""},
    table4={"loop distribution": "U", "scalar expansion": "U"},
    notes="STEP's DO 30 parallelizes only after distributing the inner "
          "DO 31 (separating BUF's producer from its consumer) and then "
          "privatizing BUF via array kill analysis.",
)
