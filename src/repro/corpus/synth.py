"""Property-based F77 corpus synthesizer with known ground truth.

The eight hand-built corpus programs exercise the analyses on *designed*
inputs; this module complements them with an unbounded generative corpus
whose parallelization facts are known **by construction**: every
generated program plants a specific dependence pattern (an independent
loop, a loop-carried flow dependence of chosen distance, an anti
dependence, a REAL reduction, a privatizable temporary, an unsound
scalar reuse) into an otherwise fixed skeleton, and records the expected
analysis outcome as a :class:`LoopTruth`.

The differential harness (:func:`check_program`, :func:`run_batch`) then
runs the *three independent* race-finding layers over each program --
the static dependence engine, the lint race detector, and the shadow
interpreter's dynamic access log -- and compares every layer against the
planted truth.  The acceptance property is **zero false negatives and
zero false positives**: the engine's level-1 carried set must equal the
planted set exactly, lint must flag exactly the raced variants on
exactly the planted variable, and the shadow log must observe a dynamic
conflict iff one was planted in a PARALLEL loop.

Every program also passes through the statement classifier (no UNKNOWN
kinds) and, in strict mode, a parse -> print -> parse round-trip.

Generation is deterministic: ``generate(seed, index)`` depends on
nothing but its arguments, so a batch is reproducible from ``(seed,
count)`` alone and any mismatch can be replayed by name
(``synth:<seed>:<index>``).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from functools import partial

from ..fortran.classify import classify_source
from ..store import MISS, declare, get_store

#: template cycle; order is part of the deterministic contract.
TEMPLATES = ("independent", "carried", "anti", "reduction", "private",
             "shared_temp", "mixed")

#: store namespace for batch summaries (small JSON blobs, disk-safe).
SYNTH_NS = "synth"
declare(SYNTH_NS, mem_entries=256, disk=True)

#: name prefix; the fleet resolves "synth:<seed>:<index>" through
#: :func:`source_for_name`.
NAME_PREFIX = "synth:"


@dataclass(frozen=True)
class LoopTruth:
    """Ground truth for the planted test loop (label 10 in MAIN)."""

    #: variables with a real level-1 carried (non-INPUT) dependence
    carried: tuple[str, ...] = ()
    #: scalars that must be recognized privatizable
    privatizable: tuple[str, ...] = ()
    #: scalars that must be recognized as reductions
    reductions: tuple[str, ...] = ()
    #: the loop is marked PARALLEL DO in the source
    parallel: bool = False
    #: parallel despite a carried dependence: lint must flag it with
    #: this rule on this variable, and the shadow log must observe it
    raced: bool = False
    race_rule: str = ""
    race_var: str = ""
    #: dynamic check needs include_reductions (reduction recurrences
    #: are excluded from the default dynamic conflict set)
    dynamic_needs_reductions: bool = False


@dataclass(frozen=True)
class SynthProgram:
    """One generated program with its planted ground truth."""

    name: str
    seed: int
    index: int
    template: str
    source: str
    truth: LoopTruth


def program_name(seed: int, index: int) -> str:
    return f"{NAME_PREFIX}{seed}:{index}"


def parse_name(name: str) -> tuple[int, int]:
    """Inverse of :func:`program_name`; raises ValueError on others."""
    if not name.startswith(NAME_PREFIX):
        raise ValueError(f"not a synth program name: {name!r}")
    seed_s, _, index_s = name[len(NAME_PREFIX):].partition(":")
    return int(seed_s), int(index_s)


def source_for_name(name: str) -> str:
    """Regenerate a synth program's source from its name alone (how the
    fleet pipeline rebuilds work items inside pool workers)."""
    seed, index = parse_name(name)
    return generate(seed, index).source


# --------------------------------------------------------------------------
# Statement gallery: every grammar-table statement kind, in one unit
# --------------------------------------------------------------------------

#: A never-called subroutine exercising every statement kind the grammar
#: tables know, including the ones the IR only accepts opaquely (OPEN,
#: INQUIRE, PAUSE, assigned GOTO, ENTRY, alternate returns...).  Appended
#: to a deterministic fraction of generated programs so every batch
#: covers the full front end; it must parse, classify without UNKNOWN,
#: and round-trip, but it never executes.
GALLERY = """      SUBROUTINE GALERY(IARG, *)
      IMPLICIT INTEGER (J)
      INTEGER IARG
      DIMENSION ZD(4)
      REAL ZD, ZQ(3, 3)
      DOUBLE PRECISION DD
      COMPLEX CC
      LOGICAL LF
      CHARACTER*8 CH
      INTEGER KV, KW, KX, LAB
      PARAMETER (KW = 3)
      COMMON /GAL/ KV
      EQUIVALENCE (ZD(1), ZQ(1, 1))
      EXTERNAL GHELP
      INTRINSIC SQRT
      SAVE KV
      DATA ZD /4 * 0.0/
      ENTRY GALER2(IARG)
      KX = IARG + KW
      IF (KX .GT. 5) THEN
         KX = 5
      ELSE IF (KX .LT. 0) THEN
         KX = 0
      ELSE
         KX = KX + 1
      END IF
      IF (KX .EQ. 2) KX = 3
      IF (KX - 2) 20, 30, 40
 20   CONTINUE
 30   CONTINUE
 40   ASSIGN 50 TO LAB
      GO TO LAB
 50   GO TO (60, 70), KX
 60   CONTINUE
 70   DO 80 JI = 1, KW
         ZD(JI) = ZD(JI) + 1.0
 80   CONTINUE
      DO JJ = 1, 2
         ZD(JJ) = ZD(JJ) * 2.0
      END DO
      LF = ZD(1) .GT. ZD(2)
      DD = 1.0D0
      CH = 'GALLERY'
      CALL GHELP(KX, *90)
      OPEN (UNIT = 9, FILE = 'GAL.DAT', IOSTAT = KV)
      WRITE (9) ZD
      BACKSPACE 9
      READ (9) ZD
      REWIND 9
      END FILE 9
      INQUIRE (UNIT = 9, IOSTAT = KV)
      CLOSE (9)
      PRINT 100, KX
      PAUSE 'GALLERY'
 90   CONTINUE
 100  FORMAT (I6)
      IF (KX .GT. 9) STOP 'GAL'
      IF (KX .GT. 8) RETURN 1
      RETURN
      END
      SUBROUTINE GHELP(K, *)
      INTEGER K
      K = K + 1
      RETURN
      END"""


# --------------------------------------------------------------------------
# Templates
# --------------------------------------------------------------------------

@dataclass
class _Plan:
    """One template instantiation before rendering."""

    body: list[str] = field(default_factory=list)
    pre: list[str] = field(default_factory=list)    # between init and loop
    truth: LoopTruth = field(default_factory=LoopTruth)
    out_vars: list[str] = field(default_factory=list)
    scalars: list[str] = field(default_factory=list)  # extra REAL decls


def _mk_independent(rng: random.Random, par: bool) -> _Plan:
    c = rng.choice(("1.0", "0.5", "2.0"))
    return _Plan(
        body=[f"         A(I) = B(I) + {c}"],
        truth=LoopTruth(parallel=par),
        out_vars=["A(1)", "A(N)"])


def _mk_carried(rng: random.Random, par: bool) -> _Plan:
    d = rng.randint(1, 3)
    return _Plan(
        body=[f"         A(I) = A(I - {d}) + B(I)"],
        truth=LoopTruth(carried=("A",), parallel=par, raced=par,
                        race_rule="RACE001", race_var="A"),
        out_vars=["A(N)"])


def _mk_anti(rng: random.Random, par: bool) -> _Plan:
    d = rng.randint(1, 3)
    c = rng.choice(("2.0", "3.0"))
    return _Plan(
        body=[f"         A(I) = A(I + {d}) * {c}"],
        truth=LoopTruth(carried=("A",), parallel=par, raced=par,
                        race_rule="RACE001", race_var="A"),
        out_vars=["A(2)", "A(N)"])


def _mk_reduction(rng: random.Random, par: bool) -> _Plan:
    return _Plan(
        pre=["      S = 0.0"],
        body=["         S = S + A(I)" if rng.random() < 0.5
              else "         S = S + A(I) * B(I)"],
        truth=LoopTruth(carried=("S",), reductions=("S",), parallel=par,
                        raced=par, race_rule="RACE003", race_var="S",
                        dynamic_needs_reductions=True),
        out_vars=["S"], scalars=["S"])


def _mk_private(rng: random.Random, par: bool) -> _Plan:
    c = rng.choice(("2.0", "4.0"))
    return _Plan(
        body=[f"         T = A(I) * {c}",
              "         B(I) = T + 1.0"],
        truth=LoopTruth(privatizable=("T",), parallel=par),
        out_vars=["B(2)", "B(N)"], scalars=["T"])


def _mk_shared_temp(rng: random.Random, par: bool) -> _Plan:
    """Upward-exposed scalar: reused before it is assigned, so it truly
    carries a dependence (the unsound twin of the private template)."""
    c = rng.choice(("0.5", "0.25"))
    return _Plan(
        pre=["      T = 1.0"],
        body=["         B(I) = T + A(I)",
              f"         T = A(I) * {c}"],
        truth=LoopTruth(carried=("T",), parallel=par, raced=par,
                        race_rule="RACE001", race_var="T"),
        out_vars=["B(2)", "B(N)", "T"], scalars=["T"])


def _mk_mixed(rng: random.Random, par: bool) -> _Plan:
    """Carried dependence on A next to an independent statement on C:
    exercises zero-false-positive on C at the same time as
    zero-false-negative on A."""
    d = rng.randint(1, 2)
    plan = _Plan(
        body=[f"         A(I) = A(I - {d}) + B(I)",
              "         C(I) = B(I) * 2.0"],
        truth=LoopTruth(carried=("A",), parallel=par, raced=par,
                        race_rule="RACE001", race_var="A"),
        out_vars=["A(N)", "C(N)"])
    return plan


_MAKERS = {
    "independent": _mk_independent,
    "carried": _mk_carried,
    "anti": _mk_anti,
    "reduction": _mk_reduction,
    "private": _mk_private,
    "shared_temp": _mk_shared_temp,
    "mixed": _mk_mixed,
}

#: templates that are parallel-safe as planted (PARALLEL DO is fine)
_SAFE = ("independent", "private")


def generate(seed: int, index: int) -> SynthProgram:
    """Deterministically generate program ``index`` of batch ``seed``."""
    rng = random.Random((seed << 20) ^ index)
    template = TEMPLATES[index % len(TEMPLATES)]
    if template in _SAFE:
        par = True                      # safe loops are always marked
    else:
        par = rng.random() < 0.5        # raced vs sequential variant
    plan = _MAKERS[template](rng, par)
    n = rng.randint(8, 16)
    kw = "PARALLEL DO" if par else "DO"

    lines = [
        "      PROGRAM MAIN",
        f"C     synthesized: template {template}, seed {seed}, "
        f"index {index}",
        "      INTEGER N",
        f"      PARAMETER (N = {n})",
        "      REAL A(24), B(24), C(24)",
        *([f"      REAL {', '.join(plan.scalars)}"]
          if plan.scalars else []),
        "      INTEGER I",
        "      DO 5 I = 1, 24",
        f"         A(I) = 0.5 * I",
        f"         B(I) = 0.25 * I",
        "         C(I) = 0.0",
        " 5    CONTINUE",
        *plan.pre,
        f"      {kw} 10 I = 4, N",
        *plan.body,
        " 10   CONTINUE",
        "      PRINT *, " + ", ".join(plan.out_vars),
    ]
    lines.append("      END")
    if index % 7 == 3:
        lines.append(GALLERY)
    source = "\n".join(lines) + "\n"
    return SynthProgram(program_name(seed, index), seed, index, template,
                        source, plan.truth)


def generate_batch(seed: int, count: int) -> list[SynthProgram]:
    return [generate(seed, i) for i in range(count)]


# --------------------------------------------------------------------------
# Differential harness
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Mismatch:
    """One disagreement between a tool layer and the planted truth."""

    program: str
    template: str
    layer: str      # "engine" | "lint" | "shadow" | "classify" | ...
    detail: str

    def describe(self) -> str:
        return f"{self.program} [{self.template}] {self.layer}: " \
               f"{self.detail}"


def _truth_loop(uir):
    for li in uir.loops.all_loops():
        if li.loop.term_label == 10:
            return li
    return None


def check_program(sp: SynthProgram,
                  roundtrip: bool = True) -> list[Mismatch]:
    """Run every analysis layer over one program against its truth."""
    from ..dependence import DepType, DependenceAnalyzer
    from ..interp.shadow import dynamic_races, run_shadow
    from ..ir import AnalyzedProgram
    from ..lint import lint_program

    t = sp.truth
    out: list[Mismatch] = []

    def bad(layer: str, detail: str) -> None:
        out.append(Mismatch(sp.name, sp.template, layer, detail))

    # -- classifier: every statement must get a kind ----------------------
    unknown = [cl for cl in classify_source(sp.source)
               if cl.cls.kind == "unknown"]
    for cl in unknown[:3]:
        bad("classify", f"line {cl.line}: UNKNOWN for {cl.text!r}")

    try:
        program = AnalyzedProgram.from_source(sp.source)
    except Exception as e:
        bad("parse", f"{type(e).__name__}: {e}")
        return out

    # -- parse -> print -> parse round-trip -------------------------------
    if roundtrip:
        from ..fortran import parse_program, print_program
        try:
            once = print_program(program.ast)
            twice = print_program(parse_program(once))
        except Exception as e:
            bad("roundtrip", f"{type(e).__name__}: {e}")
        else:
            if once != twice:
                bad("roundtrip", "printed form is not a fixed point")

    # -- static dependence engine -----------------------------------------
    uir = program.unit("MAIN")
    li = _truth_loop(uir)
    if li is None:
        bad("engine", "test loop (label 10) not found")
        return out
    ld = DependenceAnalyzer(uir).analyze_loop(li)
    if ld.is_degraded:
        bad("engine", f"analysis degraded: {ld.degraded}")
    carried = sorted({d.var for d in ld.carried()
                      if d.level == 1 and d.dtype is not DepType.INPUT})
    want = sorted(t.carried)
    missed = [v for v in want if v not in carried]      # false negatives
    spurious = [v for v in carried if v not in want]    # false positives
    if missed:
        bad("engine", f"missed carried dependence on {missed} "
                      f"(reported {carried})")
    if spurious:
        bad("engine", f"spurious carried dependence on {spurious} "
                      f"(planted {want})")
    for v in t.privatizable:
        if v not in ld.privatizable:
            bad("engine", f"{v} not recognized privatizable "
                          f"(got {sorted(ld.privatizable)})")
    for v in t.reductions:
        if v not in ld.reductions:
            bad("engine", f"{v} not recognized as a reduction "
                          f"(got {sorted(ld.reductions)})")
    expect_par = not t.carried
    if ld.parallelizable() != expect_par:
        bad("engine", f"parallelizable()={ld.parallelizable()}, "
                      f"truth says {expect_par}")

    # -- lint race detector -----------------------------------------------
    try:
        diags = lint_program(program, source=sp.source)
    except Exception as e:
        bad("lint", f"{type(e).__name__}: {e}")
        diags = []
    races = [d for d in diags
             if d.rule.startswith("RACE") and not d.suppressed]
    if t.raced:
        hits = [d for d in races
                if d.rule == t.race_rule and d.var == t.race_var]
        if not hits:
            bad("lint", f"expected {t.race_rule} on {t.race_var}, "
                        f"got {[(d.rule, d.var) for d in races]}")
        extras = [d for d in races if d.var != t.race_var]
        if extras:
            bad("lint", f"spurious race findings "
                        f"{[(d.rule, d.var) for d in extras]}")
    elif races:
        bad("lint", f"false positives "
                    f"{[(d.rule, d.var) for d in races]}")

    # -- shadow interpreter (dynamic ground truth) ------------------------
    try:
        sh = run_shadow(program, inputs=[])
    except Exception as e:
        bad("shadow", f"{type(e).__name__}: {e}")
        return out
    dyn = []
    for log in sh.access_log:
        dyn.extend(dynamic_races(
            log, include_reductions=t.dynamic_needs_reductions))
    if t.parallel and t.raced and not dyn:
        bad("shadow", f"planted race on {t.race_var} never observed "
                      f"dynamically")
    if not t.raced and dyn:
        bad("shadow", f"false dynamic conflicts: "
                      f"{[r.describe() for r in dyn[:3]]}")
    if t.raced and dyn:
        vars_seen = {r.var for r in dyn}
        if t.race_var not in vars_seen:
            bad("shadow", f"dynamic conflicts on {sorted(vars_seen)}, "
                          f"planted {t.race_var}")
    return out


def _check_index(seed: int, index: int, roundtrip: bool
                 ) -> tuple[str, list[Mismatch]]:
    """Pool-worker entry: regenerate from (seed, index) and check (the
    work item is two ints, so process pools never pickle a program)."""
    sp = generate(seed, index)
    return sp.template, check_program(sp, roundtrip=roundtrip)


# --------------------------------------------------------------------------
# Batch driver
# --------------------------------------------------------------------------

@dataclass
class BatchSummary:
    """Outcome of one differential batch run."""

    seed: int
    count: int
    checked: int = 0
    failures: int = 0           # harness crashes (isolated, reported)
    by_template: dict = field(default_factory=dict)
    mismatches: list = field(default_factory=list)   # [Mismatch]

    @property
    def clean(self) -> bool:
        return not self.mismatches and not self.failures

    def as_dict(self) -> dict:
        return {
            "seed": self.seed, "count": self.count,
            "checked": self.checked, "failures": self.failures,
            "by_template": dict(sorted(self.by_template.items())),
            "mismatches": [m.describe() for m in self.mismatches],
            "clean": self.clean,
        }


def _summary_key(seed: int, count: int, roundtrip: bool) -> str:
    return f"batch:{seed}:{count}:{int(roundtrip)}"


def run_batch(seed: int, count: int, parallel: bool | None = None,
              roundtrip: bool = True, use_store: bool = True
              ) -> BatchSummary:
    """Generate + differential-check ``count`` programs.

    Shards across the analysis pool (one task per program; the work item
    is the ``(seed, index)`` pair, regenerated in the worker).  The
    summary is stored under the ``synth`` namespace so repeated runs of
    the same batch (CI re-runs, other sessions) are store hits.
    """
    from ..perf import pool

    store = get_store() if use_store else None
    key = _summary_key(seed, count, roundtrip)
    if store is not None:
        hit = store.get(SYNTH_NS, key)
        if hit is not MISS and isinstance(hit, BatchSummary):
            return hit

    summary = BatchSummary(seed=seed, count=count)
    results = pool.run_tasks(
        [partial(_check_index, seed, i, roundtrip) for i in range(count)],
        parallel=parallel,
        contexts=[program_name(seed, i) for i in range(count)],
        on_error="return")
    for i, res in enumerate(results):
        if isinstance(res, pool.TaskFailure):
            summary.failures += 1
            summary.mismatches.append(Mismatch(
                program_name(seed, i), TEMPLATES[i % len(TEMPLATES)],
                "harness", f"{type(res.error).__name__}: {res.error}"))
            continue
        template, mismatches = res
        summary.checked += 1
        summary.by_template[template] = \
            summary.by_template.get(template, 0) + 1
        summary.mismatches.extend(mismatches)
    if store is not None:
        store.put(SYNTH_NS, key, summary)
    return summary


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------

def main(argv=None) -> int:
    import argparse
    ap = argparse.ArgumentParser(
        prog="python -m repro.corpus.synth",
        description="property-based corpus synthesizer + differential "
                    "harness (static engine vs lint vs shadow "
                    "interpreter, zero false positives/negatives)")
    ap.add_argument("--seed", type=int, default=1993)
    ap.add_argument("--count", type=int, default=200)
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 on any mismatch")
    ap.add_argument("--no-roundtrip", action="store_true",
                    help="skip the parse->print->parse property")
    ap.add_argument("--no-store", action="store_true",
                    help="bypass the artifact store summary cache")
    ap.add_argument("--serial", action="store_true",
                    help="force the serial path (no pool sharding)")
    ap.add_argument("--emit", type=int, metavar="INDEX", default=None,
                    help="print program INDEX of the batch and exit")
    args = ap.parse_args(argv)

    if args.emit is not None:
        sp = generate(args.seed, args.emit)
        print(f"C     {sp.name}  template={sp.template}  "
              f"truth={sp.truth}")
        print(sp.source, end="")
        return 0

    summary = run_batch(args.seed, args.count,
                        parallel=False if args.serial else None,
                        roundtrip=not args.no_roundtrip,
                        use_store=not args.no_store)
    print(json.dumps(summary.as_dict(), indent=2))
    if args.strict and not summary.clean:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
