"""slalom: benchmark program (Roy Heimbach, NCSA).

SLALOM was a radiosity solver benchmark; the stand-in mirrors the
features the paper attributes:

* matrix set-up and back-substitution kernels whose sum reductions go
  unrecognized by PED (Table 3: reductions = N);
* killed scalars in the decomposition sweep (scalar kills = U);
* the coupling-matrix loops call a geometry routine whose side effects
  are confined to one patch row (sections = U);
* unrolling the daxpy-style inner loop and expanding its scalar
  temporary were the workshop edits (Table 4: loop unrolling = U,
  scalar expansion = U -- slalom is one of the three expansion users).
"""

from .base import CorpusProgram

SOURCE = """\
      PROGRAM SLALOM
C     radiosity benchmark: set up coupling matrix, factor, solve
      INTEGER NP
      PARAMETER (NP = 24)
      REAL COEF(24, 24), RHS(24), SOL(24), ROW(24)
      COMMON /RAD/ COEF, RHS, SOL, ROW
      INTEGER I, J
      REAL RES
      DO 5 J = 1, NP
         DO 5 I = 1, NP
            COEF(I, J) = 1.0 / (I + J + 1)
 5    CONTINUE
      DO 6 I = 1, NP
         COEF(I, I) = COEF(I, I) + 2.0
         RHS(I) = 1.0 + 0.1 * I
         SOL(I) = 0.0
 6    CONTINUE
      CALL SETUP
      CALL SCALE
      CALL FACTOR
      CALL SOLVE
      RES = 0.0
      CALL RESID(RES)
      PRINT *, RES
      END

      SUBROUTINE SETUP
C     per-patch geometry: GEOM's effects are one row of COEF (sections)
      INTEGER NP
      PARAMETER (NP = 24)
      REAL COEF(24, 24), RHS(24), SOL(24), ROW(24)
      COMMON /RAD/ COEF, RHS, SOL, ROW
      INTEGER I
      DO 10 I = 1, NP
         CALL GEOM(I)
 10   CONTINUE
      RETURN
      END

      SUBROUTINE GEOM(IP)
      INTEGER IP, J, NP
      PARAMETER (NP = 24)
      REAL COEF(24, 24), RHS(24), SOL(24), ROW(24)
      COMMON /RAD/ COEF, RHS, SOL, ROW
      DO 20 J = 1, NP
         COEF(IP, J) = COEF(IP, J) * (1.0 + 0.01 * IP)
 20   CONTINUE
      RETURN
      END

      SUBROUTINE SCALE
C     column equilibration: ROW is wholly rewritten, then read, every
C     iteration of the column loop -- the privatization that array kill
C     analysis (not in PED) would discover (Table 3: array kills = N)
      INTEGER NP
      PARAMETER (NP = 24)
      REAL COEF(24, 24), RHS(24), SOL(24), ROW(24)
      COMMON /RAD/ COEF, RHS, SOL, ROW
      INTEGER I, J
      DO 60 I = 1, NP
         DO 61 J = 1, NP
            ROW(J) = COEF(J, I)
 61      CONTINUE
         DO 62 J = 1, NP
            COEF(J, I) = ROW(J) / (1.0 + ABS(ROW(I)))
 62      CONTINUE
 60   CONTINUE
      RETURN
      END

      SUBROUTINE FACTOR
C     Gauss-like sweep: PIV is killed every iteration (scalar kills);
C     the elimination update is the daxpy kernel the workshop unrolled,
C     with the multiplier T expanded to an array.
      INTEGER NP
      PARAMETER (NP = 24)
      REAL COEF(24, 24), RHS(24), SOL(24), ROW(24)
      COMMON /RAD/ COEF, RHS, SOL, ROW
      REAL PIV, T
      INTEGER I, J, K
      DO 30 K = 1, NP - 1
         PIV = 1.0 / COEF(K, K)
         DO 31 I = K + 1, NP
            T = COEF(I, K) * PIV
            DO 32 J = K + 1, NP
               COEF(I, J) = COEF(I, J) - T * COEF(K, J)
 32         CONTINUE
            RHS(I) = RHS(I) - T * RHS(K)
 31      CONTINUE
 30   CONTINUE
      RETURN
      END

      SUBROUTINE SOLVE
C     back substitution: S accumulates a dot product (sum reduction)
      INTEGER NP
      PARAMETER (NP = 24)
      REAL COEF(24, 24), RHS(24), SOL(24), ROW(24)
      COMMON /RAD/ COEF, RHS, SOL, ROW
      REAL S
      INTEGER I, J
      DO 40 I = NP, 1, -1
         S = 0.0
         DO 41 J = I + 1, NP
            S = S + COEF(I, J) * SOL(J)
 41      CONTINUE
         SOL(I) = (RHS(I) - S) / COEF(I, I)
 40   CONTINUE
      RETURN
      END

      SUBROUTINE RESID(RES)
C     residual norm: the benchmark's headline sum reduction
      REAL RES
      INTEGER NP
      PARAMETER (NP = 24)
      REAL COEF(24, 24), RHS(24), SOL(24), ROW(24)
      COMMON /RAD/ COEF, RHS, SOL, ROW
      REAL S
      INTEGER I, J
      DO 50 I = 1, NP
         S = 0.0
         DO 51 J = 1, NP
            S = S + COEF(I, J) * SOL(J)
 51      CONTINUE
         ROW(I) = S - RHS(I)
 50   CONTINUE
      DO 52 I = 1, NP
         RES = RES + ROW(I) * ROW(I)
 52   CONTINUE
      RETURN
      END
"""

PROGRAM = CorpusProgram(
    name="slalom",
    description="benchmark program",
    contributor="Roy Heimbach, National Center for Supercomputing "
                "Applications",
    source=SOURCE,
    paper_lines=1200,
    paper_procedures=13,
    table3={"dependence": "U", "scalar kills": "U", "sections": "U",
            "array kills": "N", "reductions": "N", "index arrays": ""},
    table4={"scalar expansion": "U", "loop unrolling": "U"},
    notes="FACTOR's DO 31 is the expansion/unrolling target; SOLVE and "
          "RESID hold the unrecognized sum reductions.",
)
