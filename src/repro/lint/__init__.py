"""Static race detector and parallelization lint framework.

A second, independent line of defense (the failure mode the workshop
users hit was exactly a *wrong* dependence conclusion driving a
transform): the rules here re-derive parallel-safety facts from the
base analyses — def-use chains, scalar kills, liveness, interprocedural
MOD/REF summaries, COMMON composition — and never consult
``repro.dependence``.  See DESIGN.md ("Lint") for the independence
argument and :mod:`repro.interp.shadow` for the dynamic cross-check.
"""

from .core import Diagnostic, Rule, Suppressions, all_rules, get_rule, \
    register, rule_ids
from .driver import LintContext, SessionLinter, lint_program, lint_source
from .seeds import SEEDS, seeded_program, seeded_source

__all__ = [
    "Diagnostic", "Rule", "Suppressions", "register", "all_rules",
    "get_rule", "rule_ids",
    "LintContext", "lint_program", "lint_source", "SessionLinter",
    "SEEDS", "seeded_program", "seeded_source",
]

from . import rules as _rules  # noqa: E402,F401  (populates the registry)
from . import front as _front  # noqa: E402,F401  (FRONT0xx rules)
