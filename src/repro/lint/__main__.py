"""``python -m repro.lint``: lint the corpus (or any Fortran file).

Modes:

* ``plain``  -- the corpus program as written;
* ``auto``   -- after ``auto_parallelize`` (the zero-false-positive
  surface: every PARALLEL marking was proved by the dependence engine);
* ``seeded`` -- with the program's seeded latent defect applied;
* ``all``    -- all three.

``--golden DIR`` compares unsuppressed diagnostics against the checked
-in baselines and exits 1 on any drift (new findings *or* vanished
ones — output is deterministic, so exact match is the contract).
``--write-golden DIR`` regenerates the baselines.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from ..corpus import ORDER, PROGRAMS
from ..ir.program import AnalyzedProgram
from .core import rule_ids
from .driver import lint_program
from .seeds import SEEDS, seeded_program, seeded_source

MODES = ("plain", "auto", "seeded")


def _lint_one(name: str, mode: str, rules=None):
    """[(Diagnostic, ...)] for one corpus program in one mode."""
    if mode == "plain":
        src = PROGRAMS[name].source
        return lint_program(AnalyzedProgram.from_source(src),
                            rules=rules, source=src)
    if mode == "auto":
        from ..ped.session import PedSession
        src = PROGRAMS[name].source
        session = PedSession(src)
        session.auto_parallelize()
        return lint_program(session.program, session.assertions,
                            rules=rules, source=src)
    if mode == "seeded":
        if name not in SEEDS:
            return []
        program, assertions = seeded_program(name)
        return lint_program(program, assertions, rules=rules,
                            source=seeded_source(name))
    raise ValueError(f"unknown mode {mode!r}")


def _as_json(diags) -> list[dict]:
    return [d.to_json() for d in diags]


def _unsuppressed(rows: list[dict]) -> list[dict]:
    return [r for r in rows if not r.get("suppressed")]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="static race detector / parallelization lint")
    ap.add_argument("programs", nargs="*",
                    help=f"corpus programs (default: all of "
                         f"{', '.join(ORDER)}) or .f paths")
    ap.add_argument("--mode", choices=MODES + ("all",), default="plain")
    ap.add_argument("--seeded", action="store_true",
                    help="shorthand for --mode seeded")
    ap.add_argument("--format", choices=("text", "json"),
                    default="text")
    ap.add_argument("--rules", default=None,
                    help="comma-separated rule ids "
                         f"(known: {', '.join(rule_ids())})")
    ap.add_argument("--golden", default=None, metavar="DIR",
                    help="compare against golden baselines; exit 1 on "
                         "any drift")
    ap.add_argument("--write-golden", default=None, metavar="DIR",
                    help="write golden baselines and exit")
    args = ap.parse_args(argv)

    if args.seeded:
        args.mode = "seeded"
    rules = [r.strip() for r in args.rules.split(",")] \
        if args.rules else None
    modes = list(MODES) if args.mode == "all" else [args.mode]

    names = args.programs or list(ORDER)
    results: dict[str, dict[str, list[dict]]] = {}
    for name in names:
        if name not in PROGRAMS:
            path = pathlib.Path(name)
            if not path.is_file():
                print(f"unknown program {name!r}", file=sys.stderr)
                return 2
            src = path.read_text()
            diags = lint_program(AnalyzedProgram.from_source(src),
                                 rules=rules, source=src)
            results[name] = {"plain": _as_json(diags)}
            continue
        results[name] = {m: _as_json(_lint_one(name, m, rules))
                         for m in modes}

    if args.write_golden:
        outdir = pathlib.Path(args.write_golden)
        outdir.mkdir(parents=True, exist_ok=True)
        for name, by_mode in results.items():
            payload = {"program": name, "modes": by_mode}
            (outdir / f"{name}.json").write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {len(results)} golden baselines to {outdir}")
        return 0

    drift = []
    if args.golden:
        gdir = pathlib.Path(args.golden)
        for name, by_mode in results.items():
            gfile = gdir / f"{name}.json"
            if not gfile.is_file():
                drift.append(f"{name}: no golden baseline {gfile}")
                continue
            golden = json.loads(gfile.read_text())["modes"]
            for mode, rows in by_mode.items():
                want = _unsuppressed(golden.get(mode, []))
                got = _unsuppressed(rows)
                for r in got:
                    if r not in want:
                        drift.append(f"{name}/{mode}: new finding "
                                     f"{r['rule']} at {r['unit']}:"
                                     f"{r['line']}: {r['message']}")
                for r in want:
                    if r not in got:
                        drift.append(f"{name}/{mode}: finding vanished: "
                                     f"{r['rule']} at {r['unit']}:"
                                     f"{r['line']}: {r['message']}")

    if args.format == "json":
        print(json.dumps(
            [{"program": n, "mode": m, "diagnostics": rows}
             for n, by_mode in results.items()
             for m, rows in by_mode.items()],
            indent=2, sort_keys=True))
    else:
        from .core import Diagnostic
        for name, by_mode in results.items():
            for mode, rows in by_mode.items():
                head = f"== {name} [{mode}] "
                print(head + "=" * max(0, 60 - len(head)))
                if not rows:
                    print("  clean")
                for r in rows:
                    print("  " + Diagnostic.from_json(r).format())

    if drift:
        print("\nlint drift against golden baselines:", file=sys.stderr)
        for d in drift:
            print("  " + d, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
