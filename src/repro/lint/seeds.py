"""Seeded lint findings: one latent defect per corpus program.

Each seed is a small textual edit (plus, for slab2d, a post-parse
privatization marking — private lists have no source syntax) that plants
exactly the defect its paper persona invites:

* **spec77** — the longitude smoothing recurrence: a user parallelizes
  the inner ``DO 91`` sweep, but ``T`` carries a damped value from
  iteration to iteration (RACE001);
* **slab2d** — the advection sweep's killed scalar ``D`` is privatized,
  then a later statement consumes its sequential last value (RACE002);
* **pueblo3d** — the order-dependent checksum is rewritten into a
  recognizable REAL sum and marked parallel (RACE003);
* **dpmin** — the ``DO 300`` force loop is parallelized under index
  -array assertions, one of which (``DISJOINT(IT, JT, 3)``) the actual
  initialization values contradict (RACE004);
* **neoss** — a stale energy snapshot is stored and never consulted
  (LINT001);
* **nxsns** — the checksum initialization is dropped, so ``TOTAL`` is
  consumed before any definition (LINT002);
* **arc3d** — ``WIPE`` grows its COMMON ``/WORK/`` column buffer out of
  step with ``SMOOTH`` (LINT003);
* **slalom** — a guard against overflow adds a STOP inside a PARALLEL
  loop, which the fork-join runtime refuses to fork (LINT004).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..assertions.lang import AssertionSet
from ..corpus import PROGRAMS
from ..fortran import ast
from ..ir.program import AnalyzedProgram


@dataclass(frozen=True)
class Seed:
    """One planted finding: the edit, and what lint must report."""

    program: str
    rule: str           # the rule id that must fire
    persona: str        # the paper story the defect plays out
    edits: tuple        # ((old, new), ...) textual replacements
    assertions: tuple = ()   # assertion texts in force for the run
    #: unit holding the finding (for test anchoring)
    unit: str = ""


SEEDS: dict[str, Seed] = {
    "spec77": Seed(
        "spec77", "RACE001",
        "shared recurrence scalar T in a hand-parallelized inner sweep",
        ((
            "         DO 91 I = 2, NLON",
            "         PARALLEL DO 91 I = 2, NLON",
        ),),
        unit="SMOOTH"),
    "slab2d": Seed(
        "slab2d", "RACE002",
        "privatized scalar D whose last value is consumed after the "
        "loop",
        ((
            "      DO 40 J = 1, NY",
            "      PARALLEL DO 40 J = 1, NY",
        ), (
            " 40   CONTINUE\n"
            "C     --- boundary smoothing: TMP is the scalar-expansion "
            "temporary ---",
            " 40   CONTINUE\n"
            "      V(1, 1) = V(1, 1) + D\n"
            "C     --- boundary smoothing: TMP is the scalar-expansion "
            "temporary ---",
        )),
        unit="STEP"),
    "pueblo3d": Seed(
        "pueblo3d", "RACE003",
        "order-dependent REAL checksum rewritten as a parallel sum",
        ((
            "         CHK = 0.98 * CHK + UF(I, 2) + WF(I, 3)",
            "         CHK = CHK + (UF(I, 2) + WF(I, 3))",
        ), (
            "      DO 20 I = 1, 640",
            "      PARALLEL DO 20 I = 1, 640",
        )),
        unit="PUEBLO"),
    "dpmin": Seed(
        "dpmin", "RACE004",
        "force loop parallelized under an index-array assertion the "
        "initialization values contradict",
        ((
            "         JT(N) = 108 + 3 * N - 2",
            "         JT(N) = 3 * N + 1",
        ), (
            "      DO 300 N = 1, NBA",
            "      PARALLEL DO 300 N = 1, NBA",
        )),
        assertions=(
            "MONOTONE(IT, 3)", "MONOTONE(JT, 3)", "MONOTONE(KT, 3)",
            "DISJOINT(IT, JT, 3)", "DISJOINT(JT, KT, 3)",
            "DISJOINT(IT, KT, 3)",
        ),
        unit="FORCES"),
    "neoss": Seed(
        "neoss", "LINT001",
        "stale energy snapshot stored and never consulted",
        ((
            "      REAL EOUT\n      INTEGER K, NK",
            "      REAL EOUT, EOLD\n      INTEGER K, NK",
        ), (
            "      DO 70 K = 1, NK",
            "      EOLD = EOUT + 1.0\n      DO 70 K = 1, NK",
        )),
        unit="ETOT"),
    "nxsns": Seed(
        "nxsns", "LINT002",
        "checksum accumulator consumed before any definition",
        ((
            "      TOTAL = 0.0\n",
            "",
        ),),
        unit="NXSNS"),
    "arc3d": Seed(
        "arc3d", "LINT003",
        "COMMON /WORK/ column buffer grown in one unit only",
        ((
            "      REAL ZCOL(20)\n"
            "      COMMON /WORK/ ZCOL\n"
            "      DO 85 K = 1, 20",
            "      REAL ZCOL(24)\n"
            "      COMMON /WORK/ ZCOL\n"
            "      DO 85 K = 1, 20",
        ),),
        unit="WIPE"),
    "slalom": Seed(
        "slalom", "LINT004",
        "overflow guard adds a STOP inside a PARALLEL loop",
        ((
            "      DO 20 J = 1, NP",
            "      PARALLEL DO 20 J = 1, NP",
        ), (
            "         COEF(IP, J) = COEF(IP, J) * (1.0 + 0.01 * IP)",
            "         IF (COEF(IP, J) .GT. 1.0E6) STOP\n"
            "         COEF(IP, J) = COEF(IP, J) * (1.0 + 0.01 * IP)",
        )),
        unit="GEOM"),
}


def seeded_source(name: str) -> str:
    """The corpus program's source with its seed edits applied."""
    seed = SEEDS[name]
    src = PROGRAMS[name].source
    for old, new in seed.edits:
        if src.count(old) != 1:
            raise ValueError(
                f"seed anchor for {name} matches {src.count(old)} times")
        src = src.replace(old, new)
    return src


def seeded_program(name: str) -> tuple[AnalyzedProgram, AssertionSet]:
    """Parsed + analyzed seeded program, with its assertions in force."""
    seed = SEEDS[name]
    program = AnalyzedProgram.from_source(seeded_source(name))
    _post_parse(name, program)
    assertions = AssertionSet()
    for text in seed.assertions:
        assertions.add(text)
    return program, assertions


def _post_parse(name: str, program: AnalyzedProgram) -> None:
    """Mutations with no source syntax (private-variable lists)."""
    if name == "slab2d":
        # the user privatized the killed scalar D -- sound for the loop
        # body, unsound once the seeded post-loop read consumes it
        uir = program.units["STEP"]
        for stmt, _ in ast.walk_stmts(uir.unit.body):
            if isinstance(stmt, ast.DoLoop) and stmt.parallel \
                    and stmt.term_label == 40:
                stmt.private_vars.add("D")
                break
        else:
            raise ValueError("slab2d seed loop not found")
