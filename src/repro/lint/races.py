"""Static race detection for PARALLEL DO loops.

This is the flagship lint rule's engine.  It re-derives, for every loop
marked PARALLEL, the shared/private/reduction classification of every
variable — *independently* of ``repro.dependence`` — from:

* scalar kill / upward-exposure analysis (:mod:`repro.analysis.kills`),
* whole-unit liveness (:mod:`repro.analysis.defuse`), with a
  COMMON-exposure refinement (a COMMON name is live after a loop only
  when some unit in the program reads it before killing it),
* interprocedural MOD/REF/KILL summaries and array section translation
  (:mod:`repro.interproc.oracle`),
* its own subscript pair testing over linear forms
  (:mod:`repro.analysis.linear`), including index-array subscripts
  under user assertions.

Race semantics match what the fork-join runtime can actually expose
(and what :mod:`repro.interp.shadow` observes dynamically):

* a cross-iteration write→exposed-read conflict is always a race;
* a write-write conflict is a race only when the final value is
  observable — the variable is live after the loop (an iteration-local
  read that follows a same-iteration whole-array kill is not exposed);
* privatized scalars race when upward-exposed (stale value read) or
  live after the loop (privatization violation: the sequential last
  value is not what a worker pool leaves behind);
* reduction-shaped updates are allowed, but a REAL/DOUBLE sum or
  product marked parallel is flagged (floating addition is not
  associative, and the runtime will refuse to fork it);
* a pair proved safe *only* by a user index-array assertion is
  re-checked by concrete value recovery of the index arrays; a
  contradiction turns into an unsound-assertion finding.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.constants import eval_const
from ..analysis.kills import upward_exposed_uses
from ..analysis.linear import LinearExpr, linearize
from ..assertions.lang import Disjoint, Monotone, Permutation
from ..fortran import ast
from ..interp.runtime import _red_match

#: per-dimension subscript-pair verdicts
NEVER = "never"                  # can never reference the same element
SAME_ITER_ONLY = "same-iter"     # equal only within one iteration
SAME_CELL = "same-cell"          # same element in *every* iteration pair
CARRIED = "carried"              # equal at a fixed nonzero distance
MAYBE = "maybe"                  # cannot decide


@dataclass(frozen=True)
class RaceFinding:
    """One conclusion about a PARALLEL loop, consumed by rules.py."""

    category: str    # "race" | "privatization" | "reduction" |
                     # "assertion" | "unknown-callee"
    var: str
    line: int        # anchor (the loop's DO line)
    detail: str
    definite: bool = True
    #: assertion texts this pair's safety would have relied on
    assertions: tuple = ()


@dataclass
class _Access:
    array: str
    subs: tuple | None     # None = whole array (unknown section)
    is_write: bool
    line: int
    top_idx: int           # index of the enclosing top-level body stmt
    via: str = ""          # "" or the callee name for call effects

    def display(self) -> str:
        if self.subs is None:
            body = f"{self.array}(*)"
        else:
            body = f"{self.array}({', '.join(str(s) for s in self.subs)})"
        return f"{body} via CALL {self.via}" if self.via else body


class LoopRaceAnalysis:
    """All race facts for one PARALLEL DO in one unit."""

    def __init__(self, ctx, uir, loop: ast.DoLoop):
        self.ctx = ctx
        self.uir = uir
        self.st = uir.symtab
        self.loop = loop
        self.var = loop.var.upper()
        self.private = {n.upper() for n in loop.private_vars}
        self.inner = {t.var.upper() for t, _ in ast.walk_stmts(loop.body)
                      if isinstance(t, ast.DoLoop)}
        self.findings: list[RaceFinding] = []
        self._trusted: dict[str, object] = {}   # assertion text -> obj

    # -- entry point -------------------------------------------------------

    def run(self) -> list[RaceFinding]:
        exposed = upward_exposed_uses(self.loop, self.st,
                                      self.ctx.oracle())
        live_after = self.ctx.live_after_loop(self.uir, self.loop)
        written, reductions, bad_reductions = self._classify_scalars()
        allowed = ({self.var} | self.inner | self.private
                   | set(reductions) | set(bad_reductions))

        for name, tname in sorted(bad_reductions.items()):
            self.findings.append(RaceFinding(
                "reduction", name, self.loop.line,
                f"{tname} sum/product reduction on {name} is not "
                f"associative under floating-point arithmetic; parallel "
                f"accumulation order changes the result"))

        for name in sorted(self.private):
            sym = self.st.get(name)
            if sym is not None and sym.is_array:
                continue
            if name in exposed:
                self.findings.append(RaceFinding(
                    "privatization", name, self.loop.line,
                    f"privatized scalar {name} may be read before it is "
                    f"assigned in an iteration (stale value from another "
                    f"worker's copy)"))
            elif name in written and name in live_after:
                self.findings.append(RaceFinding(
                    "privatization", name, self.loop.line,
                    f"value of privatized scalar {name} is live after "
                    f"the loop; worker-private copies are discarded, so "
                    f"the sequential last value is lost"))

        for name in sorted(written - allowed):
            sym = self.st.get(name)
            if sym is not None and sym.is_array:
                continue
            if name in exposed:
                self.findings.append(RaceFinding(
                    "race", name, self.loop.line,
                    f"read-write race on shared scalar {name}: each "
                    f"iteration reads a value another iteration wrote"))
            elif name in live_after:
                self.findings.append(RaceFinding(
                    "race", name, self.loop.line,
                    f"write-write race on shared scalar {name}: the "
                    f"value observed after the loop depends on iteration "
                    f"order"))

        self._array_races(live_after, written | set(bad_reductions))
        self._check_trusted_assertions()
        return self.findings

    # -- scalar classification --------------------------------------------

    def _classify_scalars(self):
        """(written, valid reductions, REAL sum/prod reductions)."""
        written: set[str] = set()
        red_occ: dict[str, list] = {}
        var_reads: dict[str, int] = {}
        self_reads: dict[str, int] = {}
        oracle = self.ctx.oracle()
        for stmt, _ in ast.walk_stmts(self.loop.body):
            if isinstance(stmt, ast.CallStmt):
                _, mods, _ = oracle.call_effects(self.st, stmt.name,
                                                 stmt.args)
                for n in mods:
                    sym = self.st.get(n)
                    if sym is None or not sym.is_array:
                        written.add(n.upper())
            if isinstance(stmt, ast.Assign) and isinstance(
                    stmt.target, ast.VarRef):
                name = stmt.target.name.upper()
                m = _red_match(stmt.value, name)
                if m is not None and name not in {
                        v.upper() for v in ast.variables_in(m[1])}:
                    red_occ.setdefault(name, []).append(m[0])
                    self_reads[name] = self_reads.get(name, 0) + 1
                else:
                    written.add(name)
            for e in stmt.exprs():
                for node in ast.walk_expr(e):
                    if isinstance(node, ast.VarRef):
                        n = node.name.upper()
                        var_reads[n] = var_reads.get(n, 0) + 1
                    elif isinstance(node, ast.FuncRef) \
                            and not node.intrinsic:
                        for a in node.args:
                            if isinstance(a, ast.VarRef):
                                sym = self.st.get(a.name)
                                if sym is None or not sym.is_array:
                                    written.add(a.name.upper())
        reductions: set[str] = set()
        bad: dict[str, str] = {}
        for name, kinds in red_occ.items():
            sym = self.st.get(name)
            tname = sym.type_name if sym is not None else None
            ok = (len(set(kinds)) == 1 and name != self.var
                  and name not in self.inner and name not in written
                  and var_reads.get(name, 0) == self_reads.get(name, 0)
                  and sym is not None and sym.storage != "common")
            if not ok:
                written.add(name)
            elif kinds[0] in ("sum", "prod") and tname in (
                    "REAL", "DOUBLEPRECISION"):
                bad[name] = tname
            else:
                reductions.add(name)
        return written, reductions, bad

    # -- array accesses ----------------------------------------------------

    def _collect_accesses(self) -> list[_Access]:
        out: list[_Access] = []
        oracle = self.ctx.oracle()
        for top_idx, top in enumerate(self.loop.body):
            for stmt, _ in ast.walk_stmts([top]):
                if isinstance(stmt, ast.Assign):
                    t = stmt.target
                    if isinstance(t, (ast.ArrayRef, ast.NameRef)) \
                            and self.st.is_array(t.name):
                        out.append(_Access(t.name.upper(),
                                           tuple(t.children()), True,
                                           stmt.line, top_idx))
                    read_exprs = [stmt.value] + list(
                        t.children() if isinstance(
                            t, (ast.ArrayRef, ast.NameRef)) else ())
                else:
                    read_exprs = list(stmt.exprs())
                for e in read_exprs:
                    for node in ast.walk_expr(e):
                        if isinstance(node,
                                      (ast.ArrayRef, ast.NameRef)) \
                                and self.st.is_array(node.name):
                            out.append(_Access(node.name.upper(),
                                               tuple(node.children()),
                                               False, stmt.line,
                                               top_idx))
                callees = []
                if isinstance(stmt, ast.CallStmt):
                    callees.append((stmt.name, stmt.args, stmt.line))
                for e in stmt.exprs():
                    for node in ast.walk_expr(e):
                        if isinstance(node, ast.FuncRef) \
                                and not node.intrinsic:
                            callees.append((node.name, node.args,
                                            stmt.line))
                for callee, args, line in callees:
                    accs = oracle.call_array_accesses(self.st, callee,
                                                      args)
                    if accs is None:
                        self.findings.append(RaceFinding(
                            "unknown-callee", callee.upper(),
                            self.loop.line,
                            f"call to {callee.upper()} at line {line} "
                            f"has no interprocedural summary; its side "
                            f"effects may race", definite=False))
                        continue
                    for ca in accs:
                        if not self.st.is_array(ca.array):
                            continue
                        out.append(_Access(
                            ca.array.upper(),
                            tuple(ca.subscripts)
                            if ca.subscripts is not None else None,
                            ca.is_write, line, top_idx,
                            via=callee.upper()))
        return out

    def _kill_cover(self) -> dict[str, int]:
        """array name -> top-level body index of the first whole-array
        kill (CALL whose summary kills the array).  A read positioned
        after the kill never observes other iterations' values."""
        cover: dict[str, int] = {}
        oracle = self.ctx.oracle()
        for i, s in enumerate(self.loop.body):
            if isinstance(s, ast.CallStmt):
                _, _, kills = oracle.call_effects(self.st, s.name, s.args)
                for n in kills:
                    if self.st.is_array(n):
                        cover.setdefault(n.upper(), i)
        return cover

    # -- subscript pair testing -------------------------------------------

    def _variant_names(self, written: set[str]) -> set[str]:
        return written | self.inner | self.private | {self.var}

    def _array_races(self, live_after: set[str],
                     written: set[str]) -> None:
        accesses = self._collect_accesses()
        if not accesses:
            return
        variant = self._variant_names(written)
        full_env = dict(self.ctx.subscript_env(self.uir))
        full_env.update(self._body_env(full_env))
        kill_cover = self._kill_cover()

        by_array: dict[str, list[_Access]] = {}
        for a in accesses:
            by_array.setdefault(a.array, []).append(a)

        reported: set[tuple] = set()
        for array in sorted(by_array):
            accs = by_array[array]
            writes = [a for a in accs if a.is_write]
            if not writes:
                continue
            for w in writes:
                for other in accs:
                    kind = "write-write" if other.is_write \
                        else "read-write"
                    if not other.is_write and self._read_covered(
                            other, kill_cover):
                        continue
                    if kind == "write-write" and array not in live_after:
                        continue
                    verdict, trusted, displays = self._pair_verdict(
                        w, other, full_env, variant)
                    if verdict == "safe":
                        for a_text, a_obj in trusted:
                            self._trusted[a_text] = (a_obj, array,
                                                     w, other)
                        continue
                    key = (array, kind)
                    if key in reported:
                        continue
                    reported.add(key)
                    definite = verdict == "definite"
                    word = "has a" if definite else "may have a"
                    self.findings.append(RaceFinding(
                        "race", array, self.loop.line,
                        f"array {array} {word} cross-iteration "
                        f"{kind} conflict ({displays[0]} vs "
                        f"{displays[1]})", definite=definite))

    def _read_covered(self, r: _Access,
                      kill_cover: dict[str, int]) -> bool:
        """The read follows a same-iteration whole-array kill, so it can
        only observe values its own iteration wrote (arc3d's ZCOL)."""
        ki = kill_cover.get(r.array)
        return ki is not None and ki < r.top_idx

    def _body_env(self, env: dict) -> dict:
        """Forward substitution for body scalars assigned exactly once
        (dpmin's ``I3 = IT(N)`` pattern): lets subscripts like
        ``F(I3 + 1)`` expose their index-array structure."""
        assigns: dict[str, list] = {}
        for stmt, _ in ast.walk_stmts(self.loop.body):
            if isinstance(stmt, ast.Assign) and isinstance(
                    stmt.target, ast.VarRef):
                assigns.setdefault(stmt.target.name.upper(),
                                   []).append(stmt.value)
        out: dict[str, LinearExpr] = {}
        for name, values in assigns.items():
            if len(values) == 1:
                out[name] = linearize(values[0], env)
        return out

    def _linearize_sub(self, sub: ast.Expr, env: dict) -> LinearExpr:
        return linearize(sub, env)

    def _pair_verdict(self, w: _Access, r: _Access, env: dict,
                      variant: set[str]):
        """('safe'|'definite'|'possible', trusted assertions, displays)."""
        displays = (w.display(), r.display())
        if w.subs is None or r.subs is None:
            return "possible", [], displays
        if len(w.subs) != len(r.subs):
            return "possible", [], displays
        verdicts = []
        trusted: list[tuple] = []
        for dw, dr in zip(w.subs, r.subs):
            v, t = self._dim_verdict(dw, dr, env, variant)
            verdicts.append(v)
            trusted.extend(t)
        if NEVER in verdicts or SAME_ITER_ONLY in verdicts:
            return "safe", trusted, displays
        if all(v in (SAME_CELL, CARRIED) for v in verdicts):
            return "definite", [], displays
        return "possible", [], displays

    def _dim_verdict(self, dw: ast.Expr, dr: ast.Expr, env: dict,
                     variant: set[str]):
        lw = self._linearize_sub(dw, env)
        lr = self._linearize_sub(dr, env)
        # section placeholders (ranged dims from interprocedural
        # translation) stand for a *range* of values: never separating,
        # never equality-proving
        for le in (lw, lr):
            if any("%" in n for n in le.variables()):
                return MAYBE, []
        v = self._index_array_verdict(lw, lr)
        if v is not None:
            return v
        if not lw.is_affine or not lr.is_affine:
            return MAYBE, []
        cw = lw.coeff(self.var)
        cr = lr.coeff(self.var)
        # any *other* loop-variant name makes the dimension undecidable
        for le in (lw, lr):
            if any(n in variant and n != self.var
                   for n in le.variables()):
                return MAYBE, []
        if cw != cr:
            return MAYBE, []
        delta = lw - lr
        # delta's var coefficient is 0 now; remaining terms are
        # loop-invariant symbols
        rest = delta - LinearExpr.var(self.var, delta.coeff(self.var))
        if rest.terms or rest.residue:
            return MAYBE, []
        k = rest.const
        if cw == 0:
            if k == 0:
                return SAME_CELL, []
            return NEVER, []
        d = -k / cw
        if d.denominator != 1:
            return NEVER, []
        return (SAME_ITER_ONLY, []) if d == 0 else (CARRIED, [])

    # -- index arrays under assertions ------------------------------------

    def _index_array_residue(self, le: LinearExpr):
        """``(const, index array name, inner expr)`` when ``le`` is
        ``const + 1*IDX(expr)`` with expr containing the loop var."""
        if le.terms or len(le.residue) != 1:
            return None
        coef, e = le.residue[0]
        if coef != 1:
            return None
        if isinstance(e, (ast.ArrayRef, ast.NameRef)) \
                and len(e.children()) == 1:
            inner = e.children()[0]
            names = {n.name.upper() for n in ast.walk_expr(inner)
                     if isinstance(n, ast.VarRef)}
            if self.var in names:
                return le.const, e.name.upper(), inner
        return None

    def _index_array_verdict(self, lw: LinearExpr, lr: LinearExpr):
        iw = self._index_array_residue(lw)
        ir = self._index_array_residue(lr)
        if iw is None or ir is None:
            return None
        (cw, aw, ew), (cr, ar_, er) = iw, ir
        diff = abs(cw - cr)
        for a in self.ctx.assertions.assertions:
            if isinstance(a, Monotone) and aw == ar_ == a.array \
                    and ew == er and diff < a.gap:
                return SAME_ITER_ONLY, [(a.text, a)]
            if isinstance(a, Permutation) and aw == ar_ == a.array \
                    and ew == er and diff == 0:
                return SAME_ITER_ONLY, [(a.text, a)]
            if isinstance(a, Disjoint) and aw != ar_ \
                    and {aw, ar_} == {a.a, a.b} and diff < a.gap:
                return NEVER, [(a.text, a)]
        return None

    # -- assertion soundness (value recovery) ------------------------------

    def _check_trusted_assertions(self) -> None:
        for text, (a_obj, array, w, r) in sorted(self._trusted.items()):
            names = [a_obj.array] if isinstance(
                a_obj, (Monotone, Permutation)) else [a_obj.a, a_obj.b]
            values = {}
            for n in names:
                vs = self.ctx.recover_index_array(n)
                if vs is None:
                    break
                values[n] = vs
            else:
                bad = _assertion_violated(a_obj, values)
                if bad:
                    self.findings.append(RaceFinding(
                        "assertion", array, self.loop.line,
                        f"user assertion {text} is contradicted by the "
                        f"values actually assigned to "
                        f"{' and '.join(names)} ({bad}); the dependence "
                        f"it deletes is real "
                        f"({w.display()} vs {r.display()})",
                        assertions=(text,)))


def _assertion_violated(a, values: dict) -> str | None:
    """A concrete witness that ``a`` is false, or None if it holds."""
    if isinstance(a, Monotone):
        vs = values[a.array]
        for i in range(1, len(vs)):
            if vs[i] - vs[i - 1] < a.gap:
                return (f"{a.array}({i}) = {vs[i - 1]} and "
                        f"{a.array}({i + 1}) = {vs[i]}")
        return None
    if isinstance(a, Permutation):
        vs = values[a.array]
        if len(set(vs)) != len(vs):
            dup = next(v for v in vs if vs.count(v) > 1)
            return f"{a.array} repeats the value {dup}"
        return None
    if isinstance(a, Disjoint):
        xs, ys = values[a.a], values[a.b]
        for i, x in enumerate(xs):
            for j, y in enumerate(ys):
                if abs(x - y) < a.gap:
                    return (f"{a.a}({i + 1}) = {x} is within "
                            f"{a.gap} of {a.b}({j + 1}) = {y}")
        return None
    return None


# --------------------------------------------------------------------------
# Index-array value recovery
# --------------------------------------------------------------------------

def recover_index_array(program, name: str) -> list[int] | None:
    """Concrete element values of an index array, when every definition
    sits in one sequential DO with constant bounds and affine subscript
    and right-hand side (the dpmin ``DO 6`` initialization pattern)."""
    name = name.upper()

    def targets(stmt) -> bool:
        return (isinstance(stmt, ast.Assign)
                and isinstance(stmt.target, (ast.ArrayRef, ast.NameRef))
                and stmt.target.name.upper() == name
                and len(stmt.target.children()) == 1)

    defs: list[tuple] = []   # (unit, enclosing DoLoop, Assign)
    covered: set[int] = set()
    for uir in program.units.values():
        for stmt, _ in ast.walk_stmts(uir.unit.body):
            if isinstance(stmt, ast.DoLoop):
                for t in stmt.body:
                    if targets(t):
                        defs.append((uir, stmt, t))
                        covered.add(id(t))
    for uir in program.units.values():
        for stmt, _ in ast.walk_stmts(uir.unit.body):
            if targets(stmt) and id(stmt) not in covered:
                return None   # defined outside a simple loop nest
            if isinstance(stmt, ast.ReadStmt) and any(
                    isinstance(it, (ast.VarRef, ast.ArrayRef))
                    and it.name.upper() == name for it in stmt.items):
                return None   # values come from input
    if not defs:
        return None
    loops = {id(lp) for _, lp, _ in defs}
    if len(loops) != 1:
        return None
    uir, lp, _ = defs[0]
    if lp.parallel:
        return None
    env = _const_env(uir)
    lo = eval_const(lp.start, env)
    hi = eval_const(lp.end, env)
    step = eval_const(lp.step, env) if lp.step is not None else 1
    if not all(isinstance(v, int) for v in (lo, hi, step)) or step == 0:
        return None
    cells: dict[int, int] = {}
    ivar = lp.var.upper()
    for _, _, a in defs:
        sub = linearize(a.target.children()[0])
        rhs = linearize(a.value)
        if not sub.is_affine or not rhs.is_affine:
            return None
        if (sub.variables() | rhs.variables()) - {ivar}:
            return None
        for v in range(lo, hi + (1 if step > 0 else -1), step):
            idx = sub.const + sub.coeff(ivar) * v
            val = rhs.const + rhs.coeff(ivar) * v
            if idx.denominator != 1 or val.denominator != 1:
                return None
            cells[int(idx)] = int(val)
    if not cells:
        return None
    keys = sorted(cells)
    if keys != list(range(keys[0], keys[0] + len(keys))):
        return None   # holes: not the simple initialization pattern
    return [cells[k] for k in keys]


def _const_env(uir) -> dict:
    """PARAMETER constants + straight-line top-level integer assigns."""
    env: dict[str, int] = {}
    for nm, sy in uir.symtab.symbols.items():
        if sy.storage == "parameter" and sy.param_value is not None:
            v = eval_const(sy.param_value, {})
            if isinstance(v, int):
                env[nm] = v
    for s in uir.unit.body:
        if isinstance(s, ast.Assign) and isinstance(s.target, ast.VarRef):
            v = eval_const(s.value, env)
            if isinstance(v, int):
                env[s.target.name.upper()] = v
    return env
