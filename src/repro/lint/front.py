"""Front-end (FRONT0xx) lint rules.

Thin views over one shared :mod:`repro.fortran.semantics` run per
program, mirroring how the RACE rules share a single
:class:`~repro.lint.races.LoopRaceAnalysis`.  FRONT001-004 and FRONT007
are unit-local (incremental re-lint re-runs them only for dirty units);
FRONT005 (cross-unit COMMON types) and FRONT006 (DO-range nesting over
the raw source) are program-scoped.

FRONT000 (syntax error) has no rule here: the lint driver only sees
programs that already parsed.  Batch front ends get it from
:func:`repro.fortran.semantics.analyze_source`.
"""

from __future__ import annotations

from ..fortran.semantics import analyze_program
from .core import Rule, register
from .rules import UnitRule


def _front_findings(ctx):
    """unit name -> [SemanticFinding], one semantics run per context."""
    cache = getattr(ctx, "_front_cache", None)
    if cache is None:
        by_unit: dict[str, list] = {}
        for f in analyze_program(ctx.program.ast):
            by_unit.setdefault(f.unit, []).append(f)
        cache = ctx._front_cache = by_unit
    return cache


class FrontUnitRule(UnitRule):
    """Selects one FRONT rule id out of the shared semantics run."""

    fix: str | None = None

    def check_unit(self, ctx, name, uir):
        out = []
        for f in _front_findings(ctx).get(name, []):
            if f.rule != self.rule_id:
                continue
            out.append(self.diag(name, f.line, f.message, var=f.var,
                                 fix=self.fix, severity=f.severity))
        return out


class FrontProgramRule(Rule):
    """Program-scoped FRONT rule (cross-unit or raw-source evidence)."""

    scope = "program"
    fix: str | None = None

    def check(self, ctx):
        out = []
        for unit, findings in sorted(_front_findings(ctx).items()):
            for f in findings:
                if f.rule != self.rule_id:
                    continue
                out.append(self.diag(unit, f.line, f.message, var=f.var,
                                     fix=self.fix, severity=f.severity))
        return out


@register
class UndeclaredRule(FrontUnitRule):
    """Names used without declaration under IMPLICIT NONE."""

    rule_id = "FRONT001"
    severity = "error"
    title = "undeclared name under IMPLICIT NONE"
    fix = "declare the variable, or remove IMPLICIT NONE"


@register
class UnusedRule(FrontUnitRule):
    """Declared locals never referenced by the unit."""

    rule_id = "FRONT002"
    severity = "info"
    title = "declared but never referenced"
    fix = "delete the declaration"


@register
class RankRule(FrontUnitRule):
    """Subscript count differs from the declared rank."""

    rule_id = "FRONT003"
    severity = "error"
    title = "array rank mismatch"
    fix = "match the reference to the declared dimensions"


@register
class TypeMixRule(FrontUnitRule):
    """LOGICAL operands in arithmetic, numeric operands in logic."""

    rule_id = "FRONT004"
    severity = "warning"
    title = "LOGICAL/arithmetic type mixing"
    fix = "convert explicitly, or correct the declaration"


@register
class CommonTypeRule(FrontProgramRule):
    """Positional COMMON member type conflicts across units."""

    rule_id = "FRONT005"
    severity = "error"
    title = "COMMON member type conflict"
    fix = "declare the block with identical member types in every unit"


@register
class DoNestingRule(FrontProgramRule):
    """Label-DO ranges that do not close in LIFO order."""

    rule_id = "FRONT006"
    severity = "error"
    title = "mis-nested DO ranges"
    fix = "terminate inner DO ranges before outer ones"


@register
class OpaqueRule(FrontUnitRule):
    """Statements accepted but not lowered (analyzed conservatively)."""

    rule_id = "FRONT007"
    severity = "info"
    title = "statement accepted but not lowered"
    fix = None
