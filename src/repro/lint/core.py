"""Lint framework core: diagnostics, the rule registry, suppression.

Diagnostics are value objects with a total order so that lint output is
byte-stable across runs, incremental re-analysis, and pool worker
counts: the driver always sorts by ``(unit, line, rule, var, message)``
and de-duplicates on the full tuple.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: severity levels, most severe first (used for summary lines only; the
#: sort order of diagnostics is positional, not severity-based)
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, anchored to a unit/line (and optionally a loop
    and a variable), with an optional suggested fixing transform."""

    rule: str                 # e.g. "RACE001"
    severity: str             # "error" | "warning" | "info"
    unit: str
    line: int
    message: str
    loop: str | None = None   # loop id within the unit, e.g. "L2"
    var: str | None = None
    fix: str | None = None    # suggested fixing transform / action
    suppressed: bool = False

    @property
    def sort_key(self) -> tuple:
        return (self.unit, self.line, self.rule, self.var or "",
                self.message)

    def to_json(self) -> dict:
        """Stable key order; omits nothing so baselines diff cleanly."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "unit": self.unit,
            "line": self.line,
            "loop": self.loop,
            "var": self.var,
            "message": self.message,
            "fix": self.fix,
            "suppressed": self.suppressed,
        }

    @staticmethod
    def from_json(d: dict) -> "Diagnostic":
        return Diagnostic(
            rule=d["rule"], severity=d["severity"], unit=d["unit"],
            line=d["line"], message=d["message"], loop=d.get("loop"),
            var=d.get("var"), fix=d.get("fix"),
            suppressed=bool(d.get("suppressed")))

    def format(self) -> str:
        at = f"{self.unit}:{self.line}"
        if self.loop:
            at += f" ({self.loop})"
        tail = f" [fix: {self.fix}]" if self.fix else ""
        sup = " (suppressed)" if self.suppressed else ""
        return f"{at}: {self.severity} {self.rule}: {self.message}" \
               f"{tail}{sup}"


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id``/``severity``/``title`` and implement
    :meth:`check`, yielding :class:`Diagnostic` objects.  A rule raising
    is fault-isolated by the driver (recorded, other rules still run).
    """

    rule_id: str = "LINT000"
    severity: str = "warning"
    title: str = ""

    def check(self, ctx) -> "list[Diagnostic]":  # pragma: no cover
        raise NotImplementedError

    def diag(self, unit: str, line: int, message: str, *, loop=None,
             var=None, fix=None, severity=None) -> Diagnostic:
        return Diagnostic(self.rule_id, severity or self.severity, unit,
                          line, message, loop=loop, var=var, fix=fix)


_REGISTRY: dict[str, Rule] = {}


def register(cls):
    """Class decorator adding a rule to the global registry."""
    inst = cls()
    if inst.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {inst.rule_id}")
    _REGISTRY[inst.rule_id] = inst
    return cls


def all_rules() -> list[Rule]:
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id.upper()]


# --------------------------------------------------------------------------
# Suppression directives
# --------------------------------------------------------------------------

_COMMENT_CHARS = ("C", "c", "*")


@dataclass
class Suppressions:
    """``C$PED LINT`` directives scanned from raw source text.

    Two forms, both comment lines (column-1 ``C``/``c``/``*``):

    * ``C$PED LINT DISABLE RULE1[, RULE2...]`` — suppress the named
      rules (or ``ALL``) on the next statement line;
    * ``C$PED LINT DISABLE-FILE RULE1[, RULE2...]`` — suppress them
      everywhere in the file.

    Statement line numbers are physical (comment lines counted), exactly
    what parsed statements carry in ``stmt.line``.
    """

    #: line number -> set of rule ids ("ALL" wildcard allowed)
    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    @staticmethod
    def scan(source: str) -> "Suppressions":
        sup = Suppressions()
        lines = source.splitlines()
        for i, raw in enumerate(lines):
            if not raw or raw[0] not in _COMMENT_CHARS:
                continue
            text = raw[1:].strip().upper()
            if not text.startswith("$PED LINT "):
                continue
            directive = text[len("$PED LINT "):].strip()
            for head, file_wide in (("DISABLE-FILE", True),
                                    ("DISABLE", False)):
                if not directive.startswith(head):
                    continue
                names = {n.strip() for n in
                         directive[len(head):].split(",") if n.strip()}
                if not names:
                    names = {"ALL"}
                if file_wide:
                    sup.file_wide |= names
                else:
                    target = _next_statement_line(lines, i)
                    if target is not None:
                        sup.by_line.setdefault(target, set()) \
                            .update(names)
                break
        return sup

    def is_suppressed(self, rule: str, line: int) -> bool:
        if "ALL" in self.file_wide or rule in self.file_wide:
            return True
        here = self.by_line.get(line)
        return bool(here and ("ALL" in here or rule in here))

    def apply(self, diags: "list[Diagnostic]") -> "list[Diagnostic]":
        return [replace(d, suppressed=True)
                if self.is_suppressed(d.rule, d.line) else d
                for d in diags]


def _next_statement_line(lines: list[str], idx: int) -> int | None:
    """1-based number of the first statement line after ``lines[idx]``."""
    for j in range(idx + 1, len(lines)):
        raw = lines[j]
        if not raw.strip():
            continue
        if raw[0] in _COMMENT_CHARS:
            continue
        return j + 1
    return None


def dedup_sorted(diags: "list[Diagnostic]") -> "list[Diagnostic]":
    """Deterministic order + merge of repeats (incremental re-analysis
    can re-derive the same finding for an unchanged unit)."""
    out: list[Diagnostic] = []
    seen: set[tuple] = set()
    for d in sorted(diags, key=lambda d: d.sort_key):
        key = d.sort_key + (d.suppressed,)
        if key not in seen:
            seen.add(key)
            out.append(d)
    return out
