"""Lint driver: whole-program runs, fault isolation, incremental
re-lint for live :class:`~repro.ped.session.PedSession` objects.

The driver owns the shared analysis artifacts (interprocedural oracle,
per-unit def-use and liveness solutions, the COMMON-exposure set) so
rules don't recompute them, and guarantees deterministic output: the
final diagnostic list is sorted and de-duplicated regardless of rule
order, unit iteration order, or how many incremental passes produced
the pieces.
"""

from __future__ import annotations

from ..analysis.defuse import compute_defuse, compute_liveness
from ..assertions.lang import AssertionSet
from ..fortran import ast
from ..interproc.oracle import InterproceduralOracle
from ..interproc.summary import SummaryBuilder
from ..ir.program import AnalyzedProgram
from ..perf import counters as perf_counters
from ..store import MISS, declare as _declare_ns, get_store
from .core import Diagnostic, Suppressions, all_rules, dedup_sorted
from .races import recover_index_array

#: lint results shared across sessions.  Diagnostics are frozen,
#: uid-free value objects (unit/line/loop-id strings), so a rule run
#: over one session's program is valid verbatim for any structurally
#: identical program; loop PARALLEL/private state -- which rules read
#: but structural fingerprints exclude -- enters the key positionally.
_LINT_NS = "lint"
_declare_ns(_LINT_NS, mem_entries=256, disk=True)


class LintContext:
    """Shared analysis state for one lint pass over one program."""

    def __init__(self, program: AnalyzedProgram,
                 assertions: AssertionSet | None = None,
                 source: str | None = None):
        self.program = program
        self.assertions = assertions or AssertionSet()
        src = source if source is not None \
            else getattr(program.ast, "source", None)
        self.suppressions = Suppressions.scan(src) if src \
            else Suppressions()
        self._oracle = None
        self._defuse: dict[str, object] = {}
        self._liveness: dict[str, tuple] = {}
        self._exposed = None
        self._index_arrays: dict[str, object] = {}
        self._subscript_env: dict[str, dict] = {}
        #: (rule id, unit or None, error text) for crashed rules
        self.rule_failures: list[tuple] = []

    # -- shared artifacts --------------------------------------------------

    def oracle(self) -> InterproceduralOracle:
        if self._oracle is None:
            self._oracle = InterproceduralOracle(
                SummaryBuilder(self.program).build())
        return self._oracle

    def defuse(self, unit_name: str):
        unit_name = unit_name.upper()
        if unit_name not in self._defuse:
            uir = self.program.units[unit_name]
            self._defuse[unit_name] = compute_defuse(
                uir.cfg, uir.symtab, self.oracle())
        return self._defuse[unit_name]

    def globally_exposed_common(self) -> set[str]:
        """COMMON names some unit reads before killing them.

        Taken straight from the interprocedural summaries:
        ``exposed_ref`` is the set of visible names whose *incoming*
        value a unit may consume (a use not preceded by a scalar kill
        or a whole-array rewrite on some path).  A COMMON variable in
        no unit's exposed set is always overwritten before it is next
        read, so a loop's final write to it is dead — the refinement
        that keeps arc3d's wholly-rewritten ZCOL column buffer from
        reading as a race."""
        if self._exposed is None:
            exposed: set[str] = set()
            summaries = self.oracle().summaries
            for name, uir in self.program.units.items():
                summ = summaries.get(name)
                names = summ.exposed_ref if summ is not None else {
                    s.name for s in uir.symtab.symbols.values()}
                for nm in names:
                    sym = uir.symtab.get(nm)
                    if sym is not None and sym.storage == "common":
                        exposed.add(nm)
            self._exposed = exposed
        return self._exposed

    def liveness(self, unit_name: str) -> tuple:
        """Whole-unit liveness with the COMMON-exposure refinement."""
        unit_name = unit_name.upper()
        if unit_name not in self._liveness:
            uir = self.program.units[unit_name]
            st = uir.symtab
            exposed = self.globally_exposed_common()
            live_at_exit = {
                s.name for s in st.symbols.values()
                if s.storage == "argument" or s.saved
                or (s.storage == "common" and s.name in exposed)}
            self._liveness[unit_name] = compute_liveness(
                uir.cfg, uir.symtab, self.oracle(),
                live_at_exit=live_at_exit)
        return self._liveness[unit_name]

    def live_after_loop(self, uir, loop: ast.DoLoop) -> set[str]:
        _, live_out = self.liveness(uir.symtab.unit_name)
        return set(live_out.get(loop.uid, set()))

    def subscript_env(self, uir) -> dict:
        """Linearizer environment: PARAMETER constants + assertion
        equalities (``JM .EQ. JMAX - 1``)."""
        name = uir.symtab.unit_name
        if name not in self._subscript_env:
            from ..analysis.constants import eval_const
            from ..analysis.linear import LinearExpr
            env: dict = {}
            for nm, sy in uir.symtab.symbols.items():
                if sy.storage == "parameter" \
                        and sy.param_value is not None:
                    v = eval_const(sy.param_value, {})
                    if isinstance(v, int):
                        env[nm] = LinearExpr.constant(v)
            env.update(self.assertions.relations_env())
            self._subscript_env[name] = env
        return self._subscript_env[name]

    def recover_index_array(self, name: str):
        name = name.upper()
        if name not in self._index_arrays:
            self._index_arrays[name] = recover_index_array(
                self.program, name)
        return self._index_arrays[name]

    # -- convenience for rules ---------------------------------------------

    def units(self, names=None):
        keys = sorted(self.program.units) if names is None \
            else sorted(n.upper() for n in names)
        return [(k, self.program.units[k]) for k in keys
                if k in self.program.units]

    def parallel_loops(self, names=None):
        """(unit name, UnitIR, loop id, DoLoop) for every PARALLEL DO."""
        out = []
        for name, uir in self.units(names):
            for li in uir.loops.all_loops():
                if li.loop.parallel:
                    out.append((name, uir, li.id, li.loop))
        return out

    def loop_id(self, uir, loop: ast.DoLoop) -> str | None:
        li = uir.loops.by_uid.get(loop.uid)
        return li.id if li is not None else None


def run_rules(ctx: LintContext, units=None, rules=None) -> list[Diagnostic]:
    """Run rules fault-isolated; returns raw (unsorted) diagnostics."""
    out: list[Diagnostic] = []
    selected = all_rules() if rules is None else [
        r for r in all_rules() if r.rule_id in {x.upper() for x in rules}]
    for rule in selected:
        try:
            out.extend(rule.check_units(ctx, units)
                       if hasattr(rule, "check_units")
                       else rule.check(ctx))
        except Exception as e:  # fault isolation: a broken rule must not
            ctx.rule_failures.append(  # take down the whole lint pass
                (rule.rule_id, None, f"{type(e).__name__}: {e}"))
    return out


def lint_program(program, assertions: AssertionSet | None = None,
                 units=None, rules=None, source: str | None = None,
                 include_suppressed: bool = True) -> list[Diagnostic]:
    """Lint an :class:`AnalyzedProgram` (or source text).

    Returns the deterministic diagnostic list: sorted by
    ``(unit, line, rule, var, message)``, de-duplicated, with
    ``C$PED LINT`` suppressions applied (suppressed findings are kept,
    flagged, unless ``include_suppressed=False``).
    """
    if isinstance(program, str):
        source = program
        program = AnalyzedProgram.from_source(program)
    ctx = LintContext(program, assertions, source=source)
    perf_counters.bump("lint_runs")
    perf_counters.bump("lint_units",
                       len(ctx.units(units)))
    diags = dedup_sorted(ctx.suppressions.apply(
        run_rules(ctx, units=units, rules=rules)))
    perf_counters.bump("lint_diags", len(diags))
    if not include_suppressed:
        diags = [d for d in diags if not d.suppressed]
    return diags


def lint_source(source: str, units=None, rules=None,
                include_suppressed: bool = True) -> list[Diagnostic]:
    """Lint Fortran source text directly (parse + analyze + lint in one
    call).  Equivalent to ``lint_program(source)``; exists so headless
    callers (the fleet, scripts) don't build a program object first."""
    return lint_program(source, units=units, rules=rules,
                        include_suppressed=include_suppressed)


class SessionLinter:
    """Incremental lint over a live :class:`PedSession`.

    Unit-scoped rule results are cached per unit and reused while the
    unit's *lint key* is unchanged: the key folds in the unit's
    incremental-engine generation, its loops' PARALLEL/private state
    (``classify_variable`` mutates those without bumping generations),
    and the session's assertion texts.  Whole-program rules (COMMON
    shape) re-run when any unit's key changes.
    """

    def __init__(self, session):
        self.session = session
        self._unit_cache: dict[str, tuple] = {}   # unit -> (key, diags)
        self._program_cache: tuple | None = None  # (key, diags)
        self._program_id = None

    # -- keys --------------------------------------------------------------

    def _assert_key(self) -> tuple:
        return tuple(a.text for a in self.session.assertions.assertions)

    def _program_fp(self):
        from ..interp.compile import program_fingerprint
        try:
            return program_fingerprint(self.session.program)
        except Exception:
            return None

    def _unit_key(self, name: str) -> tuple:
        uir = self.session.program.units[name]
        loops = tuple(
            (t.uid, t.parallel, tuple(sorted(t.private_vars)))
            for t, _ in ast.walk_stmts(uir.unit.body)
            if isinstance(t, ast.DoLoop))
        return (uir.generation, loops, self._assert_key())

    def _positional_loop_state(self, name: str) -> tuple:
        """Like :meth:`_unit_key`'s loop state but keyed by statement
        position instead of uid, so it matches across sessions."""
        uir = self.session.program.units[name]
        out = []
        for i, (t, _) in enumerate(ast.walk_stmts(uir.unit.body)):
            if isinstance(t, ast.DoLoop):
                out.append((i, t.parallel,
                            tuple(sorted(t.private_vars))))
        return tuple(out)

    def _store_unit_diags(self, ctx: LintContext, name: str,
                          pfp) -> list[Diagnostic]:
        skey = None
        if pfp is not None:
            skey = (pfp, name, self._positional_loop_state(name),
                    self._assert_key())
            hit = get_store().get(_LINT_NS, skey)
            if hit is not MISS:
                perf_counters.bump("lint_units_shared")
                return list(hit)
        diags = run_rules(ctx, units=[name],
                          rules=_unit_scope_rule_ids())
        unit_diags = [d for d in diags if d.unit == name]
        if skey is not None:
            get_store().put(_LINT_NS, skey, tuple(unit_diags))
        return unit_diags

    def _store_program_diags(self, ctx: LintContext, names,
                             pfp) -> list[Diagnostic]:
        skey = None
        if pfp is not None:
            skey = (pfp, None,
                    tuple(self._positional_loop_state(n)
                          for n in names),
                    self._assert_key())
            hit = get_store().get(_LINT_NS, skey)
            if hit is not MISS:
                return list(hit)
        diags = run_rules(ctx, units=None,
                          rules=_program_scope_rule_ids())
        if skey is not None:
            get_store().put(_LINT_NS, skey, tuple(diags))
        return diags

    def refresh(self) -> list[Diagnostic]:
        """Re-lint only what changed since the last call."""
        session = self.session
        program = session.program
        if self._program_id != id(program):
            # edit() replaced the program wholesale
            self._unit_cache.clear()
            self._program_cache = None
            self._program_id = id(program)
        ctx = LintContext(program, session.assertions)
        perf_counters.bump("lint_runs")
        names = sorted(program.units)
        all_diags: list[Diagnostic] = []
        any_changed = False
        pfp = None
        for name in names:
            key = self._unit_key(name)
            cached = self._unit_cache.get(name)
            if cached is not None and cached[0] == key:
                perf_counters.bump("lint_units_reused")
                all_diags.extend(cached[1])
                continue
            any_changed = True
            perf_counters.bump("lint_units")
            if pfp is None:
                pfp = self._program_fp()
            unit_diags = self._store_unit_diags(ctx, name, pfp)
            self._unit_cache[name] = (key, unit_diags)
            all_diags.extend(unit_diags)
        program_key = tuple(self._unit_key(n) for n in names)
        if self._program_cache is not None \
                and self._program_cache[0] == program_key \
                and not any_changed:
            all_diags.extend(self._program_cache[1])
        else:
            if pfp is None:
                pfp = self._program_fp()
            diags = self._store_program_diags(ctx, names, pfp)
            self._program_cache = (program_key, diags)
            all_diags.extend(diags)
        out = dedup_sorted(ctx.suppressions.apply(all_diags))
        perf_counters.bump("lint_diags", len(out))
        return out

    def summary(self) -> dict:
        """Counts for ``session.health()['lint']``."""
        diags = self.refresh()
        by_sev: dict[str, int] = {}
        by_rule: dict[str, int] = {}
        for d in diags:
            if d.suppressed:
                continue
            by_sev[d.severity] = by_sev.get(d.severity, 0) + 1
            by_rule[d.rule] = by_rule.get(d.rule, 0) + 1
        return {
            "diagnostics": len([d for d in diags if not d.suppressed]),
            "suppressed": len([d for d in diags if d.suppressed]),
            "by_severity": dict(sorted(by_sev.items())),
            "by_rule": dict(sorted(by_rule.items())),
        }


def _program_scope_rule_ids() -> list[str]:
    return [r.rule_id for r in all_rules()
            if getattr(r, "scope", "unit") == "program"]


def _unit_scope_rule_ids() -> list[str]:
    return [r.rule_id for r in all_rules()
            if getattr(r, "scope", "unit") != "program"]
