"""The lint rule registry.

Race rules (RACE001-RACE004) are thin views over one shared
:class:`~repro.lint.races.LoopRaceAnalysis` run per PARALLEL loop;
LINT001-LINT005 reuse the base analyses directly (def-use chains,
reaching definitions, COMMON composition, the runtime eligibility plan,
linear symbolic evaluation).  None of them consult ``repro.dependence``.
"""

from __future__ import annotations

from ..analysis.linear import linearize
from ..assertions.lang import Relational
from ..fortran import ast
from ..interp.runtime import _summarize_unit, build_plan
from ..interproc.compose import check_common_blocks
from ..ir.cfg import ENTRY
from .core import Rule, register
from .races import LoopRaceAnalysis


class UnitRule(Rule):
    """A rule whose findings are derived unit-locally (incremental
    re-lint re-runs it only for dirty units)."""

    scope = "unit"

    def check(self, ctx):
        return self.check_units(ctx, None)

    def check_units(self, ctx, units):
        out = []
        for name, uir in ctx.units(units):
            out.extend(self.check_unit(ctx, name, uir))
        return out

    def check_unit(self, ctx, name, uir):  # pragma: no cover
        raise NotImplementedError


# --------------------------------------------------------------------------
# Shared race analysis (one run per PARALLEL loop, cached on the context)
# --------------------------------------------------------------------------

def _race_results(ctx, units):
    """[(unit, loop id, loop, [RaceFinding])] with per-unit caching."""
    cache = getattr(ctx, "_race_cache", None)
    if cache is None:
        cache = ctx._race_cache = {}
    out = []
    for name, uir in ctx.units(units):
        if name not in cache:
            res = []
            for li in uir.loops.all_loops():
                if li.loop.parallel:
                    res.append((name, li.id, li.loop,
                                LoopRaceAnalysis(ctx, uir,
                                                 li.loop).run()))
            cache[name] = res
        out.extend(cache[name])
    return out


class RaceRuleBase(UnitRule):
    """Selects one finding category out of the shared analysis."""

    categories: tuple = ()
    fix: str | None = None

    def check_unit(self, ctx, name, uir):
        out = []
        for uname, loop_id, loop, findings in _race_results(ctx, [name]):
            for f in findings:
                if f.category not in self.categories:
                    continue
                sev = self.severity if f.definite else "warning"
                out.append(self.diag(uname, f.line, f.detail,
                                     loop=loop_id, var=f.var,
                                     fix=self.fix, severity=sev))
        return out


@register
class SharedRaceRule(RaceRuleBase):
    """WRITE-WRITE / READ-WRITE races on shared variables."""

    rule_id = "RACE001"
    severity = "error"
    title = "data race on a shared variable in a PARALLEL loop"
    categories = ("race", "unknown-callee")
    fix = "keep the loop sequential, or make the variable private " \
          "or a reduction"


@register
class PrivatizationRule(RaceRuleBase):
    """Unsound privatization: upward-exposed reads or live-out values."""

    rule_id = "RACE002"
    severity = "error"
    title = "privatization violation"
    categories = ("privatization",)
    fix = "assign the scalar on every path before its first read, " \
          "and copy the last value out if it is needed after the loop"


@register
class ReductionRule(RaceRuleBase):
    """Floating-point sum/product reductions marked parallel."""

    rule_id = "RACE003"
    severity = "warning"
    title = "non-associative reduction in a PARALLEL loop"
    categories = ("reduction",)
    fix = "accumulate in INTEGER, tolerate reordered rounding " \
          "explicitly, or keep the loop sequential"


@register
class UnsoundAssertionRule(RaceRuleBase):
    """User assertions contradicted by recovered index-array values."""

    rule_id = "RACE004"
    severity = "error"
    title = "unsound user assertion"
    categories = ("assertion",)
    fix = "delete the assertion; the dependence it suppresses is real"


# --------------------------------------------------------------------------
# LINT001: dead stores
# --------------------------------------------------------------------------

def _call_observes(ctx, stmt: ast.CallStmt, var: str) -> bool:
    """Does this CALL consume *var*'s incoming value?

    The def-use layer conservatively records every call argument as a
    use.  A plain scalar actual bound to a formal the callee kills
    before reading (absent from its ``exposed_ref``) is an out
    -parameter: the incoming value is never observed."""
    summ = ctx.oracle().summaries.get(stmt.name.upper())
    if summ is None:
        return True                     # unknown callee: worst case
    for i, a in enumerate(stmt.args):
        if isinstance(a, ast.VarRef) and a.name == var:
            if i >= len(summ.formals) \
                    or summ.formals[i] in summ.exposed_ref:
                return True
        else:
            for node in ast.walk_expr(a):
                if isinstance(node, (ast.VarRef, ast.ArrayRef)) \
                        and node.name == var:
                    return True         # subscript / expression operand
    return False


@register
class DeadStoreRule(UnitRule):
    """A local scalar assignment whose value no statement ever reads.

    Uses the def-use chains: a definition with an empty chain is dead
    unless the variable's value can escape the unit (argument, COMMON,
    SAVE) or the store is a may-def (array element, READ target)."""

    rule_id = "LINT001"
    severity = "warning"
    title = "dead store"

    def check_unit(self, ctx, name, uir):
        du = ctx.defuse(name)
        st = uir.symtab
        out = []
        for uid, stmt in uir.cfg.stmts.items():
            if not isinstance(stmt, ast.Assign) \
                    or not isinstance(stmt.target, ast.VarRef):
                continue
            var = stmt.target.name.upper()
            sym = st.get(var)
            if sym is None or sym.is_array or sym.saved \
                    or sym.storage != "local":
                continue
            uses = du.du_chains.get((uid, var), ())
            if any(not isinstance(uir.cfg.stmts.get(u), ast.CallStmt)
                   or _call_observes(ctx, uir.cfg.stmts[u], var)
                   for u in uses):
                continue
            out.append(self.diag(
                name, stmt.line,
                f"value assigned to {var} is never used",
                var=var, fix="delete the assignment"))
        return out


# --------------------------------------------------------------------------
# LINT002: uses before any definition
# --------------------------------------------------------------------------

@register
class UninitializedUseRule(UnitRule):
    """A local scalar read reachable from unit entry with no definition
    on some path (the ENTRY pseudo-definition survives in its ud-chain).
    Arguments, COMMON and SAVE variables legitimately carry values in."""

    rule_id = "LINT002"
    severity = "warning"
    title = "use before definition"

    def check_unit(self, ctx, name, uir):
        du = ctx.defuse(name)
        st = uir.symtab
        out = []
        seen: set[str] = set()
        for uid in sorted(uir.cfg.stmts):
            stmt = uir.cfg.stmts[uid]
            for var in sorted(du.uses.get(uid, ())):
                if var in seen:
                    continue
                sym = st.get(var)
                if sym is None or sym.is_array or sym.saved \
                        or sym.storage != "local":
                    continue
                chain = du.ud_chains.get((uid, var), ())
                if ENTRY not in chain:
                    continue
                if isinstance(stmt, ast.CallStmt) \
                        and not _call_observes(ctx, stmt, var):
                    continue
                seen.add(var)
                out.append(self.diag(
                    name, stmt.line,
                    f"{var} may be used before it is assigned",
                    var=var,
                    fix=f"initialize {var} before this statement"))
        return out


# --------------------------------------------------------------------------
# LINT003: COMMON block composition
# --------------------------------------------------------------------------

@register
class CommonShapeRule(Rule):
    """COMMON block layout mismatches across units (a unit-pair
    property, so the rule is program-scoped)."""

    rule_id = "LINT003"
    severity = "error"
    title = "COMMON block shape mismatch"
    scope = "program"

    def check(self, ctx):
        out = []
        for d in check_common_blocks(ctx.program):
            out.append(self.diag(
                d.unit, d.line, d.message,
                fix="make the block's layout identical in every unit"))
        return out


# --------------------------------------------------------------------------
# LINT004: runtime rejection prediction
# --------------------------------------------------------------------------

class _PlanCx:
    """The minimal compile-context surface ``build_plan`` needs."""

    def __init__(self, uir):
        self.st = uir.symtab
        self.uname = uir.symtab.unit_name
        self._slots: dict[str, int] = {}

    def slot(self, name: str) -> int:
        return self._slots.setdefault(name.upper(), len(self._slots))


@register
class RuntimeRejectionRule(UnitRule):
    """Predicts, from the same eligibility plan the fork-join runtime
    builds, that a PARALLEL loop will always fall back to the serial
    simulation — so the PARALLEL marking buys nothing."""

    rule_id = "LINT004"
    severity = "info"
    title = "PARALLEL loop the runtime will not fork"

    def check_unit(self, ctx, name, uir):
        out = []
        for li in uir.loops.all_loops():
            loop = li.loop
            if not loop.parallel:
                continue
            reason = self._reject_reason(ctx, uir, loop)
            if reason is not None:
                out.append(self.diag(
                    name, loop.line,
                    f"the runtime will never fork this loop: {reason}",
                    loop=li.id, var=loop.var.upper(),
                    fix="remove the PARALLEL marking or fix the "
                        "blocking construct"))
        return out

    def _reject_reason(self, ctx, uir, loop) -> str | None:
        plan = build_plan(_PlanCx(uir), loop, body=None, vslot=0,
                          term=loop.term_label)
        if plan.blocked is not None:
            return plan.blocked
        red_names = {r.name for r in plan.reductions}
        privates = {p.upper() for p in loop.private_vars}
        merge = (plan.written | plan.inner_vars) - red_names \
            - {plan.var}
        bad = sorted(merge - (privates | plan.inner_vars))
        if bad:
            return (f"scalar{'s' if len(bad) > 1 else ''} "
                    f"{', '.join(bad)} written but neither private "
                    f"nor a recognized reduction")
        # transitive callee closure, like the runtime's _compute_state
        summaries = getattr(ctx, "_unit_summaries", None)
        if summaries is None:
            summaries = ctx._unit_summaries = {}
        seen: set[str] = set()
        stack = sorted(plan.callees)
        while stack:
            callee = stack.pop()
            if callee in seen:
                continue
            seen.add(callee)
            if callee not in summaries:
                cu = ctx.program.units.get(callee)
                summaries[callee] = _summarize_unit(cu) \
                    if cu is not None else None
            sm = summaries[callee]
            if sm is None:
                return f"calls {callee}, which has no unit summary"
            if sm.blocked is not None:
                return f"calls {callee}, which {_gloss(sm.blocked)}"
            stack.extend(sorted(sm.callees))
        return None


def _gloss(reason: str) -> str:
    if reason == "READ":
        return "contains a READ statement"
    if reason == "STOP":
        return "contains a STOP statement"
    if reason == "cross-unit jump":
        return "jumps to a label outside itself"
    return reason  # "writes COMMON scalar X" reads fine as-is


# --------------------------------------------------------------------------
# LINT005: statically-decided branches and contradictory assertions
# --------------------------------------------------------------------------

_NEG = {".EQ.": ".NE.", ".NE.": ".EQ.", ".LT.": ".GE.", ".GE.": ".LT.",
        ".GT.": ".LE.", ".LE.": ".GT."}


def _decide(op: str, diff) -> bool:
    """Truth of ``diff op 0`` for a constant linear difference."""
    return {".EQ.": diff == 0, ".NE.": diff != 0, ".LT.": diff < 0,
            ".LE.": diff <= 0, ".GT.": diff > 0, ".GE.": diff >= 0}[op]


@register
class DecidedBranchRule(UnitRule):
    """IF conditions decidable from PARAMETER constants and asserted
    equalities: an always-false guard is dead code, an always-true one
    is a vacuous test.  Relational assertions that those same facts
    refute are reported as contradictions."""

    rule_id = "LINT005"
    severity = "info"
    title = "statically decided branch"

    def check_unit(self, ctx, name, uir):
        env = ctx.subscript_env(uir)
        out = []
        for stmt, _ in ast.walk_stmts(uir.unit.body):
            conds = []
            if isinstance(stmt, ast.IfBlock):
                conds.append(stmt.cond)
                conds.extend(c for c, _ in stmt.elifs)
            elif isinstance(stmt, ast.LogicalIf):
                conds.append(stmt.cond)
            for cond in conds:
                verdict = self._evaluate(cond, env)
                if verdict is None:
                    continue
                word = "true" if verdict else "false"
                out.append(self.diag(
                    name, stmt.line,
                    f"condition {_cond_text(cond)} is always {word} "
                    f"given PARAMETER values and assertions",
                    fix="delete the dead branch" if not verdict
                    else "delete the vacuous test"))
        # assertion contradictions are program facts; anchor them once,
        # in the main unit
        if uir is ctx.program.main_unit:
            out.extend(self._contradictions(ctx, name))
        return out

    def _evaluate(self, cond, env) -> bool | None:
        if not isinstance(cond, ast.BinOp) or cond.op not in _NEG:
            return None
        diff = linearize(cond.left, env) - linearize(cond.right, env)
        if not diff.is_constant:
            return None
        return _decide(cond.op, diff.const)

    def _contradictions(self, ctx, name):
        out = []
        rels = [a for a in ctx.assertions.assertions
                if isinstance(a, Relational)]
        for i, a in enumerate(rels):
            # evaluate under the equalities contributed by the *other*
            # assertions (and PARAMETERs are unit-local, so skip them)
            env = {}
            for j, b in enumerate(rels):
                if j != i and b.op == ".EQ." \
                        and isinstance(b.left, ast.VarRef):
                    env[b.left.name.upper()] = linearize(b.right)
            diff = linearize(a.left, env) - linearize(a.right, env)
            if diff.is_constant and not _decide(a.op, diff.const):
                out.append(self.diag(
                    name, 1,
                    f"assertion {a.text} contradicts the other "
                    f"assertions in force",
                    fix="remove one of the conflicting assertions"))
        return out


def _cond_text(cond: ast.Expr) -> str:
    try:
        from ..fortran.printer import print_expr
        return print_expr(cond)
    except Exception:
        return "<condition>"
