"""Test-support machinery that ships with the package.

:mod:`repro.testing.faults` is the fault-injection harness the
robustness suite drives: deterministic exceptions raised at named
points inside the engine (the N-th dependence pair test, mid
transformation apply, inside an analysis-pool worker, on a budget
tick) so that the rollback / degraded-mode invariants can be asserted
rather than hoped for.
"""

from . import faults

__all__ = ["faults"]
