"""Fault-injection harness for the robustness layer.

The engine exposes named *injection points* -- places where the
production code calls :func:`check` with the point's name and a little
context.  When no plan is armed the call is a single attribute read;
when a test arms a plan with :func:`inject`, the matching call raises a
deterministic exception, letting the suite prove invariants such as

* a transformation that dies mid-apply leaves the session source
  byte-identical (transactional rollback);
* a dependence test that dies mid-analysis degrades that loop to
  "dependence assumed" instead of aborting the whole analysis;
* a crashing pool worker fails only its own task.

Injection points wired into the engine:

=================  ========================================================
``pair_test``      entry of :func:`repro.dependence.tests.test_pair`
                   (fires on the N-th dependence pair tested)
``transform_do``   inside :meth:`repro.transform.base.Transformation.apply`,
                   *after* ``_do`` mutated the AST and *before* the
                   transaction commits (context: ``transform=<name>``)
``pool_worker``    inside each analysis-pool task wrapper
                   (context: ``index=<task index>``)
``budget``         every :meth:`repro.perf.budget.BudgetMeter.tick`
``fleet_stage``    entry of every fleet pipeline stage
                   (context: ``program=<name>, stage=<stage name>``)
``fleet_dispatch`` before the fleet queue dispatches a batch
                   (context: ``batch=<batch number>``)
``fleet_checkpoint``  before each checkpoint-journal append (context:
                   ``program=<name>``) -- arming it with
                   ``exc=KeyboardInterrupt`` simulates killing the
                   fleet between a task finishing and its completion
                   being made durable
=================  ========================================================

Usage::

    from repro.testing import faults

    with faults.inject("pair_test", at=5):
        session.analyze_all()      # 5th pair test raises InjectedFault

Plans are process-global and thread-safe (pool workers hit them too);
:func:`inject` is a context manager that disarms its plan on exit, and
:func:`reset` clears everything (test teardown safety net).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

POINTS = ("pair_test", "transform_do", "pool_worker", "budget",
          "fleet_stage", "fleet_dispatch", "fleet_checkpoint")


class InjectedFault(RuntimeError):
    """The exception an armed injection plan raises by default."""


@dataclass
class FaultPlan:
    """One armed fault: raise at the ``at``-th matching :func:`check`."""

    point: str
    #: 1-based hit count at which the fault fires
    at: int = 1
    #: how many times it fires (hits ``at``, ``at+1``, ... while armed)
    times: int = 1
    #: exception type raised (constructed with a descriptive message)
    exc: type[BaseException] = InjectedFault
    #: context filter: only calls whose kwargs are a superset match
    match: dict = field(default_factory=dict)
    hits: int = 0
    fired: int = 0

    def matches(self, ctx: dict) -> bool:
        return all(ctx.get(k) == v for k, v in self.match.items())

    def should_fire(self) -> bool:
        return self.at <= self.hits < self.at + self.times


_LOCK = threading.Lock()
_PLANS: list[FaultPlan] = []
#: fast-path flag: production code checks this before taking the lock
_ARMED = False


def check(point: str, **ctx) -> None:
    """Injection point hook; raises when an armed plan matches.

    Called from production code.  With nothing armed this is one global
    read -- cheap enough for the dependence-test hot path.
    """
    if not _ARMED:
        return
    with _LOCK:
        to_fire = None
        for plan in _PLANS:
            if plan.point != point or not plan.matches(ctx):
                continue
            plan.hits += 1
            if plan.should_fire():
                plan.fired += 1
                to_fire = plan
                break
    if to_fire is not None:
        detail = ", ".join(f"{k}={v}" for k, v in sorted(ctx.items()))
        raise to_fire.exc(
            f"injected fault at {point}"
            f"{f' ({detail})' if detail else ''} "
            f"[hit {to_fire.hits}]")


def arm(point: str, at: int = 1, times: int = 1,
        exc: type[BaseException] = InjectedFault, **match) -> FaultPlan:
    """Arm a fault plan; prefer the :func:`inject` context manager."""
    global _ARMED
    if point not in POINTS:
        raise ValueError(
            f"unknown injection point {point!r}; known: {', '.join(POINTS)}")
    plan = FaultPlan(point=point, at=at, times=times, exc=exc,
                     match=dict(match))
    with _LOCK:
        _PLANS.append(plan)
        _ARMED = True
    return plan


def disarm(plan: FaultPlan) -> None:
    global _ARMED
    with _LOCK:
        if plan in _PLANS:
            _PLANS.remove(plan)
        if not _PLANS:
            _ARMED = False


def reset() -> None:
    """Disarm every plan (test teardown safety net)."""
    global _ARMED
    with _LOCK:
        _PLANS.clear()
        _ARMED = False


def active() -> bool:
    return _ARMED


class inject:
    """Context manager arming one fault plan for the enclosed block.

    ``with faults.inject("transform_do", transform="loop_fusion"):``
    raises :class:`InjectedFault` the first time loop fusion's apply
    reaches its injection point.  The armed :class:`FaultPlan` is bound
    by ``as``, so tests can assert ``plan.fired``.
    """

    def __init__(self, point: str, at: int = 1, times: int = 1,
                 exc: type[BaseException] = InjectedFault, **match):
        self._args = (point, at, times, exc, match)
        self.plan: FaultPlan | None = None

    def __enter__(self) -> FaultPlan:
        point, at, times, exc, match = self._args
        self.plan = arm(point, at=at, times=times, exc=exc, **match)
        return self.plan

    def __exit__(self, *exc_info) -> None:
        if self.plan is not None:
            disarm(self.plan)
