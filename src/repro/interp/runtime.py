"""Real fork-join DOALL runtime for compiled ``PARALLEL DO`` loops.

The serial engines *simulate* a ``PARALLEL DO``: they run every
iteration on one thread and then collapse the virtual clock to
``max(iteration) + overhead``.  This module executes eligible loops for
real on a persistent worker pool (threads by default, processes with
``REPRO_EXEC_POOL=process``) while keeping the simulated engines as the
differential oracle: for any worker count and either schedule the run
must produce **byte-identical** ``snapshot()`` observables, step counts,
virtual clocks, and profiles.

How byte-identity survives real parallelism:

* **exact virtual clock** -- every statement cost is a dyadic rational
  (multiples of 1/8, see ``machine.COST_TERM``) far below 2**49, so
  float accumulation is exact and per-iteration clock deltas do not
  depend on the clock base a worker starts from; summed partials equal
  the serial fold bit-for-bit under any chunk partition;
* **privatization** -- per-chunk register files; privatized scalars and
  inner DO variables start as *unset* in every chunk and the last chunk
  that wrote one wins at the join (chunks partition the iteration space
  in order, so this is the serial last-write);
* **reductions** -- only *exactly associative* recurrences run in
  parallel: INTEGER ``+``/``-``/``*`` with statically integer-typed
  operands (per-chunk partials from the identity, combined in chunk
  order with arbitrary-precision int arithmetic) and ``MAX``/``MIN``
  (per-chunk partials seeded with the loop-entry value; max/min never
  rounds).  Floating-point ``+``/``*`` reductions are *ineligible* and
  fall back to the serial simulation rather than reassociate;
* **eligibility, not heroics** -- loops whose bodies do I/O reads,
  STOP/RETURN, escaping jumps, writes to COMMON scalars, or writes to
  scalars that are neither privatized nor recognized reductions fall
  back to the (byte-identical by construction) serial simulation, and a
  counter records the fallback.

Scheduling is chunked: ``static`` deals ``workers`` near-equal
contiguous chunks; ``dynamic`` deals smaller contiguous chunks that idle
workers claim.  Chunk boundaries never affect results (see above), only
load balance.  The pool itself is process-wide and reused across runs
(:func:`repro.perf.pool.shared_executor`).
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from ..fortran import ast
from ..perf import counters as perf_counters
from .machine import (
    _TYPE_DTYPE, ArrayStorage, RuntimeFault, StepLimitExceeded,
    parallel_jump_fault, parallel_overhead,
)

__all__ = [
    "ParallelRuntime", "ParLoopPlan", "build_plan", "chunk_ranges",
    "interleaved_order", "resolve_workers", "resolve_schedule",
    "resolve_pool_kind", "SCHEDULES",
]

SCHEDULES = ("static", "dynamic")

#: dynamic schedule: aim for this many chunks per worker
_DYNAMIC_CHUNKS_PER_WORKER = 4

#: pickle-safe stand-in for the compile-module _UNSET sentinel
_UNSET_TOKEN = "\x00__REPRO_UNSET__\x00"


def resolve_workers(workers: int | None = None) -> int | None:
    """Worker count: explicit argument > ``REPRO_EXEC_WORKERS`` > None
    (None = keep the serial simulation; 1 = run the fork-join runtime
    inline, exercising the chunk/merge machinery without a pool)."""
    if workers is not None:
        w = int(workers)
        if w < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return w
    env = os.environ.get("REPRO_EXEC_WORKERS")
    if env:
        try:
            w = int(env)
        except ValueError:
            return None
        if w >= 1:
            return w
    return None


def resolve_schedule(schedule: str | None = None) -> str:
    """Iteration schedule: explicit > ``REPRO_EXEC_SCHEDULE`` > static."""
    s = schedule or os.environ.get("REPRO_EXEC_SCHEDULE") or "static"
    s = s.lower()
    if s not in SCHEDULES:
        raise ValueError(
            f"unknown schedule {s!r} (expected one of {SCHEDULES})")
    return s


def resolve_pool_kind(kind: str | None = None) -> str:
    """Pool kind: explicit > ``REPRO_EXEC_POOL`` > thread.

    Threads are the default because loop bodies are storage-bound
    (ArrayStorage/numpy writes release no state to re-shard) and shared
    storage preserves the serial memory model exactly; the process pool
    ships arrays through ``multiprocessing.shared_memory``.
    """
    k = kind or os.environ.get("REPRO_EXEC_POOL") or "thread"
    k = k.lower()
    if k not in ("thread", "process"):
        raise ValueError(
            f"unknown pool kind {k!r} (expected thread or process)")
    return k


def chunk_ranges(trips: int, workers: int, schedule: str) -> list:
    """Contiguous ``(index, offset, count)`` chunks over ``range(trips)``.

    Static: ``min(workers, trips)`` near-equal chunks.  Dynamic: smaller
    chunks (about ``_DYNAMIC_CHUNKS_PER_WORKER`` per worker) that idle
    workers claim.  Correctness never depends on the partition; the
    index orders the join merge back into iteration order.
    """
    if trips <= 0:
        return []
    if schedule == "dynamic":
        size = max(1, trips // (workers * _DYNAMIC_CHUNKS_PER_WORKER))
        return [(ci, off, min(size, trips - off))
                for ci, off in enumerate(range(0, trips, size))]
    n = min(workers, trips)
    base, rem = divmod(trips, n)
    out = []
    off = 0
    for i in range(n):
        cnt = base + (1 if i < rem else 0)
        out.append((i, off, cnt))
        off += cnt
    return out


def interleaved_order(trips: int, workers: int,
                      schedule: str) -> list[tuple[int, int]]:
    """A deterministic *adversarial* iteration order: one iteration from
    each chunk in turn, i.e. every chunk of :func:`chunk_ranges` makes
    progress in lock-step.

    This is a legal concurrent execution of a PARALLEL DO at iteration
    granularity -- exactly the interleaving a worker pool could produce
    -- chosen to maximally violate sequential iteration order.  The
    relative debugger (:mod:`repro.interp.relative`) replays racy loops
    under it to turn "results differ under the runtime, sometimes" into
    a reproducible divergence it can bisect.  Returns ``(chunk_index,
    iteration_index)`` pairs covering ``range(trips)`` exactly once.
    """
    chunks = chunk_ranges(trips, workers, schedule)
    out: list[tuple[int, int]] = []
    step = 0
    remaining = trips
    while remaining > 0:
        for ci, off, cnt in chunks:
            if step < cnt:
                out.append((ci, off + step))
                remaining -= 1
        step += 1
    return out


# --------------------------------------------------------------------------
# Lazy handle on the compile module (compile imports us at module level)
# --------------------------------------------------------------------------

_ENG = None


def _engine():
    global _ENG
    if _ENG is None:
        from . import compile as engmod
        _ENG = engmod
    return _ENG


# --------------------------------------------------------------------------
# Compile-time loop facts: reductions, written scalars, blockers
# --------------------------------------------------------------------------

_MAXFNS = frozenset({"MAX", "AMAX1", "MAX0", "DMAX1"})
_MINFNS = frozenset({"MIN", "AMIN1", "MIN0", "DMIN1"})
#: intrinsics whose value is integer when every argument is integer
_INTFNS = frozenset({"ABS", "IABS", "MOD", "ISIGN", "SIGN", "IDIM",
                     "DIM"} | _MAXFNS | _MINFNS)
#: intrinsics whose value is integer regardless of argument type
_TOINT = frozenset({"INT", "IFIX", "IDINT", "NINT"})


class RedPlan:
    """One recognized parallel reduction: ``s = s op e`` (or MAX/MIN)."""

    __slots__ = ("name", "slot", "kind", "type_name")

    def __init__(self, name, slot, kind, type_name):
        self.name = name
        self.slot = slot
        self.kind = kind          # "sum" (+/-), "prod" (*), "max", "min"
        self.type_name = type_name


class ParLoopPlan:
    """Static facts about one PARALLEL DO, computed once at compile time.

    ``blocked`` is a human-readable reason the loop can never execute in
    parallel (it then always takes the serial simulation); everything
    else feeds the per-run eligibility verdict.
    """

    __slots__ = ("uname", "var", "vslot", "term", "line", "body",
                 "blocked", "has_assert", "written", "inner_vars",
                 "callees", "reductions")

    def __init__(self, uname, var, vslot, term, line, body):
        self.uname = uname
        self.var = var
        self.vslot = vslot
        self.term = term
        self.line = line
        self.body = body
        self.blocked: str | None = None
        self.has_assert = False
        self.written: frozenset = frozenset()
        self.inner_vars: frozenset = frozenset()
        self.callees: frozenset = frozenset()
        self.reductions: tuple = ()


def _int_typed(e, st) -> bool:
    """Conservatively: does this expression always evaluate to a Python
    int?  (Gate for +/-/* reductions: integer accumulation is exact.)"""
    if isinstance(e, ast.IntConst):
        return True
    if isinstance(e, ast.VarRef):
        sym = st.get(e.name)
        return sym is not None and sym.type_name == "INTEGER"
    if isinstance(e, (ast.ArrayRef, ast.NameRef)):
        sym = st.get(e.name)
        return (sym is not None and sym.is_array
                and sym.type_name == "INTEGER")
    if isinstance(e, ast.UnOp):
        return e.op in ("+", "-") and _int_typed(e.operand, st)
    if isinstance(e, ast.BinOp):
        return (e.op in ("+", "-", "*", "/")
                and _int_typed(e.left, st) and _int_typed(e.right, st))
    if isinstance(e, ast.FuncRef) and e.intrinsic:
        u = e.name.upper()
        if u in _TOINT:
            return True
        if u in _INTFNS:
            return all(_int_typed(a, st) for a in e.args)
    return False


def _red_match(value, name):
    """``(kind, operand)`` when ``value`` is ``name op e`` in a
    reduction shape, else None."""
    if isinstance(value, ast.BinOp):
        le, ri = value.left, value.right
        l_is = isinstance(le, ast.VarRef) and le.name.upper() == name
        r_is = isinstance(ri, ast.VarRef) and ri.name.upper() == name
        if value.op == "+":
            if l_is:
                return ("sum", ri)
            if r_is:
                return ("sum", le)
        elif value.op == "-" and l_is:
            return ("sum", ri)
        elif value.op == "*":
            if l_is:
                return ("prod", ri)
            if r_is:
                return ("prod", le)
    elif isinstance(value, ast.FuncRef) and value.intrinsic \
            and len(value.args) == 2:
        u = value.name.upper()
        if u in _MAXFNS or u in _MINFNS:
            kind = "max" if u in _MAXFNS else "min"
            a, b = value.args
            if isinstance(a, ast.VarRef) and a.name.upper() == name:
                return (kind, b)
            if isinstance(b, ast.VarRef) and b.name.upper() == name:
                return (kind, a)
    return None


def _stmt_read_exprs(s):
    """Expression trees this statement *reads* (incl. store subscripts)."""
    exprs = list(s.exprs())
    if isinstance(s, ast.Assign) and isinstance(
            s.target, (ast.ArrayRef, ast.NameRef)):
        exprs.extend(s.target.children())
    elif isinstance(s, ast.ReadStmt):
        for it in s.items:
            if isinstance(it, (ast.ArrayRef, ast.NameRef)):
                exprs.extend(it.children())
    return exprs


def build_plan(cx, s: ast.DoLoop, body, vslot, term) -> ParLoopPlan:
    """Collect the static parallel-execution facts for one PARALLEL DO.

    Called by ``compile._comp_do`` with the unit's compile context; the
    plan is registered in ``UnitCode.par_plans`` (dense loop index) so
    process-pool workers can recover it from their own compile.
    """
    st = cx.st
    plan = ParLoopPlan(cx.uname, s.var.upper(), vslot, term, s.line,
                       body)
    labels = set()
    jump_targets = set()
    written = set()
    inner_vars = set()
    callees = set()
    red_occ: dict[str, list] = {}
    var_reads: dict[str, int] = {}
    self_reads: dict[str, int] = {}
    blocked = None

    walk = list(ast.walk_stmts(s.body))
    for stmt, _ in walk:
        if stmt.label is not None:
            labels.add(stmt.label)
        if isinstance(stmt, ast.DoLoop):
            inner_vars.add(stmt.var.upper())
            if stmt.term_label is not None:
                labels.add(stmt.term_label)
        elif isinstance(stmt, ast.ReadStmt):
            blocked = blocked or "READ statement in loop body"
        elif isinstance(stmt, ast.Stop):
            blocked = blocked or "STOP in loop body"
        elif isinstance(stmt, ast.Return):
            blocked = blocked or "RETURN in loop body"
        elif isinstance(stmt, ast.AssertStmt):
            plan.has_assert = True
        elif isinstance(stmt, ast.Goto):
            jump_targets.add(stmt.target)
        elif isinstance(stmt, ast.ComputedGoto):
            jump_targets.update(stmt.targets)
        elif isinstance(stmt, ast.ArithIf):
            jump_targets.update((stmt.neg_label, stmt.zero_label,
                                 stmt.pos_label))
        elif isinstance(stmt, ast.CallStmt):
            callees.add(stmt.name.upper())
            for a in stmt.args:
                if isinstance(a, ast.VarRef):
                    sym = st.get(a.name)
                    if sym is None or not sym.is_array:
                        written.add(a.name.upper())

        if isinstance(stmt, ast.Assign) and isinstance(
                stmt.target, ast.VarRef):
            name = stmt.target.name.upper()
            m = _red_match(stmt.value, name)
            if m is not None and name not in {
                    v.upper() for v in ast.variables_in(m[1])}:
                red_occ.setdefault(name, []).append(m[0])
                self_reads[name] = self_reads.get(name, 0) + 1
            else:
                written.add(name)

        for e in _stmt_read_exprs(stmt):
            for node in ast.walk_expr(e):
                if isinstance(node, ast.VarRef):
                    n = node.name.upper()
                    var_reads[n] = var_reads.get(n, 0) + 1
                elif isinstance(node, ast.FuncRef) and not node.intrinsic:
                    callees.add(node.name.upper())
                    for a in node.args:
                        if isinstance(a, ast.VarRef):
                            sym = st.get(a.name)
                            if sym is None or not sym.is_array:
                                written.add(a.name.upper())
                elif isinstance(node, ast.NameRef):
                    sym = st.get(node.name)
                    if sym is None or not sym.is_array:
                        callees.add(node.name.upper())

    # A jump whose target is not a body label (or the loop terminator)
    # escapes the loop; the serial simulation faults at the offending
    # iteration, so keep full state parity by never forking such loops.
    ok_targets = labels | ({term} if term is not None else set())
    if blocked is None and jump_targets - ok_targets:
        blocked = "jump out of the loop body"

    # Classify reduction candidates; failures fold into plain writes.
    reductions = []
    for name, kinds in red_occ.items():
        kind = kinds[0]
        sym = st.get(name)
        tname = sym.type_name if sym is not None else None
        ok = (len(set(kinds)) == 1
              and name != plan.var
              and name not in inner_vars
              and name not in written
              and var_reads.get(name, 0) == self_reads.get(name, 0)
              and sym is not None and sym.storage != "common")
        if ok and kind in ("sum", "prod"):
            ok = tname == "INTEGER" and all(
                _int_typed(m[1], st)
                for stmt, _ in walk
                if isinstance(stmt, ast.Assign)
                and isinstance(stmt.target, ast.VarRef)
                and stmt.target.name.upper() == name
                for m in [_red_match(stmt.value, name)] if m is not None)
        elif ok:
            ok = tname in ("INTEGER", "REAL", "DOUBLEPRECISION")
        if ok:
            reductions.append(RedPlan(name, cx.slot(name), kind, tname))
        else:
            written.add(name)

    # Writes to COMMON scalars would race through the shared globals
    # dict; the serial path handles them, so just never fork.
    if blocked is None:
        for name in written:
            sym = st.get(name)
            if sym is not None and sym.storage == "common":
                blocked = f"writes COMMON scalar {name}"
                break

    for name in written | inner_vars:
        cx.slot(name)

    plan.blocked = blocked
    plan.written = frozenset(written)
    plan.inner_vars = frozenset(inner_vars)
    plan.callees = frozenset(callees)
    plan.reductions = tuple(
        sorted(reductions, key=lambda r: r.name))
    return plan


# --------------------------------------------------------------------------
# Transitive callee summaries (per-run; program units may call anything)
# --------------------------------------------------------------------------

class _UnitSummary:
    __slots__ = ("blocked", "has_assert", "callees", "common_arrays")

    def __init__(self):
        self.blocked: str | None = None
        self.has_assert = False
        self.callees: set = set()
        self.common_arrays: set = set()


def _summarize_unit(uir) -> _UnitSummary:
    sm = _UnitSummary()
    st = uir.symtab
    labels = set()
    targets = set()
    for stmt, _ in ast.walk_stmts(uir.unit.body):
        if stmt.label is not None:
            labels.add(stmt.label)
        if isinstance(stmt, ast.DoLoop) and stmt.term_label is not None:
            labels.add(stmt.term_label)
        if isinstance(stmt, ast.ReadStmt):
            sm.blocked = sm.blocked or "READ"
        elif isinstance(stmt, ast.Stop):
            # STOP ends the whole program mid-loop: the serial engines
            # stop at the first offending iteration, a worker cannot
            sm.blocked = sm.blocked or "STOP"
        elif isinstance(stmt, ast.AssertStmt):
            sm.has_assert = True
        elif isinstance(stmt, ast.Goto):
            targets.add(stmt.target)
        elif isinstance(stmt, ast.ComputedGoto):
            targets.update(stmt.targets)
        elif isinstance(stmt, ast.ArithIf):
            targets.update((stmt.neg_label, stmt.zero_label,
                            stmt.pos_label))
        elif isinstance(stmt, ast.CallStmt):
            sm.callees.add(stmt.name.upper())
        if isinstance(stmt, ast.Assign) and isinstance(
                stmt.target, ast.VarRef):
            sym = st.get(stmt.target.name)
            if sym is not None and sym.storage == "common" \
                    and not sym.is_array:
                sm.blocked = sm.blocked or \
                    f"writes COMMON scalar {sym.name}"
        for e in _stmt_read_exprs(stmt):
            for node in ast.walk_expr(e):
                if isinstance(node, ast.FuncRef) and not node.intrinsic:
                    sm.callees.add(node.name.upper())
                elif isinstance(node, ast.NameRef):
                    nsym = st.get(node.name)
                    if nsym is None or not nsym.is_array:
                        sm.callees.add(node.name.upper())
    if sm.blocked is None and targets - labels:
        sm.blocked = "cross-unit jump"
    for sym in st.symbols.values():
        if sym.is_array and sym.storage == "common":
            sm.common_arrays.add(sym.name)
    return sm


# --------------------------------------------------------------------------
# Worker-side minimal interpreter state (clone of CompiledInterpreter's
# runtime surface; the compiled closures only touch these attributes)
# --------------------------------------------------------------------------

class _WorkerRT:
    __slots__ = ("program", "inputs", "_input_pos", "outputs",
                 "max_steps", "steps", "clock", "check_assertions",
                 "assertion_checker", "_globals", "_global_arrays",
                 "_lk", "_prof", "_unit_time", "_unit_calls", "_runtime",
                 "_par_stats")

    def __init__(self, program, globals_, global_arrays, max_steps,
                 lk_map):
        self.program = program
        self.inputs = []
        self._input_pos = 0
        self.outputs = []
        self.max_steps = max_steps
        self.steps = 0
        self.clock = 0.0
        self.check_assertions = False
        self.assertion_checker = None
        self._globals = globals_
        self._global_arrays = global_arrays
        self._lk = lk_map
        self._prof = {}
        self._unit_time = {}
        self._unit_calls = {}
        self._runtime = None          # nested PARALLEL DO simulates
        self._par_stats = {}

    def _linked(self, name):
        return self._lk.get(name)


class _ChunkRec:
    """Per-chunk results, merged at the join in chunk (iteration) order."""

    __slots__ = ("ci", "steps", "clock", "max_iter", "outputs",
                 "partials", "finals", "fault")

    def __init__(self, ci, steps, clock, max_iter, outputs, partials,
                 finals, fault):
        self.ci = ci
        self.steps = steps
        self.clock = clock
        self.max_iter = max_iter
        self.outputs = outputs
        self.partials = partials
        self.finals = finals
        self.fault = fault


class _Claim:
    """Thread-safe chunk claim queue (the dynamic schedule)."""

    __slots__ = ("_it", "_lock")

    def __init__(self, chunks):
        self._it = iter(chunks)
        self._lock = threading.Lock()

    def __iter__(self):
        return self

    def __next__(self):
        with self._lock:
            return next(self._it)


def _red_init(red: RedPlan, s0):
    if red.kind == "sum":
        return 0
    if red.kind == "prod":
        return 1
    return s0                      # max/min partials seed from s0


def _red_combine(red: RedPlan, acc, partial):
    if red.kind == "sum":
        return acc + partial
    if red.kind == "prod":
        return acc * partial
    if red.kind == "max":
        return max(acc, partial)
    return min(acc, partial)


def _coerce_store(v, tname):
    """The scalar-store coercion of ``compile._comp_store``, applied to
    merged values at the join."""
    if isinstance(v, np.generic):
        v = v.item()
    if tname == "INTEGER" and isinstance(v, float):
        return int(v)
    if tname in ("REAL", "DOUBLEPRECISION") and isinstance(v, int):
        return float(v)
    return v


def _run_chunks(wrt, lk, plan, state, regs0, arrs, start, step, chunks):
    """Execute a sequence of chunks on one worker interpreter.

    Every chunk gets a fresh register file (privates/inner vars unset,
    reduction slots at their identity) so the join can merge per-chunk
    finals; the profile accumulators are worker-level (exact arithmetic
    makes their merge order irrelevant).
    """
    eng = _engine()
    unset = eng._UNSET
    code = lk.code
    acc = wrt._prof.get(lk)
    if acc is None:
        acc = ([0] * code.n_stmts, [0] * code.n_loops,
               [0.0] * code.n_loops, bytearray(code.n_loops),
               bytearray(code.n_loops))
        wrt._prof[lk] = acc
    body = plan.body
    vslot = plan.vslot
    term = plan.term
    line = plan.line
    unset_slots = state["unset_slots"]
    reds = state["reds"]
    red_inits = state["red_inits"]
    out = []
    for ci, off, n in chunks:
        regs = list(regs0)
        for sl in unset_slots:
            regs[sl] = unset
        for red, init in zip(reds, red_inits):
            regs[red.slot] = init
        fr = eng._Frame(wrt, regs, arrs, lk, acc[0], acc[1], acc[2],
                        acc[3], acc[4])
        out_mark = len(wrt.outputs)
        steps0 = wrt.steps
        clock0 = wrt.clock
        max_iter = 0.0
        v = start + off * step
        fault = None
        try:
            for _ in range(n):
                it0 = wrt.clock
                regs[vslot] = v
                sig = body(fr)
                if sig is not None and \
                        not (type(sig) is int and sig == term):
                    raise parallel_jump_fault(line)
                d = wrt.clock - it0
                if d > max_iter:
                    max_iter = d
                v = v + step
        except Exception as e:
            fault = e
        out.append(_ChunkRec(
            ci, wrt.steps - steps0, wrt.clock - clock0, max_iter,
            wrt.outputs[out_mark:],
            [regs[r.slot] for r in reds],
            [regs[sl] for sl in unset_slots], fault))
        if fault is not None:
            break                  # this worker stops; others drain
    return out


# --------------------------------------------------------------------------
# The runtime
# --------------------------------------------------------------------------

class ParallelRuntime:
    """Per-interpreter fork-join executor (the pool itself is shared
    process-wide; see ``perf.pool.shared_executor``)."""

    def __init__(self, workers: int, schedule: str | None = None,
                 pool_kind: str | None = None):
        self.workers = int(workers)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.schedule = resolve_schedule(schedule)
        self.pool_kind = resolve_pool_kind(pool_kind)
        #: (id(lk), lidx, checker?) -> execution state dict | None
        self._state: dict = {}
        #: unit name -> _UnitSummary | None (missing unit)
        self._summaries: dict = {}
        #: id(program) -> {name: LinkedUnit} full pre-link map
        self._lk_maps: dict = {}

    # -- eligibility -------------------------------------------------------

    def _summary(self, rt, name):
        sm = self._summaries.get(name, _NOT_CACHED)
        if sm is _NOT_CACHED:
            uir = rt.program.units.get(name)
            sm = _summarize_unit(uir) if uir is not None else None
            self._summaries[name] = sm
        return sm

    def _exec_state(self, rt, plan, lk, lidx):
        """Eligibility verdict + precomputed merge/reduction slots for
        one (loop, link) pair; None means "always simulate"."""
        key = (id(lk), lidx, rt.assertion_checker is not None)
        st = self._state.get(key, _NOT_CACHED)
        if st is not _NOT_CACHED:
            return st
        st = self._compute_state(rt, plan, lk, lidx)
        self._state[key] = st
        return st

    def _compute_state(self, rt, plan, lk, lidx):
        if plan.blocked is not None:
            return None
        if plan.has_assert and rt.assertion_checker is not None:
            return None
        privates = lk.loop_privates[lidx] if lidx < len(
            lk.loop_privates) else frozenset()
        red_names = {r.name for r in plan.reductions}
        merge_names = (plan.written | plan.inner_vars) \
            - red_names - {plan.var}
        # every written scalar must be private, an inner DO variable, a
        # recognized reduction, or the loop variable itself
        if not merge_names <= (privates | plan.inner_vars):
            return None
        # transitive callee closure: no READ/COMMON-scalar-write/assert
        common_arrays: set = set()
        seen = set()
        stack = list(plan.callees)
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            sm = self._summary(rt, name)
            if sm is None or sm.blocked is not None:
                return None
            if sm.has_assert and rt.assertion_checker is not None:
                return None
            common_arrays |= sm.common_arrays
            stack.extend(sm.callees)
        code = lk.code
        reg = code.reg_index
        return {
            "unset_slots": tuple(sorted(reg[n] for n in merge_names)),
            "reds": plan.reductions,
            "common_arrays": frozenset(common_arrays),
        }

    def _lk_map(self, rt):
        """Pre-link every unit of the program in the parent so workers
        never touch the (unsynchronized) compile cache."""
        m = self._lk_maps.get(id(rt.program))
        if m is None:
            eng = _engine()
            m = {name: eng.linked_unit(uir)
                 for name, uir in rt.program.units.items()}
            self._lk_maps[id(rt.program)] = m
        return m

    # -- entry point from the compiled PARALLEL DO op ----------------------

    def try_execute(self, fr, plan, lidx, start, step, trips) -> bool:
        """Execute the loop for real; False = caller runs the serial
        simulation (the byte-identical fallback)."""
        rt = fr.rt
        if type(start) is not int or type(step) is not int:
            perf_counters.bump("par_fallbacks")
            return False
        state = self._exec_state(rt, plan, fr.lk, lidx)
        if state is None:
            perf_counters.bump("par_fallbacks")
            return False
        regs = fr.regs
        eng = _engine()
        unset = eng._UNSET
        red_inits = []
        for red in state["reds"]:
            s0 = regs[red.slot]
            bad = s0 is unset or isinstance(s0, bool) or (
                red.kind in ("sum", "prod") and type(s0) is not int) or (
                red.kind in ("max", "min")
                and not isinstance(s0, (int, float)))
            if bad:
                perf_counters.bump("par_fallbacks")
                return False
            red_inits.append(_red_init(red, s0))
        # COMMON arrays a callee might lazily allocate must already
        # exist (allocation inside a worker would be chunk-local)
        for name in state["common_arrays"]:
            if name not in rt._global_arrays:
                perf_counters.bump("par_fallbacks")
                return False
        self._execute(fr, plan, lidx, state, red_inits, start, step,
                      trips)
        return True

    def _execute(self, fr, plan, lidx, state, red_inits, start, step,
                 trips):
        rt = fr.rt
        t_wall = time.perf_counter()
        chunks = chunk_ranges(trips, self.workers, self.schedule)
        state = dict(state, red_inits=red_inits)
        if self.pool_kind == "process" and self.workers > 1:
            recs = self._run_process(fr, plan, lidx, state, start, step,
                                     chunks)
        else:
            recs = self._run_threads(fr, plan, state, start, step,
                                     chunks)
        self._join(fr, plan, state, start, step, trips, recs)
        uid = fr.lk.loop_uids[lidx]
        stats = rt._par_stats.get(uid)
        if stats is None:
            stats = rt._par_stats[uid] = {
                "entries": 0, "chunks": 0, "iters": 0, "wall": 0.0,
                "virtual_serial": 0.0, "virtual_parallel": 0.0,
                "workers": self.workers, "schedule": self.schedule,
            }
        stats["entries"] += 1
        stats["chunks"] += len(chunks)
        stats["iters"] += trips
        stats["wall"] += time.perf_counter() - t_wall
        stats["virtual_serial"] += sum(r.clock for r in recs)
        stats["virtual_parallel"] += (
            max(r.max_iter for r in recs) + parallel_overhead())
        perf_counters.bump("par_loops")
        perf_counters.bump("par_chunks", len(chunks))

    # -- thread / inline execution -----------------------------------------

    def _run_threads(self, fr, plan, state, start, step, chunks):
        rt = fr.rt
        lk = fr.lk
        lk_map = self._lk_map(rt)
        regs0 = list(fr.regs)
        arrs = fr.arrs

        def worker(chunk_iter):
            wrt = _WorkerRT(rt.program, rt._globals, rt._global_arrays,
                            rt.max_steps, lk_map)
            recs = _run_chunks(wrt, lk, plan, state, regs0, arrs, start,
                               step, chunk_iter)
            return recs, wrt

        n_workers = min(self.workers, len(chunks))
        if n_workers <= 1:
            recs, wrt = worker(list(chunks))
            self._merge_worker(rt, wrt)
            return recs
        from ..perf.pool import shared_executor
        ex = shared_executor("thread", self.workers)
        if self.schedule == "dynamic":
            claim = _Claim(chunks)
            futures = [ex.submit(worker, claim)
                       for _ in range(n_workers)]
        else:
            futures = [ex.submit(worker, [chunk]) for chunk in chunks]
        recs = []
        for f in futures:
            r, wrt = f.result()
            recs.extend(r)
            self._merge_worker(rt, wrt)
        return recs

    def _merge_worker(self, rt, wrt):
        """Fold a worker's profile accounting into the parent run.

        All quantities are exact (ints and dyadic-rational floats), so
        worker merge order cannot change a single bit.
        """
        for lk2, (cnt, li, lt, lf, ltf) in wrt._prof.items():
            pacc = rt._prof.get(lk2)
            if pacc is None:
                rt._prof[lk2] = (list(cnt), list(li), list(lt),
                                 bytearray(lf), bytearray(ltf))
                continue
            pc, pl, pt, pf, ptf = pacc
            for k, c in enumerate(cnt):
                if c:
                    pc[k] += c
            for k, c in enumerate(li):
                if c:
                    pl[k] += c
            for k, c in enumerate(lt):
                if c:
                    pt[k] += c
            for k in range(len(lf)):
                if lf[k]:
                    pf[k] = 1
                if ltf[k]:
                    ptf[k] = 1
        ut = rt._unit_time
        for name, t in wrt._unit_time.items():
            ut[name] = ut.get(name, 0.0) + t
        uc = rt._unit_calls
        for name, n in wrt._unit_calls.items():
            uc[name] = uc.get(name, 0) + n

    # -- the join ----------------------------------------------------------

    def _join(self, fr, plan, state, start, step, trips, recs):
        rt = fr.rt
        recs = sorted(recs, key=lambda r: r.ci)
        fault = None
        for r in recs:
            if r.fault is not None:
                fault = r.fault
                break
        total_steps = 0
        max_iter = 0.0
        pending: dict = {}
        red_accs = [regs0v for regs0v in
                    (fr.regs[red.slot] for red in state["reds"])]
        eng = _engine()
        unset = eng._UNSET
        for r in recs:
            total_steps += r.steps
            if r.max_iter > max_iter:
                max_iter = r.max_iter
            if r.fault is None:
                rt.outputs.extend(r.outputs)
                for pos, sl in enumerate(state["unset_slots"]):
                    v = r.finals[pos]
                    if v is not unset:
                        pending[sl] = v
                for pos, red in enumerate(state["reds"]):
                    red_accs[pos] = _red_combine(red, red_accs[pos],
                                                 r.partials[pos])
        rt.steps += total_steps
        if fault is not None:
            raise fault
        regs = fr.regs
        for sl, v in pending.items():
            regs[sl] = v
        for pos, red in enumerate(state["reds"]):
            regs[red.slot] = _coerce_store(red_accs[pos], red.type_name)
        regs[plan.vslot] = start + trips * step
        if rt.steps > rt.max_steps:
            raise StepLimitExceeded(
                f"exceeded {rt.max_steps} interpreter steps")
        rt.clock = rt.clock + max_iter + parallel_overhead()

    # -- process-pool execution --------------------------------------------

    def _run_process(self, fr, plan, lidx, state, start, step, chunks):
        from multiprocessing import shared_memory

        rt = fr.rt
        lk = fr.lk
        eng = _engine()
        unset = eng._UNSET
        from ..fortran.printer import print_program
        src = print_program(rt.program.ast)

        # ship every frame/global array through shared memory (dedup by
        # storage identity so COMMON aliases stay aliased)
        shms = []
        descr_of: dict[int, tuple] = {}

        def describe(a: ArrayStorage):
            d = descr_of.get(id(a))
            if d is None:
                data = np.asfortranarray(a.data)
                shm = shared_memory.SharedMemory(create=True,
                                                 size=data.nbytes)
                view = np.ndarray(data.shape, dtype=data.dtype,
                                  buffer=shm.buf, order="F")
                view[...] = data
                shms.append((shm, a))
                d = descr_of[id(a)] = (
                    shm.name, data.shape, a.lowers, data.dtype.str,
                    a.name)
            return d

        arr_descrs = [describe(a) if a is not None else None
                      for a in fr.arrs]
        garr_descrs = {name: describe(a)
                       for name, a in rt._global_arrays.items()}
        regs0 = [(_UNSET_TOKEN if v is unset else v) for v in fr.regs]
        payload_base = {
            "src": src,
            "unit": lk.code.name,
            "lidx": lidx,
            "start": start,
            "step": step,
            "regs0": regs0,
            "globals": dict(rt._globals),
            "arr_descrs": arr_descrs,
            "garr_descrs": garr_descrs,
            "unset_slots": state["unset_slots"],
            "reds": [(r.name, r.kind, r.type_name)
                     for r in state["reds"]],
            "red_inits": [(_UNSET_TOKEN if v is unset else v)
                          for v in state["red_inits"]],
            "max_steps": rt.max_steps,
        }
        from ..perf.pool import shared_executor
        ex = shared_executor("process", self.workers)
        try:
            futures = [ex.submit(_process_chunk, payload_base, chunk)
                       for chunk in chunks]
            results = [f.result() for f in futures]
        finally:
            for shm, a in shms:
                view = np.ndarray(np.asfortranarray(a.data).shape,
                                  dtype=a.data.dtype, buffer=shm.buf,
                                  order="F")
                a.data[...] = view
                shm.close()
                shm.unlink()
        lk_map = self._lk_map(rt)
        recs = []
        for res in results:
            recs.append(_ChunkRec(
                res["ci"], res["steps"], res["clock"], res["max_iter"],
                res["outputs"],
                res["partials"],
                [unset if v == _UNSET_TOKEN else v
                 for v in res["finals"]],
                res["fault"]))
            rt._globals.update(res["globals"])
            for uname, (cnt, li, lt, lf, ltf) in res["prof"].items():
                lk2 = lk_map.get(uname)
                if lk2 is None:
                    continue
                wrt = _WorkerRT(rt.program, {}, {}, rt.max_steps, {})
                wrt._prof[lk2] = (list(cnt), list(li), list(lt),
                                  bytearray(lf), bytearray(ltf))
                wrt._unit_time = {}
                wrt._unit_calls = {}
                self._merge_worker(rt, wrt)
            ut = rt._unit_time
            for name, t in res["unit_time"].items():
                ut[name] = ut.get(name, 0.0) + t
            uc = rt._unit_calls
            for name, n in res["unit_calls"].items():
                uc[name] = uc.get(name, 0) + n
        return recs


_NOT_CACHED = object()


# --------------------------------------------------------------------------
# Process-pool worker side
# --------------------------------------------------------------------------

#: worker-side compile cache: source text -> AnalyzedProgram
_WORKER_PROGRAMS: dict = {}


def _attach_array(descr, held):
    from multiprocessing import shared_memory
    shm_name, shape, lowers, dtype, name = descr
    shm = held.get(shm_name)
    if shm is None:
        shm = held[shm_name] = shared_memory.SharedMemory(name=shm_name)
    view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf,
                      order="F")
    return ArrayStorage(name, view, tuple(lowers))


def _process_chunk(payload, chunk):
    """Execute one chunk in a pool process against shared-memory arrays.

    The worker compiles the shipped source once per process (cached by
    text); dense slot/loop index spaces are structural, so they match
    the parent's exactly.
    """
    eng = _engine()
    unset = eng._UNSET
    src = payload["src"]
    program = _WORKER_PROGRAMS.get(src)
    if program is None:
        from ..ir import AnalyzedProgram
        program = _WORKER_PROGRAMS[src] = \
            AnalyzedProgram.from_source(src)
    lk_map = {name: eng.linked_unit(uir)
              for name, uir in program.units.items()}
    lk = lk_map[payload["unit"]]
    plan = lk.code.par_plans[payload["lidx"]]

    held: dict = {}
    try:
        garrs = {name: _attach_array(d, held)
                 for name, d in payload["garr_descrs"].items()}
        arrs = [(_attach_array(d, held) if d is not None else None)
                for d in payload["arr_descrs"]]
        regs0 = [(unset if v == _UNSET_TOKEN else v)
                 for v in payload["regs0"]]
        reds = tuple(RedPlan(name, lk.code.reg_index[name], kind, tname)
                     for name, kind, tname in payload["reds"])
        state = {
            "unset_slots": tuple(payload["unset_slots"]),
            "reds": reds,
            "red_inits": [(unset if v == _UNSET_TOKEN else v)
                          for v in payload["red_inits"]],
        }
        wrt = _WorkerRT(program, dict(payload["globals"]), garrs,
                        payload["max_steps"], lk_map)
        recs = _run_chunks(wrt, lk, plan, state, regs0, arrs,
                           payload["start"], payload["step"], [chunk])
        r = recs[0]
        prof = {}
        for lk2, (cnt, li, lt, lf, ltf) in wrt._prof.items():
            prof[lk2.code.name] = (list(cnt), list(li), list(lt),
                                   bytes(lf), bytes(ltf))
        return {
            "ci": r.ci,
            "steps": r.steps,
            "clock": r.clock,
            "max_iter": r.max_iter,
            "outputs": r.outputs,
            "partials": r.partials,
            "finals": [(_UNSET_TOKEN if v is unset else v)
                       for v in r.finals],
            "fault": r.fault,
            "globals": wrt._globals,
            "prof": prof,
            "unit_time": wrt._unit_time,
            "unit_calls": wrt._unit_calls,
        }
    finally:
        # Close only: the attach-side auto-registration collapses into
        # the parent's entry in the shared resource tracker, and the
        # parent unlinks (and thereby unregisters) after the join.
        for shm in held.values():
            try:
                shm.close()
            except Exception:
                pass
