"""Shadow access-logging execution for dynamic race detection.

:class:`ShadowInterpreter` subclasses the reference tree-walking
:class:`~repro.interp.machine.Interpreter` and records, for every
PARALLEL DO it executes, the per-iteration read/write *cell* sets —
concrete storage locations, byte-addressed for arrays so COMMON
aliasing, argument association and array-element actuals all resolve to
the same cell no matter which name a unit uses.  The logs cross-validate
the static race detector (:mod:`repro.lint`): a loop the linter passes
must show no cross-iteration conflicts here, and a seeded race must be
observable as one.

What counts as a dynamic race mirrors the semantics the fork-join
runtime actually provides (:mod:`repro.interp.runtime`):

* a cross-iteration *flow/anti* conflict — one iteration writes a cell
  another iteration reads before writing it itself (an *exposed* read)
  — is always a race: the read's value depends on iteration order;
* a *write-write* conflict is a race only when some later read observes
  one of the conflicted cells before it is overwritten.  Output
  dependences on storage that is dead after the loop (arc3d's ZCOL,
  wholly rewritten by every iteration and never read again) are benign:
  the runtime lets workers race on them precisely because no observable
  value survives.

Scalars private to the loop, inner DO variables, the loop variable and
recognized reduction scalars are excluded (they are replicated or
combined by the runtime); :func:`dynamic_races` can re-include
reductions to confirm that a mis-recognized REAL reduction really does
carry a cross-iteration recurrence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fortran import ast
from .machine import Interpreter, _Jump, _norm_int, parallel_jump_fault, \
    parallel_overhead, ArrayStorage, Frame, _ScalarRef
from .runtime import _red_match, _stmt_read_exprs, chunk_ranges

__all__ = [
    "ShadowInterpreter", "ShadowLoopLog", "DynamicRace",
    "dynamic_races", "races_under", "run_shadow", "log_for",
]


# --------------------------------------------------------------------------
# Logs
# --------------------------------------------------------------------------

@dataclass
class ShadowLoopLog:
    """Per-iteration access sets of one PARALLEL DO execution."""

    unit: str
    line: int
    uid: int
    var: str
    trips: int
    private: frozenset
    inner_vars: frozenset
    reduction_names: frozenset
    #: one (written cells, exposed-read cells) pair per iteration
    iters: list = field(default_factory=list)
    #: cell -> (kind, variable name, display text)
    cellinfo: dict = field(default_factory=dict)
    #: private scalars whose loop-exit value was read afterwards
    liveout_reads: set = field(default_factory=set)
    #: write-write conflicted cells later observed by a read
    observed_ww: set = field(default_factory=set)

    def name_of(self, cell) -> str:
        return self.cellinfo.get(cell, ("?", "?", "?"))[1]

    def display_of(self, cell) -> str:
        return self.cellinfo.get(cell, ("?", "?", "?"))[2]


@dataclass(frozen=True)
class DynamicRace:
    """One observed cross-iteration conflict."""

    kind: str          # "write-write" | "read-write" | "privatization"
    var: str
    display: str       # representative cell, e.g. "F(5)"
    iterations: tuple  # two distinct iteration numbers that conflicted
                       # (empty for privatization live-out violations)

    def describe(self) -> str:
        if self.kind == "privatization":
            return (f"privatized scalar {self.var} was read after the "
                    f"loop (worker-private last value is lost)")
        a, b = self.iterations
        return (f"{self.kind} race on {self.display} between iterations "
                f"{a} and {b}")


# --------------------------------------------------------------------------
# Reduction recognition (runtime shape, no type gate)
# --------------------------------------------------------------------------

def _recognized_reductions(s: ast.DoLoop) -> frozenset:
    """Scalar names the runtime's reduction recognizer would accept,
    *without* the integer-exactness gate: the shadow must also exclude
    REAL sums, whose recurrence RACE003 reports statically and whose
    dynamic conflict :func:`dynamic_races` can re-include on demand."""
    written: set[str] = set()
    inner: set[str] = set()
    red_occ: dict[str, list] = {}
    var_reads: dict[str, int] = {}
    self_reads: dict[str, int] = {}
    for stmt, _ in ast.walk_stmts(s.body):
        if isinstance(stmt, ast.DoLoop):
            inner.add(stmt.var.upper())
        if isinstance(stmt, ast.CallStmt):
            for a in stmt.args:
                if isinstance(a, ast.VarRef):
                    written.add(a.name.upper())
        if isinstance(stmt, ast.Assign) and isinstance(
                stmt.target, ast.VarRef):
            name = stmt.target.name.upper()
            m = _red_match(stmt.value, name)
            if m is not None and name not in {
                    v.upper() for v in ast.variables_in(m[1])}:
                red_occ.setdefault(name, []).append(m[0])
                self_reads[name] = self_reads.get(name, 0) + 1
            else:
                written.add(name)
        for e in _stmt_read_exprs(stmt):
            for node in ast.walk_expr(e):
                if isinstance(node, ast.VarRef):
                    n = node.name.upper()
                    var_reads[n] = var_reads.get(n, 0) + 1
                elif isinstance(node, ast.FuncRef) and not node.intrinsic:
                    for a in node.args:
                        if isinstance(a, ast.VarRef):
                            written.add(a.name.upper())
    out = set()
    for name, kinds in red_occ.items():
        if (len(set(kinds)) == 1 and name != s.var.upper()
                and name not in inner and name not in written
                and var_reads.get(name, 0) == self_reads.get(name, 0)):
            out.add(name)
    return frozenset(out)


# --------------------------------------------------------------------------
# Per-loop record
# --------------------------------------------------------------------------

class _LoopRecord:
    __slots__ = ("loop", "frame", "log", "cur_writes", "cur_exposed",
                 "writers", "exposed_by", "active")

    def __init__(self, s: ast.DoLoop, frame: Frame, trips: int):
        self.loop = s
        self.frame = frame
        inner = frozenset(t.var.upper() for t, _ in ast.walk_stmts(s.body)
                          if isinstance(t, ast.DoLoop))
        self.log = ShadowLoopLog(
            unit=frame.unit_name, line=s.line, uid=s.uid,
            var=s.var.upper(), trips=trips,
            private=frozenset(n.upper() for n in s.private_vars),
            inner_vars=inner,
            reduction_names=_recognized_reductions(s))
        self.cur_writes: set = set()
        self.cur_exposed: set = set()
        #: cell -> list of iterations that wrote it (for pending WW)
        self.writers: dict = {}
        self.exposed_by: dict = {}
        self.active = False

    def begin_iteration(self) -> None:
        if self.active:
            self._commit()
        self.active = True
        self.cur_writes = set()
        self.cur_exposed = set()

    def _commit(self) -> None:
        it = len(self.log.iters)
        self.log.iters.append((frozenset(self.cur_writes),
                               frozenset(self.cur_exposed)))
        for c in self.cur_writes:
            self.writers.setdefault(c, []).append(it)
        for c in self.cur_exposed:
            self.exposed_by.setdefault(c, []).append(it)

    def note(self, cell, write: bool, kind: str, name: str,
             display: str) -> None:
        if kind == "local" and cell[1] != id(self.frame):
            return  # another frame's local: fresh per call, private
        if cell not in self.log.cellinfo:
            self.log.cellinfo[cell] = (kind, name, display)
        if write:
            self.cur_writes.add(cell)
        elif cell not in self.cur_writes:
            self.cur_exposed.add(cell)

    def finish(self) -> ShadowLoopLog:
        if self.active:
            self._commit()
            self.active = False
        return self.log


class _LoggedScalarRef(_ScalarRef):
    """Scalar-argument reference that reports its accesses."""

    def __init__(self, shadow: "ShadowInterpreter", frame: Frame,
                 name: str):
        super().__init__(frame, name)
        self.shadow = shadow

    def get(self):
        self.shadow._note_scalar(self.name, self.frame, write=False)
        return super().get()

    def set(self, value) -> None:
        self.shadow._note_scalar(self.name, self.frame, write=True)
        super().set(value)


# --------------------------------------------------------------------------
# The interpreter
# --------------------------------------------------------------------------

class ShadowInterpreter(Interpreter):
    """Reference interpreter + per-iteration access logging.

    Observable state (outputs, storage, virtual clock) is byte-identical
    to the base interpreter: logging only reads addresses, and array
    reads/writes go through the same bounds-checked accessors.
    """

    def __init__(self, program, inputs=(), **kw):
        super().__init__(program, inputs, **kw)
        self.access_log: list[ShadowLoopLog] = []
        self._stack: list[_LoopRecord] = []
        #: cell -> log: private-scalar cells whose loop value escaping
        #: the loop would be a privatization violation if read
        self._pending_liveout: dict = {}
        #: cell -> log: write-write conflicted cells awaiting a reader
        self._pending_ww: dict = {}
        #: strong refs to every logged buffer so addresses stay unique
        self._keepalive: dict = {}

    # -- cell identity -----------------------------------------------------

    def _array_cell(self, arr: ArrayStorage, subs: tuple) -> int:
        idx = arr.index(subs)
        data = arr.data
        base = data.__array_interface__["data"][0]
        addr = base + sum(i * st for i, st in zip(idx, data.strides))
        ka = self._keepalive
        if id(data) not in ka:
            ka[id(data)] = data
            if data.base is not None:
                ka[id(data.base)] = data.base
        return addr

    def _scalar_cell(self, name: str, frame: Frame):
        sym = frame.symtab.get(name)
        if sym is not None and sym.storage == "common":
            return ("common", name)
        return ("local", id(frame), name)

    # -- logging core ------------------------------------------------------

    def _touch(self, cell, write: bool, kind: str, name: str,
               display: str) -> None:
        if write:
            self._pending_liveout.pop(cell, None)
            self._pending_ww.pop(cell, None)
        else:
            hit = self._pending_liveout.pop(cell, None)
            if hit is not None:
                hit.liveout_reads.add(name)
            hit = self._pending_ww.pop(cell, None)
            if hit is not None:
                hit.observed_ww.add(cell)
        for rec in self._stack:
            rec.note(cell, write, kind, name, display)

    def _note_scalar(self, name: str, frame: Frame, write: bool) -> None:
        if not self._stack and not self._pending_liveout \
                and not self._pending_ww:
            return
        cell = self._scalar_cell(name, frame)
        kind = cell[0]
        self._touch(cell, write, kind, name, name)

    def _note_array(self, arr: ArrayStorage, subs: tuple,
                    write: bool) -> None:
        if not self._stack and not self._pending_ww:
            return
        cell = self._array_cell(arr, subs)
        display = f"{arr.name}({', '.join(str(s) for s in subs)})"
        self._touch(cell, write, "array", arr.name, display)

    def _kill_scalar_pending(self, name: str, frame: Frame) -> None:
        if self._pending_liveout or self._pending_ww:
            cell = self._scalar_cell(name, frame)
            self._pending_liveout.pop(cell, None)
            self._pending_ww.pop(cell, None)

    def _register_pending(self, rec: _LoopRecord) -> None:
        log = rec.log
        excluded = {log.var} | set(log.inner_vars)
        for cell, its in rec.writers.items():
            kind, name, _ = log.cellinfo[cell]
            if name in excluded:
                continue
            if kind != "array" and name in log.private:
                # value of a privatized scalar escaping the loop
                self._pending_liveout[cell] = log
            elif len(its) >= 2 and name not in log.reduction_names:
                self._pending_ww[cell] = log

    # -- interpreter overrides ---------------------------------------------

    def _exec_do(self, s: ast.DoLoop, frame: Frame) -> None:
        # the DO variable is assigned directly, bypassing _store
        self._kill_scalar_pending(s.var, frame)
        super()._exec_do(s, frame)

    def _exec_parallel_do(self, s: ast.DoLoop, frame: Frame, start, step,
                          trips: int) -> None:
        rec = _LoopRecord(s, frame, trips)
        self._stack.append(rec)
        t0 = self.clock
        max_iter = 0.0
        v = start
        try:
            for _ in range(trips):
                rec.begin_iteration()
                it_start = self.clock
                frame.scalars[s.var] = _norm_int(v)
                try:
                    self._exec_block(s.body, frame)
                except _Jump as j:
                    if j.label != s.term_label:
                        raise parallel_jump_fault(s.line)
                max_iter = max(max_iter, self.clock - it_start)
                v = v + step
            frame.scalars[s.var] = _norm_int(v)
            self.clock = t0 + max_iter + (parallel_overhead() if trips
                                          else 0.0)
        finally:
            self._stack.pop()
            log = rec.finish()
            self.access_log.append(log)
            self._register_pending(rec)

    def _eval_in(self, e: ast.Expr, frame: Frame):
        if isinstance(e, ast.VarRef):
            if e.name in frame.scalars:
                self._note_scalar(e.name, frame, write=False)
            return super()._eval_in(e, frame)
        if isinstance(e, (ast.ArrayRef, ast.NameRef)) \
                and e.name in frame.arrays:
            arr = frame.arrays[e.name]
            subs = tuple(int(self._eval_in(x, frame))
                         for x in e.children())
            self._note_array(arr, subs, write=False)
            return arr.get(subs)
        return super()._eval_in(e, frame)

    def _store(self, target: ast.Expr, value, frame: Frame) -> None:
        if isinstance(target, ast.VarRef):
            self._note_scalar(target.name, frame, write=True)
            return super()._store(target, value, frame)
        if isinstance(target, (ast.ArrayRef, ast.NameRef)) \
                and target.name in frame.arrays:
            arr = frame.arrays[target.name]
            subs = tuple(int(self._eval_in(x, frame))
                         for x in target.children())
            self._note_array(arr, subs, write=True)
            arr.set(subs, value)
            return
        return super()._store(target, value, frame)

    def _make_actual(self, a: ast.Expr, frame: Frame):
        if isinstance(a, ast.VarRef) and a.name not in frame.arrays:
            # scalar passed by reference: the callee's binding read and
            # copy-back write bypass _eval_in/_store
            return _LoggedScalarRef(self, frame, a.name)
        return super()._make_actual(a, frame)


# --------------------------------------------------------------------------
# Race derivation
# --------------------------------------------------------------------------

def dynamic_races(log: ShadowLoopLog, include_reductions: bool = False,
                  require_observed_ww: bool = True) -> list[DynamicRace]:
    """Cross-iteration conflicts of one logged PARALLEL DO.

    ``include_reductions=True`` also reports conflicts on recognized
    reduction scalars (to demonstrate the recurrence a mis-classified
    REAL reduction carries).  ``require_observed_ww=False`` reports every
    write-write conflict even when no later read observed the cell.
    """
    excluded = {log.var} | set(log.private) | set(log.inner_vars)
    if not include_reductions:
        excluded |= set(log.reduction_names)

    writers: dict = {}
    exposed: dict = {}
    for it, (w, r) in enumerate(log.iters):
        for c in w:
            writers.setdefault(c, []).append(it)
        for c in r:
            exposed.setdefault(c, []).append(it)

    out: list[DynamicRace] = []
    seen: set = set()

    def emit(kind: str, cell, a: int, b: int) -> None:
        name = log.name_of(cell)
        key = (kind, name)
        if key not in seen:
            seen.add(key)
            out.append(DynamicRace(kind, name, log.display_of(cell),
                                   (a, b)))

    for cell, its in sorted(writers.items(), key=lambda kv: str(kv[0])):
        name = log.name_of(cell)
        if name in excluded:
            continue
        cross = [(w, r) for w in its for r in exposed.get(cell, ())
                 if w != r]
        if cross:
            emit("read-write", cell, *cross[0])
        if len(its) >= 2 and (not require_observed_ww
                              or cell in log.observed_ww):
            emit("write-write", cell, its[0], its[1])

    # privatized scalars whose value was read after the loop: a worker
    # pool discards private copies, so the post-loop read is unsound for
    # any worker count (reported independently of chunking)
    for name in sorted(log.liveout_reads):
        key = ("privatization", name)
        if key not in seen:
            seen.add(key)
            out.append(DynamicRace("privatization", name, name, ()))
    return out


def races_under(log: ShadowLoopLog, workers: int, schedule: str,
                include_reductions: bool = False) -> list[DynamicRace]:
    """Conflicts that cross chunk boundaries under a concrete schedule.

    Iteration-to-chunk assignment is deterministic (chunk boundaries come
    from :func:`~repro.interp.runtime.chunk_ranges`; only chunk-to-worker
    claiming varies at run time), so this is the exact set of conflicts
    the fork-join runtime could expose with that worker count.
    """
    if log.trips <= 0:
        return []
    chunk_of: dict[int, int] = {}
    for index, offset, count in chunk_ranges(log.trips, workers, schedule):
        for k in range(offset, offset + count):
            chunk_of[k] = index
    races = dynamic_races(log, include_reductions=include_reductions)
    out = []
    for r in races:
        if r.kind == "privatization":
            out.append(r)   # worker-count independent
            continue
        a, b = r.iterations
        if chunk_of.get(a) != chunk_of.get(b):
            out.append(r)
            continue
        # the representative pair may share a chunk while another pair
        # does not; re-derive against the full log for this variable
        if _any_cross_chunk(log, r, chunk_of, include_reductions):
            out.append(r)
    return out


def _any_cross_chunk(log: ShadowLoopLog, race: DynamicRace,
                     chunk_of: dict, include_reductions: bool) -> bool:
    writers: dict = {}
    exposed: dict = {}
    for it, (w, r) in enumerate(log.iters):
        for c in w:
            if log.name_of(c) == race.var:
                writers.setdefault(c, []).append(it)
        for c in r:
            if log.name_of(c) == race.var:
                exposed.setdefault(c, []).append(it)
    for cell, its in writers.items():
        if race.kind == "write-write":
            if len({chunk_of.get(i) for i in its}) > 1 \
                    and (cell in log.observed_ww):
                return True
        else:
            for w in its:
                for r in exposed.get(cell, ()):
                    if w != r and chunk_of.get(w) != chunk_of.get(r):
                        return True
    return False


def run_shadow(program, inputs=(), **kw) -> ShadowInterpreter:
    """Execute ``program`` under the shadow interpreter and return it
    (with ``access_log`` populated)."""
    interp = ShadowInterpreter(program, inputs, **kw)
    interp.run()
    return interp


def log_for(interp: ShadowInterpreter, unit: str,
            line: int) -> ShadowLoopLog | None:
    """The first logged execution of the PARALLEL DO at ``unit:line``
    (the relative debugger's hook into the access log), or None when
    that loop never executed."""
    unit = unit.upper()
    for log in interp.access_log:
        if log.unit == unit and log.line == line:
            return log
    return None
