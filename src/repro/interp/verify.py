"""Run-and-compare helpers: transformation verification and parallel
speedup simulation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fortran import parse_program
from ..ir.program import AnalyzedProgram
from .machine import Interpreter, Profile


def run_program(source_or_program, inputs=None, max_steps: int = 5_000_000,
                assertion_checker=None) -> Interpreter:
    """Parse (if needed) and execute; returns the finished interpreter."""
    if isinstance(source_or_program, str):
        program = AnalyzedProgram(parse_program(source_or_program))
    else:
        program = source_or_program
    interp = Interpreter(program, inputs=inputs, max_steps=max_steps,
                         assertion_checker=assertion_checker)
    interp.run()
    return interp


def compare_runs(a: Interpreter, b: Interpreter,
                 rtol: float = 1e-9) -> list[str]:
    """Differences in observable state between two finished runs."""
    diffs: list[str] = []
    sa, sb = a.snapshot(), b.snapshot()
    keys = sorted(set(sa) | set(sb))
    for k in keys:
        va, vb = sa.get(k), sb.get(k)
        if va is None or vb is None:
            diffs.append(f"{k}: present in only one run")
            continue
        if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            if not np.allclose(va, vb, rtol=rtol, equal_nan=True):
                diffs.append(f"{k}: arrays differ")
            continue
        if isinstance(va, list):
            if len(va) != len(vb):
                diffs.append(f"{k}: output lengths differ "
                             f"({len(va)} vs {len(vb)})")
                continue
            for i, (x, y) in enumerate(zip(va, vb)):
                if isinstance(x, float) or isinstance(y, float):
                    if not np.isclose(x, y, rtol=rtol):
                        diffs.append(f"{k}[{i}]: {x} != {y}")
                elif x != y:
                    diffs.append(f"{k}[{i}]: {x} != {y}")
            continue
        if va != vb:
            diffs.append(f"{k}: {va} != {vb}")
    return diffs


def verify_equivalence(original: str, transformed: str,
                       inputs=None, rtol: float = 1e-9) -> list[str]:
    """Run both sources on the same inputs; return observable diffs
    (empty list = equivalent on this input)."""
    ra = run_program(original, inputs=list(inputs or []))
    rb = run_program(transformed, inputs=list(inputs or []))
    return compare_runs(ra, rb, rtol=rtol)


@dataclass
class ParallelTiming:
    sequential_time: float
    parallel_time: float

    @property
    def speedup(self) -> float:
        if self.parallel_time <= 0:
            return float("inf")
        return self.sequential_time / self.parallel_time


def simulate_speedup(sequential_source: str, parallel_source: str,
                     inputs=None) -> ParallelTiming:
    """Virtual-clock comparison of a program before/after parallelization.

    The interpreter's fork-join model charges a PARALLEL DO the maximum
    iteration time plus a fixed overhead, so the ratio reflects exposed
    granularity rather than real hardware."""
    ra = run_program(sequential_source, inputs=list(inputs or []))
    rb = run_program(parallel_source, inputs=list(inputs or []))
    diffs = compare_runs(ra, rb)
    if diffs:
        raise AssertionError(
            "parallel version changes results: " + "; ".join(diffs[:5]))
    return ParallelTiming(sequential_time=ra.clock, parallel_time=rb.clock)
