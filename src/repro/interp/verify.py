"""Run-and-compare helpers: transformation verification and parallel
speedup simulation.

Two execution engines sit behind :func:`run_program`:

* ``"compiled"`` (default) -- the closure-compiled engine
  (:mod:`repro.interp.compile`), ~5-9x faster on the corpus; compiled
  units are cached across transform -> verify cycles;
* ``"tree"`` -- the tree-walking reference interpreter
  (:mod:`repro.interp.machine`), kept as the differential-testing
  oracle.

Select per call with ``engine=``, or process-wide with the
``REPRO_EXEC_ENGINE`` environment variable.  Verification re-runs the
same source text repeatedly (original vs. transformed, before vs.
after), so parsed/analyzed programs are memoized in a small LRU keyed
by source text (disable with ``REPRO_EXEC_CACHE=0``).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..fortran import parse_program
from ..ir.program import AnalyzedProgram
from .compile import CompiledInterpreter
from .machine import Interpreter, Profile

#: recognized engine names
ENGINES = ("compiled", "tree")

_PROGRAM_CACHE: "OrderedDict[str, AnalyzedProgram]" = OrderedDict()
_PROGRAM_CACHE_LIMIT = 32
_PROGRAM_CACHE_LOCK = threading.Lock()


def resolve_engine(engine: str | None = None) -> str:
    """Normalize an engine selector (None -> env -> ``"compiled"``)."""
    if engine is None:
        engine = os.environ.get("REPRO_EXEC_ENGINE", "compiled")
    if engine not in ENGINES:
        raise ValueError(
            f"unknown execution engine {engine!r} (expected one of "
            f"{', '.join(ENGINES)})")
    return engine


def make_interpreter(program: AnalyzedProgram, inputs=None,
                     max_steps: int = 5_000_000, assertion_checker=None,
                     engine: str | None = None):
    """Fresh interpreter of the selected engine over an analyzed
    program (not yet run)."""
    cls = CompiledInterpreter if resolve_engine(engine) == "compiled" \
        else Interpreter
    return cls(program, inputs=inputs, max_steps=max_steps,
               assertion_checker=assertion_checker)


def analyzed_program(source_or_program) -> AnalyzedProgram:
    """Analyzed program for a source text (memoized) or pass-through."""
    if not isinstance(source_or_program, str):
        return source_or_program
    if os.environ.get("REPRO_EXEC_CACHE", "1") == "0":
        return AnalyzedProgram(parse_program(source_or_program))
    with _PROGRAM_CACHE_LOCK:
        prog = _PROGRAM_CACHE.get(source_or_program)
        if prog is not None:
            _PROGRAM_CACHE.move_to_end(source_or_program)
            return prog
    prog = AnalyzedProgram(parse_program(source_or_program))
    with _PROGRAM_CACHE_LOCK:
        _PROGRAM_CACHE[source_or_program] = prog
        while len(_PROGRAM_CACHE) > _PROGRAM_CACHE_LIMIT:
            _PROGRAM_CACHE.popitem(last=False)
    return prog


def clear_program_cache() -> None:
    with _PROGRAM_CACHE_LOCK:
        _PROGRAM_CACHE.clear()


def run_program(source_or_program, inputs=None, max_steps: int = 5_000_000,
                assertion_checker=None, engine: str | None = None):
    """Parse (if needed) and execute; returns the finished interpreter."""
    program = analyzed_program(source_or_program)
    interp = make_interpreter(program, inputs=inputs, max_steps=max_steps,
                              assertion_checker=assertion_checker,
                              engine=engine)
    interp.run()
    return interp


def compare_runs(a: Interpreter, b: Interpreter,
                 rtol: float = 1e-9) -> list[str]:
    """Differences in observable state between two finished runs."""
    diffs: list[str] = []
    sa, sb = a.snapshot(), b.snapshot()
    keys = sorted(set(sa) | set(sb))
    for k in keys:
        va, vb = sa.get(k), sb.get(k)
        if va is None or vb is None:
            diffs.append(f"{k}: present in only one run")
            continue
        if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            if not np.allclose(va, vb, rtol=rtol, equal_nan=True):
                diffs.append(f"{k}: arrays differ")
            continue
        if isinstance(va, list):
            if len(va) != len(vb):
                diffs.append(f"{k}: output lengths differ "
                             f"({len(va)} vs {len(vb)})")
                continue
            for i, (x, y) in enumerate(zip(va, vb)):
                if isinstance(x, float) or isinstance(y, float):
                    if not np.isclose(x, y, rtol=rtol):
                        diffs.append(f"{k}[{i}]: {x} != {y}")
                elif x != y:
                    diffs.append(f"{k}[{i}]: {x} != {y}")
            continue
        if va != vb:
            diffs.append(f"{k}: {va} != {vb}")
    return diffs


def verify_equivalence(original: str, transformed: str,
                       inputs=None, rtol: float = 1e-9,
                       engine: str | None = None) -> list[str]:
    """Run both sources on the same inputs; return observable diffs
    (empty list = equivalent on this input)."""
    ra = run_program(original, inputs=list(inputs or []), engine=engine)
    rb = run_program(transformed, inputs=list(inputs or []), engine=engine)
    return compare_runs(ra, rb, rtol=rtol)


@dataclass
class ParallelTiming:
    sequential_time: float
    parallel_time: float

    @property
    def speedup(self) -> float:
        if self.parallel_time <= 0:
            return float("inf")
        return self.sequential_time / self.parallel_time


def simulate_speedup(sequential_source: str, parallel_source: str,
                     inputs=None, engine: str | None = None) -> ParallelTiming:
    """Virtual-clock comparison of a program before/after parallelization.

    The interpreter's fork-join model charges a PARALLEL DO the maximum
    iteration time plus a fixed overhead, so the ratio reflects exposed
    granularity rather than real hardware."""
    ra = run_program(sequential_source, inputs=list(inputs or []),
                     engine=engine)
    rb = run_program(parallel_source, inputs=list(inputs or []),
                     engine=engine)
    diffs = compare_runs(ra, rb)
    if diffs:
        raise AssertionError(
            "parallel version changes results: " + "; ".join(diffs[:5]))
    return ParallelTiming(sequential_time=ra.clock, parallel_time=rb.clock)
