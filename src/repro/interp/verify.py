"""Run-and-compare helpers: transformation verification and parallel
speedup simulation.

Three execution engines sit behind :func:`run_program`:

* ``"compiled"`` (default) -- the closure-compiled engine
  (:mod:`repro.interp.compile`), ~5-9x faster on the corpus; compiled
  units are cached across transform -> verify cycles;
* ``"vector"`` -- the numpy bulk-lowering engine
  (:mod:`repro.interp.vectorize`): eligible loop nests execute as
  whole-nest slice/ufunc operations, everything else runs on the
  closure engine embedded in the same compiled unit;
* ``"tree"`` -- the tree-walking reference interpreter
  (:mod:`repro.interp.machine`), kept as the differential-testing
  oracle.

Select per call with ``engine=``, or process-wide with the
``REPRO_EXEC_ENGINE`` environment variable.  Verification re-runs the
same source text repeatedly (original vs. transformed, before vs.
after), so parsed/analyzed programs are memoized in a small LRU keyed
by source text (disable with ``REPRO_EXEC_CACHE=0``).

The compiled engine can additionally execute ``PARALLEL DO`` loops for
real on a worker pool (:mod:`repro.interp.runtime`): pass
``workers=N``/``schedule=`` or set ``REPRO_EXEC_WORKERS`` /
``REPRO_EXEC_SCHEDULE``.  Results stay byte-identical to serial; only
wall-clock time changes, which :func:`simulate_speedup` reports in
:class:`ParallelTiming` alongside the virtual clocks.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from ..fortran import parse_program
from ..ir.program import AnalyzedProgram
from ..store import MISS, declare as _declare_ns, get_store
from .compile import CompiledInterpreter
from .machine import Interpreter, Profile
from .runtime import resolve_schedule, resolve_workers
from .vectorize import VectorInterpreter

#: recognized engine names
ENGINES = ("compiled", "vector", "tree")

#: source text -> AnalyzedProgram; memory tier only (UnitIRs embed
#: compiled closures and process-local statement uids)
_PROGRAM_NS = "program"
_declare_ns(_PROGRAM_NS, mem_entries=32, disk=False)


def resolve_engine(engine: str | None = None) -> str:
    """Normalize an engine selector (None -> env -> ``"compiled"``)."""
    if engine is None:
        engine = os.environ.get("REPRO_EXEC_ENGINE") or "compiled"
    if engine not in ENGINES:
        raise ValueError(
            f"unknown execution engine {engine!r} (expected one of "
            f"{', '.join(ENGINES)})")
    return engine


def make_interpreter(program: AnalyzedProgram, inputs=None,
                     max_steps: int = 5_000_000, assertion_checker=None,
                     engine: str | None = None,
                     workers: int | None = None,
                     schedule: str | None = None):
    """Fresh interpreter of the selected engine over an analyzed
    program (not yet run).  ``workers``/``schedule`` attach the
    fork-join DOALL runtime to the compiled engine (the tree engine is
    the serial oracle and accepts-but-ignores them)."""
    eng = resolve_engine(engine)
    if eng == "compiled" or eng == "vector":
        cls = VectorInterpreter if eng == "vector" else CompiledInterpreter
        return cls(
            program, inputs=inputs, max_steps=max_steps,
            assertion_checker=assertion_checker,
            workers=resolve_workers(workers),
            schedule=resolve_schedule(schedule))
    return Interpreter(program, inputs=inputs, max_steps=max_steps,
                       assertion_checker=assertion_checker)


def analyzed_program(source_or_program) -> AnalyzedProgram:
    """Analyzed program for a source text (memoized) or pass-through."""
    if not isinstance(source_or_program, str):
        return source_or_program
    if os.environ.get("REPRO_EXEC_CACHE", "1") == "0":
        return AnalyzedProgram(parse_program(source_or_program))
    store = get_store()
    prog = store.get(_PROGRAM_NS, source_or_program)
    if prog is not MISS:
        return prog
    prog = AnalyzedProgram(parse_program(source_or_program))
    store.put(_PROGRAM_NS, source_or_program, prog)
    return prog


def clear_program_cache() -> None:
    get_store().clear(_PROGRAM_NS)


def run_program(source_or_program, inputs=None, max_steps: int = 5_000_000,
                assertion_checker=None, engine: str | None = None,
                workers: int | None = None, schedule: str | None = None):
    """Parse (if needed) and execute; returns the finished interpreter."""
    program = analyzed_program(source_or_program)
    interp = make_interpreter(program, inputs=inputs, max_steps=max_steps,
                              assertion_checker=assertion_checker,
                              engine=engine, workers=workers,
                              schedule=schedule)
    interp.run()
    return interp


def _common_context(interp, key: str) -> str:
    """``common:X`` diff keys gain the units that declare X (the loop-
    level context lives in the program, not the snapshot)."""
    if not key.startswith("common:"):
        return ""
    name = key[len("common:"):]
    program = getattr(interp, "program", None)
    if program is None:
        return ""
    units = [uname for uname, uir in program.units.items()
             if uir.symtab.get(name) is not None
             and uir.symtab.get(name).storage == "common"]
    if not units:
        return ""
    return f" (COMMON, declared in {', '.join(sorted(units))})"


def format_diffs(diffs: list[str], limit: int = 5) -> str:
    """Join diffs for an error message, saying how many were cut."""
    shown = "; ".join(diffs[:limit])
    hidden = len(diffs) - limit
    if hidden > 0:
        plural = "s" if hidden != 1 else ""
        shown += f"; ... and {hidden} more difference{plural}"
    return shown


class RunDiff(list):
    """The differences between two runs, as a list of human-readable
    strings (so every existing ``compare_runs(...) == []`` caller keeps
    working) plus structure on the side:

    * ``keys`` -- the snapshot key behind each entry, in entry order;
    * ``first_key`` -- the key of the first divergence (``None`` when
      the runs agree), which the relative debugger seeds its statement
      search with;
    * ``truncated(limit)`` -- how many entries a ``format(limit)``
      rendering cuts off, so callers surface the truncation count
      instead of silently dropping detail.
    """

    def __init__(self, entries=(), keys=()):
        super().__init__(entries)
        self.keys: list[str] = list(keys)

    @property
    def first_key(self) -> str | None:
        return self.keys[0] if self.keys else None

    @property
    def divergent_keys(self) -> list[str]:
        """Unique divergent snapshot keys, first-seen order."""
        out: list[str] = []
        for k in self.keys:
            if k not in out:
                out.append(k)
        return out

    def truncated(self, limit: int = 5) -> int:
        return max(0, len(self) - limit)

    def format(self, limit: int = 5) -> str:
        return format_diffs(list(self), limit=limit)

    def to_json(self, limit: int = 5) -> dict:
        return {"count": len(self), "first_key": self.first_key,
                "keys": self.divergent_keys,
                "entries": list(self)[:limit],
                "truncated": self.truncated(limit)}


def compare_runs(a: Interpreter, b: Interpreter,
                 rtol: float = 1e-9, atol: float = 1e-8) -> RunDiff:
    """Differences in observable state between two finished runs, as a
    :class:`RunDiff` (a ``list`` subclass -- empty means identical).

    Array diffs carry the mismatch count and first differing element;
    ``common:`` keys name the declaring units.  ``atol`` defaults to
    numpy's; the relative debugger passes ``rtol=0, atol=0`` to count
    ulp-level reassociation drift as a divergence.
    """
    diffs: list[str] = []
    diff_keys: list[str] = []

    def add(key: str, text: str) -> None:
        diffs.append(text)
        diff_keys.append(key)

    sa, sb = a.snapshot(), b.snapshot()
    keys = sorted(set(sa) | set(sb))
    for k in keys:
        va, vb = sa.get(k), sb.get(k)
        ctx = _common_context(a, k)
        if va is None or vb is None:
            add(k, f"{k}{ctx}: present in only one run")
            continue
        if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            va2, vb2 = np.asarray(va), np.asarray(vb)
            if va2.shape != vb2.shape:
                add(k, f"{k}{ctx}: arrays differ "
                       f"(shape {va2.shape} vs {vb2.shape})")
                continue
            if not np.allclose(va2, vb2, rtol=rtol, atol=atol,
                               equal_nan=True):
                neq = ~np.isclose(va2, vb2, rtol=rtol, atol=atol,
                                  equal_nan=True)
                n_bad = int(neq.sum())
                flat = np.flatnonzero(neq.reshape(-1, order="F"))
                i = int(flat[0]) if flat.size else 0
                fa = va2.reshape(-1, order="F")[i]
                fb = vb2.reshape(-1, order="F")[i]
                add(k, f"{k}{ctx}: arrays differ ({n_bad} of {va2.size} "
                       f"element{'s' if va2.size != 1 else ''}; first at "
                       f"F-order index {i}: {fa} != {fb})")
            continue
        if isinstance(va, list):
            if len(va) != len(vb):
                add(k, f"{k}: output lengths differ "
                       f"({len(va)} vs {len(vb)})")
                continue
            for i, (x, y) in enumerate(zip(va, vb)):
                if isinstance(x, float) or isinstance(y, float):
                    if not np.isclose(x, y, rtol=rtol, atol=atol):
                        add(k, f"{k}[{i}]: {x} != {y}")
                elif x != y:
                    add(k, f"{k}[{i}]: {x} != {y}")
            continue
        if va != vb:
            add(k, f"{k}{ctx}: {va} != {vb}")
    return RunDiff(diffs, diff_keys)


def identical_runs(a: Interpreter, b: Interpreter) -> RunDiff:
    """Byte-identity comparison of two finished runs (``rtol=atol=0``):
    even 1-ulp reassociation drift counts as a divergence.  This is the
    acceptance gate the parallel-worlds explorer applies between each
    speculative world and the serial oracle, and the same tolerance the
    relative debugger bisects under."""
    return compare_runs(a, b, rtol=0.0, atol=0.0)


def verify_equivalence(original: str, transformed: str,
                       inputs=None, rtol: float = 1e-9,
                       engine: str | None = None) -> RunDiff:
    """Run both sources on the same inputs; return observable diffs
    (empty = equivalent on this input)."""
    ra = run_program(original, inputs=list(inputs or []), engine=engine)
    rb = run_program(transformed, inputs=list(inputs or []), engine=engine)
    return compare_runs(ra, rb, rtol=rtol)


@dataclass
class ParallelTiming:
    """Virtual-clock and wall-clock timings of a sequential/parallel
    program pair.  The virtual ``speedup`` reflects the fork-join cost
    model; ``measured_speedup`` is real elapsed time (only meaningful
    when the parallel run used the DOALL runtime with workers)."""

    sequential_time: float
    parallel_time: float
    wall_sequential: float = 0.0
    wall_parallel: float = 0.0

    @property
    def speedup(self) -> float:
        if self.parallel_time <= 0:
            return float("inf")
        return self.sequential_time / self.parallel_time

    @property
    def measured_speedup(self) -> float:
        if self.wall_parallel <= 0:
            return float("inf")
        return self.wall_sequential / self.wall_parallel


def simulate_speedup(sequential_source: str, parallel_source: str,
                     inputs=None, engine: str | None = None,
                     workers: int | None = None,
                     schedule: str | None = None,
                     diff_limit: int = 5) -> ParallelTiming:
    """Virtual-clock (and wall-clock) comparison of a program
    before/after parallelization.

    The interpreter's fork-join model charges a PARALLEL DO the maximum
    iteration time plus a fixed overhead, so the virtual ratio reflects
    exposed granularity rather than real hardware.  With ``workers``
    the parallel source additionally executes its PARALLEL DO loops for
    real, and ``wall_sequential``/``wall_parallel`` report elapsed
    time."""
    t0 = time.perf_counter()
    ra = run_program(sequential_source, inputs=list(inputs or []),
                     engine=engine)
    wall_seq = time.perf_counter() - t0
    t0 = time.perf_counter()
    rb = run_program(parallel_source, inputs=list(inputs or []),
                     engine=engine, workers=workers, schedule=schedule)
    wall_par = time.perf_counter() - t0
    diffs = compare_runs(ra, rb)
    if diffs:
        raise AssertionError(
            f"parallel version changes results "
            f"({len(diffs)} difference{'s' if len(diffs) != 1 else ''}): "
            + format_diffs(diffs, limit=diff_limit))
    return ParallelTiming(sequential_time=ra.clock, parallel_time=rb.clock,
                          wall_sequential=wall_seq, wall_parallel=wall_par)
