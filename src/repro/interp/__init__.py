"""Fortran interpreter: execution, profiling, parallel simulation,
transformation verification.

Three engines share one observable surface: the tree-walking
:class:`Interpreter` (reference oracle), the closure-compiled
:class:`CompiledInterpreter` (default for verification, speedup
simulation, and profiling -- see :mod:`repro.interp.compile`), and the
numpy bulk-lowering :class:`VectorInterpreter`
(:mod:`repro.interp.vectorize`), which executes eligible loop nests as
whole-nest array operations and falls back per-loop to the closure
engine.  The compiled engines can execute PARALLEL DO loops for real on
a persistent worker pool (:mod:`repro.interp.runtime`) while keeping
observable state byte-identical to serial execution.
"""

from .compile import CompiledInterpreter, clear_code_cache, \
    compile_cache_info
from .machine import ArrayStorage, AssertionViolated, Interpreter, Profile, \
    RuntimeFault, StepLimitExceeded, parallel_overhead, \
    set_parallel_overhead
from .runtime import SCHEDULES, ParallelRuntime, chunk_ranges, \
    resolve_pool_kind, resolve_schedule, resolve_workers
from .shadow import DynamicRace, ShadowInterpreter, ShadowLoopLog, \
    dynamic_races, races_under, run_shadow
from .vectorize import LoopDecision, VectorInterpreter, lowering_decisions
from .verify import ENGINES, ParallelTiming, RunDiff, compare_runs, \
    format_diffs, make_interpreter, resolve_engine, run_program, \
    simulate_speedup, verify_equivalence

__all__ = [
    "Interpreter", "CompiledInterpreter", "VectorInterpreter",
    "LoopDecision", "lowering_decisions", "Profile", "ArrayStorage",
    "RuntimeFault", "StepLimitExceeded", "AssertionViolated",
    "run_program", "compare_runs", "verify_equivalence",
    "simulate_speedup", "ParallelTiming", "format_diffs", "RunDiff",
    "ENGINES", "make_interpreter", "resolve_engine",
    "compile_cache_info", "clear_code_cache",
    "ParallelRuntime", "SCHEDULES", "chunk_ranges",
    "resolve_workers", "resolve_schedule", "resolve_pool_kind",
    "parallel_overhead", "set_parallel_overhead",
    "ShadowInterpreter", "ShadowLoopLog", "DynamicRace",
    "dynamic_races", "races_under", "run_shadow",
]
