"""Fortran interpreter: execution, profiling, parallel simulation,
transformation verification.

Two engines share one observable surface: the tree-walking
:class:`Interpreter` (reference oracle) and the closure-compiled
:class:`CompiledInterpreter` (default for verification, speedup
simulation, and profiling -- see :mod:`repro.interp.compile`).
"""

from .compile import CompiledInterpreter, clear_code_cache, \
    compile_cache_info
from .machine import ArrayStorage, AssertionViolated, Interpreter, Profile, \
    RuntimeFault, StepLimitExceeded
from .verify import ENGINES, ParallelTiming, compare_runs, make_interpreter, \
    resolve_engine, run_program, simulate_speedup, verify_equivalence

__all__ = [
    "Interpreter", "CompiledInterpreter", "Profile", "ArrayStorage",
    "RuntimeFault", "StepLimitExceeded", "AssertionViolated",
    "run_program", "compare_runs", "verify_equivalence",
    "simulate_speedup", "ParallelTiming",
    "ENGINES", "make_interpreter", "resolve_engine",
    "compile_cache_info", "clear_code_cache",
]
