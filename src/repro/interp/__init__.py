"""Fortran interpreter: execution, profiling, parallel simulation,
transformation verification."""

from .machine import ArrayStorage, AssertionViolated, Interpreter, Profile, \
    RuntimeFault, StepLimitExceeded
from .verify import ParallelTiming, compare_runs, run_program, \
    simulate_speedup, verify_equivalence

__all__ = [
    "Interpreter", "Profile", "ArrayStorage",
    "RuntimeFault", "StepLimitExceeded", "AssertionViolated",
    "run_program", "compare_runs", "verify_equivalence",
    "simulate_speedup", "ParallelTiming",
]
